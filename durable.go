package pmago

import (
	"errors"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"pmago/internal/core"
	"pmago/internal/obs"
	"pmago/internal/persist"
)

// DB is a durable PMA: the full PMA surface (reads and scans go straight to
// the embedded in-memory store) with every update written ahead to a log in
// the store's directory, checkpointable via Snapshot, and recovered by the
// next Open. All methods are safe for concurrent use.
//
// Durability contract, per fsync policy (selected with WithFsync):
//
//   - FsyncAlways (default): when Put/Delete/PutBatch/DeleteBatch returns,
//     the update is on stable storage; a crash at any point loses nothing
//     acknowledged. Concurrent writers share fsyncs through group commit.
//   - FsyncInterval: acknowledged updates reach stable storage within
//     WithFsyncInterval (default 50 ms). A process crash (panic, kill)
//     loses nothing — the records are already in the kernel; an OS crash
//     or power loss may lose the last interval's acknowledgements.
//   - FsyncNone: same process-crash guarantee as FsyncInterval; stable
//     storage is reached whenever the OS writes back. The fastest policy.
//
// Under every policy recovery restores a prefix-consistent store: the log
// preserves append order, so no surviving write was acknowledged after a
// lost one. (Updates racing on the same key through different goroutines
// are unordered, exactly as they are in memory.)
// inner aliases PMA so DB can embed it as an unexported field: the whole
// read surface (Get, Scan, Len, Stats, ...) is promoted, but the in-memory
// store cannot be reached from outside as db.PMA — whose Put would bypass
// the write-ordering lock and let an acknowledged write fall between a
// snapshot and the truncated WAL.
type inner = PMA

type DB struct {
	*inner
	dir string
	dur persist.Options
	log *persist.Log

	// mu orders writes against a snapshot's cut: every update holds it
	// shared across its append+apply, and Snapshot holds it exclusively
	// while draining the combining queues and rotating the log — after
	// which everything logged before the cut is fully visible to the
	// snapshot scan, and everything after it is replayed from the tail.
	mu sync.RWMutex

	// errMu guards firstErr, the first background WAL failure (append or
	// sync). Once set the store is sick: the panic the failing writer raised
	// may have been recovered by a serving layer, so Sync, Close and Stats
	// all keep reporting it for health checks.
	errMu    sync.Mutex
	firstErr error

	snapMu     sync.Mutex // one snapshot at a time
	snapBytes  atomic.Int64
	opTick     atomic.Uint64
	compacting atomic.Bool
	closed     atomic.Bool
	bg         sync.WaitGroup
	unlock     func() // releases the directory flock

	// wal and ckpt are the durable layers' metric sets (nil with
	// WithoutMetrics); recovery is written once by Open before the DB is
	// shared; events is the structural-event hook (nil means none).
	wal      *obs.WALMetrics
	ckpt     *obs.CheckpointMetrics
	events   obs.EventHook
	recovery obs.RecoverySnapshot
}

// Open opens (creating it if necessary) a durable PMA rooted at dir.
// Recovery runs first: the newest checksum-valid snapshot is bulk-loaded
// in one pass and the write-ahead-log tail is replayed on top, truncating
// a torn final record if a crash cut an append short. In-memory options
// (mode, geometry, ...) apply as in New; WithFsync and friends tune the
// durability layer. Topology options (WithShards, ...) are rejected with an
// error — use OpenSharded. A directory is owned by at most one open DB at a
// time, enforced with an advisory flock (on unix): a second Open fails
// instead of corrupting the live owner's files.
func Open(dir string, opts ...Option) (*DB, error) {
	cfg, err := resolveOptions("Open", opts, true, false)
	if err != nil {
		return nil, err
	}
	return openDB(dir, cfg)
}

// openDB builds a DB from a resolved config — the shared back end of Open
// and the per-shard loop of OpenSharded (which consumes the topology options
// itself and must not re-trigger their rejection).
func openDB(dir string, cfg config) (*DB, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	unlock, err := persist.LockDir(dir)
	if err != nil {
		return nil, err
	}
	var c *core.PMA
	var (
		start     = time.Now()
		loadDone  time.Time
		snapPairs int
		walRecs   int64
	)
	rec, err := persist.Recover(dir,
		func(keys, vals []int64) error {
			var err error
			c, err = core.BulkLoad(cfg.core, keys, vals)
			snapPairs = len(keys)
			loadDone = time.Now()
			return err
		},
		func(r *persist.Record) error {
			walRecs++
			applyRecord(c, r)
			return nil
		})
	if err != nil {
		if c != nil {
			c.Close()
		}
		unlock()
		return nil, err
	}
	// Replayed updates may sit in combining queues or deferred batches
	// (TDelay); drain them so the store Open returns is fully caught up.
	c.Flush()
	// Phase split: everything until the bulk load returned is "snapshot
	// load"; the rest — replaying the tail and flushing the queues it
	// filled — is "WAL replay".
	snapLoad := loadDone.Sub(start)
	walReplay := time.Since(start) - snapLoad
	// The durable layers share the metrics switch with the core config.
	if !cfg.core.DisableMetrics {
		cfg.dur.Metrics = &obs.WALMetrics{}
	}
	log, err := persist.OpenLog(dir, rec.NextSeq, cfg.dur)
	if err != nil {
		c.Close()
		unlock()
		return nil, err
	}
	db := &DB{inner: &PMA{c: c}, dir: dir, dur: cfg.dur, log: log, unlock: unlock,
		wal: cfg.dur.Metrics, events: cfg.dur.Events}
	if !cfg.core.DisableMetrics {
		db.ckpt = &obs.CheckpointMetrics{}
	}
	db.recovery = obs.RecoverySnapshot{
		Recoveries:        1,
		SnapshotPairs:     uint64(snapPairs),
		SnapshotBytes:     uint64(rec.SnapshotBytes),
		SnapshotLoadNanos: uint64(snapLoad),
		WALRecords:        uint64(walRecs),
		WALReplayNanos:    uint64(walReplay),
	}
	db.snapBytes.Store(rec.SnapshotBytes)
	if h := db.events; h != nil {
		h.OnRecovery(obs.RecoveryEvent{
			SnapshotPairs: int64(snapPairs),
			SnapshotBytes: rec.SnapshotBytes,
			SnapshotLoad:  snapLoad,
			WALRecords:    walRecs,
			WALReplay:     walReplay,
		})
	}
	// Install the write-ahead hook only now: replay above must not re-log
	// the records it applies.
	c.SetHook(walHook{db})
	return db, nil
}

// applyRecord replays one WAL record through the ordinary update paths;
// batch records re-sort and re-dedup exactly as the original call did.
func applyRecord(c *core.PMA, r *persist.Record) {
	switch r.Kind {
	case persist.KindPut:
		c.Put(r.Keys[0], r.Vals[0])
	case persist.KindDelete:
		c.Delete(r.Keys[0])
	case persist.KindPutBatch:
		c.PutBatch(r.Keys, r.Vals)
	case persist.KindDeleteBatch:
		c.DeleteBatch(r.Keys)
	}
}

// walHook implements core.UpdateHook: it runs at the top of every update,
// appending the record (and, under FsyncAlways, waiting for the group
// commit) before the in-memory apply begins.
type walHook struct{ db *DB }

func (h walHook) Put(k, v int64) {
	h.db.logErr(h.db.log.AppendPut(k, v))
}

func (h walHook) Delete(k int64) {
	h.db.logErr(h.db.log.AppendDelete(k))
}

func (h walHook) PutBatch(keys, vals []int64) {
	h.db.logErr(h.db.log.AppendPutBatch(keys, vals))
}

func (h walHook) DeleteBatch(keys []int64) {
	h.db.logErr(h.db.log.AppendDeleteBatch(keys))
}

// logErr turns a WAL append failure into a panic: the store cannot keep its
// durability promise once the log stops accepting records, and the update
// signatures (inherited from PMA) have no error channel. Disk-full and
// similar conditions surface here. The error is recorded first, so even if
// a serving layer recovers the panic, Err/Sync/Close/Stats keep reporting
// the store as sick.
func (db *DB) logErr(err error) {
	if err != nil {
		db.recordErr(err)
		panic(fmt.Sprintf("pmago: write-ahead log append failed: %v", err))
	}
	db.maybeCompact()
}

// recordErr keeps the first background WAL failure.
func (db *DB) recordErr(err error) {
	db.errMu.Lock()
	if db.firstErr == nil {
		db.firstErr = err
	}
	db.errMu.Unlock()
}

// Err reports the first background WAL failure (append or sync), or nil
// while the store is healthy. Once non-nil it stays non-nil: the log is
// sticky-failed and no later write can be considered durable.
func (db *DB) Err() error {
	db.errMu.Lock()
	defer db.errMu.Unlock()
	return db.firstErr
}

// Put inserts or replaces k/v durably (see DB for per-policy guarantees).
func (db *DB) Put(k, v int64) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	db.inner.Put(k, v)
}

// Delete removes k durably.
func (db *DB) Delete(k int64) bool {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.inner.Delete(k)
}

// PutBatch upserts the batch durably, logging it as a single record.
func (db *DB) PutBatch(keys, vals []int64) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	db.inner.PutBatch(keys, vals)
}

// DeleteBatch removes the keys durably, logging them as a single record.
func (db *DB) DeleteBatch(keys []int64) int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.inner.DeleteBatch(keys)
}

// Sync forces every acknowledged write to stable storage now, whatever the
// fsync policy — a durability barrier for FsyncInterval/FsyncNone stores.
// A store whose log failed earlier (see Err) reports that failure from every
// Sync: the barrier cannot be provided any more.
func (db *DB) Sync() error {
	db.checkOpen()
	if err := db.Err(); err != nil {
		return fmt.Errorf("pmago: log failed earlier: %w", err)
	}
	err := db.log.Sync()
	if err != nil {
		db.recordErr(err)
	}
	return err
}

// Snapshot checkpoints the store: a consistent full scan is streamed into a
// delta-encoded, checksummed snapshot file, after which the WAL segments it
// covers (and older snapshots) are deleted. Concurrent reads and writes
// proceed during the scan — only the cut itself briefly quiesces writers.
// On return, recovery cost is reset to the snapshot plus the live WAL tail.
func (db *DB) Snapshot() error {
	db.checkOpen()
	return db.snapshot(false)
}

// snapshot checkpoints the store; auto marks the WAL-growth-triggered
// background compactions apart from explicit Snapshot calls in the metrics
// and events.
func (db *DB) snapshot(auto bool) error {
	db.snapMu.Lock()
	defer db.snapMu.Unlock()
	var t0 time.Time
	if db.ckpt != nil || db.events != nil {
		t0 = time.Now()
	}

	// The cut: block writers, drain every combining queue so all updates
	// logged so far are applied (and thus visible to the scan below),
	// then start a fresh WAL segment. Everything before segment `cut` is
	// covered by the snapshot; everything from it on will be replayed.
	db.mu.Lock()
	db.inner.Flush()
	cut, err := db.log.Rotate()
	db.mu.Unlock()
	if err != nil {
		return err
	}

	// The scan may observe writes from after the cut whose WAL records are
	// not yet on stable storage (FsyncInterval/FsyncNone). Sync the log
	// before the writer publishes the checkpoint: otherwise a power loss
	// could recover a state containing a later acknowledged write (captured
	// by the scan) while losing an earlier one that existed only in the
	// unsynced tail — breaking the prefix-consistency guarantee this file
	// documents. Syncing after the scan covers every record the scan could
	// have seen, and a sync failure aborts the snapshot before the rename,
	// so a checkpoint never supersedes WAL records that are not durable.
	var count, size int64
	if db.inner.c.Compressed() {
		// Compressed fast path: segments stream to disk as the delta
		// blocks they already are — no decode, no per-pair re-encode.
		count, size, err = persist.WriteSnapshotBlocks(db.dir, cut, func(yield func(payload []byte, pairs int) bool) error {
			db.inner.c.ScanBlocks(yield)
			return db.log.Sync()
		}, db.dur)
	} else {
		count, size, err = persist.WriteSnapshot(db.dir, cut, func(yield func(k, v int64) bool) error {
			db.inner.ScanAll(yield)
			return db.log.Sync()
		}, db.dur)
	}
	if err != nil {
		return err
	}
	db.snapBytes.Store(size)
	// The snapshot is durable: its WAL prefix and older snapshots are
	// garbage now.
	db.log.TruncateBefore(cut)
	persist.RemoveSnapshotsBefore(db.dir, cut)
	if m := db.ckpt; m != nil {
		m.Snapshots.Inc()
		if auto {
			m.AutoCompactions.Inc()
		}
		m.PairsWritten.Add(uint64(count))
		m.BytesWritten.Add(uint64(size))
		m.SnapshotNanos.ObserveDuration(time.Since(t0))
	}
	if h := db.events; h != nil {
		h.OnCompaction(obs.CompactionEvent{Auto: auto, Pairs: count, Bytes: size, Duration: time.Since(t0)})
	}
	return nil
}

// maybeCompact triggers a background snapshot when the live WAL has grown
// past CompactRatio × the last snapshot (or past CompactMinBytes while no
// snapshot exists). Checked every 64th append to keep it off the hot path.
func (db *DB) maybeCompact() {
	if db.dur.CompactRatio <= 0 || db.opTick.Add(1)&63 != 0 {
		return
	}
	threshold := db.dur.CompactMinBytes
	if sb := db.snapBytes.Load(); sb > 0 {
		if t := int64(db.dur.CompactRatio * float64(sb)); t > threshold {
			threshold = t
		}
	}
	if db.log.LiveBytes() <= threshold {
		return
	}
	if db.compacting.Swap(true) {
		return
	}
	db.bg.Add(1)
	go func() {
		defer db.bg.Done()
		defer db.compacting.Store(false)
		if db.closed.Load() {
			return
		}
		_ = db.snapshot(true) // failure keeps the WAL; the next trigger retries
	}()
}

// Stats returns the full durable metrics snapshot: the in-memory core
// sections plus WAL, checkpoint and recovery. Overrides the promoted PMA
// method so the durable sections are filled whether the DB is used directly
// or through a Sharded store.
func (db *DB) Stats() Stats {
	s := db.inner.Stats()
	s.Durable = true
	s.WAL = db.wal.Snapshot()
	s.Checkpoint = db.ckpt.Snapshot()
	s.Recovery = db.recovery
	if err := db.Err(); err != nil {
		s.Err = err.Error()
	}
	return s
}

// Validate extends the in-memory structural validation with the durable
// layer's metric invariants, so instrumentation bugs fail the durability
// test suites too.
func (db *DB) Validate() error {
	if err := db.inner.Validate(); err != nil {
		return err
	}
	if db.wal != nil {
		// Group-commit deltas advance towards the appended-record count
		// and never past it, and appends are counted before any fsync can
		// cover them.
		w := db.wal.Snapshot()
		if w.GroupCommitRecords.Sum > w.Appends {
			return fmt.Errorf("stats: group-commit record sum %d > wal appends %d", w.GroupCommitRecords.Sum, w.Appends)
		}
	}
	return nil
}

// WALBytes reports the live write-ahead-log size — the replay cost a crash
// would incur right now (diagnostics and tests).
func (db *DB) WALBytes() int64 { return db.log.LiveBytes() }

// Dir returns the store's directory.
func (db *DB) Dir() string { return db.dir }

// Close flushes pending in-memory work, forces the log to stable storage
// and releases all resources. A WAL failure recorded earlier (see Err) is
// returned too — a caller treating a nil Close as "everything acknowledged
// is durable" must see the broken promise. Close is idempotent; any other
// method panics afterwards. As with PMA.Close, concurrent operations must
// have completed.
func (db *DB) Close() error {
	if db.closed.Swap(true) {
		return nil
	}
	db.bg.Wait()
	db.inner.Close() // applies pending combined updates (already logged)
	err := db.log.Close()
	db.unlock()
	return errors.Join(db.Err(), err)
}

func (db *DB) checkOpen() {
	if db.closed.Load() {
		panic("pmago: use after Close")
	}
}
