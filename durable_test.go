package pmago

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"
)

func scanToMap(t *testing.T, p interface {
	ScanAll(func(k, v int64) bool)
}) map[int64]int64 {
	t.Helper()
	m := map[int64]int64{}
	p.ScanAll(func(k, v int64) bool {
		m[k] = v
		return true
	})
	return m
}

func TestOpenFreshPutReopen(t *testing.T) {
	for _, policy := range []FsyncPolicy{FsyncAlways, FsyncInterval, FsyncNone} {
		t.Run(policy.String(), func(t *testing.T) {
			dir := t.TempDir()
			db, err := Open(dir, WithFsync(policy), WithFsyncInterval(time.Millisecond))
			if err != nil {
				t.Fatal(err)
			}
			model := map[int64]int64{}
			for i := int64(0); i < 2000; i++ {
				db.Put(i*7, i)
				model[i*7] = i
			}
			db.PutBatch([]int64{1, 3, 5}, []int64{10, 30, 50})
			model[1], model[3], model[5] = 10, 30, 50
			if n := db.DeleteBatch([]int64{7, 21}); n != 2 {
				t.Fatalf("DeleteBatch removed %d, want 2", n)
			}
			delete(model, 7)
			delete(model, 21)
			db.Delete(14)
			delete(model, 14)
			if err := db.Close(); err != nil {
				t.Fatal(err)
			}

			re, err := Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			defer re.Close()
			re.Flush()
			if got := scanToMap(t, re); !reflect.DeepEqual(got, model) {
				t.Fatalf("reopen lost data: %d keys, want %d", len(got), len(model))
			}
			if err := re.Validate(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestSnapshotTruncatesWALAndRecovers(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, WithFsync(FsyncNone), WithCompactRatio(0))
	if err != nil {
		t.Fatal(err)
	}
	model := map[int64]int64{}
	for i := int64(0); i < 5000; i++ {
		db.Put(i, i*2)
		model[i] = i * 2
	}
	pre := db.WALBytes()
	if err := db.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if post := db.WALBytes(); post >= pre/2 {
		t.Fatalf("snapshot did not truncate the WAL: %d -> %d bytes", pre, post)
	}
	// Tail writes after the checkpoint land in the WAL only.
	for i := int64(0); i < 500; i++ {
		db.Put(-i-1, i)
		model[-i-1] = i
	}
	db.DeleteBatch([]int64{0, 2, 4})
	delete(model, 0)
	delete(model, 2)
	delete(model, 4)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	re.Flush()
	if got := scanToMap(t, re); !reflect.DeepEqual(got, model) {
		t.Fatalf("snapshot+tail recovery mismatch: %d keys, want %d", len(got), len(model))
	}
}

// crashOp is one acknowledged update plus the durable WAL size right after
// it returned — the boundary the truncation property test cuts against.
type crashOp struct {
	apply  func(m map[int64]int64)
	endOff int64
}

// TestCrashRecoveryProperty is the crash property test: a workload of
// acknowledged FsyncAlways updates is recorded together with each op's WAL
// end offset; the log is then truncated at random byte offsets (a crash mid
// group of appends), reopened, and the recovered store must equal the model
// of exactly the ops whose records fit below the cut — every acknowledged-
// durable op survives, nothing partial leaks in.
func TestCrashRecoveryProperty(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, WithFsync(FsyncAlways), WithCompactRatio(0))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	var ops []crashOp
	for i := 0; i < 400; i++ {
		var apply func(m map[int64]int64)
		switch rng.Intn(4) {
		case 0:
			k, v := rng.Int63n(200), rng.Int63()
			db.Put(k, v)
			apply = func(m map[int64]int64) { m[k] = v }
		case 1:
			k := rng.Int63n(200)
			db.Delete(k)
			apply = func(m map[int64]int64) { delete(m, k) }
		case 2:
			n := 1 + rng.Intn(8)
			keys := make([]int64, n)
			vals := make([]int64, n)
			for j := range keys {
				keys[j] = rng.Int63n(200)
				vals[j] = rng.Int63()
			}
			db.PutBatch(keys, vals)
			apply = func(m map[int64]int64) {
				for j := range keys {
					m[keys[j]] = vals[j]
				}
			}
		default:
			n := 1 + rng.Intn(8)
			keys := make([]int64, n)
			for j := range keys {
				keys[j] = rng.Int63n(200)
			}
			db.DeleteBatch(keys)
			apply = func(m map[int64]int64) {
				for _, k := range keys {
					delete(m, k)
				}
			}
		}
		ops = append(ops, crashOp{apply: apply, endOff: db.WALBytes()})
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	walName := fmt.Sprintf("wal-%020d.log", 1)
	wal, err := os.ReadFile(filepath.Join(dir, walName))
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(wal)) != ops[len(ops)-1].endOff {
		t.Fatalf("wal is %d bytes, last op ended at %d", len(wal), ops[len(ops)-1].endOff)
	}

	cuts := []int64{0, 1, 7, int64(len(wal)) - 1, int64(len(wal))}
	for i := 0; i < 40; i++ {
		cuts = append(cuts, rng.Int63n(int64(len(wal))+1))
	}
	for _, cut := range cuts {
		// The acknowledged-durable prefix: every op whose record fully
		// precedes the cut. A record straddling the cut is torn and, with
		// it, everything after — recovery may not apply any of it.
		want := map[int64]int64{}
		for _, op := range ops {
			if op.endOff > cut {
				break
			}
			op.apply(want)
		}
		trial := t.TempDir()
		if err := os.WriteFile(filepath.Join(trial, walName), wal[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		re, err := Open(trial)
		if err != nil {
			t.Fatalf("cut %d: reopen: %v", cut, err)
		}
		re.Flush()
		got := scanToMap(t, re)
		if verr := re.Validate(); verr != nil {
			t.Fatalf("cut %d: %v", cut, verr)
		}
		re.Close()
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("cut %d of %d: recovered %d keys, want %d", cut, len(wal), len(got), len(want))
		}
	}
}

// TestCorruptRecordRejectedOnOpen flips a byte inside the WAL. Mid-file,
// with checksum-valid records after the damage, that is bit rot eating
// acknowledged writes — Open must refuse rather than silently drop the
// suffix. At the very tail it is indistinguishable from a crash mid-append
// and recovery keeps the intact prefix, leaking no garbage.
func TestCorruptRecordRejectedOnOpen(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, WithFsync(FsyncNone), WithCompactRatio(0))
	if err != nil {
		t.Fatal(err)
	}
	const n = 500
	for i := int64(0); i < n; i++ {
		db.Put(i, i*10)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	walPath := filepath.Join(dir, fmt.Sprintf("wal-%020d.log", 1))
	data, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	midCorrupt := append([]byte(nil), data...)
	midCorrupt[len(midCorrupt)/3] ^= 0xA5
	if err := os.WriteFile(walPath, midCorrupt, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err == nil {
		t.Fatal("Open accepted a WAL with mid-file corruption followed by valid records")
	}

	// Damage in the final record: torn-tail semantics, prefix recovered.
	tailCorrupt := append([]byte(nil), data...)
	tailCorrupt[len(tailCorrupt)-2] ^= 0xA5
	if err := os.WriteFile(walPath, tailCorrupt, 0o644); err != nil {
		t.Fatal(err)
	}
	re, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	got := scanToMap(t, re)
	if len(got) != n-1 {
		t.Fatalf("torn final record: recovered %d/%d, want %d", len(got), n, n-1)
	}
	for k, v := range got {
		if v != k*10 {
			t.Fatalf("garbage survived CRC check: %d -> %d", k, v)
		}
	}
}

// TestKillAndReopen simulates a kill -9: the directory is copied while the
// store is still open (nothing flushed by Close) and reopened elsewhere.
// Under FsyncAlways every acknowledged write must be in the copy.
func TestKillAndReopen(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, WithFsync(FsyncAlways), WithCompactRatio(0))
	if err != nil {
		t.Fatal(err)
	}
	model := map[int64]int64{}
	for i := int64(0); i < 1000; i++ {
		db.Put(i*3, i)
		model[i*3] = i
	}
	// Copy the directory with the store still open — the "crash image".
	image := t.TempDir()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(image, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	db.Close()

	re, err := Open(image)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	re.Flush()
	if got := scanToMap(t, re); !reflect.DeepEqual(got, model) {
		t.Fatalf("kill-and-reopen lost acknowledged writes: %d keys, want %d", len(got), len(model))
	}
}

func TestSecondOpenSameDirRefused(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	db.Put(1, 1)
	if _, err := Open(dir); err == nil {
		t.Fatal("second Open on a live directory must fail, not corrupt the owner")
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	// The flock dies with its holder: reopening after Close works.
	re, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := re.Get(1); !ok || v != 1 {
		t.Fatal("reopen after lock release lost data")
	}
	if err := re.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestAutoCompaction(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir,
		WithFsync(FsyncNone),
		WithCompactRatio(4),
		WithCompactMinBytes(4<<10))
	if err != nil {
		t.Fatal(err)
	}
	model := map[int64]int64{}
	deadline := time.Now().Add(10 * time.Second)
	var i int64
	for db.WALBytes() < 32<<10 { // well past the trigger threshold
		db.Put(i, i)
		model[i] = i
		i++
	}
	for time.Now().Before(deadline) {
		if snaps, _ := filepath.Glob(filepath.Join(dir, "snap-*.pma")); len(snaps) > 0 && db.WALBytes() < 8<<10 {
			break
		}
		db.Put(i, i)
		model[i] = i
		i++
		time.Sleep(time.Millisecond)
	}
	snaps, _ := filepath.Glob(filepath.Join(dir, "snap-*.pma"))
	if len(snaps) == 0 {
		t.Fatal("auto-compaction never produced a snapshot")
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	re.Flush()
	if got := scanToMap(t, re); !reflect.DeepEqual(got, model) {
		t.Fatalf("post-compaction recovery mismatch: %d keys, want %d", len(got), len(model))
	}
}

func TestConcurrentDurableWritersRecover(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, WithFsync(FsyncInterval), WithFsyncInterval(time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	const workers, per = 8, 500
	done := make(chan struct{})
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < per; i++ {
				db.Put(int64(w*per+i), int64(w))
			}
		}(w)
	}
	for w := 0; w < workers; w++ {
		<-done
	}
	// A snapshot races nothing here, but exercises the cut under load.
	if err := db.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	re.Flush()
	if re.Len() != workers*per {
		t.Fatalf("recovered %d keys, want %d", re.Len(), workers*per)
	}
}

func mustPanic(t *testing.T, want string, fn func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected panic, got none")
		}
		if msg, ok := r.(string); !ok || msg != want {
			t.Fatalf("panic %v, want %q", r, want)
		}
	}()
	fn()
}

func TestUseAfterClosePanics(t *testing.T) {
	p, err := New()
	if err != nil {
		t.Fatal(err)
	}
	p.Put(1, 1)
	p.Close()
	p.Close() // double Close stays a no-op
	const msg = "pmago: use after Close"
	mustPanic(t, msg, func() { p.Put(2, 2) })
	mustPanic(t, msg, func() { p.Get(1) })
	mustPanic(t, msg, func() { p.Delete(1) })
	mustPanic(t, msg, func() { p.Scan(0, 10, func(int64, int64) bool { return true }) })
	mustPanic(t, msg, func() { p.Flush() })
	mustPanic(t, msg, func() { p.PutBatch([]int64{1}, []int64{1}) })
	mustPanic(t, msg, func() { p.DeleteBatch([]int64{1}) })
}

func TestDurableUseAfterClosePanics(t *testing.T) {
	db, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	db.Put(1, 1)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	const msg = "pmago: use after Close"
	mustPanic(t, msg, func() { db.Put(2, 2) })
	mustPanic(t, msg, func() { db.Get(1) })
	mustPanic(t, msg, func() { _ = db.Snapshot() })
	mustPanic(t, msg, func() { _ = db.Sync() })
}

// TestCompressedSnapshotInterop: snapshots are a representation-neutral
// interchange format. A snapshot cut by a compressed store (which streams
// its encoded blocks verbatim to disk) must reopen into an uncompressed
// store, and vice versa, with identical content in both directions.
func TestCompressedSnapshotInterop(t *testing.T) {
	dir := t.TempDir()
	model := map[int64]int64{}

	db, err := Open(dir, WithCompressedChunks(), WithCompactRatio(0))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 8000; i++ {
		k, v := rng.Int63n(1<<30), rng.Int63()
		db.Put(k, v)
		model[k] = v
	}
	for k := range model {
		if rng.Intn(5) == 0 {
			db.Delete(k)
			delete(model, k)
		}
	}
	db.Flush()
	if !db.Stats().Compression.Enabled {
		t.Fatal("compressed store reports compression disabled")
	}
	if err := db.Snapshot(); err != nil { // cut via the encoded block fast path
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// Compressed-written snapshot into an uncompressed store.
	db2, err := Open(dir, WithCompactRatio(0))
	if err != nil {
		t.Fatal(err)
	}
	if got := scanToMap(t, db2); !reflect.DeepEqual(got, model) {
		t.Fatalf("uncompressed reopen: %d keys, want %d", len(got), len(model))
	}
	if db2.Stats().Compression.Enabled {
		t.Fatal("uncompressed store reports compression enabled")
	}
	for i := 0; i < 1000; i++ {
		k, v := rng.Int63n(1<<30), rng.Int63()
		db2.Put(k, v)
		model[k] = v
	}
	db2.Flush()
	if err := db2.Snapshot(); err != nil { // pair-at-a-time snapshot path
		t.Fatal(err)
	}
	if err := db2.Close(); err != nil {
		t.Fatal(err)
	}

	// Uncompressed-written snapshot back into a compressed store.
	db3, err := Open(dir, WithCompressedChunks())
	if err != nil {
		t.Fatal(err)
	}
	if got := scanToMap(t, db3); !reflect.DeepEqual(got, model) {
		t.Fatalf("compressed reopen: %d keys, want %d", len(got), len(model))
	}
	if err := db3.Validate(); err != nil {
		t.Fatal(err)
	}
	st := db3.Stats()
	if !st.Compression.Enabled || st.Compression.Pairs != uint64(len(model)) {
		t.Fatalf("compression stats after reopen: %+v (want %d pairs)", st.Compression, len(model))
	}
	if err := db3.Close(); err != nil {
		t.Fatal(err)
	}
}
