package pmago

import (
	"pmago/internal/graph"
)

// Graph is a concurrent directed graph stored CRS-style in packed memory
// arrays (Section 6 of the paper): edges keyed (src<<32 | dst) live in one
// sparse array, vertices in a second, so neighbourhood expansions are
// sequential range scans while edges stream in concurrently. Vertex ids must
// not exceed MaxVertex. All methods are safe for concurrent use.
type Graph struct {
	g *graph.Graph
}

// MaxVertex is the largest usable vertex identifier.
const MaxVertex = graph.MaxVertex

// NewGraph creates an empty graph whose underlying PMAs use the paper's
// defaults modified by the given options.
func NewGraph(opts ...Option) (*Graph, error) {
	cfg := defaultConfig()
	for _, o := range opts {
		o(&cfg)
	}
	g, err := graph.New(cfg.core)
	if err != nil {
		return nil, err
	}
	return &Graph{g: g}, nil
}

// Close stops the service goroutines of the underlying arrays.
func (g *Graph) Close() { g.g.Close() }

// AddVertex registers a vertex.
func (g *Graph) AddVertex(v uint32) { g.g.AddVertex(v) }

// HasVertex reports whether v is registered.
func (g *Graph) HasVertex(v uint32) bool { return g.g.HasVertex(v) }

// AddEdge inserts or updates the directed edge src -> dst, registering both
// endpoints.
func (g *Graph) AddEdge(src, dst uint32, weight int64) { g.g.AddEdge(src, dst, weight) }

// DeleteEdge removes an edge, reporting whether it was present.
func (g *Graph) DeleteEdge(src, dst uint32) bool { return g.g.DeleteEdge(src, dst) }

// Edge returns the weight of src -> dst.
func (g *Graph) Edge(src, dst uint32) (int64, bool) { return g.g.Edge(src, dst) }

// Neighbors visits src's outgoing edges in ascending dst order until fn
// returns false.
func (g *Graph) Neighbors(src uint32, fn func(dst uint32, weight int64) bool) {
	g.g.Neighbors(src, fn)
}

// OutDegree counts src's outgoing edges.
func (g *Graph) OutDegree(src uint32) int { return g.g.OutDegree(src) }

// EdgeCount returns the number of edges.
func (g *Graph) EdgeCount() int { return g.g.EdgeCount() }

// VertexCount returns the number of registered vertices.
func (g *Graph) VertexCount() int { return g.g.VertexCount() }

// Vertices visits every vertex in ascending id order.
func (g *Graph) Vertices(fn func(v uint32) bool) { g.g.Vertices(fn) }

// Edges visits every edge in (src, dst) order.
func (g *Graph) Edges(fn func(src, dst uint32, weight int64) bool) { g.g.Edges(fn) }

// Flush applies pending asynchronous updates.
func (g *Graph) Flush() { g.g.Flush() }

// Stats returns the edge array's metrics snapshot (the durable sections stay
// zero — graphs are in-memory).
func (g *Graph) Stats() Stats { return Stats{CoreSnapshot: g.g.Stats()} }

// BFS returns hop distances from src for all reachable vertices.
func (g *Graph) BFS(src uint32) map[uint32]int { return g.g.BFS(src) }

// PageRank runs power iterations over the live graph, one sequential edge
// scan per iteration.
func (g *Graph) PageRank(iters int, damping float64) map[uint32]float64 {
	return g.g.PageRank(iters, damping)
}
