package pmago_test

import (
	"encoding/json"
	"math/rand"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"pmago"
)

// TestStatsConsistency is the metrics property test: after a randomized
// concurrent workload with known op counts, the counters must tie out
// against the model exactly where the instrumentation promises exact
// attribution — every Get is served by exactly one of the optimistic and
// latched paths, and every point op routed by a sharded store lands on
// exactly one shard's routing counter.
func TestStatsConsistency(t *testing.T) {
	const (
		workers = 4
		gets    = 5_000
		puts    = 3_000
		batchN  = 2_000
	)
	s, err := pmago.NewSharded(pmago.WithShards(3))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < puts; i++ {
				s.Put(rng.Int63n(1<<20), int64(i))
			}
			for i := 0; i < gets; i++ {
				s.Get(rng.Int63n(1 << 20))
			}
			keys := make([]int64, batchN)
			vals := make([]int64, batchN)
			for i := range keys {
				keys[i] = rng.Int63n(1 << 20)
				vals[i] = int64(i)
			}
			s.PutBatch(keys, vals)
		}(w)
	}
	wg.Wait()
	s.Flush()

	st := s.Stats()
	if got, want := st.Reads.GetOptimistic+st.Reads.GetLatched, uint64(workers*gets); got != want {
		t.Errorf("optimistic+latched gets = %d, want exactly %d (every Get is served by one path)", got, want)
	}
	if len(st.Shards) != 3 {
		t.Fatalf("Shards has %d entries, want 3", len(st.Shards))
	}
	var routedOps, routedBatch uint64
	for _, sh := range st.Shards {
		routedOps += sh.Ops
		routedBatch += sh.BatchKeys
	}
	if want := uint64(workers * (gets + puts)); routedOps != want {
		t.Errorf("routed point ops sum to %d, want %d", routedOps, want)
	}
	if want := uint64(workers * batchN); routedBatch != want {
		t.Errorf("routed batch keys sum to %d, want %d", routedBatch, want)
	}
	// Validate cross-checks the live invariants the counters promise
	// (latched <= probe fails, combined <= drained+queued).
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestStatsNonZeroAfterStress drives a durable sharded store hard enough
// that every subsystem ticks, then asserts the acceptance bar: non-zero
// seqlock, rebalancer, WAL and per-shard counters in one Stats snapshot.
func TestStatsNonZeroAfterStress(t *testing.T) {
	s, err := pmago.OpenSharded(t.TempDir(), pmago.WithShards(2), pmago.WithFsync(pmago.FsyncNone))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := int64(0); i < 40_000; i++ {
		s.Put(i, i)
	}
	for i := int64(0); i < 1_000; i++ {
		s.Get(i)
	}
	s.Flush()
	if err := s.Snapshot(); err != nil {
		t.Fatal(err)
	}

	st := s.Stats()
	if st.Reads.GetOptimistic+st.Reads.GetLatched == 0 {
		t.Error("no gets recorded")
	}
	if st.Rebalance.Local == 0 && st.Rebalance.Global == 0 {
		t.Error("no rebalances recorded under sequential append")
	}
	if st.Rebalance.Resizes == 0 {
		t.Error("no resizes recorded")
	}
	if !st.Durable {
		t.Error("Durable false on a durable store")
	}
	if st.WAL.Appends == 0 {
		t.Error("no WAL appends recorded")
	}
	if st.Checkpoint.Snapshots == 0 || st.Checkpoint.PairsWritten == 0 {
		t.Error("checkpoint counters empty after Snapshot")
	}
	if st.Recovery.Recoveries != 2 {
		t.Errorf("Recoveries = %d, want 2 (one per shard)", st.Recovery.Recoveries)
	}
	for i, sh := range st.Shards {
		if sh.Ops == 0 {
			t.Errorf("shard %d routed no ops", i)
		}
	}
}

// TestHandler exercises both exposition surfaces end to end over HTTP.
func TestHandler(t *testing.T) {
	p, err := pmago.New()
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	for i := int64(0); i < 2_000; i++ {
		p.Put(i, i)
	}
	for i := int64(0); i < 100; i++ {
		p.Get(i)
	}
	p.Flush()
	srv := httptest.NewServer(pmago.Handler(p))
	defer srv.Close()

	rec := httptest.NewRecorder()
	pmago.Handler(p).ServeHTTP(rec, httptest.NewRequest("GET", "/debug/pmago/", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("JSON endpoint Content-Type = %q", ct)
	}
	var st pmago.Stats
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatalf("JSON endpoint did not return a Stats document: %v", err)
	}
	if st.Reads.GetOptimistic+st.Reads.GetLatched == 0 {
		t.Error("JSON snapshot reports zero gets after 100 Gets")
	}

	rec = httptest.NewRecorder()
	pmago.Handler(p).ServeHTTP(rec, httptest.NewRequest("GET", "/debug/pmago/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("Prometheus endpoint Content-Type = %q", ct)
	}
	body := rec.Body.String()
	for _, want := range []string{
		"# TYPE pmago_reads_get_optimistic_total counter",
		"pmago_rebalance_local_total",
		"pmago_updates_drain_size_ops_bucket",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("Prometheus exposition missing %q", want)
		}
	}
}

// TestWithoutMetrics pins the disabled mode: Stats reports zeros (modulo
// epoch reclamation, which is structural), Validate still passes, and the
// handler still serves the full catalog shape.
func TestWithoutMetrics(t *testing.T) {
	p, err := pmago.New(pmago.WithoutMetrics())
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	for i := int64(0); i < 10_000; i++ {
		p.Put(i, i)
	}
	p.Get(1)
	p.Flush()
	st := p.Stats()
	if st.Reads.GetOptimistic != 0 || st.Reads.GetLatched != 0 || st.Updates.CombinedOps != 0 ||
		st.Rebalance.Local != 0 || st.Rebalance.Global != 0 || st.Rebalance.Resizes != 0 {
		t.Errorf("metrics disabled but counters ticked: %+v", st)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	pmago.Handler(p).ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if !strings.Contains(rec.Body.String(), "pmago_reads_get_optimistic_total 0") {
		t.Error("disabled store should still expose the zero-valued catalog")
	}
}

// TestEventHookFires covers the event-tracing path end to end: a durable
// store with a hook must report compaction and recovery events with
// plausible payloads.
func TestEventHookFires(t *testing.T) {
	var mu sync.Mutex
	var compactions, recoveries int
	var lastPairs int64
	hook := eventRecorder{
		onCompaction: func(e pmago.CompactionEvent) {
			mu.Lock()
			compactions++
			lastPairs = e.Pairs
			mu.Unlock()
		},
		onRecovery: func(e pmago.RecoveryEvent) {
			mu.Lock()
			recoveries++
			mu.Unlock()
		},
	}
	dir := t.TempDir()
	db, err := pmago.Open(dir, pmago.WithEventHook(hook), pmago.WithFsync(pmago.FsyncNone))
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 1_000; i++ {
		db.Put(i, i)
	}
	if err := db.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := pmago.Open(dir, pmago.WithEventHook(hook))
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()

	mu.Lock()
	defer mu.Unlock()
	if compactions != 1 {
		t.Errorf("OnCompaction fired %d times, want 1", compactions)
	}
	if lastPairs != 1_000 {
		t.Errorf("compaction reported %d pairs, want 1000", lastPairs)
	}
	if recoveries != 2 {
		t.Errorf("OnRecovery fired %d times, want 2 (both Opens)", recoveries)
	}
}

// eventRecorder is a test EventHook with optional callbacks.
type eventRecorder struct {
	onCompaction func(pmago.CompactionEvent)
	onRecovery   func(pmago.RecoveryEvent)
}

func (r eventRecorder) OnRebalance(pmago.RebalanceEvent) {}
func (r eventRecorder) OnCompaction(e pmago.CompactionEvent) {
	if r.onCompaction != nil {
		r.onCompaction(e)
	}
}
func (r eventRecorder) OnRecovery(e pmago.RecoveryEvent) {
	if r.onRecovery != nil {
		r.onRecovery(e)
	}
}
func (r eventRecorder) OnFsyncStall(pmago.FsyncStallEvent) {}
