// Package pmago is a Go implementation of the concurrent Packed Memory
// Array of "Fast Concurrent Reads and Updates with PMAs" (De Leo & Boncz,
// GRADES-NDA 2019): a sorted key/value store over a gapped dense array that
// serves range scans at sequential-memory speed while supporting concurrent
// updates.
//
// # Architecture
//
// The sparse array is split into fixed-size chunks, each guarded by a gate —
// a read-write latch bundled with the chunk's fence keys (Section 3.1-3.2).
// A static B+-tree index routes every operation to its gate without
// synchronisation; fence-key verification absorbs racy index reads.
// Readers normally bypass the latch entirely: every gate carries a seqlock
// version counter, and Get and Scan validate an unsynchronised chunk read
// against it, taking the shared latch only after repeated validation
// failures on a writer-heavy gate — so reads proceed without touching any
// mutex and never serialize behind writers. Scan copies each validated
// chunk out and runs the callback on the copy with no latch held: callbacks
// may call update operations of the same PMA and may be slow without
// blocking writers. Rebalances that would span several gates are delegated
// to a centralised rebalancer service (one master goroutine plus a worker
// pool, Section 3.3), so no client ever holds more than one latch. Resizes
// rebuild the whole array behind an atomic state pointer with epoch-based
// reclamation (Section 3.4), and contended writers are decoupled through
// per-gate combining queues with one-by-one or batch processing
// (Section 3.5).
//
// # Point and batch updates
//
// Put, Get, Delete and Scan are the paper's one-key-at-a-time surface.
// PutBatch and DeleteBatch amortise the routing cost (epoch guard, index
// lookup, gate latch) over an entire sorted batch, latching each affected
// gate exactly once and merging that gate's run in a single pass; BulkLoad
// constructs a pre-populated PMA directly at the array's target density in
// one pass over the sorted data. Use them for bulk ingest — graph loading,
// snapshot restore, telemetry backfill — where they beat point-update loops
// by large factors (see internal/bench).
//
// # Durability
//
// Open turns the in-memory PMA into a durable store: every update is
// appended to a write-ahead log in the store's directory before it is
// applied, Snapshot checkpoints a consistent scan into a delta-encoded,
// checksummed file, and the next Open recovers by bulk-loading the newest
// valid snapshot and replaying the WAL tail (truncating a record torn by a
// crash mid-append). Which acknowledged writes survive a crash depends on
// the fsync policy (WithFsync):
//
//   - FsyncAlways (default): every write that returned is on stable
//     storage — a crash loses nothing acknowledged. Concurrent writers
//     share fsyncs through group commit.
//   - FsyncInterval: writes become durable within WithFsyncInterval
//     (50 ms default). A process crash loses nothing (the records are in
//     the kernel already); power loss can cost the last interval.
//   - FsyncNone: durability is left to the OS write-back. Fastest; the
//     same process-crash guarantee, none against power loss.
//
// The log preserves append order, so recovery always yields a
// prefix-consistent store: no surviving write was acknowledged after a
// lost one. WAL segments covered by a snapshot are deleted; by default the
// store re-snapshots itself when the log grows past WithCompactRatio times
// the last snapshot, keeping restart time bounded.
//
// # Sharding
//
// Sharded routes one key space across N independent PMA shards, created
// in-memory with NewSharded/BulkLoadSharded or durably with OpenSharded.
// Every structure that serializes writers — combining queues, the
// rebalancer master, WAL group commit — exists once per shard, so write
// throughput scales with shard count on multi-core machines.
//
// Keys are placed by one of two schemes, fixed at creation:
//
//   - Weighted (default; WithShards or WithShardWeights): straw2-style
//     placement — each key draws a weighted pseudo-random straw per shard
//     and lands on the argmax. Spread follows the weights for any key
//     distribution, and growing the topology only moves keys onto the new
//     shard. Scans k-way merge the per-shard streams.
//   - Range (WithRangeSplits): shard i owns one contiguous key range.
//     Shard order is key order, so scans walk shards sequentially with no
//     merge; the caller owns balance.
//
// A durable sharded store keeps each shard's WAL and snapshots in its own
// subdirectory under one parent, with a parent-level flock and a manifest
// (MANIFEST.json) recording the topology. The manifest is authoritative on
// reopen: OpenSharded with no sharding options adopts it, options that
// contradict it are an error (routing with a different placement would make
// existing keys unreachable), and a missing manifest over existing shard
// directories — or a manifest whose shard directory is missing — refuses to
// open. Per-shard recovery runs in parallel.
//
// Operation semantics match PMA/DB on the shard that owns the key; what
// sharding changes is atomicity ACROSS shards. A cross-shard
// PutBatch/DeleteBatch is split per shard and applied as one batch per
// shard concurrently: a concurrent scan can observe one shard's portion
// without another's, and after a crash each shard independently recovers
// its own acknowledged-durable prefix (under FsyncAlways every acknowledged
// cross-shard batch is durable on all shards; prefix consistency holds per
// shard, not globally). Scan returns one globally ascending stream and
// keeps the latch-free callback contract — the callback may update the same
// store — with chunk atomicity per shard and no cross-shard snapshot.
//
// # Compressed chunks
//
// WithCompressedChunks selects a CPMA-style in-memory representation:
// each PMA segment stores its pairs as one delta block (varint key gaps
// and zigzag values, the snapshot wire format) instead of fixed 16-byte
// slots, cutting the live heap of dense key runs by several times — see
// the memory experiment in internal/bench. Semantics are unchanged: the
// same API, the same concurrency contract (optimistic readers decode
// through a hardened decoder and validate against the seqlock version as
// before), and the same snapshot format on disk, so a directory written
// compressed reopens uncompressed and vice versa. The trade is
// decode-on-read and re-encode-on-write at segment granularity: point
// operations pay a bounded extra cost, while BulkLoad and Snapshot get
// faster (one encode pass rides the layout pass; a checkpoint streams
// the already-encoded blocks to disk without touching pairs). Enable it
// for memory-bound, scan- and ingest-heavy workloads with locally dense
// keys; leave it off when single-key latency dominates. The option is
// per store — under WithShards it applies to every shard.
//
// # Observability
//
// Every store variant is instrumented by default: Stats returns a typed
// snapshot (Stats/obs.Snapshot) covering the read path (optimistic seqlock
// serves vs latched fallbacks and probe retries), the combining queues
// (absorbed ops, drain-size histogram, deferred batches), the rebalancer
// (local/global/resize counts, window sizes, duration histograms), and — on
// durable stores — WAL activity (appends, fsync latency, group-commit batch
// sizes, rotations), checkpoints and the recovery phase split. Sharded
// stores merge the per-shard snapshots and add per-shard routing counters.
// Counter reads during concurrent operation are safe and monotonic per
// stripe but not a consistent cut; quiesce first for exact totals.
//
// Sliding-window histograms (internal/obs.Window) extend the same contract
// to tail latency: WAL append/fsync timings, the served request path and
// the client's RTT recording each keep a ring of bucketed sub-windows
// rotated on a coarse clock, so snapshots answer "p99 over the trailing
// ~10s" instead of "since process start". Window consistency mirrors the
// counters: each sub-window is monotonic under concurrent observes, but a
// snapshot is not a consistent cut — observations racing a slot rotation
// can land in either slot or (rarely, bounded) be dropped, and the
// interpolated percentiles carry the log2 buckets' relative error. Served
// stores additionally expose per-request stage attribution (decode, queue,
// commit wait, apply, respond — stages that partition each request's
// handling time) and a slow-op flight recorder; see pmago/server.
//
// The snapshots obey documented cross-counter invariants, and Validate
// checks them live: latched Get serves never exceed recorded probe
// failures, and combined (queue-absorbed) ops never exceed drained plus
// still-queued ops. Handler serves the same snapshot over HTTP — indented
// JSON on any path, Prometheus text exposition (version 0.0.4) on paths
// ending in "/metrics" — with zero dependencies.
//
// Metrics are on by default because their cost is small: hot paths
// increment striped, cache-line-padded counters with no allocation, and
// timing syscalls are confined to service goroutines (rebalancer, fsync,
// checkpoint). WithoutMetrics disables the layer entirely, reducing every
// site to one nil check; WithEventHook installs a synchronous structural
// event tracer (rebalances, compactions, recovery, fsync stalls), which
// NewSlogHook adapts onto log/slog. Hooks run on service goroutines and
// must be fast and must not call back into the store.
//
// # Serving
//
// The Store interface is the package's common surface: PMA, DB and Sharded
// all satisfy it (DurableStore adds the durability calls), so code can be
// written once against any backend. pmago/server exposes a Store over a
// framed binary TCP protocol with per-connection pipelining, pmago/client
// speaks it, and cmd/pmaserve is the ready-made binary.
//
// The server funnels every client's write requests through one committer,
// which coalesces whatever is concurrently in flight into a single
// consolidated PutBatch — one WAL record, one shared fsync. The
// acknowledgment contract: a response frame is queued only after the store
// call covering that request returned, so whatever durability the backend
// promises per call (e.g. FsyncAlways: on stable storage) holds per
// acknowledged request — a response never races ahead of its own
// durability. Ops coalesced into one commit are exactly the ones that were
// all unacknowledged when the drain began, so they are mutually concurrent
// and the batch is a legal serialization. Requests beyond the server's
// bounded in-flight windows are answered with an explicit busy status
// (clients see it as a retryable error), never buffered without bound.
//
// # Quick start
//
//	p, err := pmago.New()
//	if err != nil { ... }
//	defer p.Close()
//	p.Put(42, 1)
//	v, ok := p.Get(42)
//	p.PutBatch([]int64{1, 2, 3}, []int64{10, 20, 30})
//	p.Scan(0, 100, func(k, v int64) bool { ...; return true })
//
// Or durably, surviving restarts:
//
//	db, err := pmago.Open("/var/lib/myapp/pma", pmago.WithFsync(pmago.FsyncInterval))
//	if err != nil { ... }
//	defer db.Close()
//	db.Put(42, 1)         // appended to the WAL, then applied
//	_ = db.Snapshot()     // checkpoint now; truncates the log
//
// The zero-configuration store uses the paper's evaluation setup: 128-slot
// segments, 8 segments per gate, batch-combined asynchronous updates with a
// 100 ms rebalance delay. Use options to select the synchronous or
// one-by-one modes, or to retune the geometry. Options apply only to the
// constructors that can honor them: passing a durability option (WithFsync,
// WithCompactRatio, ...) to New, or a topology option (WithShards, ...) to
// Open, is an error naming the misapplied option — never a silent no-op. After Close, every data
// operation — Put, Get, Delete, Scan, Flush, the batch calls, and a DB's
// Snapshot and Sync — panics with "pmago: use after Close" (read-only
// accessors like Len and Stats still answer from the last state); Close
// itself is idempotent.
package pmago
