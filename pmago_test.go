package pmago

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"
)

func newTest(t *testing.T, opts ...Option) *PMA {
	t.Helper()
	opts = append([]Option{WithTDelay(0), WithWorkers(2)}, opts...)
	p, err := New(opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)
	return p
}

func TestPublicAPIBasics(t *testing.T) {
	p := newTest(t)
	p.Put(10, 100)
	p.Put(20, 200)
	p.Flush()
	if v, ok := p.Get(10); !ok || v != 100 {
		t.Fatalf("Get = %d,%v", v, ok)
	}
	var keys []int64
	p.Scan(0, 100, func(k, _ int64) bool { keys = append(keys, k); return true })
	if len(keys) != 2 || keys[0] != 10 || keys[1] != 20 {
		t.Fatalf("scan = %v", keys)
	}
	if !p.Delete(10) {
		t.Fatal("delete failed")
	}
	p.Flush()
	if p.Len() != 1 {
		t.Fatalf("Len = %d", p.Len())
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestAllModesThroughPublicAPI(t *testing.T) {
	for _, m := range []Mode{ModeSync, ModeOneByOne, ModeBatch} {
		p := newTest(t, WithMode(m))
		var wg sync.WaitGroup
		for w := 0; w < 4; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(w)))
				for i := 0; i < 5_000; i++ {
					p.Put(int64(rng.Intn(3_000)), int64(i))
				}
			}(w)
		}
		wg.Wait()
		p.Flush()
		if err := p.Validate(); err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		prev := int64(-1)
		p.ScanAll(func(k, _ int64) bool {
			if k <= prev {
				t.Fatalf("%v: order violation", m)
			}
			prev = k
			return true
		})
	}
}

func TestOptionsApply(t *testing.T) {
	p := newTest(t, WithMode(ModeBatch), WithSegmentCapacity(64),
		WithSegmentsPerGate(4), WithTDelay(time.Millisecond), WithAdaptive())
	for i := int64(0); i < 10_000; i++ {
		p.Put(i, i)
	}
	p.Flush()
	if p.Len() != 10_000 {
		t.Fatalf("Len = %d", p.Len())
	}
	if p.Stats().Rebalance.Resizes == 0 {
		t.Fatal("no resizes despite small segments")
	}
}

func TestInvalidOptionRejected(t *testing.T) {
	if _, err := New(WithSegmentCapacity(7)); err == nil {
		t.Fatal("non-power-of-two segment capacity accepted")
	}
}

func TestGraphPublicAPI(t *testing.T) {
	g, err := NewGraph(WithTDelay(0), WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	// Small ring with chords, concurrent writers.
	var wg sync.WaitGroup
	const n = 64
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < n; i += 4 {
				g.AddEdge(uint32(i), uint32((i+1)%n), 1)
				g.AddEdge(uint32(i), uint32((i+7)%n), 1)
			}
		}(w)
	}
	wg.Wait()
	g.Flush()
	if g.EdgeCount() != 2*n {
		t.Fatalf("EdgeCount = %d", g.EdgeCount())
	}
	dist := g.BFS(0)
	if len(dist) != n {
		t.Fatalf("BFS reached %d vertices", len(dist))
	}
	pr := g.PageRank(5, 0.85)
	sum := 0.0
	for _, r := range pr {
		sum += r
	}
	if sum < 0.99 || sum > 1.01 {
		t.Fatalf("PageRank sum = %f", sum)
	}
	var ds []uint32
	g.Neighbors(0, func(d uint32, _ int64) bool { ds = append(ds, d); return true })
	if !sort.SliceIsSorted(ds, func(i, j int) bool { return ds[i] < ds[j] }) {
		t.Fatal("neighbors unsorted")
	}
}

func TestPublicBatchAPI(t *testing.T) {
	p := newTest(t)
	keys := []int64{9, 3, 7, 3, 1}
	vals := []int64{90, 30, 70, 31, 10}
	p.PutBatch(keys, vals)
	var got []int64
	p.ScanAll(func(k, _ int64) bool { got = append(got, k); return true })
	want := []int64{1, 3, 7, 9}
	if len(got) != len(want) {
		t.Fatalf("keys = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("keys = %v, want %v", got, want)
		}
	}
	if v, ok := p.Get(3); !ok || v != 31 {
		t.Fatalf("Get(3) = %d,%v: duplicate did not collapse to last", v, ok)
	}
	if n := p.DeleteBatch([]int64{3, 9, 100}); n != 2 {
		t.Fatalf("DeleteBatch = %d, want 2", n)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPublicBulkLoad(t *testing.T) {
	const n = 100_000
	keys := make([]int64, n)
	vals := make([]int64, n)
	for i := range keys {
		keys[i] = int64(i) * 2
		vals[i] = int64(i)
	}
	p, err := BulkLoad(keys, vals, WithMode(ModeSync))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if p.Len() != n {
		t.Fatalf("Len = %d, want %d", p.Len(), n)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if v, ok := p.Get(keys[n/2]); !ok || v != vals[n/2] {
		t.Fatalf("Get mid = %d,%v", v, ok)
	}
	// Ordered scan across a range boundary.
	count := 0
	p.Scan(100, 200, func(k, v int64) bool { count++; return true })
	if count != 51 {
		t.Fatalf("Scan count = %d, want 51", count)
	}
}
