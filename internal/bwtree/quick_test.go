package bwtree

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

type opSeq struct{ ops []modelOp }

type modelOp struct {
	kind byte
	key  int64
	val  int64
}

func (opSeq) Generate(r *rand.Rand, size int) reflect.Value {
	n := 200 + r.Intn(2000)
	domain := int64(1 + r.Intn(800))
	ops := make([]modelOp, n)
	for i := range ops {
		ops[i] = modelOp{kind: byte(r.Intn(3)), key: r.Int63n(domain) - domain/3, val: r.Int63()}
	}
	return reflect.ValueOf(opSeq{ops})
}

func TestQuickModelEquivalence(t *testing.T) {
	property := func(seq opSeq) bool {
		tr := New(Config{LeafCapacity: 16, InnerCapacity: 8, ConsolidateAt: 4})
		model := map[int64]int64{}
		for _, o := range seq.ops {
			switch o.kind {
			case 0:
				tr.Put(o.key, o.val)
				model[o.key] = o.val
			case 1:
				_, want := model[o.key]
				delete(model, o.key)
				if tr.Delete(o.key) != want {
					return false
				}
			case 2:
				wv, wok := model[o.key]
				gv, gok := tr.Get(o.key)
				if gok != wok || (gok && gv != wv) {
					return false
				}
			}
		}
		if tr.Len() != len(model) {
			return false
		}
		want := make([]int64, 0, len(model))
		for k := range model {
			want = append(want, k)
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		got := tr.Keys()
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
