package bwtree

import (
	"math"
	"sort"
)

// Get returns the value stored under k: the newest delta for k wins, the
// base node otherwise.
func (t *Tree) Get(k int64) (int64, bool) {
	_, n, _ := t.findLeaf(k)
	for d := n; d != nil; d = d.next {
		switch d.kind {
		case deltaInsert:
			if d.key == k {
				return d.val, true
			}
		case deltaDelete:
			if d.key == k {
				return 0, false
			}
		case leafBase:
			i := sort.Search(len(d.keys), func(i int) bool { return d.keys[i] >= k })
			if i < len(d.keys) && d.keys[i] == k {
				return d.vals[i], true
			}
			return 0, false
		}
	}
	return 0, false
}

// leafContains reports whether the chain currently stores k.
func leafContains(n *node, k int64) bool {
	for d := n; d != nil; d = d.next {
		switch d.kind {
		case deltaInsert:
			if d.key == k {
				return true
			}
		case deltaDelete:
			if d.key == k {
				return false
			}
		case leafBase:
			i := sort.Search(len(d.keys), func(i int) bool { return d.keys[i] >= k })
			return i < len(d.keys) && d.keys[i] == k
		}
	}
	return false
}

// Put inserts or replaces k/v by CAS-prepending an insert delta.
func (t *Tree) Put(k, v int64) {
	if k == keyMin || k == keyMax {
		panic("bwtree: cannot store sentinel key")
	}
	for {
		id, head, parents := t.findLeaf(k)
		present := leafContains(head, k)
		d := &node{
			kind: deltaInsert, leaf: true, next: head,
			chainLen: head.chainLen + 1,
			key:      k, val: v,
		}
		if t.entry(id).CompareAndSwap(head, d) {
			if !present {
				t.size.Add(1)
			}
			if int(d.chainLen) > t.cfg.ConsolidateAt {
				t.consolidateLeaf(id, d, parents)
			}
			return
		}
	}
}

// Delete removes k, reporting whether it was present.
func (t *Tree) Delete(k int64) bool {
	if k == keyMin || k == keyMax {
		return false
	}
	for {
		id, head, parents := t.findLeaf(k)
		if !leafContains(head, k) {
			return false
		}
		d := &node{
			kind: deltaDelete, leaf: true, next: head,
			chainLen: head.chainLen + 1,
			key:      k,
		}
		if t.entry(id).CompareAndSwap(head, d) {
			t.size.Add(-1)
			if int(d.chainLen) > t.cfg.ConsolidateAt {
				t.consolidateLeaf(id, d, parents)
			}
			return true
		}
	}
}

// replayLeaf merges a leaf chain into sorted keys/vals.
func replayLeaf(n *node) (keys, vals []int64, hi int64, side nodeID) {
	type mod struct {
		val int64
		del bool
	}
	mods := map[int64]mod{}
	base := n
	for base.next != nil {
		switch base.kind {
		case deltaInsert:
			if _, seen := mods[base.key]; !seen {
				mods[base.key] = mod{val: base.val}
			}
		case deltaDelete:
			if _, seen := mods[base.key]; !seen {
				mods[base.key] = mod{del: true}
			}
		}
		base = base.next
	}
	keys = make([]int64, 0, len(base.keys)+len(mods))
	vals = make([]int64, 0, len(base.keys)+len(mods))
	// New keys from deltas, sorted.
	var fresh []int64
	for k, m := range mods {
		if !m.del {
			fresh = append(fresh, k)
		}
	}
	sort.Slice(fresh, func(i, j int) bool { return fresh[i] < fresh[j] })
	fi := 0
	for i, k := range base.keys {
		for fi < len(fresh) && fresh[fi] < k {
			keys = append(keys, fresh[fi])
			vals = append(vals, mods[fresh[fi]].val)
			fi++
		}
		if m, hit := mods[k]; hit {
			if !m.del {
				if fi < len(fresh) && fresh[fi] == k {
					fi++
				}
				keys = append(keys, k)
				vals = append(vals, m.val)
			}
			continue
		}
		keys = append(keys, k)
		vals = append(vals, base.vals[i])
	}
	for ; fi < len(fresh); fi++ {
		keys = append(keys, fresh[fi])
		vals = append(vals, mods[fresh[fi]].val)
	}
	return keys, vals, base.hi, base.side
}

// consolidateLeaf replaces a long chain with a fresh base node, splitting it
// when over capacity: the consolidated left half's side link points at the
// newly allocated right node, and the separator is posted at the parent.
func (t *Tree) consolidateLeaf(id nodeID, head *node, parents []nodeID) {
	keys, vals, hi, side := replayLeaf(head)
	if len(keys) <= t.cfg.LeafCapacity {
		base := &node{
			kind: leafBase, leaf: true, chainLen: 1,
			keys: keys, vals: vals, hi: hi, side: side,
		}
		t.entry(id).CompareAndSwap(head, base)
		return
	}
	mid := len(keys) / 2
	sep := keys[mid]
	rightID := t.alloc()
	t.entry(rightID).Store(&node{
		kind: leafBase, leaf: true, chainLen: 1,
		keys: append([]int64{}, keys[mid:]...),
		vals: append([]int64{}, vals[mid:]...),
		hi:   hi, side: side,
	})
	left := &node{
		kind: leafBase, leaf: true, chainLen: 1,
		keys: keys[:mid:mid], vals: vals[:mid:mid],
		hi: sep, side: rightID,
	}
	if t.entry(id).CompareAndSwap(head, left) {
		t.help(parents, sep, rightID, id)
	}
}

// replayInner merges an inner chain into sorted separators and children.
func replayInner(n *node) (seps []int64, kids []nodeID, hi int64, side nodeID) {
	type entry struct {
		sep int64
		kid nodeID
	}
	var fresh []entry
	base := n
	for base.next != nil {
		if base.kind == deltaIndexEntry {
			dup := false
			for _, f := range fresh {
				if f.sep == base.key {
					dup = true
					break
				}
			}
			if !dup {
				fresh = append(fresh, entry{base.key, base.kid})
			}
		}
		base = base.next
	}
	sort.Slice(fresh, func(i, j int) bool { return fresh[i].sep < fresh[j].sep })
	seps = make([]int64, 0, len(base.keys)+len(fresh))
	kids = make([]nodeID, 0, len(base.kids)+len(fresh))
	kids = append(kids, base.kids[0])
	fi := 0
	for i, s := range base.keys {
		for fi < len(fresh) && fresh[fi].sep < s {
			seps = append(seps, fresh[fi].sep)
			kids = append(kids, fresh[fi].kid)
			fi++
		}
		if fi < len(fresh) && fresh[fi].sep == s {
			fi++ // already known
		}
		seps = append(seps, s)
		kids = append(kids, base.kids[i+1])
	}
	for ; fi < len(fresh); fi++ {
		seps = append(seps, fresh[fi].sep)
		kids = append(kids, fresh[fi].kid)
	}
	return seps, kids, base.hi, base.side
}

// consolidateInner rebuilds an inner chain, splitting when over capacity by
// promoting the middle separator.
func (t *Tree) consolidateInner(id nodeID, head *node, parents []nodeID) {
	seps, kids, hi, side := replayInner(head)
	if len(kids) <= t.cfg.InnerCapacity {
		base := &node{
			kind: innerBase, chainLen: 1,
			keys: seps, kids: kids, hi: hi, side: side,
		}
		t.entry(id).CompareAndSwap(head, base)
		return
	}
	mid := len(seps) / 2
	sep := seps[mid]
	rightID := t.alloc()
	t.entry(rightID).Store(&node{
		kind: innerBase, chainLen: 1,
		keys: append([]int64{}, seps[mid+1:]...),
		kids: append([]nodeID{}, kids[mid+1:]...),
		hi:   hi, side: side,
	})
	left := &node{
		kind: innerBase, chainLen: 1,
		keys: seps[:mid:mid], kids: kids[: mid+1 : mid+1],
		hi: sep, side: rightID,
	}
	if t.entry(id).CompareAndSwap(head, left) {
		t.help(parents, sep, rightID, id)
	}
}

// Scan visits all pairs with lo <= key <= hi in ascending order, stopping
// when fn returns false. Each leaf is replayed into a snapshot (the
// delta-replay cost of Bw-Tree scans the paper's evaluation highlights).
func (t *Tree) Scan(lo, hi int64, fn func(k, v int64) bool) {
	if lo > hi {
		return
	}
	from := lo
	for {
		_, head, _ := t.findLeaf(from)
		keys, vals, nodeHi, side := replayLeaf(head)
		i := sort.Search(len(keys), func(i int) bool { return keys[i] >= from })
		for ; i < len(keys); i++ {
			if keys[i] > hi {
				return
			}
			if !fn(keys[i], vals[i]) {
				return
			}
		}
		if nodeHi > hi || nodeHi == keyMax || side == invalidID {
			return
		}
		from = nodeHi
	}
}

// ScanAll visits every pair in ascending key order.
func (t *Tree) ScanAll(fn func(k, v int64) bool) {
	t.Scan(math.MinInt64+1, math.MaxInt64-1, fn)
}

// Keys returns all keys in order (test helper).
func (t *Tree) Keys() []int64 {
	out := make([]int64, 0, t.Len())
	t.ScanAll(func(k, _ int64) bool { out = append(out, k); return true })
	return out
}
