// Package bwtree implements the Bw-Tree baseline of Section 4 [Levandoski
// et al., ICDE 2013; Wang et al., SIGMOD 2018]: a lock-free B+-tree variant
// in which updates never modify nodes in place. Every logical node is an
// entry in a mapping table holding a chain of immutable delta records over a
// base node; writers prepend deltas with a single CAS, readers replay the
// chain. Chains are consolidated past a length threshold; splits install a
// consolidated left half whose side link points at the new right node, and
// traversals help by posting index-entry deltas at the parent.
//
// Simplifications relative to OpenBw-Tree, documented in DESIGN.md: node
// merges are replaced by tolerated underflow (consolidation still removes
// deleted keys, and scans skip empty nodes), and the epoch-based reclamation
// of unlinked deltas is subsumed by Go's garbage collector, which provides
// the same safety property (no freed memory is reachable).
package bwtree

import (
	"math"
	"sort"
	"sync/atomic"
)

const (
	// DefaultLeafCapacity bounds a consolidated leaf before it splits.
	DefaultLeafCapacity = 128
	// DefaultInnerCapacity bounds a consolidated inner node's children.
	DefaultInnerCapacity = 128
	// DefaultConsolidateAt is the delta-chain length that triggers
	// consolidation.
	DefaultConsolidateAt = 8

	keyMin = math.MinInt64
	keyMax = math.MaxInt64
)

// Config tunes the tree.
type Config struct {
	LeafCapacity  int
	InnerCapacity int
	ConsolidateAt int
}

type nodeID int32

const invalidID nodeID = -1

type nodeKind uint8

const (
	leafBase nodeKind = iota
	innerBase
	deltaInsert
	deltaDelete
	deltaIndexEntry
)

// node is either a base node or a delta record; all fields are immutable
// once the node is published through the mapping table.
type node struct {
	kind nodeKind
	leaf bool  // level of the chain this record belongs to
	next *node // older chain suffix (nil for base nodes)

	chainLen int32

	// Base node payload. hiKey is the exclusive upper fence (keyMax =
	// +inf); side is the right sibling at the same level.
	keys []int64
	vals []int64 // leaf values
	kids []nodeID
	hi   int64
	side nodeID

	// Delta payload: insert/delete key+val, or an index entry mapping
	// keys in [key, ...) to child kid.
	key int64
	val int64
	kid nodeID
}

// chunked mapping table: lock-free allocation, stable entries.
const (
	chunkBits = 13
	chunkSize = 1 << chunkBits
	maxChunks = 1 << 15
)

type chunk [chunkSize]atomic.Pointer[node]

// Tree is the concurrent Bw-Tree. All methods are safe for concurrent use.
type Tree struct {
	cfg    Config
	chunks [maxChunks]atomic.Pointer[chunk]
	nextID atomic.Int32
	root   atomic.Int32
	size   atomic.Int64
}

// New returns an empty tree.
func New(cfg Config) *Tree {
	if cfg.LeafCapacity <= 2 {
		cfg.LeafCapacity = DefaultLeafCapacity
	}
	if cfg.InnerCapacity <= 2 {
		cfg.InnerCapacity = DefaultInnerCapacity
	}
	if cfg.ConsolidateAt <= 0 {
		cfg.ConsolidateAt = DefaultConsolidateAt
	}
	t := &Tree{cfg: cfg}
	rootID := t.alloc()
	t.entry(rootID).Store(&node{kind: leafBase, leaf: true, chainLen: 1, hi: keyMax, side: invalidID})
	t.root.Store(int32(rootID))
	return t
}

// Len returns the number of stored pairs.
func (t *Tree) Len() int { return int(t.size.Load()) }

func (t *Tree) alloc() nodeID {
	id := nodeID(t.nextID.Add(1) - 1)
	ci := int(id) >> chunkBits
	if ci >= maxChunks {
		panic("bwtree: mapping table exhausted")
	}
	if t.chunks[ci].Load() == nil {
		t.chunks[ci].CompareAndSwap(nil, new(chunk))
	}
	return id
}

func (t *Tree) entry(id nodeID) *atomic.Pointer[node] {
	return &t.chunks[int(id)>>chunkBits].Load()[int(id)&(chunkSize-1)]
}

// --- traversal ---

// findLeaf descends to the leaf responsible for k, helping complete splits
// it encounters, and returns the leaf's id, its current chain head, and the
// stack of parent ids (root first).
func (t *Tree) findLeaf(k int64) (nodeID, *node, []nodeID) {
	var parents []nodeID
restart:
	parents = parents[:0]
	id := nodeID(t.root.Load())
	for {
		n := t.entry(id).Load()
		if k >= t.chainHi(n) {
			// The node was split and k belongs right; help post the
			// index entry, then jump across the side link.
			side := t.chainSide(n)
			t.help(parents, t.chainHi(n), side, id)
			id = side
			continue
		}
		if n.leaf {
			return id, n, parents
		}
		child := t.route(n, k)
		if child == invalidID {
			goto restart
		}
		parents = append(parents, id)
		id = child
	}
}

// chainHi returns the effective exclusive upper fence of a chain (the base
// node's; deltas never change it because splits install new bases).
func (t *Tree) chainHi(n *node) int64 {
	for n.next != nil {
		n = n.next
	}
	return n.hi
}

func (t *Tree) chainSide(n *node) nodeID {
	for n.next != nil {
		n = n.next
	}
	return n.side
}

// route picks the child of an inner chain for key k: the largest separator
// <= k wins, considering index-entry deltas shadowing the base.
func (t *Tree) route(n *node, k int64) nodeID {
	bestSep := int64(keyMin)
	best := invalidID
	haveDelta := false
	for d := n; d.next != nil; d = d.next {
		if d.kind == deltaIndexEntry && d.key <= k && (!haveDelta || d.key > bestSep) {
			bestSep, best, haveDelta = d.key, d.kid, true
		}
	}
	base := n
	for base.next != nil {
		base = base.next
	}
	// Base inner: kids[i] serves keys in [keys[i-1], keys[i]), with
	// keys[-1] = -inf.
	i := sort.Search(len(base.keys), func(i int) bool { return base.keys[i] > k })
	baseSep := int64(keyMin)
	if i > 0 {
		baseSep = base.keys[i-1]
	}
	child := invalidID
	if len(base.kids) > 0 {
		child = base.kids[i]
	}
	if haveDelta && (child == invalidID || bestSep > baseSep) {
		return best
	}
	return child
}

// help posts an index entry (sep -> right) at the deepest parent, creating a
// new root when the split node was the root. Best-effort: failures are
// retried by later traversals.
func (t *Tree) help(parents []nodeID, sep int64, right nodeID, left nodeID) {
	if right == invalidID {
		return
	}
	if len(parents) == 0 {
		// Root split: build a fresh root over (left, right).
		newRoot := t.alloc()
		t.entry(newRoot).Store(&node{
			kind: innerBase, chainLen: 1,
			keys: []int64{sep},
			kids: []nodeID{left, right},
			hi:   keyMax, side: invalidID,
		})
		t.root.CompareAndSwap(int32(left), int32(newRoot))
		return
	}
	pid := parents[len(parents)-1]
	for {
		pn := t.entry(pid).Load()
		if t.innerKnows(pn, sep) {
			return
		}
		if sep >= t.chainHi(pn) {
			// The parent itself split; the traversal that follows
			// the side link will help at the right place.
			return
		}
		d := &node{
			kind: deltaIndexEntry, leaf: false, next: pn,
			chainLen: pn.chainLen + 1,
			key:      sep, kid: right,
		}
		if t.entry(pid).CompareAndSwap(pn, d) {
			if int(d.chainLen) > t.cfg.ConsolidateAt {
				t.consolidateInner(pid, d, parents[:len(parents)-1])
			}
			return
		}
	}
}

// innerKnows reports whether the inner chain already routes sep.
func (t *Tree) innerKnows(n *node, sep int64) bool {
	for d := n; d.next != nil; d = d.next {
		if d.kind == deltaIndexEntry && d.key == sep {
			return true
		}
	}
	base := n
	for base.next != nil {
		base = base.next
	}
	i := sort.Search(len(base.keys), func(i int) bool { return base.keys[i] >= sep })
	return i < len(base.keys) && base.keys[i] == sep
}
