package bwtree

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
)

func newTest() *Tree {
	return New(Config{LeafCapacity: 16, InnerCapacity: 8, ConsolidateAt: 4})
}

func TestBasic(t *testing.T) {
	tr := newTest()
	if tr.Len() != 0 {
		t.Fatal("not empty")
	}
	tr.Put(5, 50)
	tr.Put(3, 30)
	if v, ok := tr.Get(5); !ok || v != 50 {
		t.Fatalf("Get(5) = %d,%v", v, ok)
	}
	if _, ok := tr.Get(4); ok {
		t.Fatal("absent key found")
	}
	tr.Put(5, 51)
	if v, _ := tr.Get(5); v != 51 {
		t.Fatal("upsert failed")
	}
	if tr.Len() != 2 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if !tr.Delete(5) || tr.Delete(5) {
		t.Fatal("delete semantics wrong")
	}
	if _, ok := tr.Get(5); ok {
		t.Fatal("deleted key still visible")
	}
}

func TestDeltaChainVisibility(t *testing.T) {
	// Updates must be visible before any consolidation runs.
	tr := New(Config{LeafCapacity: 1024, InnerCapacity: 64, ConsolidateAt: 1 << 30})
	for i := int64(0); i < 100; i++ {
		tr.Put(i, i*2)
	}
	for i := int64(0); i < 100; i += 2 {
		tr.Delete(i)
	}
	for i := int64(0); i < 100; i++ {
		v, ok := tr.Get(i)
		if i%2 == 0 {
			if ok {
				t.Fatalf("deleted key %d visible", i)
			}
		} else if !ok || v != i*2 {
			t.Fatalf("Get(%d) = %d,%v", i, v, ok)
		}
	}
}

func TestSplitsAscending(t *testing.T) {
	tr := newTest()
	const n = 20_000
	for i := int64(0); i < n; i++ {
		tr.Put(i, i)
	}
	if tr.Len() != n {
		t.Fatalf("Len = %d", tr.Len())
	}
	keys := tr.Keys()
	if len(keys) != n {
		t.Fatalf("scan returned %d keys", len(keys))
	}
	for i, k := range keys {
		if k != int64(i) {
			t.Fatalf("keys[%d] = %d", i, k)
		}
	}
}

func TestSplitsDescending(t *testing.T) {
	tr := newTest()
	const n = 10_000
	for i := int64(n); i >= 1; i-- {
		tr.Put(i, -i)
	}
	keys := tr.Keys()
	if len(keys) != n {
		t.Fatalf("%d keys", len(keys))
	}
	for i, k := range keys {
		if k != int64(i+1) {
			t.Fatalf("keys[%d] = %d", i, k)
		}
	}
}

func TestScanRange(t *testing.T) {
	tr := newTest()
	for i := int64(0); i < 2000; i++ {
		tr.Put(i*10, i)
	}
	var got []int64
	tr.Scan(95, 205, func(k, _ int64) bool { got = append(got, k); return true })
	want := []int64{100, 110, 120, 130, 140, 150, 160, 170, 180, 190, 200}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("scan[%d] = %d", i, got[i])
		}
	}
	count := 0
	tr.ScanAll(func(_, _ int64) bool { count++; return count < 9 })
	if count != 9 {
		t.Fatalf("early stop visited %d", count)
	}
}

func TestModelRandom(t *testing.T) {
	tr := newTest()
	model := map[int64]int64{}
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 60_000; i++ {
		k := int64(rng.Intn(4000))
		switch rng.Intn(10) {
		case 0, 1, 2:
			want := false
			if _, ok := model[k]; ok {
				want = true
				delete(model, k)
			}
			if got := tr.Delete(k); got != want {
				t.Fatalf("op %d: Delete(%d) = %v want %v", i, k, got, want)
			}
		case 3:
			wv, wok := model[k]
			gv, gok := tr.Get(k)
			if gok != wok || (gok && gv != wv) {
				t.Fatalf("op %d: Get(%d) = %d,%v want %d,%v", i, k, gv, gok, wv, wok)
			}
		default:
			v := rng.Int63()
			model[k] = v
			tr.Put(k, v)
		}
	}
	if tr.Len() != len(model) {
		t.Fatalf("Len = %d, model %d", tr.Len(), len(model))
	}
	want := make([]int64, 0, len(model))
	for k := range model {
		want = append(want, k)
	}
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	got := tr.Keys()
	if len(got) != len(want) {
		t.Fatalf("scan %d keys, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("key[%d] = %d want %d", i, got[i], want[i])
		}
	}
}

func TestConcurrentDisjoint(t *testing.T) {
	tr := New(Config{LeafCapacity: 64, InnerCapacity: 16, ConsolidateAt: 6})
	const workers = 8
	const per = 5_000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := int64(w * per)
			for i := int64(0); i < per; i++ {
				tr.Put(base+i, base+i)
				if v, ok := tr.Get(base + i); !ok || v != base+i {
					t.Errorf("read-own-write failed at %d", base+i)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if tr.Len() != workers*per {
		t.Fatalf("Len = %d", tr.Len())
	}
	prev := int64(-1)
	tr.ScanAll(func(k, _ int64) bool {
		if k != prev+1 {
			t.Errorf("gap after %d", prev)
			return false
		}
		prev = k
		return true
	})
	if prev != workers*per-1 {
		t.Fatalf("scan ended at %d", prev)
	}
}

func TestConcurrentMixedWithScans(t *testing.T) {
	tr := New(Config{LeafCapacity: 64, InnerCapacity: 16, ConsolidateAt: 6})
	stop := make(chan struct{})
	var scanners sync.WaitGroup
	for s := 0; s < 2; s++ {
		scanners.Add(1)
		go func() {
			defer scanners.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				prev := int64(-1 << 62)
				tr.ScanAll(func(k, _ int64) bool {
					if k <= prev {
						t.Errorf("scan order violation: %d after %d", k, prev)
						return false
					}
					prev = k
					return true
				})
			}
		}()
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 20_000; i++ {
				k := int64(rng.Intn(5_000))
				switch rng.Intn(4) {
				case 0:
					tr.Delete(k)
				case 1:
					tr.Get(k)
				default:
					tr.Put(k, k)
				}
			}
		}(int64(w))
	}
	wg.Wait()
	close(stop)
	scanners.Wait()
}

func TestConcurrentSameKeyUpserts(t *testing.T) {
	tr := newTest()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 10_000; i++ {
				tr.Put(42, int64(w))
			}
		}(w)
	}
	wg.Wait()
	if tr.Len() != 1 {
		t.Fatalf("Len = %d, want 1", tr.Len())
	}
	if v, ok := tr.Get(42); !ok || v < 0 || v > 7 {
		t.Fatalf("Get(42) = %d,%v", v, ok)
	}
}
