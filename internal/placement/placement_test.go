package placement

import (
	"math"
	"testing"
)

func TestStraw2Validation(t *testing.T) {
	for _, bad := range [][]float64{nil, {}, {0}, {1, -1}, {1, math.NaN()}, {math.Inf(1)}} {
		if _, err := NewStraw2(bad); err == nil {
			t.Fatalf("NewStraw2(%v) accepted invalid weights", bad)
		}
	}
	if _, err := NewStraw2([]float64{1, 2, 0.5}); err != nil {
		t.Fatal(err)
	}
}

func TestStraw2DistributionFollowsWeights(t *testing.T) {
	weights := []float64{1, 1, 2, 4}
	p, err := NewStraw2(weights)
	if err != nil {
		t.Fatal(err)
	}
	const n = 200_000
	counts := make([]int, p.Shards())
	for k := int64(0); k < n; k++ {
		counts[p.Shard(k*2654435761)]++ // scattered keys
	}
	var total float64
	for _, w := range weights {
		total += w
	}
	for i, w := range weights {
		want := float64(n) * w / total
		got := float64(counts[i])
		if math.Abs(got-want)/want > 0.05 {
			t.Fatalf("shard %d (weight %v) received %v keys, want ~%v (counts %v)", i, w, got, want, counts)
		}
	}
}

// TestStraw2Deterministic pins a handful of placements: the manifest records
// only the weights, so the mapping itself must never drift between versions
// or the store would silently re-home keys on reopen.
func TestStraw2Deterministic(t *testing.T) {
	p, err := NewStraw2([]float64{1, 1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	for k := int64(-1 << 40); k < -1<<40+1000; k++ {
		if a, b := p.Shard(k), p.Shard(k); a != b {
			t.Fatalf("placement of %d not deterministic: %d vs %d", k, a, b)
		}
	}
}

// TestStraw2StableUnderGrowth is the straw2 selling point: adding a shard
// moves keys only onto the new shard, never between the old ones.
func TestStraw2StableUnderGrowth(t *testing.T) {
	old, err := NewStraw2([]float64{1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	grown, err := NewStraw2([]float64{1, 1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	const n = 100_000
	moved := 0
	for k := int64(0); k < n; k++ {
		key := k*7919 - n/2
		a, b := old.Shard(key), grown.Shard(key)
		if a != b {
			if b != 3 {
				t.Fatalf("key %d moved between old shards %d -> %d when shard 3 was added", key, a, b)
			}
			moved++
		}
	}
	// Expect ~1/4 of keys to move to the new equal-weight shard.
	if f := float64(moved) / n; f < 0.20 || f > 0.30 {
		t.Fatalf("adding a 4th equal shard moved %.1f%% of keys, want ~25%%", f*100)
	}
}

func TestRangeValidationAndLookup(t *testing.T) {
	if _, err := NewRange([]int64{10, 10}); err == nil {
		t.Fatal("NewRange accepted non-increasing splits")
	}
	if _, err := NewRange([]int64{10, 5}); err == nil {
		t.Fatal("NewRange accepted decreasing splits")
	}
	r, err := NewRange([]int64{-100, 0, 100})
	if err != nil {
		t.Fatal(err)
	}
	if r.Shards() != 4 {
		t.Fatalf("Shards() = %d, want 4", r.Shards())
	}
	cases := map[int64]int{
		math.MinInt64: 0, -101: 0,
		-100: 1, -1: 1,
		0: 2, 99: 2,
		100: 3, math.MaxInt64: 3,
	}
	for k, want := range cases {
		if got := r.Shard(k); got != want {
			t.Fatalf("Shard(%d) = %d, want %d", k, got, want)
		}
	}
	single, err := NewRange(nil)
	if err != nil {
		t.Fatal(err)
	}
	if single.Shards() != 1 || single.Shard(42) != 0 {
		t.Fatal("empty split list must be a single all-owning shard")
	}
}

// TestRangeShardOrderIsKeyOrder pins the property the sharded scan relies on
// to skip the k-way merge: lower shard index means strictly lower keys.
func TestRangeShardOrderIsKeyOrder(t *testing.T) {
	r, err := NewRange([]int64{0, 1000})
	if err != nil {
		t.Fatal(err)
	}
	prev := -1
	for k := int64(-2000); k < 3000; k += 17 {
		s := r.Shard(k)
		if s < prev {
			t.Fatalf("shard index decreased with ascending keys at key %d", k)
		}
		prev = s
	}
}

func BenchmarkStraw2Shard8(b *testing.B) {
	p, _ := NewStraw2([]float64{1, 1, 1, 1, 1, 1, 1, 1})
	for i := 0; i < b.N; i++ {
		p.Shard(int64(i))
	}
}
