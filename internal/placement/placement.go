// Package placement maps keys to shards for the sharded store front
// (pmago.Sharded). Two strategies are provided:
//
//   - Straw2 is CRUSH-style weighted placement: every shard draws a
//     pseudo-random "straw" for the key, scaled by the shard's weight, and
//     the longest straw wins. Placement is stateless (no directory to keep
//     consistent), spreads any key distribution uniformly in proportion to
//     the weights, and is stable under reconfiguration: adding a shard or
//     raising one weight only moves keys *onto* the changed shard — draws
//     for the untouched shards are unchanged, so no key migrates between
//     two old shards.
//   - Range partitions the key space along explicit split points, so each
//     shard owns one contiguous key range. Cross-shard scans then need no
//     merge (shard order is key order) at the price of manual split
//     placement and exposure to skewed key distributions.
//
// Both are deterministic pure functions of (key, configuration); the
// sharded store records the configuration in its manifest and refuses to
// reopen under a different one, since that would silently re-home keys.
package placement

import (
	"fmt"
	"math"
	"sort"
)

// Placement deterministically assigns every key to a shard in [0, Shards()).
// Implementations are immutable and safe for concurrent use.
type Placement interface {
	// Shard returns the owning shard of key.
	Shard(key int64) int
	// Shards returns the number of shards.
	Shards() int
	// Ordered reports whether shard order equals key order — every key on
	// shard i sorts before every key on shard i+1 — which lets a cross-shard
	// scan walk the shards sequentially instead of merging their streams.
	Ordered() bool
}

// Straw2 is weighted pseudo-random placement (see the package comment).
type Straw2 struct {
	weights []float64
}

// NewStraw2 builds a straw2 placement over len(weights) shards; weights must
// be positive and are relative (a shard with weight 2 receives about twice
// the keys of a shard with weight 1).
func NewStraw2(weights []float64) (*Straw2, error) {
	if len(weights) < 1 {
		return nil, fmt.Errorf("placement: straw2 needs at least one shard")
	}
	for i, w := range weights {
		if !(w > 0) || math.IsInf(w, 1) {
			return nil, fmt.Errorf("placement: straw2 weight[%d] = %v must be a positive finite number", i, w)
		}
	}
	ws := make([]float64, len(weights))
	copy(ws, weights)
	return &Straw2{weights: ws}, nil
}

// Weights returns a copy of the shard weights.
func (s *Straw2) Weights() []float64 {
	ws := make([]float64, len(s.weights))
	copy(ws, s.weights)
	return ws
}

// Shards implements Placement.
func (s *Straw2) Shards() int { return len(s.weights) }

// Ordered implements Placement: straw2 scatters keys, so shard order says
// nothing about key order.
func (s *Straw2) Ordered() bool { return false }

// Shard implements Placement: every shard draws
//
//	ln(u/65536) / weight,  u = 16-bit hash of (key, shard) in (0, 65536]
//
// and the largest draw wins — the straw2 form, which makes the win
// probability of shard i exactly weight_i / Σ weights and keeps each
// shard's draw independent of every other shard's existence (the stability
// property). The 16-bit mantissa mirrors CRUSH; ties at equal draws break
// toward the lower shard index, deterministically.
func (s *Straw2) Shard(key int64) int {
	best := 0
	bestDraw := math.Inf(-1)
	for i, w := range s.weights {
		u := float64(straw2hash(uint64(key), uint64(i))&0xffff) + 1
		draw := math.Log(u/65536.0) / w // <= 0; heavier weight pulls toward 0
		if draw > bestDraw {
			best, bestDraw = i, draw
		}
	}
	return best
}

// straw2hash mixes key and shard id into a 64-bit hash (splitmix64 finisher
// over a Weyl-sequence offset per shard). Only the low 16 bits feed the
// draw; the full-width mix keeps adjacent keys and shard ids uncorrelated.
func straw2hash(key, shard uint64) uint64 {
	x := key + (shard+1)*0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Range is contiguous range partitioning (see the package comment).
type Range struct {
	splits []int64
}

// NewRange builds a range placement over len(splits)+1 shards: shard i owns
// keys below splits[i] (and at or above splits[i-1]); the last shard owns
// everything from the final split up. Splits must be strictly increasing.
// An empty split list is a single shard owning the whole key space.
func NewRange(splits []int64) (*Range, error) {
	for i := 1; i < len(splits); i++ {
		if splits[i] <= splits[i-1] {
			return nil, fmt.Errorf("placement: range splits must be strictly increasing: splits[%d] = %d after %d",
				i, splits[i], splits[i-1])
		}
	}
	sp := make([]int64, len(splits))
	copy(sp, splits)
	return &Range{splits: sp}, nil
}

// Splits returns a copy of the split points.
func (r *Range) Splits() []int64 {
	sp := make([]int64, len(r.splits))
	copy(sp, r.splits)
	return sp
}

// Shards implements Placement.
func (r *Range) Shards() int { return len(r.splits) + 1 }

// Ordered implements Placement: shard i's keys all sort before shard i+1's.
func (r *Range) Ordered() bool { return true }

// Shard implements Placement by binary search over the split points.
func (r *Range) Shard(key int64) int {
	return sort.Search(len(r.splits), func(i int) bool { return key < r.splits[i] })
}
