package abtree

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
)

func newTest() *Tree { return New(Config{LeafCapacity: 16}) }

func TestBasic(t *testing.T) {
	tr := newTest()
	if tr.Len() != 0 {
		t.Fatal("not empty")
	}
	tr.Put(5, 50)
	tr.Put(3, 30)
	tr.Put(9, 90)
	if v, ok := tr.Get(3); !ok || v != 30 {
		t.Fatalf("Get(3) = %d,%v", v, ok)
	}
	if _, ok := tr.Get(4); ok {
		t.Fatal("absent key found")
	}
	tr.Put(3, 31)
	if v, _ := tr.Get(3); v != 31 {
		t.Fatal("upsert failed")
	}
	if tr.Len() != 3 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if !tr.Delete(3) || tr.Delete(3) {
		t.Fatal("delete semantics wrong")
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSplitsAndOrder(t *testing.T) {
	tr := newTest()
	const n = 10_000
	for i := int64(n); i >= 1; i-- {
		tr.Put(i, i*2)
	}
	keys := tr.Keys()
	if len(keys) != n {
		t.Fatalf("%d keys", len(keys))
	}
	for i, k := range keys {
		if k != int64(i+1) {
			t.Fatalf("keys[%d] = %d", i, k)
		}
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDeleteMerges(t *testing.T) {
	tr := newTest()
	const n = 5_000
	for i := int64(0); i < n; i++ {
		tr.Put(i, i)
	}
	order := rand.New(rand.NewSource(2)).Perm(n)
	for _, i := range order {
		if !tr.Delete(int64(i)) {
			t.Fatalf("Delete(%d) failed", i)
		}
	}
	if tr.Len() != 0 {
		t.Fatalf("Len = %d", tr.Len())
	}
	// Chain should have collapsed to few leaves.
	count := 0
	for l := tr.head; l != nil; l = l.next {
		count++
	}
	if count > 4 {
		t.Fatalf("%d leaves remain after deleting everything", count)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	tr.Put(1, 1)
	if v, ok := tr.Get(1); !ok || v != 1 {
		t.Fatal("reuse failed")
	}
}

func TestScanRange(t *testing.T) {
	tr := newTest()
	for i := int64(0); i < 1000; i++ {
		tr.Put(i*10, i)
	}
	var got []int64
	tr.Scan(95, 205, func(k, _ int64) bool { got = append(got, k); return true })
	want := []int64{100, 110, 120, 130, 140, 150, 160, 170, 180, 190, 200}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("scan[%d] = %d", i, got[i])
		}
	}
	count := 0
	tr.ScanAll(func(_, _ int64) bool { count++; return count < 5 })
	if count != 5 {
		t.Fatalf("early stop visited %d", count)
	}
}

func TestModelRandom(t *testing.T) {
	tr := newTest()
	model := map[int64]int64{}
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 60_000; i++ {
		k := int64(rng.Intn(4000)) - 2000
		switch rng.Intn(10) {
		case 0, 1, 2:
			want := false
			if _, ok := model[k]; ok {
				want = true
				delete(model, k)
			}
			if got := tr.Delete(k); got != want {
				t.Fatalf("Delete(%d) = %v, want %v", k, got, want)
			}
		case 3:
			wv, wok := model[k]
			gv, gok := tr.Get(k)
			if gok != wok || (gok && gv != wv) {
				t.Fatalf("Get(%d) mismatch", k)
			}
		default:
			v := rng.Int63()
			model[k] = v
			tr.Put(k, v)
		}
	}
	if tr.Len() != len(model) {
		t.Fatalf("Len = %d, model %d", tr.Len(), len(model))
	}
	want := make([]int64, 0, len(model))
	for k := range model {
		want = append(want, k)
	}
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	got := tr.Keys()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("key[%d] = %d want %d", i, got[i], want[i])
		}
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentDisjoint(t *testing.T) {
	tr := New(Config{LeafCapacity: 32})
	const workers = 8
	const per = 5_000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := int64(w * per)
			for i := int64(0); i < per; i++ {
				tr.Put(base+i, base+i)
				if v, ok := tr.Get(base + i); !ok || v != base+i {
					t.Errorf("read-own-write failed at %d", base+i)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if tr.Len() != workers*per {
		t.Fatalf("Len = %d", tr.Len())
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentMixedWithScans(t *testing.T) {
	tr := New(Config{LeafCapacity: 32})
	stop := make(chan struct{})
	var scanners sync.WaitGroup
	for s := 0; s < 2; s++ {
		scanners.Add(1)
		go func() {
			defer scanners.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				prev := int64(-1 << 62)
				tr.ScanAll(func(k, _ int64) bool {
					if k <= prev {
						t.Errorf("scan order violation: %d after %d", k, prev)
						return false
					}
					prev = k
					return true
				})
			}
		}()
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 20_000; i++ {
				k := int64(rng.Intn(5_000))
				switch rng.Intn(4) {
				case 0:
					tr.Delete(k)
				case 1:
					tr.Get(k)
				default:
					tr.Put(k, k)
				}
			}
		}(int64(w))
	}
	wg.Wait()
	close(stop)
	scanners.Wait()
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestLeafCapacityAblation(t *testing.T) {
	// The Section 4.1 ablation uses 512-pair (8 KiB) leaves.
	tr := New(Config{LeafCapacity: 512})
	for i := int64(0); i < 5_000; i++ {
		tr.Put(i, i)
	}
	leaves := 0
	for l := tr.head; l != nil; l = l.next {
		leaves++
	}
	if leaves > 5000/256+2 {
		t.Fatalf("too many leaves (%d) for 512-capacity config", leaves)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}
