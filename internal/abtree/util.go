package abtree

import "fmt"

func errf(format string, args ...any) error {
	return fmt.Errorf("abtree: "+format, args...)
}
