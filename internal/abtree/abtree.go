// Package abtree implements the ART + B+-tree baseline of Section 4: the
// elements live in the sorted leaves of a custom B+-tree (4 KiB leaves by
// default, linked for range scans, protected by conventional lock coupling),
// while an Adaptive Radix Tree with optimistic lock coupling serves as the
// secondary index mapping each leaf's minimum key to the leaf.
//
// The paper issues explicit prefetch instructions when scanning the leaf
// chain; Go has no portable prefetch intrinsic, so that constant-factor
// optimisation is omitted (see DESIGN.md, Substitutions).
package abtree

import (
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"pmago/internal/art"
)

// search returns the position of the first key >= k.
func search(keys []int64, k int64) int {
	return sort.Search(len(keys), func(i int) bool { return keys[i] >= k })
}

// DefaultLeafCapacity is 256 pairs of 16 bytes = 4 KiB, the paper's default
// leaf size. The Section 4.1 ablation doubles it to 512 (8 KiB).
const DefaultLeafCapacity = 256

const (
	keyMin = math.MinInt64
	keyMax = math.MaxInt64
)

// Config tunes the tree.
type Config struct {
	// LeafCapacity is the number of key/value pairs per leaf.
	LeafCapacity int
}

// leaf is one B+-tree leaf: a sorted run of pairs plus the fence interval
// [lo, hi] it is responsible for. next links the leaf chain; it only changes
// under the leaf's write lock, and a reader holding the lock (shared or
// exclusive) is guaranteed next is alive, because merges lock both sides.
type leaf struct {
	mu     sync.RWMutex
	lo, hi int64
	keys   []int64
	vals   []int64
	next   *leaf
	dead   bool
}

// Tree is the concurrent ART + B+-tree store. All methods are safe for
// concurrent use.
type Tree struct {
	cap  int
	idx  *art.Tree[leaf]
	head *leaf // first leaf (lo = keyMin); never dies
	size atomic.Int64
}

// ukey maps int64 keys to uint64 preserving order (ART compares unsigned).
func ukey(k int64) uint64 { return uint64(k) ^ (1 << 63) }

// New returns an empty tree.
func New(cfg Config) *Tree {
	if cfg.LeafCapacity <= 1 {
		cfg.LeafCapacity = DefaultLeafCapacity
	}
	t := &Tree{cap: cfg.LeafCapacity, idx: art.New[leaf]()}
	t.head = &leaf{lo: keyMin, hi: keyMax}
	t.idx.Insert(ukey(keyMin), t.head)
	return t
}

// Len returns the number of stored pairs.
func (t *Tree) Len() int { return int(t.size.Load()) }

// findLeaf routes k through ART and locks the owning leaf in the requested
// mode, retrying across splits, merges and borrows.
func (t *Tree) findLeaf(k int64, write bool) *leaf {
	for i := 0; ; i++ {
		l, ok := t.idx.Floor(ukey(k))
		if !ok {
			// Transient window while a borrow republishes a leaf's
			// separator; the head leaf always routes eventually.
			runtime.Gosched()
			continue
		}
		if write {
			l.mu.Lock()
		} else {
			l.mu.RLock()
		}
		if !l.dead && k >= l.lo && k <= l.hi {
			return l
		}
		if write {
			l.mu.Unlock()
		} else {
			l.mu.RUnlock()
		}
		if i > 32 {
			runtime.Gosched()
		}
	}
}

// Get returns the value stored under k.
func (t *Tree) Get(k int64) (int64, bool) {
	l := t.findLeaf(k, false)
	i := search(l.keys, k)
	var v int64
	ok := i < len(l.keys) && l.keys[i] == k
	if ok {
		v = l.vals[i]
	}
	l.mu.RUnlock()
	return v, ok
}

// Put inserts or replaces k/v.
func (t *Tree) Put(k, v int64) {
	if k == keyMin || k == keyMax {
		panic("abtree: cannot store sentinel key")
	}
	l := t.findLeaf(k, true)
	i := search(l.keys, k)
	if i < len(l.keys) && l.keys[i] == k {
		l.vals[i] = v
		l.mu.Unlock()
		return
	}
	l.keys = append(l.keys, 0)
	l.vals = append(l.vals, 0)
	copy(l.keys[i+1:], l.keys[i:])
	copy(l.vals[i+1:], l.vals[i:])
	l.keys[i] = k
	l.vals[i] = v
	t.size.Add(1)
	if len(l.keys) > t.cap {
		t.split(l)
	}
	l.mu.Unlock()
}

// split halves the (over-full, write-locked) leaf, publishing the right half
// in ART before truncating the left, so routed readers always find the keys.
func (t *Tree) split(l *leaf) {
	mid := len(l.keys) / 2
	right := &leaf{
		lo:   l.keys[mid],
		hi:   l.hi,
		keys: append(make([]int64, 0, t.cap+1), l.keys[mid:]...),
		vals: append(make([]int64, 0, t.cap+1), l.vals[mid:]...),
		next: l.next,
	}
	t.idx.Insert(ukey(right.lo), right)
	l.keys = l.keys[:mid]
	l.vals = l.vals[:mid]
	l.hi = right.lo - 1
	l.next = right
}

// Delete removes k, reporting whether it was present.
func (t *Tree) Delete(k int64) bool {
	l := t.findLeaf(k, true)
	i := search(l.keys, k)
	if i == len(l.keys) || l.keys[i] != k {
		l.mu.Unlock()
		return false
	}
	l.keys = append(l.keys[:i], l.keys[i+1:]...)
	l.vals = append(l.vals[:i], l.vals[i+1:]...)
	t.size.Add(-1)
	if len(l.keys) < t.cap/4 {
		t.rebalanceLeaf(l)
	}
	l.mu.Unlock()
	return true
}

// rebalanceLeaf merges the underfull leaf with its successor or borrows from
// it. Lock order is strictly left-to-right (the same order scans couple
// locks in), so there is no deadlock. The caller holds l's write lock.
func (t *Tree) rebalanceLeaf(l *leaf) {
	r := l.next
	if r == nil {
		return // rightmost leaf may stay underfull
	}
	r.mu.Lock()
	if len(l.keys)+len(r.keys) <= t.cap {
		// Merge r into l.
		l.keys = append(l.keys, r.keys...)
		l.vals = append(l.vals, r.vals...)
		l.hi = r.hi
		l.next = r.next
		oldLo := r.lo
		r.dead = true
		r.mu.Unlock()
		t.idx.Delete(ukey(oldLo))
		return
	}
	if len(r.keys) > len(l.keys)+1 {
		// Borrow the front of r: move keys, then republish r's
		// separator (delete + insert leaves a tiny routing window that
		// findLeaf absorbs by retrying).
		m := (len(r.keys) - len(l.keys)) / 2
		l.keys = append(l.keys, r.keys[:m]...)
		l.vals = append(l.vals, r.vals[:m]...)
		oldLo := r.lo
		r.keys = append(make([]int64, 0, t.cap+1), r.keys[m:]...)
		r.vals = append(make([]int64, 0, t.cap+1), r.vals[m:]...)
		r.lo = r.keys[0]
		l.hi = r.lo - 1
		newLo := r.lo
		r.mu.Unlock()
		t.idx.Delete(ukey(oldLo))
		t.idx.Insert(ukey(newLo), r)
		return
	}
	r.mu.Unlock()
}

// Scan visits all pairs with lo <= key <= hi in ascending order, stopping
// when fn returns false. Leaf locks are coupled left-to-right.
func (t *Tree) Scan(lo, hi int64, fn func(k, v int64) bool) {
	if lo > hi {
		return
	}
	l := t.findLeaf(lo, false)
	i := search(l.keys, lo)
	for {
		for ; i < len(l.keys); i++ {
			if l.keys[i] > hi {
				l.mu.RUnlock()
				return
			}
			if !fn(l.keys[i], l.vals[i]) {
				l.mu.RUnlock()
				return
			}
		}
		if l.hi >= hi || l.next == nil {
			l.mu.RUnlock()
			return
		}
		nxt := l.next
		nxt.mu.RLock() // coupling: next cannot die while we hold l
		l.mu.RUnlock()
		l = nxt
		i = 0
	}
}

// ScanAll visits every pair in ascending key order.
func (t *Tree) ScanAll(fn func(k, v int64) bool) {
	t.Scan(keyMin+1, keyMax-1, fn)
}

// Keys returns all keys in order (test helper).
func (t *Tree) Keys() []int64 {
	out := make([]int64, 0, t.Len())
	t.ScanAll(func(k, _ int64) bool { out = append(out, k); return true })
	return out
}

// Validate checks leaf-chain invariants (sorted keys, fence tiling, index
// agreement). Quiescent use only.
func (t *Tree) Validate() error {
	var prevHi int64 // only checked from the second leaf onward
	total := 0
	for l := t.head; l != nil; l = l.next {
		if l.dead {
			return errf("dead leaf in chain at lo=%d", l.lo)
		}
		if l == t.head {
			if l.lo != keyMin {
				return errf("head leaf lo = %d", l.lo)
			}
		} else if l.lo != prevHi+1 {
			return errf("leaf lo %d does not tile with previous hi %d", l.lo, prevHi)
		}
		for i, k := range l.keys {
			if k < l.lo || k > l.hi {
				return errf("key %d outside leaf fences [%d,%d]", k, l.lo, l.hi)
			}
			if i > 0 && l.keys[i-1] >= k {
				return errf("unsorted leaf at key %d", k)
			}
		}
		total += len(l.keys)
		prevHi = l.hi
	}
	if prevHi != keyMax {
		return errf("last leaf hi = %d", prevHi)
	}
	if total != t.Len() {
		return errf("leaf sum %d != size %d", total, t.Len())
	}
	return nil
}
