// Package graph implements the dynamic-graph layer of Section 6: a CRS-like
// representation whose edge array is the concurrent PMA. Every edge (src,
// dst) is one element keyed src<<32|dst, so a vertex's outgoing edges are
// contiguous in key order and a neighbourhood expansion is one range scan —
// the O(1)-per-edge navigation of dense CRS, on an updatable structure. The
// vertex set lives in a second sparse array (one of the options the paper
// sketches), keyed by vertex id.
//
// The paper's variant maintains explicit offsets V[v] into the edge array
// under the corresponding gate's latch; with the keyed representation the
// offset maintenance disappears (the entry point is found through the static
// index in O(log_B E)) while navigation inside the adjacency stays
// sequential, which preserves the property the design argues for.
package graph

import (
	"fmt"

	"pmago/internal/core"
)

// MaxVertex bounds vertex identifiers: packed edge keys must stay positive
// int64s.
const MaxVertex = 1<<31 - 1

// Graph is a concurrent directed graph with int64 edge weights. All methods
// are safe for concurrent use. Close releases the underlying PMAs' service
// goroutines.
type Graph struct {
	edges *core.PMA
	verts *core.PMA
}

// New creates an empty graph; cfg configures the underlying PMAs (use
// core.DefaultConfig for the paper's setup).
func New(cfg core.Config) (*Graph, error) {
	e, err := core.New(cfg)
	if err != nil {
		return nil, err
	}
	v, err := core.New(cfg)
	if err != nil {
		e.Close()
		return nil, err
	}
	return &Graph{edges: e, verts: v}, nil
}

// Close stops the service goroutines.
func (g *Graph) Close() {
	g.edges.Close()
	g.verts.Close()
}

func edgeKey(src, dst uint32) int64 {
	return int64(src)<<32 | int64(dst)
}

func checkVertex(v uint32) {
	if v > MaxVertex {
		panic(fmt.Sprintf("graph: vertex id %d exceeds MaxVertex", v))
	}
}

// AddVertex registers a vertex (edges register their endpoints
// automatically).
func (g *Graph) AddVertex(v uint32) {
	checkVertex(v)
	g.verts.Put(int64(v), 0)
}

// HasVertex reports whether v is registered.
func (g *Graph) HasVertex(v uint32) bool {
	_, ok := g.verts.Get(int64(v))
	return ok
}

// AddEdge inserts or updates the directed edge src -> dst.
func (g *Graph) AddEdge(src, dst uint32, weight int64) {
	checkVertex(src)
	checkVertex(dst)
	g.verts.Put(int64(src), 0)
	g.verts.Put(int64(dst), 0)
	g.edges.Put(edgeKey(src, dst), weight)
}

// DeleteEdge removes the edge, reporting whether it was present (the
// endpoints stay registered).
func (g *Graph) DeleteEdge(src, dst uint32) bool {
	return g.edges.Delete(edgeKey(src, dst))
}

// Edge returns the weight of src -> dst.
func (g *Graph) Edge(src, dst uint32) (int64, bool) {
	return g.edges.Get(edgeKey(src, dst))
}

// Neighbors visits dst and weight for every outgoing edge of src in
// ascending dst order, until fn returns false. This is one PMA range scan:
// sequential memory traversal within the adjacency.
func (g *Graph) Neighbors(src uint32, fn func(dst uint32, weight int64) bool) {
	lo := edgeKey(src, 0)
	hi := edgeKey(src, ^uint32(0))
	g.edges.Scan(lo, hi, func(k, w int64) bool {
		return fn(uint32(k&0xFFFFFFFF), w)
	})
}

// OutDegree counts src's outgoing edges.
func (g *Graph) OutDegree(src uint32) int {
	n := 0
	g.Neighbors(src, func(uint32, int64) bool { n++; return true })
	return n
}

// EdgeCount returns the number of edges (call Flush first for exactness
// under asynchronous updates).
func (g *Graph) EdgeCount() int { return g.edges.Len() }

// VertexCount returns the number of registered vertices.
func (g *Graph) VertexCount() int { return g.verts.Len() }

// Vertices visits every registered vertex in ascending id order.
func (g *Graph) Vertices(fn func(v uint32) bool) {
	g.verts.ScanAll(func(k, _ int64) bool { return fn(uint32(k)) })
}

// Edges visits every edge in (src, dst) order.
func (g *Graph) Edges(fn func(src, dst uint32, weight int64) bool) {
	g.edges.ScanAll(func(k, w int64) bool {
		return fn(uint32(k>>32), uint32(k&0xFFFFFFFF), w)
	})
}

// Flush applies pending asynchronous updates on both arrays.
func (g *Graph) Flush() {
	g.edges.Flush()
	g.verts.Flush()
}

// Stats returns the edge array's structural counters.
func (g *Graph) Stats() core.Stats { return g.edges.Stats() }

// BFS returns the hop distance from src for every reachable vertex.
func (g *Graph) BFS(src uint32) map[uint32]int {
	dist := map[uint32]int{src: 0}
	frontier := []uint32{src}
	for len(frontier) > 0 {
		var next []uint32
		for _, u := range frontier {
			du := dist[u]
			g.Neighbors(u, func(v uint32, _ int64) bool {
				if _, seen := dist[v]; !seen {
					dist[v] = du + 1
					next = append(next, v)
				}
				return true
			})
		}
		frontier = next
	}
	return dist
}

// PageRank runs the given number of power iterations with damping d over
// the current snapshot of the graph, scanning the edge array once per
// iteration (the analytics pattern the paper targets: full sequential scans
// concurrent with updates).
func (g *Graph) PageRank(iters int, d float64) map[uint32]float64 {
	var verts []uint32
	g.Vertices(func(v uint32) bool { verts = append(verts, v); return true })
	n := len(verts)
	if n == 0 {
		return nil
	}
	rank := make(map[uint32]float64, n)
	deg := make(map[uint32]int, n)
	for _, v := range verts {
		rank[v] = 1 / float64(n)
	}
	g.Edges(func(src, _ uint32, _ int64) bool {
		deg[src]++
		return true
	})
	for it := 0; it < iters; it++ {
		contrib := make(map[uint32]float64, n)
		dangling := 0.0
		for _, v := range verts {
			if deg[v] == 0 {
				dangling += rank[v]
			}
		}
		// One sequential pass over the whole edge array.
		g.Edges(func(src, dst uint32, _ int64) bool {
			contrib[dst] += rank[src] / float64(deg[src])
			return true
		})
		base := (1-d)/float64(n) + d*dangling/float64(n)
		next := make(map[uint32]float64, n)
		for _, v := range verts {
			next[v] = base + d*contrib[v]
		}
		rank = next
	}
	return rank
}
