package graph

import (
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"

	"pmago/internal/core"
)

func testCfg() core.Config {
	cfg := core.DefaultConfig()
	cfg.SegmentCapacity = 16
	cfg.SegmentsPerGate = 2
	cfg.TDelay = 0
	cfg.Workers = 2
	cfg.GCInterval = time.Millisecond
	return cfg
}

func newTest(t *testing.T) *Graph {
	t.Helper()
	g, err := New(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(g.Close)
	return g
}

func TestEdgesAndVertices(t *testing.T) {
	g := newTest(t)
	g.AddEdge(1, 2, 10)
	g.AddEdge(1, 3, 11)
	g.AddEdge(2, 3, 12)
	g.Flush()
	if g.EdgeCount() != 3 {
		t.Fatalf("EdgeCount = %d", g.EdgeCount())
	}
	if g.VertexCount() != 3 {
		t.Fatalf("VertexCount = %d", g.VertexCount())
	}
	if w, ok := g.Edge(1, 3); !ok || w != 11 {
		t.Fatalf("Edge(1,3) = %d,%v", w, ok)
	}
	if _, ok := g.Edge(3, 1); ok {
		t.Fatal("phantom reverse edge")
	}
	if !g.DeleteEdge(1, 3) || g.DeleteEdge(1, 3) {
		t.Fatal("delete semantics wrong")
	}
	g.Flush()
	if g.EdgeCount() != 2 {
		t.Fatalf("EdgeCount after delete = %d", g.EdgeCount())
	}
	if !g.HasVertex(3) {
		t.Fatal("vertex 3 lost after edge delete")
	}
}

func TestNeighborsSortedAndScoped(t *testing.T) {
	g := newTest(t)
	// Adjacent sources with interleaved insertion order.
	for _, dst := range []uint32{9, 3, 7, 1, 5} {
		g.AddEdge(10, dst, int64(dst))
	}
	g.AddEdge(9, 100, 1)  // predecessor source
	g.AddEdge(11, 200, 1) // successor source
	g.Flush()
	var got []uint32
	g.Neighbors(10, func(d uint32, w int64) bool {
		if w != int64(d) {
			t.Fatalf("weight mismatch at %d", d)
		}
		got = append(got, d)
		return true
	})
	want := []uint32{1, 3, 5, 7, 9}
	if len(got) != len(want) {
		t.Fatalf("neighbors = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("neighbors[%d] = %d", i, got[i])
		}
	}
	if g.OutDegree(10) != 5 || g.OutDegree(9) != 1 || g.OutDegree(42) != 0 {
		t.Fatal("degrees wrong")
	}
}

func TestEdgeKeyBoundaries(t *testing.T) {
	g := newTest(t)
	g.AddEdge(0, 0, 1)
	g.AddEdge(0, MaxVertex, 2)
	g.AddEdge(MaxVertex, MaxVertex, 3)
	g.Flush()
	if w, ok := g.Edge(0, MaxVertex); !ok || w != 2 {
		t.Fatal("max-dst edge lost")
	}
	if w, ok := g.Edge(MaxVertex, MaxVertex); !ok || w != 3 {
		t.Fatal("max-vertex edge lost")
	}
	count := 0
	g.Neighbors(0, func(uint32, int64) bool { count++; return true })
	if count != 2 {
		t.Fatalf("Neighbors(0) = %d edges", count)
	}
}

func TestVertexLimitPanics(t *testing.T) {
	g := newTest(t)
	defer func() {
		if recover() == nil {
			t.Fatal("oversized vertex did not panic")
		}
	}()
	g.AddEdge(MaxVertex+1, 0, 1)
}

func TestBFS(t *testing.T) {
	g := newTest(t)
	// 0 -> 1 -> 2 -> 3, plus shortcut 0 -> 2, island 9.
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	g.AddEdge(2, 3, 1)
	g.AddEdge(0, 2, 1)
	g.AddVertex(9)
	g.Flush()
	dist := g.BFS(0)
	want := map[uint32]int{0: 0, 1: 1, 2: 1, 3: 2}
	if len(dist) != len(want) {
		t.Fatalf("BFS reached %v", dist)
	}
	for v, d := range want {
		if dist[v] != d {
			t.Fatalf("dist[%d] = %d, want %d", v, dist[v], d)
		}
	}
}

func TestPageRankStar(t *testing.T) {
	g := newTest(t)
	// Hub 0 pointed at by 1..5: PageRank must rank 0 highest.
	for v := uint32(1); v <= 5; v++ {
		g.AddEdge(v, 0, 1)
	}
	g.AddEdge(0, 1, 1)
	g.Flush()
	pr := g.PageRank(20, 0.85)
	if len(pr) != 6 {
		t.Fatalf("%d ranks", len(pr))
	}
	for v := uint32(1); v <= 5; v++ {
		if pr[0] <= pr[v] {
			t.Fatalf("hub rank %f not above spoke %d (%f)", pr[0], v, pr[v])
		}
	}
	sum := 0.0
	for _, r := range pr {
		sum += r
	}
	if math.Abs(sum-1) > 0.01 {
		t.Fatalf("ranks sum to %f", sum)
	}
}

func TestConcurrentUpdatesWithAnalytics(t *testing.T) {
	g := newTest(t)
	const vertices = 200
	stop := make(chan struct{})
	var analytics sync.WaitGroup
	analytics.Add(1)
	go func() {
		defer analytics.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			g.BFS(0)
			g.PageRank(2, 0.85)
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 5_000; i++ {
				src := uint32(rng.Intn(vertices))
				dst := uint32(rng.Intn(vertices))
				if rng.Intn(4) == 0 {
					g.DeleteEdge(src, dst)
				} else {
					g.AddEdge(src, dst, 1)
				}
			}
		}(int64(w))
	}
	wg.Wait()
	close(stop)
	analytics.Wait()
	g.Flush()
	// Every edge's endpoints must be registered vertices.
	ok := true
	g.Edges(func(src, dst uint32, _ int64) bool {
		if !g.HasVertex(src) || !g.HasVertex(dst) {
			ok = false
			return false
		}
		return true
	})
	if !ok {
		t.Fatal("edge with unregistered endpoint")
	}
}
