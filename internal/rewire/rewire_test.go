package rewire

import (
	"sync"
	"testing"
)

func TestGetReturnsCorrectSize(t *testing.T) {
	p := NewPool(128, 0)
	b := p.Get()
	if len(b.Keys) != 128 || len(b.Vals) != 128 {
		t.Fatalf("buffer size %d/%d, want 128/128", len(b.Keys), len(b.Vals))
	}
	if p.Slots() != 128 {
		t.Fatalf("Slots = %d", p.Slots())
	}
}

func TestReuse(t *testing.T) {
	p := NewPool(16, 0)
	b := p.Get()
	b.Keys[0] = 42
	p.Put(b)
	b2 := p.Get()
	if b2 != b {
		t.Fatal("buffer was not reused")
	}
	if p.Reuses() != 1 || p.Allocs() != 1 {
		t.Fatalf("reuses=%d allocs=%d, want 1/1", p.Reuses(), p.Allocs())
	}
}

func TestPutWrongSizeDropped(t *testing.T) {
	p := NewPool(16, 0)
	p.Put(&Buffer{Keys: make([]int64, 8), Vals: make([]int64, 8)})
	p.Put(nil)
	b := p.Get()
	if len(b.Keys) != 16 {
		t.Fatal("pool handed out a wrong-size buffer")
	}
	if p.Allocs() != 1 {
		t.Fatalf("allocs = %d, want 1 (wrong-size puts must be dropped)", p.Allocs())
	}
}

func TestMaxFreeBound(t *testing.T) {
	p := NewPool(4, 2)
	bufs := []*Buffer{p.Get(), p.Get(), p.Get(), p.Get()}
	for _, b := range bufs {
		p.Put(b)
	}
	p.mu.Lock()
	n := len(p.free)
	p.mu.Unlock()
	if n != 2 {
		t.Fatalf("free list holds %d, want 2", n)
	}
}

func TestConcurrentGetPut(t *testing.T) {
	p := NewPool(64, 32)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			for i := 0; i < 5000; i++ {
				b := p.Get()
				b.Keys[0] = seed
				b.Vals[0] = -seed
				if b.Keys[0] != seed || b.Vals[0] != -seed {
					t.Error("buffer aliasing detected")
					return
				}
				p.Put(b)
			}
		}(int64(w))
	}
	wg.Wait()
}
