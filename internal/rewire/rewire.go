// Package rewire simulates memory rewiring [Schuhknecht et al., RUMA] for
// the PMA's rebalances. The original technique copies elements once into a
// spare buffer of physical pages and then swaps the virtual-page mapping in
// O(1). The property the rebalance algorithm relies on is exactly that pair:
// single-copy into a spare buffer, O(1) publication. In Go the same structure
// is obtained by writing into spare chunk-sized slices from a pool and
// swapping the slice headers under the gates' latches; the retired buffers
// return to the pool as the "new spare pages" for the next rebalance.
package rewire

import (
	"sync"
	"sync/atomic"
)

// Buffer is one chunk worth of storage: parallel key and value arrays.
type Buffer struct {
	Keys []int64
	Vals []int64
}

// Pool hands out fixed-size buffers, reusing retired ones.
type Pool struct {
	slots int

	mu   sync.Mutex
	free []*Buffer

	maxFree int

	allocs atomic.Int64
	reuses atomic.Int64
}

// NewPool creates a pool of buffers with the given number of element slots
// per buffer. maxFree bounds how many retired buffers are kept (0 means a
// sensible default).
func NewPool(slots, maxFree int) *Pool {
	if maxFree <= 0 {
		maxFree = 64
	}
	return &Pool{slots: slots, maxFree: maxFree}
}

// Slots returns the per-buffer element capacity.
func (p *Pool) Slots() int { return p.slots }

// Get returns a buffer with Keys and Vals of length Slots. Contents are
// unspecified (the rebalance overwrites exactly the slots it publishes).
func (p *Pool) Get() *Buffer {
	p.mu.Lock()
	if n := len(p.free); n > 0 {
		b := p.free[n-1]
		p.free = p.free[:n-1]
		p.mu.Unlock()
		p.reuses.Add(1)
		return b
	}
	p.mu.Unlock()
	p.allocs.Add(1)
	return &Buffer{Keys: make([]int64, p.slots), Vals: make([]int64, p.slots)}
}

// Put returns a buffer to the pool. Buffers of the wrong size (e.g. from
// before a resize changed the chunk geometry) are dropped.
func (p *Pool) Put(b *Buffer) {
	if b == nil || len(b.Keys) != p.slots || len(b.Vals) != p.slots {
		return
	}
	p.mu.Lock()
	if len(p.free) < p.maxFree {
		p.free = append(p.free, b)
	}
	p.mu.Unlock()
}

// Allocs returns how many buffers were newly allocated.
func (p *Pool) Allocs() int64 { return p.allocs.Load() }

// Reuses returns how many Get calls were served from retired buffers — the
// simulated "rewired pages".
func (p *Pool) Reuses() int64 { return p.reuses.Load() }
