// Package spacefill provides Z-order (Morton) and Hilbert space-filling
// curve encodings. The paper's introduction motivates keeping graph and
// spatial data sorted by such curves to recover locality (citing the
// Hilbert-order scheme of Haase et al.); the ride-sharing example stores
// moving vehicle positions in the concurrent PMA keyed by these encodings.
package spacefill

// ZEncode interleaves the bits of x and y into a Morton code: two
// coordinates that are close in space share long code prefixes.
func ZEncode(x, y uint32) uint64 {
	return spread(x) | spread(y)<<1
}

// ZDecode inverts ZEncode.
func ZDecode(z uint64) (x, y uint32) {
	return compact(z), compact(z >> 1)
}

// spread inserts a zero bit between every bit of v.
func spread(v uint32) uint64 {
	x := uint64(v)
	x = (x | x<<16) & 0x0000FFFF0000FFFF
	x = (x | x<<8) & 0x00FF00FF00FF00FF
	x = (x | x<<4) & 0x0F0F0F0F0F0F0F0F
	x = (x | x<<2) & 0x3333333333333333
	x = (x | x<<1) & 0x5555555555555555
	return x
}

// compact removes the interleaved zero bits.
func compact(x uint64) uint32 {
	x &= 0x5555555555555555
	x = (x | x>>1) & 0x3333333333333333
	x = (x | x>>2) & 0x0F0F0F0F0F0F0F0F
	x = (x | x>>4) & 0x00FF00FF00FF00FF
	x = (x | x>>8) & 0x0000FFFF0000FFFF
	x = (x | x>>16) & 0x00000000FFFFFFFF
	return uint32(x)
}

// HilbertEncode maps (x, y) on the 2^order x 2^order grid to its distance
// along the Hilbert curve. Coordinates must be < 1<<order; order <= 31.
func HilbertEncode(order uint, x, y uint32) uint64 {
	var d uint64
	for s := uint32(1) << (order - 1); s > 0; s >>= 1 {
		var rx, ry uint32
		if x&s > 0 {
			rx = 1
		}
		if y&s > 0 {
			ry = 1
		}
		d += uint64(s) * uint64(s) * uint64((3*rx)^ry)
		x, y = hilbertRot(s, x, y, rx, ry)
	}
	return d
}

// HilbertDecode inverts HilbertEncode.
func HilbertDecode(order uint, d uint64) (x, y uint32) {
	t := d
	for s := uint32(1); s < 1<<order; s <<= 1 {
		rx := uint32(1) & uint32(t/2)
		ry := uint32(1) & uint32(t^uint64(rx))
		x, y = hilbertRot(s, x, y, rx, ry)
		x += s * rx
		y += s * ry
		t /= 4
	}
	return x, y
}

// hilbertRot rotates/flips a quadrant appropriately.
func hilbertRot(s, x, y, rx, ry uint32) (uint32, uint32) {
	if ry == 0 {
		if rx == 1 {
			x = s - 1 - x
			y = s - 1 - y
		}
		x, y = y, x
	}
	return x, y
}
