package spacefill

import (
	"math/rand"
	"testing"
)

func TestZRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10_000; i++ {
		x, y := rng.Uint32(), rng.Uint32()
		gx, gy := ZDecode(ZEncode(x, y))
		if gx != x || gy != y {
			t.Fatalf("roundtrip (%d,%d) -> (%d,%d)", x, y, gx, gy)
		}
	}
}

func TestZKnownValues(t *testing.T) {
	if ZEncode(0, 0) != 0 {
		t.Fatal("origin")
	}
	if ZEncode(1, 0) != 1 {
		t.Fatalf("x bit: %d", ZEncode(1, 0))
	}
	if ZEncode(0, 1) != 2 {
		t.Fatalf("y bit: %d", ZEncode(0, 1))
	}
	if ZEncode(3, 3) != 15 {
		t.Fatalf("(3,3): %d", ZEncode(3, 3))
	}
}

func TestHilbertRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, order := range []uint{1, 4, 8, 16, 31} {
		mask := uint32(1)<<order - 1
		for i := 0; i < 2_000; i++ {
			x, y := rng.Uint32()&mask, rng.Uint32()&mask
			gx, gy := HilbertDecode(order, HilbertEncode(order, x, y))
			if gx != x || gy != y {
				t.Fatalf("order %d: roundtrip (%d,%d) -> (%d,%d)", order, x, y, gx, gy)
			}
		}
	}
}

func TestHilbertIsBijectionOrder3(t *testing.T) {
	seen := map[uint64]bool{}
	for x := uint32(0); x < 8; x++ {
		for y := uint32(0); y < 8; y++ {
			d := HilbertEncode(3, x, y)
			if d >= 64 {
				t.Fatalf("d(%d,%d) = %d out of range", x, y, d)
			}
			if seen[d] {
				t.Fatalf("duplicate distance %d", d)
			}
			seen[d] = true
		}
	}
}

func TestHilbertAdjacency(t *testing.T) {
	// Consecutive Hilbert distances differ by exactly one grid step —
	// the locality property that motivates the encoding.
	const order = 5
	var px, py uint32
	for d := uint64(0); d < 1<<(2*order); d++ {
		x, y := HilbertDecode(order, d)
		if d > 0 {
			dx := int64(x) - int64(px)
			dy := int64(y) - int64(py)
			if dx*dx+dy*dy != 1 {
				t.Fatalf("jump at d=%d: (%d,%d) -> (%d,%d)", d, px, py, x, y)
			}
		}
		px, py = x, y
	}
}
