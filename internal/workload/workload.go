// Package workload generates the key streams of the paper's evaluation
// (Section 4): uniform keys and Zipfian keys over the domain [1, beta] with
// beta = 2^27, Zipf factors alpha from 1 (mild skew) to 2 (high skew). The
// skew is contiguous in key space — hot keys cluster at the low end of the
// domain, hammering the same PMA segments, which is exactly the worst case
// the asynchronous update schemes of Section 3.5 target.
package workload

import (
	"fmt"
	"math"
	"math/rand"
)

// DefaultDomain is the paper's key range beta = 2^27.
const DefaultDomain = 1 << 27

// Distribution identifies a key distribution.
type Distribution struct {
	// Name is "uniform" or "zipf".
	Name string
	// Alpha is the Zipf factor (ignored for uniform).
	Alpha float64
}

// Uniform returns the uniform distribution descriptor.
func Uniform() Distribution { return Distribution{Name: "uniform"} }

// Zipf returns a Zipfian distribution descriptor with the given factor.
func Zipf(alpha float64) Distribution { return Distribution{Name: "zipf", Alpha: alpha} }

// String renders the distribution like the paper's plot labels.
func (d Distribution) String() string {
	if d.Name == "uniform" {
		return "Uniform"
	}
	return fmt.Sprintf("Zipf a=%g", d.Alpha)
}

// PaperDistributions returns the four update patterns of Figure 3/4.
func PaperDistributions() []Distribution {
	return []Distribution{Uniform(), Zipf(1), Zipf(1.5), Zipf(2)}
}

// Generator produces a deterministic stream of keys in [1, Domain].
type Generator struct {
	rng    *rand.Rand
	domain int64

	zipf     bool
	alpha    float64
	oneMinus float64 // 1 - alpha
	scale    float64 // beta^(1-alpha) - 1   (alpha != 1)
	logBeta  float64 // ln beta              (alpha == 1)
}

// NewGenerator builds a generator for the distribution with its own seed;
// every benchmark thread gets one, so streams are independent and replayable.
func NewGenerator(d Distribution, domain int64, seed int64) *Generator {
	if domain <= 1 {
		domain = DefaultDomain
	}
	g := &Generator{rng: rand.New(rand.NewSource(seed)), domain: domain}
	if d.Name == "zipf" {
		g.zipf = true
		g.alpha = d.Alpha
		if d.Alpha == 1 {
			g.logBeta = math.Log(float64(domain))
		} else {
			g.oneMinus = 1 - d.Alpha
			g.scale = math.Pow(float64(domain), g.oneMinus) - 1
		}
	}
	return g
}

// Next returns the next key. Zipf sampling uses the continuous inverse-CDF
// of the truncated power law p(x) ~ x^-alpha on [1, beta]:
//
//	alpha != 1: x = (1 + u*(beta^(1-alpha)-1))^(1/(1-alpha))
//	alpha == 1: x = beta^u
//
// This is O(1) per sample and supports alpha = 1 exactly (where the rejection
// sampler of math/rand does not apply); the discrete Zipf distribution is
// approximated within a few percent on every rank, preserving the workload's
// shape (DESIGN.md, Substitutions).
func (g *Generator) Next() int64 {
	if !g.zipf {
		return 1 + g.rng.Int63n(g.domain)
	}
	u := g.rng.Float64()
	var x float64
	if g.alpha == 1 {
		x = math.Exp(u * g.logBeta)
	} else {
		x = math.Pow(1+u*g.scale, 1/g.oneMinus)
	}
	k := int64(x)
	if k < 1 {
		k = 1
	}
	if k > g.domain {
		k = g.domain
	}
	return k
}

// Fill writes n keys into out (allocating when nil) and returns it.
func (g *Generator) Fill(out []int64, n int) []int64 {
	if out == nil {
		out = make([]int64, 0, n)
	}
	for i := 0; i < n; i++ {
		out = append(out, g.Next())
	}
	return out
}
