package workload

import (
	"math"
	"testing"
)

func TestUniformBoundsAndSpread(t *testing.T) {
	g := NewGenerator(Uniform(), 1000, 1)
	buckets := make([]int, 10)
	const n = 100_000
	for i := 0; i < n; i++ {
		k := g.Next()
		if k < 1 || k > 1000 {
			t.Fatalf("key %d out of [1,1000]", k)
		}
		buckets[(k-1)/100]++
	}
	for i, c := range buckets {
		if math.Abs(float64(c)-n/10) > n/50 {
			t.Fatalf("bucket %d count %d far from uniform", i, c)
		}
	}
}

func TestZipfSkewIncreasesWithAlpha(t *testing.T) {
	const n = 200_000
	top := func(alpha float64) float64 {
		g := NewGenerator(Zipf(alpha), DefaultDomain, 7)
		hot := 0
		for i := 0; i < n; i++ {
			if g.Next() <= 16 {
				hot++
			}
		}
		return float64(hot) / n
	}
	t1, t15, t2 := top(1), top(1.5), top(2)
	if !(t1 < t15 && t15 < t2) {
		t.Fatalf("hot-key mass not increasing with alpha: %f %f %f", t1, t15, t2)
	}
	if t2 < 0.8 {
		t.Fatalf("alpha=2 should concentrate most mass on tiny keys, got %f", t2)
	}
	if t1 > 0.5 {
		t.Fatalf("alpha=1 skew too strong: %f", t1)
	}
}

func TestZipfAlpha1IsLogUniform(t *testing.T) {
	g := NewGenerator(Zipf(1), 1<<20, 3)
	// Under log-uniform sampling each doubling octave receives equal
	// mass: count per octave should be roughly constant.
	octaves := make([]int, 20)
	const n = 200_000
	for i := 0; i < n; i++ {
		k := g.Next()
		o := 0
		for k > 1 {
			k >>= 1
			o++
		}
		if o >= len(octaves) {
			o = len(octaves) - 1
		}
		octaves[o]++
	}
	expect := float64(n) / 20
	for o, c := range octaves {
		if math.Abs(float64(c)-expect) > expect/2 {
			t.Fatalf("octave %d count %d far from log-uniform %f", o, c, expect)
		}
	}
}

func TestDeterministicBySeed(t *testing.T) {
	for _, d := range PaperDistributions() {
		a := NewGenerator(d, DefaultDomain, 42)
		b := NewGenerator(d, DefaultDomain, 42)
		c := NewGenerator(d, DefaultDomain, 43)
		differ := false
		for i := 0; i < 1000; i++ {
			ka, kb := a.Next(), b.Next()
			if ka != kb {
				t.Fatalf("%v: same seed diverged at %d", d, i)
			}
			if ka != c.Next() {
				differ = true
			}
		}
		if !differ {
			t.Fatalf("%v: different seeds produced identical streams", d)
		}
	}
}

func TestFill(t *testing.T) {
	g := NewGenerator(Uniform(), 100, 1)
	ks := g.Fill(nil, 50)
	if len(ks) != 50 {
		t.Fatalf("Fill returned %d keys", len(ks))
	}
	ks = g.Fill(ks, 25)
	if len(ks) != 75 {
		t.Fatalf("append Fill returned %d keys", len(ks))
	}
}

func TestDistributionString(t *testing.T) {
	if Uniform().String() != "Uniform" {
		t.Fatal("uniform label")
	}
	if Zipf(1.5).String() != "Zipf a=1.5" {
		t.Fatalf("zipf label: %s", Zipf(1.5).String())
	}
}
