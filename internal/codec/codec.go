// Package codec is the delta block codec shared by the persistence layer's
// snapshots (internal/persist) and the in-memory compressed chunks
// (internal/core): a sorted run of int64 key/value pairs is stored as
//
//	uvarint  pair count (>= 1)
//	varint   first key (zigzag)
//	uvarint  key deltas, one per remaining pair (strictly ascending keys,
//	         so every delta is >= 1; dense runs cost one byte per key)
//	varint   values (zigzag), one per pair
//
// A dense PMA segment or snapshot block encodes at a few bytes per pair
// instead of the 16 an uncompressed pair costs.
//
// The decoder is hardened for both of its callers' threat models — bytes
// read back from a crashed disk, and bytes read racily from a chunk a
// concurrent writer is re-encoding (the seqlock read path discards the
// result on version mismatch, but the decode itself must never fault):
// it never panics, never over-reads, appends at most maxPairs pairs
// whatever the input claims, and rejects zero or wrapping key deltas, so
// every accepted block is a strictly ascending run. The key-delta overflow
// check lives only here; persist and core previously had to agree on it by
// duplication.
package codec

import (
	"encoding/binary"
	"errors"
)

// Decode errors. Callers that frame blocks (persist) wrap them with file
// context; the racy in-memory reader only cares that an error came back.
var (
	ErrCount    = errors.New("codec: bad block count")
	ErrFirstKey = errors.New("codec: bad first key")
	ErrDelta    = errors.New("codec: bad key delta")
	ErrOverflow = errors.New("codec: key delta overflow")
	ErrValue    = errors.New("codec: bad value")
	ErrTrailing = errors.New("codec: trailing block bytes")
)

// AppendBlock appends one encoded block for the given pairs to dst and
// returns the extended slice. keys must be strictly ascending and non-empty;
// len(vals) must equal len(keys). The caller owns framing (length, CRC).
func AppendBlock(dst []byte, keys, vals []int64) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(keys)))
	dst = binary.AppendVarint(dst, keys[0])
	for i := 1; i < len(keys); i++ {
		dst = binary.AppendUvarint(dst, uint64(keys[i]-keys[i-1]))
	}
	for _, v := range vals {
		dst = binary.AppendVarint(dst, v)
	}
	return dst
}

// MaxEncodedLen bounds the encoded size of a block of n pairs: the count,
// a worst-case varint per key delta and per value. Useful for sizing
// fixed scratch buffers.
func MaxEncodedLen(n int) int {
	const maxVarint = binary.MaxVarintLen64
	return maxVarint + 2*n*maxVarint
}

// DecodeBlock decodes one block payload, appending the pairs to keys and
// vals, and returns the extended slices. It accepts only a complete,
// internally consistent block: a count in [1, maxPairs], strictly ascending
// keys (no zero deltas, no int64 wrap), every varint well-formed, and no
// trailing bytes. On error the returned slices may carry a partial prefix
// of the block; callers either discard them (persist invalidates the whole
// file) or re-slice to the pre-call length (the racy read path). At most
// maxPairs pairs are appended no matter what the input claims, so a caller
// with a fixed-capacity scratch buffer never grows it.
func DecodeBlock(p []byte, keys, vals []int64, maxPairs int) ([]int64, []int64, error) {
	c, un := binary.Uvarint(p)
	if un <= 0 || c == 0 || c > uint64(maxPairs) {
		return keys, vals, ErrCount
	}
	n := int(c)
	first, vn := binary.Varint(p[un:])
	if vn <= 0 {
		return keys, vals, ErrFirstKey
	}
	// The count is validated, so the output length is known up front:
	// extend both slices once and fill by index, keeping the per-pair loop
	// free of append bookkeeping. On error the filled prefix is re-sliced
	// back to exactly the pairs decoded so far, preserving the
	// partial-prefix contract.
	kb, vb := len(keys), len(vals)
	keys = grow(keys, n)
	vals = grow(vals, n)
	i := un + vn
	keys[kb] = first
	k := first
	for j := 1; j < n; j++ {
		var d uint64
		if i < len(p) && p[i] < 0x80 { // 1-byte delta: the dense-run fast path
			d = uint64(p[i])
			i++
		} else {
			var dn int
			d, dn = binary.Uvarint(p[i:])
			if dn <= 0 {
				return keys[:kb+j], vals[:vb], ErrDelta
			}
			i += dn
		}
		if d == 0 {
			return keys[:kb+j], vals[:vb], ErrDelta
		}
		// Keys are strictly ascending, so a delta that wraps past
		// MaxInt64 (or reads back as <= 0) is corruption, not a gap.
		nk := k + int64(d)
		if nk <= k {
			return keys[:kb+j], vals[:vb], ErrOverflow
		}
		k = nk
		keys[kb+j] = k
	}
	for j := 0; j < n; j++ {
		var v int64
		if i < len(p) && p[i] < 0x80 { // 1-byte zigzag value fast path
			v = int64(p[i]>>1) ^ -int64(p[i]&1)
			i++
		} else {
			var vn int
			v, vn = binary.Varint(p[i:])
			if vn <= 0 {
				return keys, vals[:vb+j], ErrValue
			}
			i += vn
		}
		vals[vb+j] = v
	}
	if i != len(p) {
		return keys, vals, ErrTrailing
	}
	return keys, vals, nil
}

// grow extends s by n elements (values unspecified), reusing capacity when
// it fits — the common case for the pooled fixed-capacity scratch buffers
// both decoder callers pass in.
func grow(s []int64, n int) []int64 {
	if len(s)+n <= cap(s) {
		return s[:len(s)+n]
	}
	return append(s, make([]int64, n)...)
}

// BlockCount reads just the pair count from a block payload without
// decoding the pairs — the cheap header peek framing layers use to account
// pairs in pre-encoded blocks. The count is validated against maxPairs.
func BlockCount(p []byte, maxPairs int) (int, error) {
	c, un := binary.Uvarint(p)
	if un <= 0 || c == 0 || c > uint64(maxPairs) {
		return 0, ErrCount
	}
	return int(c), nil
}
