package codec

import (
	"encoding/binary"
	"math"
	"math/rand"
	"testing"
)

func roundTrip(t *testing.T, keys, vals []int64) {
	t.Helper()
	enc := AppendBlock(nil, keys, vals)
	if len(enc) > MaxEncodedLen(len(keys)) {
		t.Fatalf("encoded %d pairs to %d bytes, above the MaxEncodedLen bound %d",
			len(keys), len(enc), MaxEncodedLen(len(keys)))
	}
	gotK, gotV, err := DecodeBlock(enc, nil, nil, len(keys))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(gotK) != len(keys) || len(gotV) != len(vals) {
		t.Fatalf("decoded %d/%d pairs, want %d", len(gotK), len(gotV), len(keys))
	}
	for i := range keys {
		if gotK[i] != keys[i] || gotV[i] != vals[i] {
			t.Fatalf("pair %d: got %d/%d want %d/%d", i, gotK[i], gotV[i], keys[i], vals[i])
		}
	}
}

func TestRoundTrip(t *testing.T) {
	roundTrip(t, []int64{0}, []int64{0})
	roundTrip(t, []int64{-5}, []int64{math.MinInt64})
	roundTrip(t, []int64{math.MinInt64 + 1, 0, math.MaxInt64 - 1}, []int64{1, -1, 0})
	roundTrip(t, []int64{1, 2, 3, 4, 5}, []int64{-1, -2, -3, -4, -5})

	rng := rand.New(rand.NewSource(1))
	keys := make([]int64, 0, 4096)
	vals := make([]int64, 0, 4096)
	k := int64(-1 << 40)
	for len(keys) < cap(keys) {
		k += 1 + rng.Int63n(1<<20)
		keys = append(keys, k)
		vals = append(vals, rng.Int63()-rng.Int63())
	}
	roundTrip(t, keys, vals)
}

// TestDenseRunSize pins the codec's reason to exist: a dense ascending run
// must encode far below the 16 raw bytes a pair costs in memory.
func TestDenseRunSize(t *testing.T) {
	n := 1024
	keys := make([]int64, n)
	vals := make([]int64, n)
	for i := range keys {
		keys[i] = int64(i) * 3 // gaps of 3: one byte per delta
		vals[i] = int64(i % 100)
	}
	enc := AppendBlock(nil, keys, vals)
	if got := float64(len(enc)) / float64(n); got > 4 {
		t.Fatalf("dense run encoded at %.2f B/pair, want <= 4", got)
	}
}

func TestAppendToExisting(t *testing.T) {
	enc := AppendBlock(nil, []int64{10, 20}, []int64{1, 2})
	keys := []int64{-99}
	vals := []int64{-98}
	keys, vals, err := DecodeBlock(enc, keys, vals, 2)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	want := [][2]int64{{-99, -98}, {10, 1}, {20, 2}}
	if len(keys) != 3 {
		t.Fatalf("got %d keys, want 3", len(keys))
	}
	for i, w := range want {
		if keys[i] != w[0] || vals[i] != w[1] {
			t.Fatalf("pair %d: got %d/%d want %d/%d", i, keys[i], vals[i], w[0], w[1])
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	valid := AppendBlock(nil, []int64{5, 6, 7}, []int64{1, 2, 3})
	cases := []struct {
		name string
		p    []byte
		want error
	}{
		{"empty", nil, ErrCount},
		{"zero count", []byte{0}, ErrCount},
		{"huge count", binary.AppendUvarint(nil, 1<<40), ErrCount},
		{"count above maxPairs", AppendBlock(nil, []int64{1, 2, 3, 4}, []int64{0, 0, 0, 0}), ErrCount},
		{"count only", []byte{3}, ErrFirstKey},
		{"truncated deltas", valid[:3], ErrDelta},
		{"zero delta", append(binary.AppendVarint([]byte{2}, 9), 0, 2, 2), ErrDelta},
		{"truncated values", valid[:len(valid)-1], ErrValue},
		{"trailing bytes", append(append([]byte{}, valid...), 0), ErrTrailing},
		{"delta overflow", func() []byte {
			b := binary.AppendVarint([]byte{2}, math.MaxInt64-1)
			b = binary.AppendUvarint(b, 2) // wraps past MaxInt64
			return append(b, 0, 0)
		}(), ErrOverflow},
	}
	for _, c := range cases {
		maxPairs := 3
		if c.name == "huge count" {
			maxPairs = 1 << 20
		}
		if _, _, err := DecodeBlock(c.p, nil, nil, maxPairs); err != c.want {
			t.Errorf("%s: got %v, want %v", c.name, err, c.want)
		}
	}
}

// TestMaxPairsBound pins the fixed-scratch contract: however large the
// claimed count, at most maxPairs pairs are appended before the error.
func TestMaxPairsBound(t *testing.T) {
	keys := make([]int64, 100)
	vals := make([]int64, 100)
	for i := range keys {
		keys[i] = int64(i)
		vals[i] = int64(i)
	}
	enc := AppendBlock(nil, keys, vals)
	gotK, gotV, err := DecodeBlock(enc, nil, nil, 8)
	if err != ErrCount {
		t.Fatalf("got %v, want ErrCount", err)
	}
	if len(gotK) != 0 || len(gotV) != 0 {
		t.Fatalf("appended %d/%d pairs despite rejected count", len(gotK), len(gotV))
	}
}

func TestBlockCount(t *testing.T) {
	enc := AppendBlock(nil, []int64{1, 2, 3}, []int64{0, 0, 0})
	n, err := BlockCount(enc, 8)
	if err != nil || n != 3 {
		t.Fatalf("got %d, %v; want 3, nil", n, err)
	}
	if _, err := BlockCount(enc, 2); err != ErrCount {
		t.Fatalf("count above maxPairs: got %v, want ErrCount", err)
	}
	if _, err := BlockCount(nil, 8); err != ErrCount {
		t.Fatalf("empty: got %v, want ErrCount", err)
	}
}

func BenchmarkDecodeBlock(b *testing.B) {
	n := 1024
	keys := make([]int64, n)
	vals := make([]int64, n)
	for i := range keys {
		keys[i] = int64(i) * 3
		vals[i] = int64(i % 128)
	}
	enc := AppendBlock(nil, keys, vals)
	dk := make([]int64, 0, n)
	dv := make([]int64, 0, n)
	b.SetBytes(int64(n * 16))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		dk, dv, err = DecodeBlock(enc, dk[:0], dv[:0], n)
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAppendBlock(b *testing.B) {
	n := 1024
	keys := make([]int64, n)
	vals := make([]int64, n)
	for i := range keys {
		keys[i] = int64(i) * 3
		vals[i] = int64(i % 128)
	}
	var enc []byte
	b.SetBytes(int64(n * 16))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		enc = AppendBlock(enc[:0], keys, vals)
	}
}
