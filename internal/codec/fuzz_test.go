package codec

import "testing"

// FuzzDecodeBlock asserts the decoder's contract on arbitrary bytes: it
// must decode or error — never panic, never over-read, never append more
// than maxPairs pairs — and anything it accepts must be a strictly
// ascending run with matching value count. This is the contract the racy
// in-memory read path depends on: a torn re-encode hands the decoder
// garbage, and the seqlock version check only discards the *result*; the
// decode itself has to survive. CI's fuzz-smoke job runs this target
// alongside the persist/wire decoders.
func FuzzDecodeBlock(f *testing.F) {
	f.Add(AppendBlock(nil, []int64{1}, []int64{-1}), 16)
	f.Add(AppendBlock(nil, []int64{-100, 0, 7, 1 << 50}, []int64{1, 2, 3, 4}), 16)
	f.Add(AppendBlock(nil, []int64{0, 1, 2, 3, 4, 5, 6, 7}, make([]int64, 8)), 8)
	f.Add([]byte{}, 16)
	f.Add([]byte{1, 0}, 16)
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f}, 16)
	f.Fuzz(func(t *testing.T, data []byte, maxPairs int) {
		if maxPairs < 1 || maxPairs > 1<<16 {
			maxPairs = 1 << 10
		}
		keys, vals, err := DecodeBlock(data, nil, nil, maxPairs)
		if len(keys) > maxPairs || len(vals) > maxPairs {
			t.Fatalf("appended %d/%d pairs, above maxPairs %d", len(keys), len(vals), maxPairs)
		}
		if err != nil {
			return
		}
		if len(keys) != len(vals) || len(keys) == 0 {
			t.Fatalf("accepted block with %d keys / %d vals", len(keys), len(vals))
		}
		for i := 1; i < len(keys); i++ {
			if keys[i] <= keys[i-1] {
				t.Fatalf("accepted non-ascending keys: %d after %d", keys[i], keys[i-1])
			}
		}
		// Any accepted content must survive a re-encode/decode round
		// trip: what the decoder accepts, the encoder can represent.
		re := AppendBlock(nil, keys, vals)
		k2, v2, err := DecodeBlock(re, nil, nil, maxPairs)
		if err != nil {
			t.Fatalf("re-encode of accepted block failed to decode: %v", err)
		}
		if len(k2) != len(keys) {
			t.Fatalf("re-encode changed pair count: %d -> %d", len(keys), len(k2))
		}
		for i := range keys {
			if k2[i] != keys[i] || v2[i] != vals[i] {
				t.Fatalf("re-encode changed pair %d", i)
			}
		}
	})
}
