package persist

import (
	"os"
	"path/filepath"
	"testing"
)

// Fuzz targets for the two decode surfaces that parse bytes a crash (or bit
// rot) may have mangled: the WAL record decoder and the snapshot block
// decoder / loader. Each is seeded from valid encodings and asserts the
// decoder's contract — never panic, never allocate unboundedly, and accept
// only inputs whose decoded form is internally consistent. CI runs each
// target for a short -fuzztime as a smoke test; the seed corpus alone also
// runs under plain `go test`.

func FuzzDecodeRecord(f *testing.F) {
	f.Add(encodePut(nil, 42, -1))
	f.Add(encodeDelete(nil, 1<<40))
	f.Add(encodeBatch(nil, KindPutBatch, []int64{1, 2, 3}, []int64{-1, -2, -3}))
	f.Add(encodeBatch(nil, KindDeleteBatch, []int64{5, 5, 9}, nil))
	f.Add(encodeBatch(nil, KindPutBatch, nil, nil))
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0x7f, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		var rec Record
		n, ok := decodeRecord(data, &rec)
		if !ok {
			return
		}
		if n < frameHeader || n > len(data) {
			t.Fatalf("decodeRecord consumed %d of %d bytes", n, len(data))
		}
		switch rec.Kind {
		case KindPut:
			if len(rec.Keys) != 1 || len(rec.Vals) != 1 {
				t.Fatalf("KindPut decoded %d keys / %d vals", len(rec.Keys), len(rec.Vals))
			}
		case KindDelete:
			if len(rec.Keys) != 1 || len(rec.Vals) != 0 {
				t.Fatalf("KindDelete decoded %d keys / %d vals", len(rec.Keys), len(rec.Vals))
			}
		case KindPutBatch:
			if len(rec.Keys) != len(rec.Vals) {
				t.Fatalf("KindPutBatch decoded %d keys but %d vals", len(rec.Keys), len(rec.Vals))
			}
		case KindDeleteBatch:
			if len(rec.Vals) != 0 {
				t.Fatalf("KindDeleteBatch decoded %d vals", len(rec.Vals))
			}
		default:
			t.Fatalf("decodeRecord accepted unknown kind %d", rec.Kind)
		}
	})
}

func FuzzDecodeSnapBlock(f *testing.F) {
	seed := func(keys, vals []int64) []byte {
		b := encodeSnapBlock(nil, keys, vals)
		return b[9:] // payload only: frame byte, length and CRC are stripped by the caller
	}
	f.Add(seed([]int64{1}, []int64{-1}))
	f.Add(seed([]int64{-100, 0, 7, 1 << 50}, []int64{1, 2, 3, 4}))
	f.Add([]byte{})
	f.Add([]byte{1, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		keys, vals, err := decodeSnapBlock(data, nil, nil)
		if err != nil {
			return
		}
		if len(keys) != len(vals) || len(keys) == 0 {
			t.Fatalf("accepted block with %d keys / %d vals", len(keys), len(vals))
		}
		for i := 1; i < len(keys); i++ {
			if keys[i] <= keys[i-1] {
				t.Fatalf("accepted block with non-ascending keys: %d after %d", keys[i], keys[i-1])
			}
		}
	})
}

func FuzzLoadSnapshot(f *testing.F) {
	valid := func(pairs int) []byte {
		dir := f.TempDir()
		keys := make([]int64, pairs)
		vals := make([]int64, pairs)
		for i := range keys {
			keys[i] = int64(i) * 3
			vals[i] = int64(i) - 7
		}
		_, _, err := WriteSnapshot(dir, 5, func(yield func(k, v int64) bool) error {
			for i := range keys {
				if !yield(keys[i], vals[i]) {
					break
				}
			}
			return nil
		}, Options{SnapshotBlockEntries: 4})
		if err != nil {
			f.Fatal(err)
		}
		data, err := os.ReadFile(filepath.Join(dir, snapName(5)))
		if err != nil {
			f.Fatal(err)
		}
		return data
	}
	f.Add(valid(0))
	f.Add(valid(1))
	f.Add(valid(10))
	f.Add([]byte(snapMagic))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), snapName(1))
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		keys, vals, _, err := LoadSnapshot(path)
		if err != nil {
			return
		}
		if len(keys) != len(vals) {
			t.Fatalf("accepted snapshot with %d keys / %d vals", len(keys), len(vals))
		}
		for i := 1; i < len(keys); i++ {
			if keys[i] <= keys[i-1] {
				t.Fatalf("accepted snapshot with non-ascending keys: %d after %d", keys[i], keys[i-1])
			}
		}
	})
}
