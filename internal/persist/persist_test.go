package persist

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// collect replays dir into a model map, the reference the WAL tests check
// against.
func collect(t *testing.T, dir string, fromSeq uint64) map[int64]int64 {
	t.Helper()
	m := map[int64]int64{}
	_, err := Replay(dir, fromSeq, func(r *Record) error {
		applyToModel(m, r)
		return nil
	})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	return m
}

func applyToModel(m map[int64]int64, r *Record) {
	switch r.Kind {
	case KindPut:
		m[r.Keys[0]] = r.Vals[0]
	case KindDelete:
		delete(m, r.Keys[0])
	case KindPutBatch:
		for i, k := range r.Keys {
			m[k] = r.Vals[i]
		}
	case KindDeleteBatch:
		for _, k := range r.Keys {
			delete(m, k)
		}
	}
}

func testOptions() Options {
	o := DefaultOptions()
	o.Fsync = FsyncNone
	return o
}

func TestWALRoundTrip(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenLog(dir, 1, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	must(w.AppendPut(1, 10))
	must(w.AppendPut(-5, 50))
	must(w.AppendDelete(1))
	must(w.AppendPutBatch([]int64{7, 8, 7}, []int64{70, 80, 71}))
	must(w.AppendDeleteBatch([]int64{8, 999}))
	must(w.Close())

	got := collect(t, dir, 1)
	want := map[int64]int64{-5: 50, 7: 71}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("replayed %v, want %v", got, want)
	}
}

func TestWALRotationAndTruncate(t *testing.T) {
	dir := t.TempDir()
	o := testOptions()
	o.SegmentBytes = 64 // force rotation every few records
	w, err := OpenLog(dir, 1, o)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 100; i++ {
		if err := w.AppendPut(i, i*10); err != nil {
			t.Fatal(err)
		}
	}
	segs, _ := listSegments(dir)
	if len(segs) < 3 {
		t.Fatalf("expected several segments, got %v", segs)
	}
	got := collect(t, dir, 1)
	if len(got) != 100 {
		t.Fatalf("replayed %d records, want 100", len(got))
	}
	// Rotate to a cut point, drop everything before it.
	cut, err := w.Rotate()
	if err != nil {
		t.Fatal(err)
	}
	if err := w.AppendPut(1000, 1); err != nil {
		t.Fatal(err)
	}
	w.TruncateBefore(cut)
	segs, _ = listSegments(dir)
	if segs[0] != cut {
		t.Fatalf("truncation left segment %d, want first %d", segs[0], cut)
	}
	got = collect(t, dir, cut)
	if !reflect.DeepEqual(got, map[int64]int64{1000: 1}) {
		t.Fatalf("post-truncation replay %v", got)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestReplayTruncatesTornTail(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenLog(dir, 1, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 10; i++ {
		if err := w.AppendPut(i, i); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, segName(1))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Cut mid-way through the final record: a crash mid-append.
	if err := os.WriteFile(path, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	got := collect(t, dir, 1)
	if len(got) != 9 {
		t.Fatalf("recovered %d records after torn tail, want 9", len(got))
	}
	// The tear must have been truncated off so the file is clean again.
	fixed, _ := os.ReadFile(path)
	if rerun := collect(t, dir, 1); !reflect.DeepEqual(rerun, got) || len(fixed) >= len(data) {
		t.Fatalf("torn tail not truncated (size %d vs %d)", len(fixed), len(data))
	}
}

func TestReplayRejectsCorruptRecord(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenLog(dir, 1, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 10; i++ {
		if err := w.AppendPut(i, i); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, segName(1))
	data, _ := os.ReadFile(path)
	// Flip one payload byte mid-file: the CRC rejects the record, and
	// because checksum-valid records follow the damage this is bit rot,
	// not a torn tail — replay must refuse rather than silently truncate
	// the valid (fsynced, acknowledged) suffix.
	corrupt := bytes.Clone(data)
	corrupt[len(corrupt)/2] ^= 0xFF
	if err := os.WriteFile(path, corrupt, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Replay(dir, 1, func(*Record) error { return nil }); err == nil {
		t.Fatal("mid-segment corruption with valid records after it must be an error")
	}
	// The same damage at the very tail (nothing valid after) is
	// indistinguishable from a crash mid-append and is truncated away.
	tail := bytes.Clone(data)
	tail[len(tail)-2] ^= 0xFF
	if err := os.WriteFile(path, tail, 0o644); err != nil {
		t.Fatal(err)
	}
	got := collect(t, dir, 1)
	if len(got) != 9 {
		t.Fatalf("corrupt final record: recovered %d/10, want 9", len(got))
	}
	for k, v := range got {
		if k != v {
			t.Fatalf("corrupt record leaked garbage: %d->%d", k, v)
		}
	}
}

func TestReplayErrorsOnClosedSegmentCorruption(t *testing.T) {
	dir := t.TempDir()
	o := testOptions()
	o.SegmentBytes = 64
	w, err := OpenLog(dir, 1, o)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 50; i++ {
		if err := w.AppendPut(i, i); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := listSegments(dir)
	if len(segs) < 2 {
		t.Fatalf("need multiple segments, got %v", segs)
	}
	path := filepath.Join(dir, segName(segs[0]))
	data, _ := os.ReadFile(path)
	data[len(data)/2] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Replay(dir, 1, func(*Record) error { return nil }); err == nil {
		t.Fatal("corruption in a closed (fsynced) segment must be an error, not silent loss")
	}
}

func TestGroupCommitFsyncAlways(t *testing.T) {
	dir := t.TempDir()
	o := testOptions()
	o.Fsync = FsyncAlways
	w, err := OpenLog(dir, 1, o)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func(g int) {
			for i := 0; i < 50; i++ {
				if err := w.AppendPut(int64(g*1000+i), int64(i)); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}(g)
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if got := collect(t, dir, 1); len(got) != 400 {
		t.Fatalf("recovered %d records, want 400", len(got))
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	dir := t.TempDir()
	n := 100_000
	keys := make([]int64, n)
	vals := make([]int64, n)
	k := int64(-50_000)
	for i := range keys {
		k += int64(i%7) + 1 // irregular gaps, negative through positive keys
		keys[i] = k
		vals[i] = int64(i) - 1000
	}
	count, size, err := WriteSnapshot(dir, 7, func(yield func(k, v int64) bool) error {
		for i := range keys {
			if !yield(keys[i], vals[i]) {
				break
			}
		}
		return nil
	}, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if count != int64(n) {
		t.Fatalf("count %d, want %d", count, n)
	}
	if size >= int64(16*n) {
		t.Fatalf("delta encoding ineffective: %d bytes for %d pairs", size, n)
	}
	gk, gv, seq, err := LoadSnapshot(filepath.Join(dir, snapName(7)))
	if err != nil {
		t.Fatal(err)
	}
	if seq != 7 {
		t.Fatalf("walSeq %d, want 7", seq)
	}
	if !reflect.DeepEqual(gk, keys) || !reflect.DeepEqual(gv, vals) {
		t.Fatal("snapshot round trip mismatch")
	}
}

func TestSnapshotEmpty(t *testing.T) {
	dir := t.TempDir()
	if _, _, err := WriteSnapshot(dir, 3, func(func(k, v int64) bool) error { return nil }, testOptions()); err != nil {
		t.Fatal(err)
	}
	gk, gv, seq, err := LoadSnapshot(filepath.Join(dir, snapName(3)))
	if err != nil || len(gk) != 0 || len(gv) != 0 || seq != 3 {
		t.Fatalf("empty snapshot: keys=%d err=%v", len(gk), err)
	}
}

func TestSnapshotCorruptionRejected(t *testing.T) {
	dir := t.TempDir()
	if _, _, err := WriteSnapshot(dir, 2, func(yield func(k, v int64) bool) error {
		for i := int64(0); i < 1000; i++ {
			if !yield(i, i) {
				break
			}
		}
		return nil
	}, testOptions()); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, snapName(2))
	data, _ := os.ReadFile(path)
	for _, off := range []int{4, len(data) / 2, len(data) - 2} {
		corrupt := bytes.Clone(data)
		corrupt[off] ^= 0x01
		if err := os.WriteFile(path, corrupt, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, _, _, err := LoadSnapshot(path); err == nil {
			t.Fatalf("corruption at offset %d accepted", off)
		}
	}
}

func TestRecoverPicksNewestValidSnapshot(t *testing.T) {
	dir := t.TempDir()
	write := func(seq uint64, v int64) {
		if _, _, err := WriteSnapshot(dir, seq, func(yield func(k, v int64) bool) error {
			yield(1, v)
			return nil
		}, testOptions()); err != nil {
			t.Fatal(err)
		}
	}
	write(2, 100)
	write(5, 200)
	// Corrupt the newest: Recover must fall back to seq 2 and replay from it.
	path := filepath.Join(dir, snapName(5))
	data, _ := os.ReadFile(path)
	data[len(data)-1] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	w, err := OpenLog(dir, 2, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := w.AppendPut(9, 9); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	var tail []Record
	var loadedK, loadedV []int64
	rec, err := Recover(dir, func(keys, vals []int64) error {
		loadedK, loadedV = keys, vals
		return nil
	}, func(r *Record) error {
		tail = append(tail, Record{Kind: r.Kind, Keys: append([]int64(nil), r.Keys...), Vals: append([]int64(nil), r.Vals...)})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(loadedK) != 1 || loadedK[0] != 1 || loadedV[0] != 100 {
		t.Fatalf("expected fallback snapshot contents, got keys=%v vals=%v", loadedK, loadedV)
	}
	if len(tail) != 1 || tail[0].Keys[0] != 9 {
		t.Fatalf("expected WAL tail replay of 1 record, got %v", tail)
	}
	if rec.NextSeq != 3 {
		t.Fatalf("NextSeq %d, want 3", rec.NextSeq)
	}
}

func TestRecoverRefusesWhenOnlySnapshotInvalid(t *testing.T) {
	dir := t.TempDir()
	// A checkpointed store: snapshot at cut 2, WAL prefix truncated.
	if _, _, err := WriteSnapshot(dir, 2, func(yield func(k, v int64) bool) error {
		for i := int64(0); i < 100; i++ {
			if !yield(i, i) {
				break
			}
		}
		return nil
	}, testOptions()); err != nil {
		t.Fatal(err)
	}
	w, err := OpenLog(dir, 2, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := w.AppendPut(1000, 1); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// The snapshot rots. Recovery must refuse — silently proceeding would
	// resurrect a store holding only the 1-record WAL tail.
	path := filepath.Join(dir, snapName(2))
	data, _ := os.ReadFile(path)
	data[len(data)/2] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Recover(dir, func(_, _ []int64) error { return nil }, func(*Record) error { return nil }); err == nil {
		t.Fatal("Recover accepted a store whose only snapshot is corrupt")
	}
	// Same refusal when the snapshot file is gone entirely but the WAL
	// visibly starts past segment 1.
	if err := os.Remove(path); err != nil {
		t.Fatal(err)
	}
	if _, err := Recover(dir, func(_, _ []int64) error { return nil }, func(*Record) error { return nil }); err == nil {
		t.Fatal("Recover accepted a WAL that starts past segment 1 with no snapshot")
	}
}

func TestRecoverRefusesFallbackPastTruncatedSegments(t *testing.T) {
	dir := t.TempDir()
	write := func(seq uint64, v int64) {
		if _, _, err := WriteSnapshot(dir, seq, func(yield func(k, v int64) bool) error {
			yield(1, v)
			return nil
		}, testOptions()); err != nil {
			t.Fatal(err)
		}
	}
	write(2, 100)
	write(5, 200)
	// Segments < 5 are truncated (the newer snapshot covered them); only
	// the active segment 5 remains.
	w, err := OpenLog(dir, 5, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Newest snapshot rots: falling back to snapshot 2 would need segments
	// 2-4, which are gone — recovery must error, not lose their records.
	path := filepath.Join(dir, snapName(5))
	data, _ := os.ReadFile(path)
	data[len(data)-1] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Recover(dir, func(_, _ []int64) error { return nil }, func(*Record) error { return nil }); err == nil {
		t.Fatal("Recover silently skipped truncated WAL segments")
	}
}

func TestAppendBatchChunksOversized(t *testing.T) {
	old := maxBatchPairs
	maxBatchPairs = 3
	defer func() { maxBatchPairs = old }()

	dir := t.TempDir()
	w, err := OpenLog(dir, 1, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	keys := make([]int64, 10)
	vals := make([]int64, 10)
	for i := range keys {
		keys[i] = int64(i)
		vals[i] = int64(i) * 10
	}
	if err := w.AppendPutBatch(keys, vals); err != nil {
		t.Fatal(err)
	}
	if err := w.AppendDeleteBatch(keys[:7]); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	records := 0
	got := map[int64]int64{}
	if _, err := Replay(dir, 1, func(r *Record) error {
		records++
		if len(r.Keys) > 3 {
			t.Fatalf("record carries %d pairs, over the chunk cap", len(r.Keys))
		}
		applyToModel(got, r)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if records != 4+3 { // 10 puts in ceil(10/3)=4 chunks, 7 deletes in 3
		t.Fatalf("got %d chunk records, want 7", records)
	}
	want := map[int64]int64{7: 70, 8: 80, 9: 90}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("chunked replay %v, want %v", got, want)
	}
}

func TestRecoverFreshDir(t *testing.T) {
	dir := t.TempDir()
	loaded := -1
	rec, err := Recover(dir, func(keys, _ []int64) error {
		loaded = len(keys)
		return nil
	}, func(*Record) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if loaded != 0 || rec.NextSeq != 1 {
		t.Fatalf("fresh dir: loaded=%d nextSeq=%d", loaded, rec.NextSeq)
	}
}

// TestWriteSnapshotIteratorErrorAborts pins the pre-publish gate: when the
// iterator returns an error (durable.go returns the WAL Sync result there,
// so an unsyncable log must not be superseded), no snapshot may be
// published and no temp file may linger.
func TestWriteSnapshotIteratorErrorAborts(t *testing.T) {
	dir := t.TempDir()
	wantErr := errors.New("sync failed")
	if _, _, err := WriteSnapshot(dir, 4, func(yield func(k, v int64) bool) error {
		yield(1, 1)
		return wantErr
	}, testOptions()); err != wantErr {
		t.Fatalf("err = %v, want %v", err, wantErr)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		t.Fatalf("aborted snapshot left %q behind", e.Name())
	}
}
