//go:build unix

package persist

import (
	"fmt"
	"os"
	"path/filepath"
	"syscall"
)

// LockDir takes an exclusive advisory flock on dir/LOCK, guarding the store
// against a second concurrent owner — whose recovery would truncate the live
// owner's active segment and whose snapshots would delete WAL segments the
// other still needs. Returns the release function. flock conflicts between
// any two open file descriptions, so a duplicate Open fails even within one
// process, and the lock vanishes automatically when a crashed owner's fds
// are reaped — no stale-lockfile problem.
func LockDir(dir string) (func(), error) {
	f, err := os.OpenFile(filepath.Join(dir, "LOCK"), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		f.Close()
		return nil, fmt.Errorf("persist: %s is already open in another process (flock: %w)", dir, err)
	}
	return func() {
		_ = syscall.Flock(int(f.Fd()), syscall.LOCK_UN)
		_ = f.Close()
	}, nil
}
