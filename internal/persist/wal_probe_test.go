package persist

import (
	"encoding/binary"
	"hash/crc32"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// TestCRCOfWindowMatchesDirect pins the combine identity the probe is built
// on: the window checksum derived from two prefix checksums must equal the
// directly computed one, for windows of every alignment and size.
func TestCRCOfWindowMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	data := make([]byte, 1<<16)
	rng.Read(data)
	base := 13 // arbitrary common base
	for trial := 0; trial < 2000; trial++ {
		s := base + rng.Intn(len(data)-base-1)
		j := s + rng.Intn(len(data)-s)
		rs := crc32.Checksum(data[base:s], crcTable)
		rj := crc32.Checksum(data[base:j], crcTable)
		want := crc32.Checksum(data[s:j], crcTable)
		if got := crcOfWindow(rs, rj, j-s); got != want {
			t.Fatalf("crcOfWindow(data[%d:%d]) = %08x, want %08x", s, j, got, want)
		}
	}
	// Degenerate windows: empty, whole buffer.
	if got := crcOfWindow(0, crc32.Checksum(data, crcTable), len(data)); got != crc32.Checksum(data, crcTable) {
		t.Fatal("whole-buffer window mismatch")
	}
	if got := crcOfWindow(crc32.Checksum(data[:99], crcTable), crc32.Checksum(data[:99], crcTable), 0); got != 0 {
		t.Fatalf("empty window = %08x, want 0 (CRC of no bytes)", got)
	}
}

// tornGarbage returns a pseudo-random torn span: a frame header declaring
// more payload than the file holds, followed by garbage — what a crash
// leaves after tearing a large batch append.
func tornGarbage(n int, seed int64) []byte {
	rng := rand.New(rand.NewSource(seed))
	buf := make([]byte, n)
	rng.Read(buf)
	binary.LittleEndian.PutUint32(buf, uint32(n+1<<20)) // length past EOF: torn
	return buf
}

func TestProbeFindsBuriedValidRecord(t *testing.T) {
	garbage := tornGarbage(1<<16, 3)
	rec := encodePut(nil, 123456, -7)
	data := append(append(append([]byte{}, garbage...), rec...), tornGarbage(1<<12, 4)...)
	if !hasValidRecordAfter(data, 0) {
		t.Fatal("probe missed a checksum-valid record between garbage spans")
	}
	if hasValidRecordAfter(garbage, 0) {
		t.Fatal("probe hallucinated a valid record in pure garbage")
	}
}

// TestProbeMultiChunk forces the chunked candidate evaluation path and
// checks both outcomes across chunk boundaries.
func TestProbeMultiChunk(t *testing.T) {
	defer func(old int) { probeChunkSize = old }(probeChunkSize)
	probeChunkSize = 64

	garbage := tornGarbage(1<<15, 9)
	if hasValidRecordAfter(garbage, 0) {
		t.Fatal("multi-chunk probe hallucinated a record")
	}
	rec := encodeBatch(nil, KindPutBatch, []int64{1, 2, 3}, []int64{4, 5, 6})
	data := append(append([]byte{}, garbage...), rec...)
	if !hasValidRecordAfter(data, 0) {
		t.Fatal("multi-chunk probe missed the trailing valid record")
	}
}

// TestLargeTornTailTruncatesFast is the complexity regression test for the
// ROADMAP item "torn-tail probe is quadratic in the torn span": replaying a
// segment whose tail is a large torn record must truncate it in linear-ish
// time. The quadratic probe re-hashed megabytes at every header-plausible
// garbage offset (~1% of bytes), which takes minutes at this size; the
// combine-based probe does one streaming pass, so a generous wall-clock
// bound separates the two implementations by orders of magnitude without
// being flaky on slow CI.
func TestLargeTornTailTruncatesFast(t *testing.T) {
	span := 16 << 20
	if testing.Short() {
		span = 4 << 20
	}
	// A valid prefix of records, then the torn span.
	var file []byte
	file = encodePut(file, 1, 10)
	file = encodePut(file, 2, 20)
	file = encodeBatch(file, KindDeleteBatch, []int64{9, 9, 9}, nil)
	validLen := len(file)
	file = append(file, tornGarbage(span, 42)...)

	dir := t.TempDir()
	path := filepath.Join(dir, segName(1))
	if err := os.WriteFile(path, file, 0o644); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	var got []Record
	last, err := Replay(dir, 1, func(r *Record) error {
		got = append(got, Record{Kind: r.Kind, Keys: append([]int64(nil), r.Keys...)})
		return nil
	})
	elapsed := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	if last != 1 || len(got) != 3 {
		t.Fatalf("replayed %d records from segment %d, want 3 from 1", len(got), last)
	}
	if fi, err := os.Stat(path); err != nil || fi.Size() != int64(validLen) {
		t.Fatalf("torn tail not truncated to %d bytes (got %v, %v)", validLen, fi.Size(), err)
	}
	if elapsed > 20*time.Second {
		t.Fatalf("torn-tail probe over a %d MiB span took %v — quadratic probe regression", span>>20, elapsed)
	}
	t.Logf("replayed past a %d MiB torn tail in %v", span>>20, elapsed)
}

// TestProbeStillRefusesBitRot: the linear probe must preserve the safety
// semantics — damage followed by intact records is bit rot and Replay
// refuses rather than truncating acknowledged writes.
func TestProbeStillRefusesBitRot(t *testing.T) {
	var file []byte
	for i := int64(0); i < 50; i++ {
		file = encodePut(file, i, i*3)
	}
	file[len(file)/2] ^= 0x40 // mid-file damage; valid records follow

	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, segName(1)), file, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Replay(dir, 1, func(*Record) error { return nil }); err == nil {
		t.Fatal("Replay truncated past mid-file bit rot with valid records after it")
	}
}
