package persist

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"pmago/internal/obs"
)

// Log is the segmented write-ahead log. Appends go to the active segment;
// when it outgrows Options.SegmentBytes the segment is fsynced, closed and a
// new one started, so a torn write can only ever sit at the tail of the
// newest segment. All methods are safe for concurrent use.
//
// Durability bookkeeping is two monotonic byte counters: written (bytes
// fully handed to the kernel) and synced (bytes known to be on stable
// storage). Under FsyncAlways each append waits for synced to cover its own
// end offset; the group-commit fast path is that one writer's fsync advances
// synced past many waiters at once, and rotation — which always fsyncs the
// outgoing segment — does the same.
type Log struct {
	dir string
	o   Options

	mu      sync.Mutex // guards the fields below (append/rotate path)
	f       *os.File
	seq     uint64           // active segment number
	segSize int64            // bytes in the active segment
	live    map[uint64]int64 // sizes of all live segments, active included
	scratch []byte           // reusable encode buffer
	written uint64           // total bytes appended this session
	recs    uint64           // total records appended this session
	err     error            // sticky write error: the log is dead once set

	synced atomic.Uint64
	syncMu sync.Mutex // serialises group-commit fsyncs

	// recsSynced mirrors synced in record units, purely for metrics: the
	// amount each fsync advances it is that fsync's group-commit batch
	// size. Only maintained when o.Metrics is set.
	recsSynced atomic.Uint64

	stop chan struct{} // interval-fsync loop, nil unless FsyncInterval
	done sync.WaitGroup
}

const (
	segPrefix = "wal-"
	segSuffix = ".log"
)

func segName(seq uint64) string { return fmt.Sprintf("%s%020d%s", segPrefix, seq, segSuffix) }

func parseSegName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
		return 0, false
	}
	seq, err := strconv.ParseUint(name[len(segPrefix):len(name)-len(segSuffix)], 10, 64)
	return seq, err == nil
}

// listSegments returns the WAL segment numbers present in dir, ascending.
func listSegments(dir string) ([]uint64, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var seqs []uint64
	for _, e := range ents {
		if seq, ok := parseSegName(e.Name()); ok {
			seqs = append(seqs, seq)
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	return seqs, nil
}

// OpenLog starts a fresh active segment with the given number (which must
// not exist yet — recovery always rotates past replayed segments) and
// adopts any older segments still in dir into the live-size accounting.
func OpenLog(dir string, seq uint64, o Options) (*Log, error) {
	o = o.normalize()
	w := &Log{dir: dir, o: o, seq: seq, live: map[uint64]int64{}}
	seqs, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	for _, s := range seqs {
		if s >= seq {
			return nil, fmt.Errorf("persist: segment %d already exists at or past new active %d", s, seq)
		}
		if fi, err := os.Stat(filepath.Join(dir, segName(s))); err == nil {
			w.live[s] = fi.Size()
		}
	}
	w.f, err = os.OpenFile(filepath.Join(dir, segName(seq)), os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	w.live[seq] = 0
	syncDir(dir)
	if o.Fsync == FsyncInterval {
		w.stop = make(chan struct{})
		w.done.Add(1)
		go w.syncLoop()
	}
	return w, nil
}

func (w *Log) syncLoop() {
	defer w.done.Done()
	t := time.NewTicker(w.o.FsyncEvery)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			_ = w.Sync()
		case <-w.stop:
			return
		}
	}
}

// AppendPut logs a point upsert. Under FsyncAlways it returns only once the
// record is on stable storage.
func (w *Log) AppendPut(k, v int64) error {
	return w.append(func(b []byte) []byte { return encodePut(b, k, v) })
}

// AppendDelete logs a point delete.
func (w *Log) AppendDelete(k int64) error {
	return w.append(func(b []byte) []byte { return encodeDelete(b, k) })
}

// maxBatchPairs caps the pairs per batch record so no record can approach
// maxRecordBytes (worst case ~10 bytes per varint pair → ~80 MiB). Larger
// client batches are logged as consecutive chunk records; each chunk
// replays atomically, which is exactly the guarantee the in-memory batch
// gives anyway (a batch is applied gate by gate, not atomically). A var,
// not a const, so tests can exercise the chunking cheaply.
var maxBatchPairs = 1 << 22

// AppendPutBatch logs a PutBatch, splitting oversized batches into chunk
// records.
func (w *Log) AppendPutBatch(keys, vals []int64) error {
	for len(keys) > maxBatchPairs {
		if err := w.append(func(b []byte) []byte {
			return encodeBatch(b, KindPutBatch, keys[:maxBatchPairs], vals[:maxBatchPairs])
		}); err != nil {
			return err
		}
		keys, vals = keys[maxBatchPairs:], vals[maxBatchPairs:]
	}
	return w.append(func(b []byte) []byte { return encodeBatch(b, KindPutBatch, keys, vals) })
}

// AppendDeleteBatch logs a DeleteBatch, splitting oversized batches into
// chunk records.
func (w *Log) AppendDeleteBatch(keys []int64) error {
	for len(keys) > maxBatchPairs {
		if err := w.append(func(b []byte) []byte {
			return encodeBatch(b, KindDeleteBatch, keys[:maxBatchPairs], nil)
		}); err != nil {
			return err
		}
		keys = keys[maxBatchPairs:]
	}
	return w.append(func(b []byte) []byte { return encodeBatch(b, KindDeleteBatch, keys, nil) })
}

func (w *Log) append(encode func([]byte) []byte) error {
	// The append window times the whole call — mutex wait, encode, the
	// kernel write — which is what a request-path caller experiences before
	// any fsync wait; the fsync window (observeFsync) covers the rest.
	var t0 time.Time
	if w.o.Metrics != nil {
		t0 = time.Now()
	}
	w.mu.Lock()
	if w.err != nil {
		err := w.err
		w.mu.Unlock()
		return err
	}
	w.scratch = encode(w.scratch[:0])
	rec := w.scratch
	if len(rec)-frameHeader > maxRecordBytes {
		// Never write a record replay would reject as corrupt: that
		// would acknowledge an update and then silently truncate it
		// (and everything after it) on the next recovery.
		w.mu.Unlock()
		return fmt.Errorf("persist: record payload %d bytes exceeds the %d limit", len(rec)-frameHeader, maxRecordBytes)
	}
	if w.segSize > 0 && w.segSize+int64(len(rec)) > w.o.SegmentBytes {
		if err := w.rotateLocked(); err != nil {
			w.mu.Unlock()
			return err
		}
	}
	if _, err := w.f.Write(rec); err != nil {
		w.err = fmt.Errorf("persist: wal append: %w", err)
		err = w.err
		w.mu.Unlock()
		return err
	}
	w.segSize += int64(len(rec))
	w.live[w.seq] = w.segSize
	w.written += uint64(len(rec))
	w.recs++
	// Counted under mu, before any fsync can cover the record, so
	// GroupCommit.Sum <= Appends holds even against a concurrent Stats.
	if m := w.o.Metrics; m != nil {
		m.Appends.Inc()
		m.AppendBytes.Add(uint64(len(rec)))
		m.AppendWindow.ObserveDuration(time.Since(t0))
	}
	target := w.written
	w.mu.Unlock()

	if w.o.Fsync == FsyncAlways {
		return w.syncTo(target)
	}
	return nil
}

// rotateLocked fsyncs and closes the active segment and opens the next one.
// Called with mu held. Because the outgoing segment is fsynced, synced can
// jump to everything written so far.
func (w *Log) rotateLocked() error {
	var t0 time.Time
	track := w.o.Metrics != nil || w.o.Events != nil
	if track {
		t0 = time.Now()
	}
	if err := w.f.Sync(); err != nil {
		w.err = fmt.Errorf("persist: wal rotate sync: %w", err)
		return w.err
	}
	advanceMax(&w.synced, w.written)
	if track {
		// Every appended record is in this or an older (already fsynced)
		// segment, so this fsync covers all w.recs records. The observe
		// runs with mu held — acceptable, because both the metrics update
		// and any stall hook are required to be fast.
		w.observeFsync(time.Since(t0), w.recs)
	}
	if m := w.o.Metrics; m != nil {
		m.Rotations.Inc()
	}
	if err := w.f.Close(); err != nil {
		w.err = fmt.Errorf("persist: wal rotate close: %w", err)
		return w.err
	}
	w.seq++
	f, err := os.OpenFile(filepath.Join(w.dir, segName(w.seq)), os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		w.err = fmt.Errorf("persist: wal rotate open: %w", err)
		return w.err
	}
	w.f = f
	w.segSize = 0
	w.live[w.seq] = 0
	syncDir(w.dir)
	return nil
}

// Rotate forces a segment boundary and returns the new active segment
// number. A snapshot cuts here: it covers everything before the returned
// segment, so recovery replays from it and older segments become garbage.
func (w *Log) Rotate() (uint64, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return 0, w.err
	}
	if err := w.rotateLocked(); err != nil {
		return 0, err
	}
	return w.seq, nil
}

// Sync forces everything appended so far to stable storage.
func (w *Log) Sync() error {
	w.mu.Lock()
	target := w.written
	err := w.err
	w.mu.Unlock()
	if err != nil {
		return err
	}
	return w.syncTo(target)
}

// syncTo blocks until synced covers target. The caller that wins syncMu
// fsyncs on behalf of everyone queued behind it (group commit); waiters
// whose target was covered meanwhile return without touching the disk.
func (w *Log) syncTo(target uint64) error {
	if w.synced.Load() >= target {
		return nil
	}
	w.syncMu.Lock()
	defer w.syncMu.Unlock()
	if w.synced.Load() >= target {
		return nil
	}
	w.mu.Lock()
	f, written, recs, err := w.f, w.written, w.recs, w.err
	w.mu.Unlock()
	if err != nil {
		return err
	}
	var t0 time.Time
	track := w.o.Metrics != nil || w.o.Events != nil
	if track {
		t0 = time.Now()
	}
	if err := f.Sync(); err != nil {
		// The segment may have been rotated (and fsynced) under us,
		// closing f; if synced now covers the target that fsync was
		// ours in spirit.
		if w.synced.Load() >= target {
			return nil
		}
		w.mu.Lock()
		w.err = fmt.Errorf("persist: wal fsync: %w", err)
		w.mu.Unlock()
		return err
	}
	advanceMax(&w.synced, written)
	if track {
		w.observeFsync(time.Since(t0), recs)
	}
	return nil
}

// observeFsync records one completed File.Sync: its latency, the records it
// newly made durable (the group-commit batch size), and a stall event when
// it breached the threshold. Called from syncTo (no locks held) and from
// rotateLocked (mu held) — hooks must honour the EventHook latency contract.
func (w *Log) observeFsync(d time.Duration, recsAtSync uint64) {
	if m := w.o.Metrics; m != nil {
		m.Fsyncs.Inc()
		m.FsyncNanos.ObserveDuration(d)
		m.FsyncWindow.ObserveDuration(d)
		if delta := advanceMaxDelta(&w.recsSynced, recsAtSync); delta > 0 {
			m.GroupCommit.Observe(delta)
		}
	}
	if h := w.o.Events; h != nil && d >= w.o.FsyncStallThreshold {
		h.OnFsyncStall(obs.FsyncStallEvent{Duration: d, Threshold: w.o.FsyncStallThreshold})
	}
}

func advanceMax(a *atomic.Uint64, v uint64) {
	for {
		cur := a.Load()
		if cur >= v || a.CompareAndSwap(cur, v) {
			return
		}
	}
}

// advanceMaxDelta is advanceMax returning how far it moved the value (0 when
// v was already covered). Concurrent callers see disjoint deltas, so the
// deltas sum to the high-water mark.
func advanceMaxDelta(a *atomic.Uint64, v uint64) uint64 {
	for {
		cur := a.Load()
		if cur >= v {
			return 0
		}
		if a.CompareAndSwap(cur, v) {
			return v - cur
		}
	}
}

// LiveBytes returns the total size of all live segments — the replay work a
// crash would cost right now, and the input to the compaction trigger.
func (w *Log) LiveBytes() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	var n int64
	for _, sz := range w.live {
		n += sz
	}
	return n
}

// ActiveSeq returns the active segment number.
func (w *Log) ActiveSeq() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.seq
}

// TruncateBefore removes all segments numbered below seq — called after a
// snapshot covering them has been durably written. Removal failures are
// ignored: a leftover segment is re-deleted after the next snapshot, and
// replay skips segments below the snapshot's cut anyway.
func (w *Log) TruncateBefore(seq uint64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	for s := range w.live {
		if s < seq {
			_ = os.Remove(filepath.Join(w.dir, segName(s)))
			delete(w.live, s)
		}
	}
	syncDir(w.dir)
}

// Close fsyncs and closes the active segment. The log must not be used
// afterwards; Close is idempotent only through its owner (pmago.DB guards).
func (w *Log) Close() error {
	if w.stop != nil {
		close(w.stop)
		w.done.Wait()
	}
	syncErr := w.Sync()
	w.mu.Lock()
	defer w.mu.Unlock()
	closeErr := w.f.Close()
	if w.err == nil {
		w.err = fmt.Errorf("persist: log closed")
	}
	if syncErr != nil {
		return syncErr
	}
	return closeErr
}

// Replay feeds every complete record in segments >= fromSeq, in log order,
// to fn. A torn or corrupt record in the final segment ends replay and is
// truncated off the file together with everything after it — the signature
// of a crash mid-append; the same damage in any earlier segment is returned
// as an error, because closed segments were fsynced and should never tear.
// It returns the highest segment number seen (fromSeq-1 when none exist),
// so the caller can open the log past it.
func Replay(dir string, fromSeq uint64, fn func(*Record) error) (lastSeq uint64, err error) {
	seqs, err := listSegments(dir)
	if err != nil {
		return 0, err
	}
	lastSeq = fromSeq - 1
	var replay []uint64
	for _, s := range seqs {
		if s >= fromSeq {
			replay = append(replay, s)
		}
	}
	for i, s := range replay {
		if i > 0 && s != replay[i-1]+1 {
			return 0, fmt.Errorf("persist: wal gap: segment %d follows %d", s, replay[i-1])
		}
	}
	// The cut segment itself must be the first one replayed: a snapshot's
	// rotation always creates segment fromSeq, so starting anywhere later
	// means records between the checkpoint and the surviving tail are
	// gone (e.g. a fallback to an older snapshot whose segments were
	// already truncated). An empty tail is fine — a snapshot-only restore.
	if len(replay) > 0 && replay[0] != fromSeq {
		return 0, fmt.Errorf("persist: wal history incomplete: replay must start at segment %d but oldest surviving segment is %d", fromSeq, replay[0])
	}
	var rec Record
	for i, s := range replay {
		path := filepath.Join(dir, segName(s))
		data, err := os.ReadFile(path)
		if err != nil {
			return 0, err
		}
		off := 0
		for off < len(data) {
			n, ok := decodeRecord(data[off:], &rec)
			if !ok {
				if i != len(replay)-1 {
					return 0, fmt.Errorf("persist: corrupt record at %s offset %d (closed segment)", segName(s), off)
				}
				// A crash can only tear the very last append: nothing is
				// ever written after a torn record. If checksum-valid
				// records exist past the damage, this is bit rot eating
				// acknowledged writes — refuse, like for closed segments,
				// rather than silently truncating the valid suffix.
				if hasValidRecordAfter(data, off) {
					return 0, fmt.Errorf("persist: corrupt record at %s offset %d followed by valid records (bit rot, not a torn tail)", segName(s), off)
				}
				if err := os.Truncate(path, int64(off)); err != nil {
					return 0, fmt.Errorf("persist: truncating torn tail of %s: %w", segName(s), err)
				}
				syncDir(dir)
				break
			}
			if err := fn(&rec); err != nil {
				return 0, err
			}
			off += n
		}
		lastSeq = s
	}
	return lastSeq, nil
}
