package persist

import (
	"encoding/binary"
	"hash/crc32"
	"math/bits"
	"slices"
)

// The torn-tail probe (hasValidRecordAfter in wal.go) must decide, after a
// record fails to decode in the final WAL segment, whether any checksum-
// valid record still starts somewhere after the damage — the discriminator
// between a crash-torn final append (truncate and recover) and mid-segment
// bit rot (refuse, acknowledged data would be lost). The naive probe
// re-CRCs a candidate frame at every byte offset whose length field looks
// plausible; in a large torn span of effectively random bytes about one in
// ~100 offsets is plausible and each costs a CRC over megabytes, so the
// probe degenerates to O(span^2)-ish work — minutes for a torn tail of tens
// of MiB, multiplied by the shard count during parallel sharded recovery.
//
// This file bounds the probe to linear work using the standard CRC-combine
// identity. CRC32 register evolution is affine over GF(2): feeding bytes B
// from register x yields M_|B|·x ⊕ c(B), where the matrix M depends only on
// the length and c only on the data. From one streaming pass of prefix
// checksums R(i) = CRC(data[base:i]) the checksum of ANY window follows in
// O(log len) matrix-vector products:
//
//	CRC(data[s:j]) = R(j) ⊕ M_{j-s}·R(s)
//
// so the probe costs one cheap header scan, one sequential CRC pass (which
// uses the hardware-accelerated path), and ~a microsecond per candidate —
// the same "does any valid record follow" answer, minus the quadratic blowup.

// crcMat is a 32x32 GF(2) matrix in column form: column k is the image of
// the register with only bit k set.
type crcMat [32]uint32

// matVec applies m to v (XOR of the columns selected by v's set bits).
func matVec(m *crcMat, v uint32) uint32 {
	var r uint32
	for v != 0 {
		i := bits.TrailingZeros32(v)
		r ^= m[i]
		v &^= 1 << i
	}
	return r
}

// matSquare returns m·m.
func matSquare(m *crcMat) crcMat {
	var out crcMat
	for i := range out {
		out[i] = matVec(m, m[i])
	}
	return out
}

// zeroStep advances the (reflected Castagnoli) CRC register by one zero
// byte. Linear in r: the CRC table satisfies tab[a^b] = tab[a]^tab[b].
func zeroStep(r uint32) uint32 {
	return crcTable[byte(r)] ^ (r >> 8)
}

// zeroMatPow[j] advances the register by 2^j zero bytes. 2^30 bytes tops
// maxRecordBytes, the largest window the probe can meet.
var zeroMatPow = func() [31]crcMat {
	var pows [31]crcMat
	for k := 0; k < 32; k++ {
		pows[0][k] = zeroStep(1 << k)
	}
	for j := 1; j < len(pows); j++ {
		pows[j] = matSquare(&pows[j-1])
	}
	return pows
}()

// zeroAdvance returns the register after n more zero bytes.
func zeroAdvance(r uint32, n int) uint32 {
	for j := 0; n > 0; j, n = j+1, n>>1 {
		if n&1 != 0 {
			r = matVec(&zeroMatPow[j], r)
		}
	}
	return r
}

// crcOfWindow computes crc32.Checksum(data[s:j]) from the prefix checksums
// rs = Checksum(data[base:s]) and rj = Checksum(data[base:j]) for any common
// base <= s <= j. See the derivation at the top of the file; the init/final
// XOR conditioning of the finalized checksums cancels.
func crcOfWindow(rs, rj uint32, length int) uint32 {
	return rj ^ zeroAdvance(rs, length)
}

// probeCand is one header-plausible frame candidate: payload data[start:end]
// must hash to want for a record to start at start-frameHeader.
type probeCand struct {
	start, end int
	want       uint32
}

// probeChunkSize bounds how many candidates are buffered (and how much
// memory the probe uses) before a prefix-CRC pass evaluates them. Random
// garbage yields ~1% plausible offsets, so one chunk covers torn tails into
// the hundreds of MiB; pathological data just pays one extra linear pass
// per chunk. A var so the regression test can force multi-chunk operation.
var probeChunkSize = 1 << 20

// hasValidRecordAfter reports whether a checksum-valid record starts at any
// offset past a decode failure — the discriminator between a torn final
// append (nothing follows) and mid-segment corruption (the rest of the
// segment is still there). Only runs on the corruption path; a chance CRC
// match in torn garbage is a ~2^-32 event.
func hasValidRecordAfter(data []byte, off int) bool {
	cands := make([]probeCand, 0, min(probeChunkSize, 1024))
	for i := off + 1; i+frameHeader <= len(data); i++ {
		n := binary.LittleEndian.Uint32(data[i:])
		if n == 0 || n > maxRecordBytes || int(n) > len(data)-i-frameHeader {
			continue
		}
		cands = append(cands, probeCand{
			start: i + frameHeader,
			end:   i + frameHeader + int(n),
			want:  binary.LittleEndian.Uint32(data[i+4:]),
		})
		if len(cands) >= probeChunkSize {
			if probeChunk(data, cands) {
				return true
			}
			cands = cands[:0]
		}
	}
	return probeChunk(data, cands)
}

// probeChunk evaluates one batch of candidates: a single streaming CRC pass
// captures the prefix checksum at every offset a candidate needs, then each
// candidate's window CRC is derived via crcOfWindow. A window match is
// confirmed with a full decodeRecord (re-hash plus payload parse) — it runs
// at most once per genuine record and ~never on garbage.
func probeChunk(data []byte, cands []probeCand) bool {
	if len(cands) == 0 {
		return false
	}
	offs := make([]int, 0, 2*len(cands))
	for _, c := range cands {
		offs = append(offs, c.start, c.end)
	}
	slices.Sort(offs)
	offs = slices.Compact(offs)
	prefix := make([]uint32, len(offs))
	cur, last := uint32(0), offs[0]
	for i, o := range offs {
		cur = crc32.Update(cur, crcTable, data[last:o])
		last = o
		prefix[i] = cur
	}
	at := func(o int) uint32 {
		i, _ := slices.BinarySearch(offs, o)
		return prefix[i]
	}
	var rec Record
	for _, c := range cands {
		if crcOfWindow(at(c.start), at(c.end), c.end-c.start) != c.want {
			continue
		}
		if _, ok := decodeRecord(data[c.start-frameHeader:], &rec); ok {
			return true
		}
	}
	return false
}
