package persist

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// WAL record wire format. Each record is framed as
//
//	u32 payload length (little endian)
//	u32 CRC32-C of the payload
//	payload
//
// and the payload is a kind byte followed by zigzag varints:
//
//	KindPut:         key, val
//	KindDelete:      key
//	KindPutBatch:    count, then count keys, then count vals
//	KindDeleteBatch: count, then count keys
//
// Batch records keep the caller's original order and duplicates — replay
// re-applies them through the same batch entry points, which sort and
// last-wins-dedup exactly as the original call did. The frame CRC is what
// lets recovery distinguish a torn append (garbage tail) from a valid
// record; the length field is additionally sanity-bounded so a corrupt
// length cannot make the reader allocate gigabytes.
const (
	KindPut byte = iota + 1
	KindDelete
	KindPutBatch
	KindDeleteBatch
)

// maxRecordBytes bounds a single record frame (a batch of ~50M pairs). A
// length above this is treated as corruption, not an allocation request.
const maxRecordBytes = 1 << 30

const frameHeader = 8 // length + crc

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Record is one decoded WAL entry. Keys/Vals alias the decode buffer only
// for the duration of the replay callback.
type Record struct {
	Kind byte
	Keys []int64
	Vals []int64
}

// putUvarint/putVarint append to a byte slice (binary.AppendUvarint spelled
// out for clarity at the call sites).
func appendVarint(b []byte, v int64) []byte   { return binary.AppendVarint(b, v) }
func appendUvarint(b []byte, v uint64) []byte { return binary.AppendUvarint(b, v) }

// encodePut appends a framed KindPut record to b.
func encodePut(b []byte, k, v int64) []byte {
	return frame(b, func(p []byte) []byte {
		p = append(p, KindPut)
		p = appendVarint(p, k)
		p = appendVarint(p, v)
		return p
	})
}

// encodeDelete appends a framed KindDelete record to b.
func encodeDelete(b []byte, k int64) []byte {
	return frame(b, func(p []byte) []byte {
		p = append(p, KindDelete)
		p = appendVarint(p, k)
		return p
	})
}

// encodeBatch appends a framed batch record (vals nil for deletes) to b.
func encodeBatch(b []byte, kind byte, keys, vals []int64) []byte {
	return frame(b, func(p []byte) []byte {
		p = append(p, kind)
		p = appendUvarint(p, uint64(len(keys)))
		for _, k := range keys {
			p = appendVarint(p, k)
		}
		for _, v := range vals {
			p = appendVarint(p, v)
		}
		return p
	})
}

// frame reserves the 8-byte header, lets fill append the payload, then
// back-patches length and CRC.
func frame(b []byte, fill func([]byte) []byte) []byte {
	start := len(b)
	b = append(b, 0, 0, 0, 0, 0, 0, 0, 0)
	b = fill(b)
	payload := b[start+frameHeader:]
	binary.LittleEndian.PutUint32(b[start:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(b[start+4:], crc32.Checksum(payload, crcTable))
	return b
}

// decodeRecord parses one framed record from the front of b, returning the
// record and the total frame size. ok=false means b does not start with a
// complete, checksum-valid record — a torn or corrupt tail from the reader's
// point of view.
func decodeRecord(b []byte, rec *Record) (frameLen int, ok bool) {
	if len(b) < frameHeader {
		return 0, false
	}
	n := binary.LittleEndian.Uint32(b)
	if n == 0 || n > maxRecordBytes || int(n) > len(b)-frameHeader {
		return 0, false
	}
	payload := b[frameHeader : frameHeader+int(n)]
	if crc32.Checksum(payload, crcTable) != binary.LittleEndian.Uint32(b[4:]) {
		return 0, false
	}
	if !decodePayload(payload, rec) {
		return 0, false
	}
	return frameHeader + int(n), true
}

func decodePayload(p []byte, rec *Record) bool {
	if len(p) == 0 {
		return false
	}
	rec.Kind = p[0]
	p = p[1:]
	readVarint := func() (int64, bool) {
		v, n := binary.Varint(p)
		if n <= 0 {
			return 0, false
		}
		p = p[n:]
		return v, true
	}
	switch rec.Kind {
	case KindPut:
		k, ok1 := readVarint()
		v, ok2 := readVarint()
		if !ok1 || !ok2 {
			return false
		}
		rec.Keys = append(rec.Keys[:0], k)
		rec.Vals = append(rec.Vals[:0], v)
	case KindDelete:
		k, ok := readVarint()
		if !ok {
			return false
		}
		rec.Keys = append(rec.Keys[:0], k)
		rec.Vals = rec.Vals[:0]
	case KindPutBatch, KindDeleteBatch:
		c, un := binary.Uvarint(p)
		// Every key costs at least one payload byte, so a count beyond the
		// remaining payload is corruption — checked before allocating, so
		// a crafted count cannot force a multi-GiB slice.
		if un <= 0 || c > uint64(len(p)-un) {
			return false
		}
		p = p[un:]
		n := int(c)
		rec.Keys = growTo(rec.Keys, n)
		for i := 0; i < n; i++ {
			k, ok := readVarint()
			if !ok {
				return false
			}
			rec.Keys[i] = k
		}
		if rec.Kind == KindPutBatch {
			rec.Vals = growTo(rec.Vals, n)
			for i := 0; i < n; i++ {
				v, ok := readVarint()
				if !ok {
					return false
				}
				rec.Vals[i] = v
			}
		} else {
			rec.Vals = rec.Vals[:0]
		}
	default:
		return false
	}
	return len(p) == 0 // trailing payload bytes = corruption
}

func growTo(s []int64, n int) []int64 {
	if cap(s) < n {
		return make([]int64, n)
	}
	return s[:n]
}

func (r *Record) String() string {
	return fmt.Sprintf("persist.Record{kind=%d n=%d}", r.Kind, len(r.Keys))
}
