// Package persist is the durability layer under pmago.Open: a segmented
// write-ahead log plus CRC-checked, delta-encoded snapshots of the whole
// store, and the recovery logic that stitches the two back together after a
// crash.
//
// The design follows the classic checkpoint+log recipe. Every accepted
// update is first appended to the active WAL segment as a length-prefixed,
// CRC32C-protected record (wal.go); an fsync policy decides when appended
// records become crash-durable, with concurrent writers sharing fsyncs
// through group commit. A snapshot (snapshot.go) is a consistent full scan
// streamed into blocks of delta-encoded key/value pairs, written to a
// temporary file and atomically renamed; its header names the WAL segment
// recovery must replay from, so finishing a snapshot makes every older
// segment garbage (log truncation). Recovery finds the newest snapshot that
// passes all its checksums, bulk-loads it, and replays the WAL tail,
// truncating a torn final record where a crash cut an append short.
//
// The package is deliberately independent of the PMA: it moves int64 pairs
// and opaque op records. pmago.Open owns the glue — it implements
// core.UpdateHook with Log appends and feeds LoadSnapshot into BulkLoad.
package persist

import (
	"fmt"
	"os"
	"time"

	"pmago/internal/obs"
)

// FsyncPolicy selects when appended WAL records are forced to stable
// storage — the durability/throughput dial of the log.
type FsyncPolicy int

const (
	// FsyncAlways fsyncs before an update is acknowledged: every write
	// that returned survives a crash. Concurrent writers share fsyncs
	// through group commit, so throughput scales with the write
	// concurrency rather than collapsing to one fsync per op.
	FsyncAlways FsyncPolicy = iota
	// FsyncInterval fsyncs on a timer (Options.FsyncEvery): a crash
	// loses at most the last interval's acknowledged writes. Process
	// crashes (panic, kill) lose nothing — the records are already in
	// the page cache — only power loss or a kernel crash can.
	FsyncInterval
	// FsyncNone never fsyncs explicitly; the OS writes back at its
	// leisure. Same process-crash guarantee as FsyncInterval, no
	// guarantee against power loss. The fastest policy.
	FsyncNone
)

func (p FsyncPolicy) String() string {
	switch p {
	case FsyncAlways:
		return "always"
	case FsyncInterval:
		return "interval"
	case FsyncNone:
		return "none"
	default:
		return fmt.Sprintf("FsyncPolicy(%d)", int(p))
	}
}

// Options tunes the durability layer. pmago mirrors each field as a
// WithXxx option on Open.
type Options struct {
	// Fsync is the WAL durability policy.
	Fsync FsyncPolicy
	// FsyncEvery is the FsyncInterval period (default 50ms).
	FsyncEvery time.Duration
	// SegmentBytes rotates the active WAL segment when it grows past
	// this size (default 64 MiB). Closed segments are fsynced, so only
	// the active segment can ever hold a torn tail.
	SegmentBytes int64
	// CompactRatio triggers an automatic snapshot (and WAL truncation)
	// when the live WAL exceeds this multiple of the last snapshot's
	// size (default 4). Zero or negative disables auto-compaction;
	// Snapshot can still be called explicitly.
	CompactRatio float64
	// CompactMinBytes is the WAL size floor below which auto-compaction
	// never fires, whatever the ratio says (default 8 MiB). It also
	// serves as the threshold while no snapshot exists yet.
	CompactMinBytes int64
	// SnapshotBlockEntries is the number of pairs per snapshot block
	// (default 8192); each block carries its own checksum.
	SnapshotBlockEntries int
	// Metrics receives the log's counters and latency histograms when
	// non-nil (the owning store allocates and snapshots it; see
	// obs.WALMetrics). Nil disables WAL metrics at the cost of one nil
	// check per instrumentation site.
	Metrics *obs.WALMetrics
	// Events receives OnFsyncStall callbacks. Stall events can fire from
	// the rotation path, which holds the log's append mutex — the hook
	// must be fast and must not call back into the log.
	Events obs.EventHook
	// FsyncStallThreshold is the File.Sync duration at or above which an
	// OnFsyncStall event fires (default 100ms). Only consulted when
	// Events is non-nil.
	FsyncStallThreshold time.Duration
}

// DefaultOptions returns the defaults described on each field.
func DefaultOptions() Options {
	return Options{
		Fsync:                FsyncAlways,
		FsyncEvery:           50 * time.Millisecond,
		SegmentBytes:         64 << 20,
		CompactRatio:         4,
		CompactMinBytes:      8 << 20,
		SnapshotBlockEntries: 8192,
	}
}

// normalize fills zero fields from the defaults (negative CompactRatio is
// kept: it means "disabled").
func (o Options) normalize() Options {
	def := DefaultOptions()
	if o.FsyncEvery <= 0 {
		o.FsyncEvery = def.FsyncEvery
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = def.SegmentBytes
	}
	if o.CompactMinBytes <= 0 {
		o.CompactMinBytes = def.CompactMinBytes
	}
	if o.SnapshotBlockEntries <= 0 {
		o.SnapshotBlockEntries = def.SnapshotBlockEntries
	}
	if o.FsyncStallThreshold <= 0 {
		o.FsyncStallThreshold = 100 * time.Millisecond
	}
	return o
}

// syncDir fsyncs a directory so renames and removals inside it survive a
// crash. Best-effort: some filesystems reject directory fsync.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	_ = d.Sync()
	_ = d.Close()
}
