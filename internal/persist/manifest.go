package persist

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// The shard manifest is the one file in a sharded store's parent directory
// that is not owned by an individual shard: it records how many shards exist
// and how keys are placed across them. Reopen must route every key exactly
// as the writer did — a different shard count or placement would silently
// re-home keys (lookups miss data that sits in another shard's PMA), so the
// manifest is written once when the store is created and verified on every
// OpenSharded. It is small and rewritten atomically (temp file + rename,
// like snapshots); a reader treats any parse or validation failure as a hard
// error rather than guessing a topology.

// Placement kind names recorded in the manifest.
const (
	PlacementStraw2 = "straw2"
	PlacementRange  = "range"
)

// manifestName is the manifest file name inside the parent directory.
const manifestName = "MANIFEST.json"

// ShardManifest describes a sharded store's topology.
type ShardManifest struct {
	// Version is the manifest schema version (currently 1).
	Version int `json:"version"`
	// Shards is the number of shard directories (shard-000 ... ).
	Shards int `json:"shards"`
	// Placement is PlacementStraw2 or PlacementRange.
	Placement string `json:"placement"`
	// Weights are the straw2 shard weights (len == Shards); nil for range.
	Weights []float64 `json:"weights,omitempty"`
	// Splits are the range split points (len == Shards-1); nil for straw2.
	Splits []int64 `json:"splits,omitempty"`
}

// validate checks internal consistency.
func (m ShardManifest) validate() error {
	if m.Version != 1 {
		return fmt.Errorf("persist: unsupported manifest version %d", m.Version)
	}
	if m.Shards < 1 {
		return fmt.Errorf("persist: manifest shard count %d", m.Shards)
	}
	switch m.Placement {
	case PlacementStraw2:
		if len(m.Weights) != m.Shards {
			return fmt.Errorf("persist: manifest has %d weights for %d shards", len(m.Weights), m.Shards)
		}
		if len(m.Splits) != 0 {
			return fmt.Errorf("persist: straw2 manifest carries range splits")
		}
	case PlacementRange:
		if len(m.Splits) != m.Shards-1 {
			return fmt.Errorf("persist: manifest has %d splits for %d shards", len(m.Splits), m.Shards)
		}
		if len(m.Weights) != 0 {
			return fmt.Errorf("persist: range manifest carries straw2 weights")
		}
	default:
		return fmt.Errorf("persist: unknown placement %q in manifest", m.Placement)
	}
	return nil
}

// Equal reports whether two manifests describe the same topology.
func (m ShardManifest) Equal(o ShardManifest) bool {
	if m.Version != o.Version || m.Shards != o.Shards || m.Placement != o.Placement ||
		len(m.Weights) != len(o.Weights) || len(m.Splits) != len(o.Splits) {
		return false
	}
	for i := range m.Weights {
		if m.Weights[i] != o.Weights[i] {
			return false
		}
	}
	for i := range m.Splits {
		if m.Splits[i] != o.Splits[i] {
			return false
		}
	}
	return true
}

func (m ShardManifest) String() string {
	switch m.Placement {
	case PlacementStraw2:
		return fmt.Sprintf("%d shards, straw2 weights %v", m.Shards, m.Weights)
	case PlacementRange:
		return fmt.Sprintf("%d shards, range splits %v", m.Shards, m.Splits)
	default:
		return fmt.Sprintf("%d shards, placement %q", m.Shards, m.Placement)
	}
}

// SaveManifest durably writes the manifest into dir (temp file, fsync,
// rename, directory sync — a crash leaves either the old manifest or the
// new one, never a torn file).
func SaveManifest(dir string, m ShardManifest) error {
	if err := m.validate(); err != nil {
		return err
	}
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	path := filepath.Join(dir, manifestName)
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	syncDir(dir)
	return nil
}

// LoadManifest reads the manifest from dir. ok is false when none exists;
// a manifest that exists but does not parse or validate is an error — the
// topology is unknown and opening shards anyway could lose data.
func LoadManifest(dir string) (m ShardManifest, ok bool, err error) {
	data, err := os.ReadFile(filepath.Join(dir, manifestName))
	if os.IsNotExist(err) {
		return ShardManifest{}, false, nil
	}
	if err != nil {
		return ShardManifest{}, false, err
	}
	if err := json.Unmarshal(data, &m); err != nil {
		return ShardManifest{}, false, fmt.Errorf("persist: corrupt shard manifest in %s: %w", dir, err)
	}
	if err := m.validate(); err != nil {
		return ShardManifest{}, false, err
	}
	return m, true, nil
}
