package persist

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"

	"pmago/internal/codec"
)

// Snapshot wire format. A snapshot is one consistent full scan of the
// store, framed so every byte is covered by a checksum:
//
//	magic   "PMASNAP1"
//	u64     walSeq — recovery replays WAL segments >= this
//	frames  { u8 frameBlock, u32 payloadLen, u32 CRC32-C, payload }*
//	trailer { u8 frameTrailer, u64 pair count, u32 CRC32-C of the count }
//
// Block payloads are delta-encoded by the shared internal/codec package
// (pair count, the block's first key as a zigzag varint, then successive
// key gaps as plain uvarints, then the values as zigzag varints — see the
// codec docs), the same encoding the core uses for compressed in-memory
// chunks. A sorted int64 store snapshots at a few bytes per pair instead
// of 16, and a compressed store can stream its segments into snapshot
// blocks without ever decoding (WriteSnapshotBlocks).
//
// The file is written as snap-<seq>.pma.tmp, fsynced, then renamed: a
// crash mid-snapshot leaves only a .tmp that recovery ignores. A snapshot
// is valid only if the magic, every block CRC, the trailer CRC and the
// total count all check out; otherwise recovery falls back to the previous
// snapshot, whose WAL segments are only deleted after a newer snapshot
// lands durably.
const (
	snapMagic    = "PMASNAP1"
	frameBlock   = 1
	frameTrailer = 2
	snapPrefix   = "snap-"
	snapSuffix   = ".pma"
)

func snapName(seq uint64) string { return fmt.Sprintf("%s%020d%s", snapPrefix, seq, snapSuffix) }

func parseSnapName(name string) (uint64, bool) {
	if len(name) < len(snapPrefix)+len(snapSuffix) ||
		name[:len(snapPrefix)] != snapPrefix || name[len(name)-len(snapSuffix):] != snapSuffix {
		return 0, false
	}
	var seq uint64
	_, err := fmt.Sscanf(name[len(snapPrefix):len(name)-len(snapSuffix)], "%d", &seq)
	return seq, err == nil
}

// listSnapshots returns snapshot sequence numbers in dir, descending
// (newest first).
func listSnapshots(dir string) ([]uint64, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var seqs []uint64
	for _, e := range ents {
		if seq, ok := parseSnapName(e.Name()); ok {
			seqs = append(seqs, seq)
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] > seqs[j] })
	return seqs, nil
}

// WriteSnapshot streams the pairs produced by iter (which must yield
// strictly increasing keys — a PMA scan does) into a durable snapshot file
// covering WAL segments below walSeq. A non-nil error from iter — raised
// after the scan, e.g. when the caller fails to sync the WAL records the
// scan may have observed — aborts the snapshot before it is published.
// It reports the pair count and the file size, the latter feeding the
// compaction trigger.
func WriteSnapshot(dir string, walSeq uint64, iter func(yield func(k, v int64) bool) error, o Options) (count, size int64, err error) {
	o = o.normalize()
	tmp := filepath.Join(dir, snapName(walSeq)+".tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return 0, 0, err
	}
	defer func() {
		if err != nil {
			f.Close()
			os.Remove(tmp)
		}
	}()
	bw := bufio.NewWriterSize(f, 1<<20)
	header := make([]byte, 0, 16)
	header = append(header, snapMagic...)
	header = binary.LittleEndian.AppendUint64(header, walSeq)
	if _, err = bw.Write(header); err != nil {
		return 0, 0, err
	}

	var (
		blockK  = make([]int64, 0, o.SnapshotBlockEntries)
		blockV  = make([]int64, 0, o.SnapshotBlockEntries)
		scratch []byte
		prev    int64
		iterErr error
	)
	flush := func() error {
		if len(blockK) == 0 {
			return nil
		}
		scratch = encodeSnapBlock(scratch[:0], blockK, blockV)
		blockK, blockV = blockK[:0], blockV[:0]
		_, werr := bw.Write(scratch)
		return werr
	}
	cbErr := iter(func(k, v int64) bool {
		if count > 0 && k <= prev {
			iterErr = fmt.Errorf("persist: snapshot iterator not strictly increasing at key %d", k)
			return false
		}
		prev = k
		count++
		blockK = append(blockK, k)
		blockV = append(blockV, v)
		if len(blockK) >= o.SnapshotBlockEntries {
			if werr := flush(); werr != nil {
				iterErr = werr
				return false
			}
		}
		return true
	})
	if err = iterErr; err != nil {
		return 0, 0, err
	}
	// An iterator failure (e.g. the caller could not make the scanned
	// state durable) aborts before the trailer and rename: the temp file
	// is removed and no checkpoint is published.
	if err = cbErr; err != nil {
		return 0, 0, err
	}
	if err = flush(); err != nil {
		return 0, 0, err
	}
	trailer := make([]byte, 0, 13)
	trailer = append(trailer, frameTrailer)
	trailer = binary.LittleEndian.AppendUint64(trailer, uint64(count))
	trailer = binary.LittleEndian.AppendUint32(trailer, crc32.Checksum(trailer[1:9], crcTable))
	if _, err = bw.Write(trailer); err != nil {
		return 0, 0, err
	}
	if err = bw.Flush(); err != nil {
		return 0, 0, err
	}
	if err = f.Sync(); err != nil {
		return 0, 0, err
	}
	fi, statErr := f.Stat()
	if err = statErr; err != nil {
		return 0, 0, err
	}
	if err = f.Close(); err != nil {
		return 0, 0, err
	}
	if err = os.Rename(tmp, filepath.Join(dir, snapName(walSeq))); err != nil {
		return 0, 0, err
	}
	syncDir(dir)
	return count, fi.Size(), nil
}

// encodeSnapBlock appends one framed, delta-encoded block to b.
func encodeSnapBlock(b []byte, keys, vals []int64) []byte {
	start := len(b)
	b = append(b, frameBlock, 0, 0, 0, 0, 0, 0, 0, 0)
	b = codec.AppendBlock(b, keys, vals)
	payload := b[start+9:]
	binary.LittleEndian.PutUint32(b[start+1:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(b[start+5:], crc32.Checksum(payload, crcTable))
	return b
}

// appendRawBlock frames an already-encoded codec block payload — the
// compressed store's snapshot fast path, which never decodes its segments.
func appendRawBlock(b, payload []byte) []byte {
	b = append(b, frameBlock, 0, 0, 0, 0, 0, 0, 0, 0)
	binary.LittleEndian.PutUint32(b[len(b)-8:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(b[len(b)-4:], crc32.Checksum(payload, crcTable))
	return append(b, payload...)
}

// WriteSnapshotBlocks is WriteSnapshot for a store whose chunks are already
// codec-encoded: iter yields whole block payloads (with their pair counts)
// instead of pairs, and each payload is framed and checksummed as-is — the
// pairs are never decoded on the way to disk. Payloads must be valid codec
// blocks in ascending key order; each block's header is re-parsed here so a
// corrupt count or out-of-order first key aborts the snapshot rather than
// publishing a checkpoint recovery would then reject wholesale.
func WriteSnapshotBlocks(dir string, walSeq uint64, iter func(yield func(payload []byte, pairs int) bool) error, o Options) (count, size int64, err error) {
	tmp := filepath.Join(dir, snapName(walSeq)+".tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return 0, 0, err
	}
	defer func() {
		if err != nil {
			f.Close()
			os.Remove(tmp)
		}
	}()
	bw := bufio.NewWriterSize(f, 1<<20)
	header := make([]byte, 0, 16)
	header = append(header, snapMagic...)
	header = binary.LittleEndian.AppendUint64(header, walSeq)
	if _, err = bw.Write(header); err != nil {
		return 0, 0, err
	}

	var (
		scratch   []byte
		prevFirst int64
		iterErr   error
	)
	cbErr := iter(func(payload []byte, pairs int) bool {
		c, cerr := codec.BlockCount(payload, maxRecordBytes/2)
		if cerr != nil || c != pairs {
			iterErr = fmt.Errorf("persist: snapshot block header disagrees with caller: %d pairs claimed", pairs)
			return false
		}
		first, ok := blockFirstKey(payload)
		if !ok || (count > 0 && first <= prevFirst) {
			iterErr = fmt.Errorf("persist: snapshot blocks not in ascending key order")
			return false
		}
		prevFirst = first
		count += int64(pairs)
		scratch = appendRawBlock(scratch[:0], payload)
		_, werr := bw.Write(scratch)
		if werr != nil {
			iterErr = werr
			return false
		}
		return true
	})
	if err = iterErr; err != nil {
		return 0, 0, err
	}
	if err = cbErr; err != nil {
		return 0, 0, err
	}
	trailer := make([]byte, 0, 13)
	trailer = append(trailer, frameTrailer)
	trailer = binary.LittleEndian.AppendUint64(trailer, uint64(count))
	trailer = binary.LittleEndian.AppendUint32(trailer, crc32.Checksum(trailer[1:9], crcTable))
	if _, err = bw.Write(trailer); err != nil {
		return 0, 0, err
	}
	if err = bw.Flush(); err != nil {
		return 0, 0, err
	}
	if err = f.Sync(); err != nil {
		return 0, 0, err
	}
	fi, statErr := f.Stat()
	if err = statErr; err != nil {
		return 0, 0, err
	}
	if err = f.Close(); err != nil {
		return 0, 0, err
	}
	if err = os.Rename(tmp, filepath.Join(dir, snapName(walSeq))); err != nil {
		return 0, 0, err
	}
	syncDir(dir)
	return count, fi.Size(), nil
}

// blockFirstKey peeks a codec block's first key without decoding the pairs:
// the cheap cross-block ordering check WriteSnapshotBlocks runs per block.
func blockFirstKey(p []byte) (int64, bool) {
	_, un := binary.Uvarint(p)
	if un <= 0 {
		return 0, false
	}
	k, vn := binary.Varint(p[un:])
	return k, vn > 0
}

// LoadSnapshot reads and fully validates a snapshot file, returning its
// sorted pairs and the WAL segment recovery must replay from. Any checksum,
// framing or count mismatch invalidates the whole file.
func LoadSnapshot(path string) (keys, vals []int64, walSeq uint64, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, 0, err
	}
	if len(data) < len(snapMagic)+8 || string(data[:len(snapMagic)]) != snapMagic {
		return nil, nil, 0, fmt.Errorf("persist: %s: bad snapshot magic", filepath.Base(path))
	}
	walSeq = binary.LittleEndian.Uint64(data[len(snapMagic):])
	p := data[len(snapMagic)+8:]
	for {
		if len(p) == 0 {
			return nil, nil, 0, fmt.Errorf("persist: %s: missing trailer", filepath.Base(path))
		}
		switch p[0] {
		case frameBlock:
			if len(p) < 9 {
				return nil, nil, 0, fmt.Errorf("persist: %s: truncated block frame", filepath.Base(path))
			}
			n := binary.LittleEndian.Uint32(p[1:])
			if n == 0 || n > maxRecordBytes || int(n) > len(p)-9 {
				return nil, nil, 0, fmt.Errorf("persist: %s: bad block length", filepath.Base(path))
			}
			payload := p[9 : 9+int(n)]
			if crc32.Checksum(payload, crcTable) != binary.LittleEndian.Uint32(p[5:]) {
				return nil, nil, 0, fmt.Errorf("persist: %s: block checksum mismatch", filepath.Base(path))
			}
			keys, vals, err = decodeSnapBlock(payload, keys, vals)
			if err != nil {
				return nil, nil, 0, fmt.Errorf("persist: %s: %w", filepath.Base(path), err)
			}
			p = p[9+int(n):]
		case frameTrailer:
			if len(p) != 13 {
				return nil, nil, 0, fmt.Errorf("persist: %s: bad trailer", filepath.Base(path))
			}
			if crc32.Checksum(p[1:9], crcTable) != binary.LittleEndian.Uint32(p[9:]) {
				return nil, nil, 0, fmt.Errorf("persist: %s: trailer checksum mismatch", filepath.Base(path))
			}
			if want := binary.LittleEndian.Uint64(p[1:]); want != uint64(len(keys)) {
				return nil, nil, 0, fmt.Errorf("persist: %s: count mismatch: trailer %d, blocks %d",
					filepath.Base(path), want, len(keys))
			}
			return keys, vals, walSeq, nil
		default:
			return nil, nil, 0, fmt.Errorf("persist: %s: unknown frame %d", filepath.Base(path), p[0])
		}
	}
}

// decodeSnapBlock delegates to the shared hardened decoder; the key-delta
// overflow check and all other consistency rules live in internal/codec
// (this used to be a duplicated copy of the core's decoder). A decode error
// invalidates the whole snapshot, so the partially-appended pairs codec may
// leave behind are discarded by the caller.
func decodeSnapBlock(p []byte, keys, vals []int64) ([]int64, []int64, error) {
	return codec.DecodeBlock(p, keys, vals, maxRecordBytes/2)
}

// RemoveSnapshotsBefore deletes snapshots older than seq; called after the
// snapshot at seq is durable. Best-effort, like WAL truncation.
func RemoveSnapshotsBefore(dir string, seq uint64) {
	seqs, err := listSnapshots(dir)
	if err != nil {
		return
	}
	for _, s := range seqs {
		if s < seq {
			_ = os.Remove(filepath.Join(dir, snapName(s)))
		}
	}
	syncDir(dir)
	// Abandoned .tmp files from crashed snapshot attempts are garbage too.
	ents, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	for _, e := range ents {
		if n := e.Name(); filepath.Ext(n) == ".tmp" {
			if _, ok := parseSnapName(n[:len(n)-len(".tmp")]); ok {
				_ = os.Remove(filepath.Join(dir, n))
			}
		}
	}
}

// Recovered is what Recover hands back to the store layer.
type Recovered struct {
	// SnapshotBytes is the restored snapshot's file size (0 without
	// one), seeding the compaction trigger.
	SnapshotBytes int64
	// NextSeq is the segment number the log must be opened at: one past
	// everything replayed.
	NextSeq uint64
}

// Recover performs the read side of crash recovery: it picks the newest
// snapshot that validates and hands its sorted pairs to load exactly once
// (with empty slices when no usable snapshot exists), then replays the WAL
// tail through replay, in log order. The two callbacks rebuild the store:
// load bulk-constructs the base state, replay applies the tail on top.
func Recover(dir string, load func(keys, vals []int64) error, replay func(*Record) error) (Recovered, error) {
	var rec Recovered
	snaps, err := listSnapshots(dir)
	if err != nil {
		return rec, err
	}
	var keys, vals []int64
	fromSeq := uint64(0)
	for _, s := range snaps {
		path := filepath.Join(dir, snapName(s))
		k, v, walSeq, err := LoadSnapshot(path)
		if err != nil {
			continue // damaged snapshot: fall back to an older one
		}
		if fi, statErr := os.Stat(path); statErr == nil {
			rec.SnapshotBytes = fi.Size()
		}
		keys, vals = k, v
		fromSeq = walSeq
		break
	}
	if fromSeq == 0 {
		// No usable snapshot. That is only safe when the WAL still goes
		// back to the very beginning: if snapshot files exist but none
		// validates, the segments they covered are already truncated and
		// recovering from the WAL tail alone would silently drop
		// everything checkpointed — refuse instead of losing data.
		if len(snaps) > 0 {
			return rec, fmt.Errorf("persist: %d snapshot file(s) present but none valid; the WAL no longer covers their contents", len(snaps))
		}
		segs, err := listSegments(dir)
		if err != nil {
			return rec, err
		}
		if len(segs) > 0 {
			if segs[0] != 1 {
				return rec, fmt.Errorf("persist: wal history incomplete: oldest segment is %d and no snapshot covers the gap", segs[0])
			}
			fromSeq = segs[0]
		} else {
			fromSeq = 1
		}
	}
	if err := load(keys, vals); err != nil {
		return rec, err
	}
	lastSeq, err := Replay(dir, fromSeq, replay)
	if err != nil {
		return rec, err
	}
	rec.NextSeq = lastSeq + 1
	return rec, nil
}
