//go:build !unix

package persist

// LockDir is a no-op where flock is unavailable; the single-owner
// constraint on a store directory is then the caller's responsibility.
func LockDir(dir string) (func(), error) {
	return func() {}, nil
}
