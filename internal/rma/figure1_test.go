package rma

import "testing"

// TestFigure1Rebalance pins the worked example of the paper's Figure 1: a
// sparse array with 4 segments of capacity 4 holding
//
//	[10 11 12 13] [20 21 22 _] [30 _ _ _] [40 41 42 43]
//
// After segment 3 (index 2) is invalidated by a deletion, the calibrator
// traversal climbs past the level-2 window (density 0.625, at its lower
// threshold) up to the root (density 0.75, within [0.75, 0.75]), so the whole
// array is rebalanced. Figure 1b shows the traditional outcome: three
// elements per segment.
func TestFigure1Rebalance(t *testing.T) {
	cfg := TheoreticalConfig()
	cfg.SegmentCapacity = 4
	p := New(cfg)
	p.alloc(4)

	load := func(s int, keys ...int64) {
		base := s * 4
		for i, k := range keys {
			p.keys[base+i] = k
			p.vals[base+i] = k * 100
		}
		p.card[s] = len(keys)
		p.smin[s] = keys[0]
	}
	load(0, 10, 11, 12, 13)
	load(1, 20, 21, 22)
	load(2, 30)
	load(3, 40, 41, 42, 43)
	p.n = 12
	if err := p.Validate(); err != nil {
		t.Fatalf("precondition: %v", err)
	}

	// The traversal of Figure 1a: the level-2 window over segments 3-4
	// holds 5 of 8 slots (0.625) and is rejected, the root (12/16 = 0.75)
	// accepted.
	ws, we, ok := p.findDeleteWindow(2)
	if !ok {
		t.Fatal("no rebalance window found; expected the root window")
	}
	if ws != 0 || we != 4 {
		t.Fatalf("window = [%d,%d), want the whole array [0,4)", ws, we)
	}

	p.rebalance(ws, we)

	wantCards := []int{3, 3, 3, 3}
	for s, want := range wantCards {
		if p.card[s] != want {
			t.Fatalf("segment %d cardinality = %d, want %d", s, p.card[s], want)
		}
	}
	wantLayout := [][]int64{
		{10, 11, 12},
		{13, 20, 21},
		{22, 30, 40},
		{41, 42, 43},
	}
	for s, want := range wantLayout {
		keys, vals := p.segSlice(s)
		for i, k := range want {
			if keys[i] != k {
				t.Fatalf("segment %d slot %d = %d, want %d (Figure 1b)", s, i, keys[i], k)
			}
			if vals[i] != k*100 {
				t.Fatalf("segment %d slot %d value = %d, want %d", s, i, vals[i], k*100)
			}
		}
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}
