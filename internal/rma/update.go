package rma

import "sort"

// Put inserts k/v, replacing the value if k is already present. It returns
// true when a new element was inserted (false on replace). The sentinel keys
// KeyMin and KeyMax are rejected with a panic: they are reserved as fence
// keys by the concurrent layer.
func (p *PMA) Put(k, v int64) bool {
	if k == KeyMin || k == KeyMax {
		panic("rma: cannot store sentinel key")
	}
	s := p.findSegment(k)
	b := p.cfg.SegmentCapacity
	keys, vals := p.segSlice(s)
	i := sort.Search(len(keys), func(i int) bool { return keys[i] >= k })
	if i < len(keys) && keys[i] == k {
		vals[i] = v
		return false
	}
	if p.card[s] == b {
		// The segment is full: rebalance the smallest in-threshold
		// window (or resize) to open a gap, then retry the placement
		// from scratch since elements have moved.
		p.makeRoom(s)
		s = p.findSegment(k)
		keys, _ = p.segSlice(s)
		i = sort.Search(len(keys), func(i int) bool { return keys[i] >= k })
	}
	p.insertAt(s, i, k, v)
	if p.pred != nil {
		p.pred.Record(k)
	}
	return true
}

// insertAt places k/v at offset i of segment s, shifting the segment tail
// right by one. The caller guarantees the segment has a free slot.
func (p *PMA) insertAt(s, i int, k, v int64) {
	b := p.cfg.SegmentCapacity
	base := s * b
	c := p.card[s]
	copy(p.keys[base+i+1:base+c+1], p.keys[base+i:base+c])
	copy(p.vals[base+i+1:base+c+1], p.vals[base+i:base+c])
	p.keys[base+i] = k
	p.vals[base+i] = v
	p.card[s] = c + 1
	p.n++
	if i == 0 {
		p.setSegMin(s, k)
	}
}

// Delete removes k, reporting whether it was present.
func (p *PMA) Delete(k int64) bool {
	if p.n == 0 {
		return false
	}
	s := p.findSegment(k)
	keys, _ := p.segSlice(s)
	i := sort.Search(len(keys), func(i int) bool { return keys[i] >= k })
	if i == len(keys) || keys[i] != k {
		return false
	}
	b := p.cfg.SegmentCapacity
	base := s * b
	c := p.card[s]
	copy(p.keys[base+i:base+c-1], p.keys[base+i+1:base+c])
	copy(p.vals[base+i:base+c-1], p.vals[base+i+1:base+c])
	p.card[s] = c - 1
	p.n--
	if i == 0 {
		if p.card[s] > 0 {
			p.setSegMin(s, p.keys[base])
		} else {
			p.clearSegMin(s)
		}
	}
	p.afterDelete(s)
	return true
}

// afterDelete restores density invariants after removing an element from
// segment s: with a positive leaf lower threshold it walks the calibrator
// tree for a window to rebalance; with the relaxed evaluation policy it only
// shrinks the array once occupancy drops below 50%.
func (p *PMA) afterDelete(s int) {
	b := p.cfg.SegmentCapacity
	if p.cfg.RhoLeaf > 0 && float64(p.card[s]) < p.cfg.RhoLeaf*float64(b) {
		if ws, we, ok := p.findDeleteWindow(s); ok {
			p.rebalance(ws, we)
			return
		}
		p.shrink()
		return
	}
	if p.cfg.DownsizeAtHalf && p.numSegs > 1 && p.n*2 < p.Capacity() {
		p.shrink()
	}
}

// setSegMin updates the cached minimum of segment s and propagates it to any
// empty segments on the left that inherit it.
func (p *PMA) setSegMin(s int, k int64) {
	p.smin[s] = k
	for t := s - 1; t >= 0 && p.card[t] == 0; t-- {
		p.smin[t] = k
	}
}

// clearSegMin handles segment s becoming empty: it inherits the minimum of
// the nearest non-empty segment to the right (KeyMax at the end), preserving
// the non-decreasing smin invariant.
func (p *PMA) clearSegMin(s int) {
	inherit := int64(KeyMax)
	if s+1 < p.numSegs {
		inherit = p.smin[s+1]
	}
	p.smin[s] = inherit
	for t := s - 1; t >= 0 && p.card[t] == 0; t-- {
		p.smin[t] = inherit
	}
}
