package rma

import (
	"fmt"
	"math"
	"sort"
)

// KeyMin and KeyMax are reserved sentinel keys (used as -inf / +inf fence
// keys by the concurrent layer); they cannot be stored in a PMA.
const (
	KeyMin = math.MinInt64
	KeyMax = math.MaxInt64
)

// Stats counts structural events; useful for the ablation experiments and for
// asserting behaviour in tests.
type Stats struct {
	Rebalances     int64 // number of window rebalances (any level)
	RebalancedSegs int64 // total segments touched by rebalances
	Resizes        int64 // number of capacity changes (grow + shrink)
	ElementsMoved  int64 // elements copied during rebalances and resizes
}

// PMA is a sequential packed memory array storing int64 key/value pairs in
// sorted key order. It is not safe for concurrent use; the concurrent layer
// in internal/core builds on the same algorithms with gates and latches.
type PMA struct {
	cfg Config

	keys []int64 // len == capacity; segment i occupies [i*B, (i+1)*B)
	vals []int64
	card []int   // per-segment cardinality
	smin []int64 // per-segment minimum key; empty segments inherit the right neighbour

	numSegs int // power of two
	n       int // total number of elements

	pred  *Predictor
	stats Stats

	scratchK []int64 // reusable buffers for rebalances
	scratchV []int64
}

// New returns an empty PMA with the given configuration, starting at a single
// segment. It panics if the configuration is invalid (programmer error).
func New(cfg Config) *PMA {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	p := &PMA{cfg: cfg}
	if cfg.Adaptive {
		p.pred = NewPredictor(cfg.PredictorSize)
	}
	p.alloc(1)
	return p
}

// NewFromSorted bulk-loads a PMA from key-sorted, duplicate-free pairs at
// roughly (rho_h+tau_h)/2 density. It panics if keys are not strictly
// ascending or contain sentinels.
func NewFromSorted(cfg Config, keys, vals []int64) *PMA {
	if len(keys) != len(vals) {
		panic("rma: NewFromSorted key/value length mismatch")
	}
	p := New(cfg)
	if len(keys) == 0 {
		return p
	}
	target := (cfg.RhoRoot + cfg.TauRoot) / 2
	segs := nextPow2(ceilDiv(len(keys), int(float64(cfg.SegmentCapacity)*target)))
	// Guarantee the load fits under tau_h so the next insert does not
	// immediately resize.
	for float64(len(keys)) > cfg.TauRoot*float64(segs*cfg.SegmentCapacity) {
		segs *= 2
	}
	p.alloc(segs)
	p.n = len(keys)
	p.spreadFrom(0, segs, keys, vals, nil)
	if err := p.checkSortedInput(keys); err != nil {
		panic(err)
	}
	return p
}

func (p *PMA) checkSortedInput(keys []int64) error {
	for i, k := range keys {
		if k == KeyMin || k == KeyMax {
			return fmt.Errorf("rma: sentinel key at position %d", i)
		}
		if i > 0 && keys[i-1] >= k {
			return fmt.Errorf("rma: keys not strictly ascending at position %d", i)
		}
	}
	return nil
}

// alloc resizes the backing arrays to the given number of segments and resets
// all bookkeeping; the caller is responsible for repopulating elements.
func (p *PMA) alloc(segs int) {
	b := p.cfg.SegmentCapacity
	p.numSegs = segs
	p.keys = make([]int64, segs*b)
	p.vals = make([]int64, segs*b)
	p.card = make([]int, segs)
	p.smin = make([]int64, segs)
	for i := range p.smin {
		p.smin[i] = KeyMax
	}
	if cap(p.scratchK) < segs*b {
		p.scratchK = make([]int64, segs*b)
		p.scratchV = make([]int64, segs*b)
	}
}

// Len returns the number of elements stored.
func (p *PMA) Len() int { return p.n }

// Capacity returns the total number of slots (segments x segment capacity).
func (p *PMA) Capacity() int { return p.numSegs * p.cfg.SegmentCapacity }

// NumSegments returns the current number of segments.
func (p *PMA) NumSegments() int { return p.numSegs }

// Density returns the overall fill factor.
func (p *PMA) Density() float64 {
	if p.Capacity() == 0 {
		return 0
	}
	return float64(p.n) / float64(p.Capacity())
}

// Stats returns a snapshot of the structural-event counters.
func (p *PMA) Stats() Stats { return p.stats }

// height returns the calibrator tree height h for the current number of
// segments (leaves are height 1).
func (p *PMA) height() int { return log2(p.numSegs) + 1 }

// findSegment returns the index of the segment whose key range contains k:
// the rightmost segment whose minimum is <= k, or segment 0 when k precedes
// every stored key.
func (p *PMA) findSegment(k int64) int {
	// smin is non-decreasing (empty segments inherit the right
	// neighbour's minimum), so binary search applies directly.
	lo, hi := 0, p.numSegs // invariant: smin[lo-1] <= k < smin[hi]
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if p.smin[mid] <= k {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == 0 {
		return 0
	}
	return lo - 1
}

// segSlice returns the occupied portion of segment s.
func (p *PMA) segSlice(s int) (keys, vals []int64) {
	b := p.cfg.SegmentCapacity
	return p.keys[s*b : s*b+p.card[s]], p.vals[s*b : s*b+p.card[s]]
}

// Get returns the value stored under k.
func (p *PMA) Get(k int64) (int64, bool) {
	if p.n == 0 {
		return 0, false
	}
	s := p.findSegment(k)
	keys, vals := p.segSlice(s)
	i := sort.Search(len(keys), func(i int) bool { return keys[i] >= k })
	if i < len(keys) && keys[i] == k {
		return vals[i], true
	}
	return 0, false
}

// Min returns the smallest stored key, or ok=false when empty.
func (p *PMA) Min() (k, v int64, ok bool) {
	for s := 0; s < p.numSegs; s++ {
		if p.card[s] > 0 {
			b := p.cfg.SegmentCapacity
			return p.keys[s*b], p.vals[s*b], true
		}
	}
	return 0, 0, false
}

// Max returns the largest stored key, or ok=false when empty.
func (p *PMA) Max() (k, v int64, ok bool) {
	for s := p.numSegs - 1; s >= 0; s-- {
		if c := p.card[s]; c > 0 {
			b := p.cfg.SegmentCapacity
			return p.keys[s*b+c-1], p.vals[s*b+c-1], true
		}
	}
	return 0, 0, false
}

// Scan visits all pairs with lo <= key <= hi in ascending key order, stopping
// early when fn returns false.
func (p *PMA) Scan(lo, hi int64, fn func(k, v int64) bool) {
	if p.n == 0 || lo > hi {
		return
	}
	b := p.cfg.SegmentCapacity
	s := p.findSegment(lo)
	keys, _ := p.segSlice(s)
	i := sort.Search(len(keys), func(i int) bool { return keys[i] >= lo })
	for ; s < p.numSegs; s++ {
		base := s * b
		for c := p.card[s]; i < c; i++ {
			k := p.keys[base+i]
			if k > hi {
				return
			}
			if !fn(k, p.vals[base+i]) {
				return
			}
		}
		i = 0
	}
}

// ScanAll visits every pair in ascending key order.
func (p *PMA) ScanAll(fn func(k, v int64) bool) {
	b := p.cfg.SegmentCapacity
	for s := 0; s < p.numSegs; s++ {
		base := s * b
		for i, c := 0, p.card[s]; i < c; i++ {
			if !fn(p.keys[base+i], p.vals[base+i]) {
				return
			}
		}
	}
}

// Keys returns all stored keys in order (test helper; O(n) allocation).
func (p *PMA) Keys() []int64 {
	out := make([]int64, 0, p.n)
	p.ScanAll(func(k, _ int64) bool { out = append(out, k); return true })
	return out
}

// SegmentCards exposes a copy of the per-segment cardinalities (test helper).
func (p *PMA) SegmentCards() []int {
	out := make([]int, p.numSegs)
	copy(out, p.card)
	return out
}

// nextPow2 returns the smallest power of two >= v (and at least 1).
func nextPow2(v int) int {
	if v <= 1 {
		return 1
	}
	n := 1
	for n < v {
		n <<= 1
	}
	return n
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

func log2(v int) int {
	n := 0
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}
