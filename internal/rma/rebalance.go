package rma

// makeRoom opens at least one gap in segment s by rebalancing the smallest
// calibrator-tree window that (a) stays within its upper density threshold
// counting the pending insert and (b) leaves every segment of the window with
// a free slot after an even spread. When no window qualifies the array is
// grown. Called only when segment s is full.
func (p *PMA) makeRoom(s int) {
	b := p.cfg.SegmentCapacity
	h := p.height()
	for k := 2; k <= h; k++ {
		w := 1 << (k - 1)
		ws := s &^ (w - 1)
		we := ws + w
		cardW := 0
		for i := ws; i < we; i++ {
			cardW += p.card[i]
		}
		_, tau := p.cfg.thresholds(k, h)
		if float64(cardW+1) <= tau*float64(w*b) && cardW <= w*(b-1) {
			p.rebalance(ws, we)
			return
		}
	}
	p.grow()
}

// findDeleteWindow walks the calibrator tree upward from segment s looking
// for the smallest window whose density is back within threshold. Inner
// levels require the density to be strictly above the lower threshold (a
// window sitting exactly at rho_k would be invalidated again by the next
// deletion); the root accepts its thresholds inclusively as the last resort
// before a resize. This matches the traversal of the paper's Figure 1, which
// climbs past the 0.625-dense parent window to rebalance the whole array.
// Only used when RhoLeaf > 0 (the theoretical configuration).
func (p *PMA) findDeleteWindow(s int) (ws, we int, ok bool) {
	b := p.cfg.SegmentCapacity
	h := p.height()
	for k := 2; k <= h; k++ {
		w := 1 << (k - 1)
		ws = s &^ (w - 1)
		we = ws + w
		cardW := 0
		for i := ws; i < we; i++ {
			cardW += p.card[i]
		}
		rho, tau := p.cfg.thresholds(k, h)
		d := float64(cardW) / float64(w*b)
		if k == h {
			if d >= rho && d <= tau {
				return ws, we, true
			}
		} else if d > rho && d <= tau {
			return ws, we, true
		}
	}
	return 0, 0, false
}

// rebalance redistributes the elements of segments [ws, we) following the
// configured policy (traditional even spread, or adaptive when a predictor is
// attached).
func (p *PMA) rebalance(ws, we int) {
	ks, vs := p.gather(ws, we)
	p.spreadFrom(ws, we, ks, vs, p.pred)
	p.stats.Rebalances++
	p.stats.RebalancedSegs += int64(we - ws)
	p.stats.ElementsMoved += int64(len(ks))
}

// gather copies the elements of segments [ws, we) in order into the scratch
// buffers and returns the filled prefixes.
func (p *PMA) gather(ws, we int) (ks, vs []int64) {
	b := p.cfg.SegmentCapacity
	n := 0
	for s := ws; s < we; s++ {
		base := s * b
		n += copy(p.scratchK[n:], p.keys[base:base+p.card[s]])
	}
	m := 0
	for s := ws; s < we; s++ {
		base := s * b
		m += copy(p.scratchV[m:], p.vals[base:base+p.card[s]])
	}
	return p.scratchK[:n], p.scratchV[:m]
}

// gatherAll copies every element into freshly allocated slices (used by
// resizes, which reallocate the scratch space).
func (p *PMA) gatherAll() (ks, vs []int64) {
	ks = make([]int64, 0, p.n)
	vs = make([]int64, 0, p.n)
	b := p.cfg.SegmentCapacity
	for s := 0; s < p.numSegs; s++ {
		base := s * b
		ks = append(ks, p.keys[base:base+p.card[s]]...)
		vs = append(vs, p.vals[base:base+p.card[s]]...)
	}
	return ks, vs
}

// spreadFrom distributes the sorted elements ks/vs across segments [ws, we),
// overwriting their previous contents and refreshing cardinalities and
// cached minima. With a predictor, counts follow the adaptive policy;
// otherwise the traditional even spread (Figure 1b) applies.
func (p *PMA) spreadFrom(ws, we int, ks, vs []int64, pred *Predictor) {
	b := p.cfg.SegmentCapacity
	m := we - ws
	counts := p.spreadCounts(m, len(ks), ks, pred)
	pos := 0
	for i := 0; i < m; i++ {
		s := ws + i
		base := s * b
		c := counts[i]
		copy(p.keys[base:base+c], ks[pos:pos+c])
		copy(p.vals[base:base+c], vs[pos:pos+c])
		p.card[s] = c
		pos += c
	}
	// Refresh cached minima right-to-left so empty segments inherit.
	inherit := int64(KeyMax)
	if we < p.numSegs {
		inherit = p.smin[we]
	}
	for s := we - 1; s >= ws; s-- {
		if p.card[s] > 0 {
			p.smin[s] = p.keys[s*b]
			inherit = p.smin[s]
		} else {
			p.smin[s] = inherit
		}
	}
	// Empty segments to the left of the window may inherit a changed
	// minimum.
	for s := ws - 1; s >= 0 && p.card[s] == 0; s-- {
		p.smin[s] = inherit
	}
}

// spreadCounts decides how many elements each of m segments receives.
func (p *PMA) spreadCounts(m, n int, ks []int64, pred *Predictor) []int {
	if pred == nil || !p.cfg.Adaptive || n == 0 {
		return EvenCounts(n, m)
	}
	return pred.AdaptiveCounts(ks, m, p.cfg.SegmentCapacity)
}

// grow doubles the number of segments and redistributes evenly.
func (p *PMA) grow() {
	p.resizeTo(p.numSegs * 2)
}

// shrink reduces the capacity following the paper's policy
// C' = 2N/(rho_h+tau_h), rounded up to a power-of-two segment count. The
// shrink is skipped when it would land the density within 0.05 of the root
// upper threshold, which prevents grow/shrink thrashing around the boundary.
func (p *PMA) shrink() {
	b := p.cfg.SegmentCapacity
	targetSlots := int(2 * float64(p.n) / (p.cfg.RhoRoot + p.cfg.TauRoot))
	segs := nextPow2(ceilDiv(max(targetSlots, 1), b))
	if segs >= p.numSegs {
		return
	}
	if float64(p.n) > (p.cfg.TauRoot-0.05)*float64(segs*b) {
		return
	}
	p.resizeTo(segs)
}

// resizeTo rebuilds the array at the given segment count, spreading evenly.
func (p *PMA) resizeTo(segs int) {
	ks, vs := p.gatherAll()
	p.alloc(segs)
	p.n = len(ks)
	p.spreadFrom(0, segs, ks, vs, nil)
	p.stats.Resizes++
	p.stats.ElementsMoved += int64(len(ks))
}
