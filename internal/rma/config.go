// Package rma implements a sequential Packed Memory Array (sparse array) in
// the style of the Rewired Memory Array [De Leo & Boncz, ICDE 2019], the
// sequential foundation that the paper's concurrent PMA extends.
//
// A PMA stores sorted key/value pairs in an array interleaved with gaps. The
// array is divided into fixed-size segments; each segment packs its elements
// at the front and keeps its gaps at the tail. An implicit binary "calibrator
// tree" over the segments defines density thresholds per level; inserts and
// deletes that push a window outside its thresholds trigger a rebalance that
// spreads elements across the smallest window back within threshold, or a
// resize of the whole array when no window qualifies.
package rma

import "fmt"

// Default parameters mirror the paper's evaluation setup (Section 4).
const (
	// DefaultSegmentCapacity is the number of element slots per segment
	// (the paper's B = 128).
	DefaultSegmentCapacity = 128

	// DefaultPredictorSize is the number of recent insert positions the
	// adaptive-rebalancing predictor remembers.
	DefaultPredictorSize = 256
)

// Config holds the tunable parameters of a PMA. The zero value is not valid;
// use DefaultConfig as a starting point.
type Config struct {
	// SegmentCapacity is the number of slots per segment (B). Must be a
	// power of two and at least 4.
	SegmentCapacity int

	// Density thresholds of the calibrator tree: 0 <= RhoLeaf < RhoRoot <=
	// TauRoot < TauLeaf <= 1. The paper sets RhoLeaf=0.5, TauLeaf=1,
	// RhoRoot=TauRoot=0.75, and in the evaluation relaxes RhoLeaf to 0,
	// downsizing instead when the PMA is less than half full.
	RhoLeaf, RhoRoot, TauRoot, TauLeaf float64

	// Adaptive enables adaptive rebalancing: the PMA observes recent
	// insert positions and leaves more gaps where more insertions are
	// predicted (Bender & Hu's APMA policy).
	Adaptive bool

	// PredictorSize bounds the adaptive predictor's memory. Ignored unless
	// Adaptive is set.
	PredictorSize int

	// DownsizeAtHalf enables the evaluation policy of shrinking the array
	// when fewer than 50% of its slots are occupied (used together with
	// RhoLeaf = 0).
	DownsizeAtHalf bool
}

// DefaultConfig returns the configuration used throughout the paper's
// evaluation: B=128, rho1=0 (relaxed), tau1=1, rho_h=tau_h=0.75, downsizing at
// 50% occupancy, adaptive rebalancing off (the concurrent one-by-one mode
// turns it on).
func DefaultConfig() Config {
	return Config{
		SegmentCapacity: DefaultSegmentCapacity,
		RhoLeaf:         0,
		RhoRoot:         0.75,
		TauRoot:         0.75,
		TauLeaf:         1.0,
		PredictorSize:   DefaultPredictorSize,
		DownsizeAtHalf:  true,
	}
}

// TheoreticalConfig returns the textbook thresholds of Section 2
// (rho1=0.5, tau1=1, rho_h=tau_h=0.75), which guarantee the array is always
// less than 50% empty without the explicit downsize rule.
func TheoreticalConfig() Config {
	return Config{
		SegmentCapacity: DefaultSegmentCapacity,
		RhoLeaf:         0.5,
		RhoRoot:         0.75,
		TauRoot:         0.75,
		TauLeaf:         1.0,
		PredictorSize:   DefaultPredictorSize,
	}
}

// Validate reports whether the configuration is self-consistent.
func (c Config) Validate() error {
	if c.SegmentCapacity < 4 || c.SegmentCapacity&(c.SegmentCapacity-1) != 0 {
		return fmt.Errorf("rma: segment capacity %d must be a power of two >= 4", c.SegmentCapacity)
	}
	if !(0 <= c.RhoLeaf && c.RhoLeaf < c.RhoRoot && c.RhoRoot <= c.TauRoot && c.TauRoot < c.TauLeaf && c.TauLeaf <= 1) {
		return fmt.Errorf("rma: thresholds must satisfy 0 <= rho1 < rho_h <= tau_h < tau1 <= 1, got rho1=%v rho_h=%v tau_h=%v tau1=%v",
			c.RhoLeaf, c.RhoRoot, c.TauRoot, c.TauLeaf)
	}
	if c.Adaptive && c.PredictorSize <= 0 {
		return fmt.Errorf("rma: adaptive rebalancing requires a positive predictor size")
	}
	return nil
}

// thresholds computes the lower and upper density thresholds for a calibrator
// tree node at the given height k (leaves are k=1) in a tree of total height
// h, following Section 2:
//
//	tau_k = tau_h + (tau_1 - tau_h) * (h-k)/(h-1)
//	rho_k = rho_h - (rho_h - rho_1) * (h-k)/(h-1)
//
// For a tree of height 1 (a single segment) the root thresholds apply.
func (c Config) thresholds(k, h int) (rho, tau float64) {
	if h <= 1 {
		return c.RhoRoot, c.TauRoot
	}
	f := float64(h-k) / float64(h-1)
	tau = c.TauRoot + (c.TauLeaf-c.TauRoot)*f
	rho = c.RhoRoot - (c.RhoRoot-c.RhoLeaf)*f
	return rho, tau
}
