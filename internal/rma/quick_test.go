package rma

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

// opSeq is a randomly generated operation sequence for property tests.
type opSeq struct {
	ops []modelOp
}

type modelOp struct {
	kind byte // 0: put, 1: delete, 2: get
	key  int64
	val  int64
}

// Generate implements quick.Generator, producing sequences biased toward a
// small key domain so deletes and upserts actually hit existing keys.
func (opSeq) Generate(r *rand.Rand, size int) reflect.Value {
	n := 200 + r.Intn(2000)
	domain := int64(1 + r.Intn(500))
	ops := make([]modelOp, n)
	for i := range ops {
		ops[i] = modelOp{
			kind: byte(r.Intn(3)),
			key:  r.Int63n(domain) - domain/3, // include negatives
			val:  r.Int63(),
		}
	}
	return reflect.ValueOf(opSeq{ops})
}

// TestQuickModelEquivalence: after any operation sequence the PMA holds
// exactly the key/value pairs of a model map, in sorted key order, with all
// structural invariants intact.
func TestQuickModelEquivalence(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SegmentCapacity = 8
	property := func(seq opSeq) bool {
		p := New(cfg)
		model := map[int64]int64{}
		for _, op := range seq.ops {
			switch op.kind {
			case 0:
				p.Put(op.key, op.val)
				model[op.key] = op.val
			case 1:
				_, want := model[op.key]
				delete(model, op.key)
				if p.Delete(op.key) != want {
					return false
				}
			case 2:
				wv, wok := model[op.key]
				gv, gok := p.Get(op.key)
				if gok != wok || (gok && gv != wv) {
					return false
				}
			}
		}
		if p.Len() != len(model) {
			return false
		}
		if err := p.Validate(); err != nil {
			t.Logf("invariant violation: %v", err)
			return false
		}
		want := make([]int64, 0, len(model))
		for k := range model {
			want = append(want, k)
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		got := p.Keys()
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickScanMatchesSortedModel: any range scan returns exactly the model
// keys within the range, ascending.
func TestQuickScanMatchesSortedModel(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SegmentCapacity = 8
	cfg.Adaptive = true
	property := func(seq opSeq, rawLo, rawHi int64) bool {
		lo, hi := rawLo%1000, rawHi%1000
		if lo > hi {
			lo, hi = hi, lo
		}
		p := New(cfg)
		model := map[int64]int64{}
		for _, op := range seq.ops {
			if op.kind == 1 {
				delete(model, op.key)
				p.Delete(op.key)
			} else {
				model[op.key] = op.val
				p.Put(op.key, op.val)
			}
		}
		var want []int64
		for k := range model {
			if k >= lo && k <= hi {
				want = append(want, k)
			}
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		var got []int64
		p.Scan(lo, hi, func(k, v int64) bool {
			if v != model[k] {
				return false
			}
			got = append(got, k)
			return true
		})
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
