package rma

import "fmt"

// Validate checks every structural invariant of the PMA and returns the
// first violation found, or nil. Intended for tests and debugging; it is
// O(capacity).
func (p *PMA) Validate() error {
	b := p.cfg.SegmentCapacity
	if p.numSegs < 1 || p.numSegs&(p.numSegs-1) != 0 {
		return fmt.Errorf("segment count %d is not a positive power of two", p.numSegs)
	}
	if len(p.keys) != p.numSegs*b || len(p.vals) != p.numSegs*b {
		return fmt.Errorf("backing array length %d does not match capacity %d", len(p.keys), p.numSegs*b)
	}
	total := 0
	prev := int64(KeyMin)
	for s := 0; s < p.numSegs; s++ {
		c := p.card[s]
		if c < 0 || c > b {
			return fmt.Errorf("segment %d cardinality %d out of range [0,%d]", s, c, b)
		}
		total += c
		base := s * b
		for i := 0; i < c; i++ {
			k := p.keys[base+i]
			if k <= prev {
				return fmt.Errorf("order violation in segment %d offset %d: %d after %d", s, i, k, prev)
			}
			if k == KeyMin || k == KeyMax {
				return fmt.Errorf("sentinel key stored in segment %d", s)
			}
			prev = k
		}
	}
	if total != p.n {
		return fmt.Errorf("cardinality sum %d != recorded size %d", total, p.n)
	}
	// Cached minima: non-decreasing, correct for non-empty segments, and
	// inherited from the right for empty ones.
	inherit := int64(KeyMax)
	for s := p.numSegs - 1; s >= 0; s-- {
		if p.card[s] > 0 {
			want := p.keys[s*b]
			if p.smin[s] != want {
				return fmt.Errorf("segment %d cached min %d != actual %d", s, p.smin[s], want)
			}
			inherit = want
		} else if p.smin[s] != inherit {
			return fmt.Errorf("empty segment %d cached min %d != inherited %d", s, p.smin[s], inherit)
		}
	}
	for s := 1; s < p.numSegs; s++ {
		if p.smin[s-1] > p.smin[s] {
			return fmt.Errorf("cached minima not sorted at segment %d", s)
		}
	}
	if p.n > 0 {
		d := p.Density()
		if d > p.cfg.TauLeaf {
			return fmt.Errorf("overall density %f exceeds tau1 %f", d, p.cfg.TauLeaf)
		}
	}
	return nil
}
