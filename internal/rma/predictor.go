package rma

import "sort"

// Predictor remembers the keys of the most recent insertions in a ring
// buffer. During an adaptive rebalance the recorded keys are projected onto
// the window's sorted elements to estimate which target segments will receive
// future insertions; those segments are then given more gaps. This is a
// practical rendition of the APMA predictor of Bender & Hu [TODS 2007], in
// the same spirit as the Rewired Memory Array implementation the paper
// extends. It is exported so the concurrent layer can attach one per gate.
//
// A Predictor is not safe for concurrent use; callers serialise access (the
// sequential PMA trivially, the concurrent PMA under the gate latch).
type Predictor struct {
	keys   []int64
	pos    int
	filled bool
}

// NewPredictor returns a predictor remembering the last size insertions.
func NewPredictor(size int) *Predictor {
	if size <= 0 {
		size = DefaultPredictorSize
	}
	return &Predictor{keys: make([]int64, size)}
}

// Record notes the key of a fresh insertion.
func (pr *Predictor) Record(k int64) {
	pr.keys[pr.pos] = k
	pr.pos++
	if pr.pos == len(pr.keys) {
		pr.pos = 0
		pr.filled = true
	}
}

// Size returns how many recorded entries are valid.
func (pr *Predictor) Size() int {
	if pr.filled {
		return len(pr.keys)
	}
	return pr.pos
}

// Histogram buckets the recorded keys that fall inside the key range of the
// sorted slice ks into m equal-rank buckets and returns the per-bucket hit
// counts. Buckets correspond to the m target segments of the rebalance.
func (pr *Predictor) Histogram(ks []int64, m int) []int {
	hist := make([]int, m)
	if len(ks) == 0 {
		return hist
	}
	lo, hi := ks[0], ks[len(ks)-1]
	n := pr.Size()
	for i := 0; i < n; i++ {
		q := pr.keys[i]
		if q < lo || q > hi {
			continue
		}
		// Rank of q among the window's elements determines which
		// target segment the next insert of a nearby key would hit.
		r := sort.Search(len(ks), func(j int) bool { return ks[j] >= q })
		b := r * m / (len(ks) + 1)
		if b >= m {
			b = m - 1
		}
		hist[b]++
	}
	return hist
}

// AdaptiveCounts decides how many of n sorted elements (ks) each of m target
// segments of capacity b receives under the adaptive policy: segments whose
// key range saw more recent insertions receive more gaps (fewer elements).
// Counts are clamped to [0, b-1] so every segment keeps a free slot, and
// rounding drift is corrected round-robin. The caller guarantees
// n <= m*(b-1).
func (pr *Predictor) AdaptiveCounts(ks []int64, m, b int) []int {
	n := len(ks)
	hist := pr.Histogram(ks, m)
	gaps := m*b - n

	// Share the gaps proportionally to (1 + hits): hot regions get more
	// slack. Then counts = b - gapShare, clamped.
	total := 0
	for _, h := range hist {
		total += 1 + h
	}
	counts := make([]int, m)
	assigned := 0
	for i := range counts {
		g := gaps * (1 + hist[i]) / total
		c := b - g
		if c < 0 {
			c = 0
		}
		if c > b-1 {
			c = b - 1
		}
		counts[i] = c
		assigned += c
	}
	// Fix the total: drop or add elements round-robin within the clamp.
	for assigned > n {
		for i := 0; i < m && assigned > n; i++ {
			if counts[i] > 0 {
				counts[i]--
				assigned--
			}
		}
	}
	for assigned < n {
		for i := 0; i < m && assigned < n; i++ {
			if counts[i] < b-1 {
				counts[i]++
				assigned++
			}
		}
	}
	return counts
}

// EvenCounts is the traditional policy: an even spread of n elements over m
// segments (Figure 1b).
func EvenCounts(n, m int) []int {
	counts := make([]int, m)
	base, rem := n/m, n%m
	for i := range counts {
		counts[i] = base
		if i < rem {
			counts[i]++
		}
	}
	return counts
}
