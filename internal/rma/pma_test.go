package rma

import (
	"math/rand"
	"sort"
	"testing"
)

func testConfig() Config {
	cfg := DefaultConfig()
	cfg.SegmentCapacity = 8 // small segments exercise rebalances quickly
	return cfg
}

func TestEmpty(t *testing.T) {
	p := New(testConfig())
	if p.Len() != 0 {
		t.Fatalf("Len = %d, want 0", p.Len())
	}
	if _, ok := p.Get(42); ok {
		t.Fatal("Get on empty PMA returned ok")
	}
	if p.Delete(42) {
		t.Fatal("Delete on empty PMA returned true")
	}
	if _, _, ok := p.Min(); ok {
		t.Fatal("Min on empty PMA returned ok")
	}
	if _, _, ok := p.Max(); ok {
		t.Fatal("Max on empty PMA returned ok")
	}
	count := 0
	p.ScanAll(func(_, _ int64) bool { count++; return true })
	if count != 0 {
		t.Fatalf("ScanAll visited %d elements, want 0", count)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPutGetSequential(t *testing.T) {
	p := New(testConfig())
	const n = 10_000
	for i := int64(1); i <= n; i++ {
		if !p.Put(i, i*2) {
			t.Fatalf("Put(%d) reported replace on fresh key", i)
		}
	}
	if p.Len() != n {
		t.Fatalf("Len = %d, want %d", p.Len(), n)
	}
	for i := int64(1); i <= n; i++ {
		v, ok := p.Get(i)
		if !ok || v != i*2 {
			t.Fatalf("Get(%d) = %d,%v want %d,true", i, v, ok, i*2)
		}
	}
	if _, ok := p.Get(n + 1); ok {
		t.Fatal("Get of absent key returned ok")
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPutDescending(t *testing.T) {
	p := New(testConfig())
	const n = 5_000
	for i := int64(n); i >= 1; i-- {
		p.Put(i, -i)
	}
	keys := p.Keys()
	if len(keys) != n {
		t.Fatalf("len(keys) = %d, want %d", len(keys), n)
	}
	for i, k := range keys {
		if k != int64(i+1) {
			t.Fatalf("keys[%d] = %d, want %d", i, k, i+1)
		}
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestUpsert(t *testing.T) {
	p := New(testConfig())
	p.Put(7, 1)
	if p.Put(7, 2) {
		t.Fatal("second Put of same key reported insert")
	}
	if p.Len() != 1 {
		t.Fatalf("Len = %d, want 1", p.Len())
	}
	if v, _ := p.Get(7); v != 2 {
		t.Fatalf("Get(7) = %d, want 2", v)
	}
}

func TestDeleteEverything(t *testing.T) {
	p := New(testConfig())
	const n = 4_000
	for i := int64(1); i <= n; i++ {
		p.Put(i, i)
	}
	grown := p.Capacity()
	order := rand.New(rand.NewSource(1)).Perm(n)
	for _, i := range order {
		if !p.Delete(int64(i + 1)) {
			t.Fatalf("Delete(%d) = false", i+1)
		}
	}
	if p.Len() != 0 {
		t.Fatalf("Len = %d after deleting everything", p.Len())
	}
	if p.Capacity() >= grown {
		t.Fatalf("capacity %d did not shrink from %d", p.Capacity(), grown)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	// The structure must remain usable after total erasure.
	p.Put(99, 99)
	if v, ok := p.Get(99); !ok || v != 99 {
		t.Fatal("reuse after erasure failed")
	}
}

func TestDeleteAbsent(t *testing.T) {
	p := New(testConfig())
	for i := int64(0); i < 100; i++ {
		p.Put(i*2+1, i)
	}
	for i := int64(0); i < 100; i++ {
		if p.Delete(i * 2) {
			t.Fatalf("Delete(%d) of absent key returned true", i*2)
		}
	}
	if p.Len() != 100 {
		t.Fatalf("Len = %d, want 100", p.Len())
	}
}

func TestScanRange(t *testing.T) {
	p := New(testConfig())
	for i := int64(0); i < 1000; i++ {
		p.Put(i*10, i)
	}
	var got []int64
	p.Scan(95, 205, func(k, _ int64) bool { got = append(got, k); return true })
	want := []int64{100, 110, 120, 130, 140, 150, 160, 170, 180, 190, 200}
	if len(got) != len(want) {
		t.Fatalf("scan returned %d keys, want %d (%v)", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("scan[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestScanEarlyStop(t *testing.T) {
	p := New(testConfig())
	for i := int64(1); i <= 1000; i++ {
		p.Put(i, i)
	}
	count := 0
	p.ScanAll(func(_, _ int64) bool { count++; return count < 10 })
	if count != 10 {
		t.Fatalf("visited %d, want 10", count)
	}
}

func TestScanEmptyRange(t *testing.T) {
	p := New(testConfig())
	for i := int64(0); i < 100; i++ {
		p.Put(i*100, i)
	}
	visited := 0
	p.Scan(5, 50, func(_, _ int64) bool { visited++; return true })
	if visited != 0 {
		t.Fatalf("scan of gap visited %d", visited)
	}
	p.Scan(200, 100, func(_, _ int64) bool { visited++; return true })
	if visited != 0 {
		t.Fatal("inverted range visited elements")
	}
}

func TestMinMax(t *testing.T) {
	p := New(testConfig())
	for _, k := range []int64{500, 3, 999, 42} {
		p.Put(k, k)
	}
	if k, _, _ := p.Min(); k != 3 {
		t.Fatalf("Min = %d, want 3", k)
	}
	if k, _, _ := p.Max(); k != 999 {
		t.Fatalf("Max = %d, want 999", k)
	}
	p.Delete(3)
	p.Delete(999)
	if k, _, _ := p.Min(); k != 42 {
		t.Fatalf("Min = %d, want 42", k)
	}
	if k, _, _ := p.Max(); k != 500 {
		t.Fatalf("Max = %d, want 500", k)
	}
}

func TestNegativeKeys(t *testing.T) {
	p := New(testConfig())
	for i := int64(-500); i <= 500; i++ {
		p.Put(i, i)
	}
	if p.Len() != 1001 {
		t.Fatalf("Len = %d, want 1001", p.Len())
	}
	keys := p.Keys()
	if keys[0] != -500 || keys[len(keys)-1] != 500 {
		t.Fatalf("range [%d,%d], want [-500,500]", keys[0], keys[len(keys)-1])
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSentinelKeysPanic(t *testing.T) {
	p := New(testConfig())
	for _, k := range []int64{KeyMin, KeyMax} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Put(%d) did not panic", k)
				}
			}()
			p.Put(k, 0)
		}()
	}
}

func TestGrowDoubles(t *testing.T) {
	cfg := testConfig()
	p := New(cfg)
	prev := p.Capacity()
	for i := int64(0); i < 1000; i++ {
		p.Put(i, i)
		if c := p.Capacity(); c != prev {
			if c != prev*2 {
				t.Fatalf("capacity jumped %d -> %d, want doubling", prev, c)
			}
			prev = c
		}
	}
	if p.Stats().Resizes == 0 {
		t.Fatal("no resizes recorded")
	}
}

func TestDensityBounds(t *testing.T) {
	p := New(testConfig())
	for i := int64(0); i < 50_000; i++ {
		p.Put(i, i)
		if d := p.Density(); d > 1.0 {
			t.Fatalf("density %f > 1", d)
		}
	}
	// The relaxed evaluation policy guarantees occupancy never drops
	// below ~50% for long: delete half and check the array shrank.
	for i := int64(0); i < 40_000; i++ {
		p.Delete(i)
	}
	if d := p.Density(); d < 0.25 {
		t.Fatalf("density %f after deletions: shrink policy not applied", d)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestTheoreticalConfigRebalancesOnDelete(t *testing.T) {
	cfg := TheoreticalConfig()
	cfg.SegmentCapacity = 8
	cfg.DownsizeAtHalf = false
	p := New(cfg)
	for i := int64(0); i < 10_000; i++ {
		p.Put(i, i)
	}
	before := p.Stats().Rebalances
	// Deleting a contiguous run underflows leaf windows repeatedly.
	for i := int64(0); i < 9_000; i++ {
		p.Delete(i)
	}
	if p.Stats().Rebalances == before && p.Stats().Resizes == 0 {
		t.Fatal("no rebalance or resize triggered by mass deletion under theoretical thresholds")
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBulkLoad(t *testing.T) {
	cfg := testConfig()
	const n = 20_000
	keys := make([]int64, n)
	vals := make([]int64, n)
	for i := range keys {
		keys[i] = int64(i * 3)
		vals[i] = int64(i)
	}
	p := NewFromSorted(cfg, keys, vals)
	if p.Len() != n {
		t.Fatalf("Len = %d, want %d", p.Len(), n)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if d := p.Density(); d > cfg.TauRoot {
		t.Fatalf("bulk-load density %f exceeds tau_h", d)
	}
	for _, i := range []int{0, 1, n / 2, n - 1} {
		if v, ok := p.Get(keys[i]); !ok || v != vals[i] {
			t.Fatalf("Get(%d) = %d,%v", keys[i], v, ok)
		}
	}
	// Inserts after a bulk load must keep working.
	p.Put(1, -1)
	if v, ok := p.Get(1); !ok || v != -1 {
		t.Fatal("insert after bulk load failed")
	}
}

func TestBulkLoadEmpty(t *testing.T) {
	p := NewFromSorted(testConfig(), nil, nil)
	if p.Len() != 0 {
		t.Fatal("empty bulk load is not empty")
	}
	p.Put(5, 5)
	if p.Len() != 1 {
		t.Fatal("insert after empty bulk load failed")
	}
}

func TestBulkLoadRejectsUnsorted(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unsorted bulk load did not panic")
		}
	}()
	NewFromSorted(testConfig(), []int64{3, 1}, []int64{0, 0})
}

// TestRandomAgainstModel drives the PMA with a random operation stream and
// compares every result against a map+sort model.
func TestRandomAgainstModel(t *testing.T) {
	for _, adaptive := range []bool{false, true} {
		cfg := testConfig()
		cfg.Adaptive = adaptive
		p := New(cfg)
		model := map[int64]int64{}
		rng := rand.New(rand.NewSource(7))
		const ops = 60_000
		for i := 0; i < ops; i++ {
			k := int64(rng.Intn(5_000))
			switch rng.Intn(10) {
			case 0, 1, 2: // delete
				want := false
				if _, ok := model[k]; ok {
					want = true
					delete(model, k)
				}
				if got := p.Delete(k); got != want {
					t.Fatalf("adaptive=%v op %d: Delete(%d) = %v, want %v", adaptive, i, k, got, want)
				}
			case 3: // lookup
				wv, wok := model[k]
				gv, gok := p.Get(k)
				if gok != wok || (gok && gv != wv) {
					t.Fatalf("adaptive=%v op %d: Get(%d) = %d,%v want %d,%v", adaptive, i, k, gv, gok, wv, wok)
				}
			default: // insert
				v := rng.Int63()
				_, existed := model[k]
				model[k] = v
				if ins := p.Put(k, v); ins == existed {
					t.Fatalf("adaptive=%v op %d: Put(%d) insert=%v, want %v", adaptive, i, k, ins, !existed)
				}
			}
		}
		if p.Len() != len(model) {
			t.Fatalf("adaptive=%v: Len = %d, model has %d", adaptive, p.Len(), len(model))
		}
		wantKeys := make([]int64, 0, len(model))
		for k := range model {
			wantKeys = append(wantKeys, k)
		}
		sort.Slice(wantKeys, func(i, j int) bool { return wantKeys[i] < wantKeys[j] })
		got := p.Keys()
		for i, k := range wantKeys {
			if got[i] != k {
				t.Fatalf("adaptive=%v: key[%d] = %d, want %d", adaptive, i, got[i], k)
			}
			if v, ok := p.Get(k); !ok || v != model[k] {
				t.Fatalf("adaptive=%v: Get(%d) mismatch", adaptive, k)
			}
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("adaptive=%v: %v", adaptive, err)
		}
	}
}

func TestSkewedInsertsAdaptiveFewerRebalances(t *testing.T) {
	// Hammering one region is the PMA worst case; the adaptive policy
	// must reduce the number of rebalances relative to traditional.
	run := func(adaptive bool) int64 {
		cfg := DefaultConfig()
		cfg.SegmentCapacity = 32
		cfg.Adaptive = adaptive
		p := New(cfg)
		// Sequential ascending keys: all inserts hit the last segment.
		for i := int64(0); i < 100_000; i++ {
			p.Put(i, i)
		}
		if err := p.Validate(); err != nil {
			t.Fatal(err)
		}
		return p.Stats().RebalancedSegs
	}
	trad := run(false)
	adap := run(true)
	if adap >= trad {
		t.Fatalf("adaptive moved more segments than traditional: %d >= %d", adap, trad)
	}
}

func TestValidateDetectsCorruption(t *testing.T) {
	p := New(testConfig())
	for i := int64(0); i < 100; i++ {
		p.Put(i, i)
	}
	p.keys[0], p.keys[1] = p.keys[1], p.keys[0] // break the sort order
	if err := p.Validate(); err == nil {
		t.Fatal("Validate did not detect an order violation")
	}
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{SegmentCapacity: 3, RhoRoot: 0.7, TauRoot: 0.7, TauLeaf: 1},
		{SegmentCapacity: 6, RhoRoot: 0.7, TauRoot: 0.7, TauLeaf: 1},
		{SegmentCapacity: 8, RhoLeaf: 0.9, RhoRoot: 0.7, TauRoot: 0.7, TauLeaf: 1},
		{SegmentCapacity: 8, RhoLeaf: 0.1, RhoRoot: 0.7, TauRoot: 0.6, TauLeaf: 1},
		{SegmentCapacity: 8, RhoLeaf: 0.1, RhoRoot: 0.5, TauRoot: 0.6, TauLeaf: 1.5},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %d validated unexpectedly: %+v", i, cfg)
		}
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
	if err := TheoreticalConfig().Validate(); err != nil {
		t.Errorf("theoretical config invalid: %v", err)
	}
}

func TestThresholdInterpolation(t *testing.T) {
	cfg := TheoreticalConfig()
	// h=3 reproduces the labels of Figure 1a: rho2=0.625, tau2=0.875,
	// rho3=tau3=0.75.
	rho2, tau2 := cfg.thresholds(2, 3)
	if rho2 != 0.625 || tau2 != 0.875 {
		t.Fatalf("level-2 thresholds = %v,%v want 0.625,0.875", rho2, tau2)
	}
	rho3, tau3 := cfg.thresholds(3, 3)
	if rho3 != 0.75 || tau3 != 0.75 {
		t.Fatalf("root thresholds = %v,%v want 0.75,0.75", rho3, tau3)
	}
	rho1, tau1 := cfg.thresholds(1, 3)
	if rho1 != 0.5 || tau1 != 1.0 {
		t.Fatalf("leaf thresholds = %v,%v want 0.5,1.0", rho1, tau1)
	}
	// Single-segment tree falls back to root thresholds.
	r, ta := cfg.thresholds(1, 1)
	if r != cfg.RhoRoot || ta != cfg.TauRoot {
		t.Fatalf("h=1 thresholds = %v,%v", r, ta)
	}
}
