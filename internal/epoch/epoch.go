// Package epoch implements epoch-based memory reclamation (Section 3.4 of
// the paper). Client operations run inside a Guard carrying the epoch at
// which they started; retiring a pointer tags it with the current epoch; a
// collector frees retired objects once every active guard's epoch has moved
// past the tag. The paper reads the CPU timestamp counter for epochs — here a
// global atomic counter serves the same purpose (only monotonicity matters;
// see DESIGN.md, Substitutions).
package epoch

import (
	"sync"
	"sync/atomic"
	"time"
)

// Manager coordinates client guards and the garbage list for one data
// structure instance.
type Manager struct {
	clock atomic.Int64

	mu     sync.Mutex // guards registration of new guard slots
	guards []*Guard

	pool sync.Pool

	gmu     sync.Mutex // guards the garbage list
	garbage []retired

	reclaimed atomic.Int64
}

type retired struct {
	epoch int64
	free  func()
}

// Guard marks one in-flight client operation. Guards are pooled and
// permanently registered with their manager; an inactive guard has epoch 0.
type Guard struct {
	epoch atomic.Int64
	mgr   *Manager
}

// NewManager returns a ready-to-use manager whose clock starts at 1.
func NewManager() *Manager {
	m := &Manager{}
	m.clock.Store(1)
	m.pool.New = func() any {
		g := &Guard{mgr: m}
		m.mu.Lock()
		m.guards = append(m.guards, g)
		m.mu.Unlock()
		return g
	}
	return m
}

// Enter begins an operation and returns its guard. The caller must invoke
// Leave when the operation no longer dereferences shared state, and must
// enter a fresh guard before restarting an operation after a resize.
func (m *Manager) Enter() *Guard {
	g := m.pool.Get().(*Guard)
	g.epoch.Store(m.clock.Load())
	return g
}

// Refresh re-stamps the guard with the current epoch, equivalent to
// Leave+Enter without touching the pool. Used when an operation restarts.
func (g *Guard) Refresh() {
	g.epoch.Store(g.mgr.clock.Load())
}

// Leave ends the operation.
func (g *Guard) Leave() {
	g.epoch.Store(0)
	g.mgr.pool.Put(g)
}

// Retire registers free to be run once no active guard can still observe the
// retired object, and advances the epoch clock.
func (m *Manager) Retire(free func()) {
	tag := m.clock.Add(1) - 1
	m.gmu.Lock()
	m.garbage = append(m.garbage, retired{epoch: tag, free: free})
	m.gmu.Unlock()
}

// minEpoch returns the smallest epoch among active guards, or the current
// clock when none are active.
func (m *Manager) minEpoch() int64 {
	minE := m.clock.Load()
	m.mu.Lock()
	guards := m.guards
	m.mu.Unlock()
	for _, g := range guards {
		if e := g.epoch.Load(); e != 0 && e < minE {
			minE = e
		}
	}
	return minE
}

// Collect frees every retired object tagged before the minimum active epoch
// and returns how many were freed.
func (m *Manager) Collect() int {
	minE := m.minEpoch()
	m.gmu.Lock()
	keep := m.garbage[:0]
	var run []func()
	for _, r := range m.garbage {
		if r.epoch < minE {
			run = append(run, r.free)
		} else {
			keep = append(keep, r)
		}
	}
	m.garbage = keep
	m.gmu.Unlock()
	for _, f := range run {
		if f != nil {
			f()
		}
	}
	m.reclaimed.Add(int64(len(run)))
	return len(run)
}

// Pending returns the number of retired-but-not-yet-freed objects.
func (m *Manager) Pending() int {
	m.gmu.Lock()
	defer m.gmu.Unlock()
	return len(m.garbage)
}

// Reclaimed returns the total number of objects freed so far.
func (m *Manager) Reclaimed() int64 { return m.reclaimed.Load() }

// Collector runs Collect periodically on a background goroutine — the
// paper's garbage-collector service thread.
type Collector struct {
	stop chan struct{}
	done chan struct{}
}

// StartCollector launches the background collector with the given period.
func (m *Manager) StartCollector(period time.Duration) *Collector {
	c := &Collector{stop: make(chan struct{}), done: make(chan struct{})}
	go func() {
		defer close(c.done)
		t := time.NewTicker(period)
		defer t.Stop()
		for {
			select {
			case <-c.stop:
				m.Collect()
				return
			case <-t.C:
				m.Collect()
			}
		}
	}()
	return c
}

// Stop halts the collector after one final collection pass.
func (c *Collector) Stop() {
	close(c.stop)
	<-c.done
}
