package epoch

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestRetireWithoutGuardsFreesImmediately(t *testing.T) {
	m := NewManager()
	freed := false
	m.Retire(func() { freed = true })
	if n := m.Collect(); n != 1 {
		t.Fatalf("Collect freed %d, want 1", n)
	}
	if !freed {
		t.Fatal("free callback did not run")
	}
	if m.Pending() != 0 {
		t.Fatalf("Pending = %d, want 0", m.Pending())
	}
}

func TestActiveGuardBlocksReclamation(t *testing.T) {
	m := NewManager()
	g := m.Enter()
	freed := false
	m.Retire(func() { freed = true })
	if n := m.Collect(); n != 0 {
		t.Fatalf("Collect freed %d with an active older guard, want 0", n)
	}
	if freed {
		t.Fatal("object freed while an older guard was active")
	}
	g.Leave()
	if n := m.Collect(); n != 1 {
		t.Fatalf("Collect freed %d after guard left, want 1", n)
	}
	if !freed {
		t.Fatal("object not freed after guard left")
	}
}

func TestYoungerGuardDoesNotBlock(t *testing.T) {
	m := NewManager()
	m.Retire(nil) // tag below the epoch of the next guard
	g := m.Enter()
	defer g.Leave()
	if n := m.Collect(); n != 1 {
		t.Fatalf("Collect freed %d, want 1: guard entered after retire must not block", n)
	}
}

func TestRefreshUnblocks(t *testing.T) {
	m := NewManager()
	g := m.Enter()
	freed := false
	m.Retire(func() { freed = true })
	if m.Collect() != 0 {
		t.Fatal("premature reclamation")
	}
	g.Refresh() // the operation restarted in a new epoch
	if m.Collect() != 1 || !freed {
		t.Fatal("refresh did not unblock reclamation")
	}
	g.Leave()
}

func TestManyRetirementsOrdered(t *testing.T) {
	m := NewManager()
	guards := make([]*Guard, 5)
	for i := range guards {
		guards[i] = m.Enter()
		m.Retire(nil)
	}
	// guard[i] was entered before retirement i, so exactly i retirements
	// are reclaimable once guards 0..i-1 leave.
	for i := range guards {
		guards[i].Leave()
		got := m.Collect()
		if got != 1 {
			t.Fatalf("after releasing guard %d: Collect = %d, want 1", i, got)
		}
	}
}

func TestConcurrentGuards(t *testing.T) {
	m := NewManager()
	var freedCount atomic.Int64
	var wg sync.WaitGroup
	const workers = 8
	const iters = 2000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				g := m.Enter()
				if i%10 == 0 {
					m.Retire(func() { freedCount.Add(1) })
				}
				g.Leave()
			}
		}()
	}
	done := make(chan struct{})
	go func() {
		for {
			select {
			case <-done:
				return
			default:
				m.Collect()
			}
		}
	}()
	wg.Wait()
	close(done)
	m.Collect()
	want := int64(workers * iters / 10)
	if got := freedCount.Load(); got != want {
		t.Fatalf("freed %d, want %d", got, want)
	}
	if m.Pending() != 0 {
		t.Fatalf("Pending = %d after quiescence", m.Pending())
	}
}

func TestBackgroundCollector(t *testing.T) {
	m := NewManager()
	var freed atomic.Bool
	c := m.StartCollector(time.Millisecond)
	m.Retire(func() { freed.Store(true) })
	deadline := time.Now().Add(2 * time.Second)
	for !freed.Load() && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	c.Stop()
	if !freed.Load() {
		t.Fatal("background collector never reclaimed the object")
	}
}

func TestCollectorStopRunsFinalPass(t *testing.T) {
	m := NewManager()
	c := m.StartCollector(time.Hour) // period too long to fire
	freed := false
	m.Retire(func() { freed = true })
	c.Stop()
	if !freed {
		t.Fatal("Stop did not run a final collection")
	}
}

func TestGuardReuseIsSafe(t *testing.T) {
	m := NewManager()
	for i := 0; i < 1000; i++ {
		g := m.Enter()
		if g.epoch.Load() == 0 {
			t.Fatal("active guard has zero epoch")
		}
		g.Leave()
	}
	// Every registered guard must be inactive now, so nothing blocks
	// collection.
	m.Retire(nil)
	if m.Collect() != 1 {
		t.Fatal("stale guard epoch blocked collection after Leave")
	}
}
