// Package wire is the framed binary protocol spoken between pmago/server
// and pmago/client. It is deliberately shaped like the WAL record format
// (persist/record.go): every frame is
//
//	u32 payload length (little endian)
//	u32 CRC32-C of the payload
//	payload
//
// so a torn or corrupted TCP stream is detected exactly the way a torn WAL
// tail is, and the varint payload encoding reuses the same zigzag scheme.
// A request payload is
//
//	op byte | request id uvarint | op-specific body
//
// and a response payload is
//
//	status byte | op byte | request id uvarint | status/op-specific body
//
// The op byte is repeated in the response so either direction of the
// protocol decodes standalone — a response is interpretable without the
// request that provoked it (debugging captures, fuzzing). Request ids are
// chosen by the client and echoed verbatim; a client pipelines by issuing
// many ids before the first response arrives, and matches responses back by
// id (the server may reorder: reads overtake queued writes).
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Ops. OpCancel carries the id of an in-flight scan to stop; it has no
// response of its own (the scan terminates with its usual final frame).
const (
	OpPut byte = iota + 1
	OpGet
	OpDelete
	OpPutBatch
	OpDeleteBatch
	OpScan
	OpStats
	OpCancel
	opMax = OpCancel
)

// Statuses. StatusScanChunk frames stream a scan's pairs; the scan ends
// with a StatusOK frame for the same id. StatusBusy is the backpressure
// signal — the request was not executed and may be retried. StatusErr
// carries a message; the request did not take effect (or, for a scan, was
// cut short).
const (
	StatusOK byte = iota + 1
	StatusScanChunk
	StatusBusy
	StatusErr
	statusMax = StatusErr
)

// MaxPayload bounds one frame's payload: a length above it is corruption
// (or a hostile peer), not an allocation request. Large batches are split
// across frames by the client.
const MaxPayload = 1 << 24

const frameHeader = 8 // length + crc

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ErrFrame reports a malformed frame: bad length, bad checksum, or a
// payload that does not decode. The stream is unsynchronized past it —
// connections die on ErrFrame, they do not resync.
var ErrFrame = errors.New("wire: malformed frame")

// Request is one decoded client request. Key/Val double as Lo/Hi for
// OpScan. Keys/Vals alias the decode buffer until the next decode into the
// same struct.
type Request struct {
	Op   byte
	ID   uint64
	Key  int64 // point key; scan lo
	Val  int64 // point val; scan hi
	Keys []int64
	Vals []int64
}

// Response is one decoded server response. Found reports Get presence and
// Delete removal; Val carries the Get value or the DeleteBatch removed
// count; Keys/Vals carry a scan chunk's pairs; Blob carries the OpStats
// JSON; Err the StatusErr message.
type Response struct {
	Status byte
	Op     byte
	ID     uint64
	Found  bool
	Val    int64
	Keys   []int64
	Vals   []int64
	Blob   []byte
	Err    string
}

// AppendRequest appends r as one framed request to dst.
func AppendRequest(dst []byte, r *Request) []byte {
	return frame(dst, func(p []byte) []byte {
		p = append(p, r.Op)
		p = binary.AppendUvarint(p, r.ID)
		switch r.Op {
		case OpPut:
			p = binary.AppendVarint(p, r.Key)
			p = binary.AppendVarint(p, r.Val)
		case OpGet, OpDelete:
			p = binary.AppendVarint(p, r.Key)
		case OpScan:
			p = binary.AppendVarint(p, r.Key)
			p = binary.AppendVarint(p, r.Val)
		case OpPutBatch:
			p = binary.AppendUvarint(p, uint64(len(r.Keys)))
			for _, k := range r.Keys {
				p = binary.AppendVarint(p, k)
			}
			for _, v := range r.Vals {
				p = binary.AppendVarint(p, v)
			}
		case OpDeleteBatch:
			p = binary.AppendUvarint(p, uint64(len(r.Keys)))
			for _, k := range r.Keys {
				p = binary.AppendVarint(p, k)
			}
		case OpStats, OpCancel:
			// id only
		default:
			panic(fmt.Sprintf("wire: unknown op %d", r.Op))
		}
		return p
	})
}

// AppendResponse appends r as one framed response to dst.
func AppendResponse(dst []byte, r *Response) []byte {
	return frame(dst, func(p []byte) []byte {
		p = append(p, r.Status, r.Op)
		p = binary.AppendUvarint(p, r.ID)
		switch r.Status {
		case StatusBusy:
			// header only
		case StatusErr:
			p = append(p, r.Err...)
		case StatusScanChunk:
			p = binary.AppendUvarint(p, uint64(len(r.Keys)))
			for _, k := range r.Keys {
				p = binary.AppendVarint(p, k)
			}
			for _, v := range r.Vals {
				p = binary.AppendVarint(p, v)
			}
		case StatusOK:
			switch r.Op {
			case OpGet:
				if r.Found {
					p = append(p, 1)
					p = binary.AppendVarint(p, r.Val)
				} else {
					p = append(p, 0)
				}
			case OpDelete:
				if r.Found {
					p = append(p, 1)
				} else {
					p = append(p, 0)
				}
			case OpDeleteBatch:
				p = binary.AppendUvarint(p, uint64(r.Val))
			case OpStats:
				p = append(p, r.Blob...)
			case OpPut, OpPutBatch, OpScan:
				// header only
			default:
				panic(fmt.Sprintf("wire: unknown op %d", r.Op))
			}
		default:
			panic(fmt.Sprintf("wire: unknown status %d", r.Status))
		}
		return p
	})
}

// frame reserves the 8-byte header, lets fill append the payload, then
// back-patches length and CRC (the WAL's framing, verbatim).
func frame(b []byte, fill func([]byte) []byte) []byte {
	start := len(b)
	b = append(b, 0, 0, 0, 0, 0, 0, 0, 0)
	b = fill(b)
	payload := b[start+frameHeader:]
	binary.LittleEndian.PutUint32(b[start:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(b[start+4:], crc32.Checksum(payload, crcTable))
	return b
}

// ReadFrame reads one frame from r, reusing buf when it is large enough,
// and returns the checksum-verified payload. io.EOF is returned unwrapped
// only when the stream ends cleanly between frames; every other failure is
// ErrFrame or the underlying read error.
func ReadFrame(r io.Reader, buf []byte) ([]byte, error) {
	var hdr [frameHeader]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			return nil, fmt.Errorf("%w: torn header", ErrFrame)
		}
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:4])
	if n == 0 || n > MaxPayload {
		return nil, fmt.Errorf("%w: payload length %d", ErrFrame, n)
	}
	if cap(buf) < int(n) {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return nil, fmt.Errorf("%w: torn payload", ErrFrame)
		}
		return nil, err
	}
	if crc32.Checksum(buf, crcTable) != binary.LittleEndian.Uint32(hdr[4:]) {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrFrame)
	}
	return buf, nil
}

// DecodeRequest parses a request payload (as returned by ReadFrame) into
// req, reusing its slices. Trailing bytes are corruption.
func DecodeRequest(p []byte, req *Request) error {
	if len(p) == 0 {
		return fmt.Errorf("%w: empty request", ErrFrame)
	}
	req.Op = p[0]
	if req.Op == 0 || req.Op > opMax {
		return fmt.Errorf("%w: unknown op %d", ErrFrame, req.Op)
	}
	p = p[1:]
	id, n := binary.Uvarint(p)
	if n <= 0 {
		return fmt.Errorf("%w: request id", ErrFrame)
	}
	req.ID = id
	p = p[n:]
	req.Keys, req.Vals = req.Keys[:0], req.Vals[:0]
	var err error
	switch req.Op {
	case OpPut, OpScan:
		if req.Key, p, err = readVarint(p); err != nil {
			return err
		}
		req.Val, p, err = readVarint(p)
	case OpGet, OpDelete:
		req.Key, p, err = readVarint(p)
	case OpPutBatch:
		req.Keys, req.Vals, p, err = readPairs(p, req.Keys, req.Vals, true)
	case OpDeleteBatch:
		req.Keys, req.Vals, p, err = readPairs(p, req.Keys, req.Vals, false)
	case OpStats, OpCancel:
		// id only
	}
	if err != nil {
		return err
	}
	if len(p) != 0 {
		return fmt.Errorf("%w: %d trailing bytes", ErrFrame, len(p))
	}
	return nil
}

// DecodeResponse parses a response payload into resp, reusing its slices.
// Blob aliases the payload buffer.
func DecodeResponse(p []byte, resp *Response) error {
	if len(p) < 2 {
		return fmt.Errorf("%w: short response", ErrFrame)
	}
	resp.Status, resp.Op = p[0], p[1]
	if resp.Status == 0 || resp.Status > statusMax {
		return fmt.Errorf("%w: unknown status %d", ErrFrame, resp.Status)
	}
	if resp.Op == 0 || resp.Op > opMax {
		return fmt.Errorf("%w: unknown op %d", ErrFrame, resp.Op)
	}
	p = p[2:]
	id, n := binary.Uvarint(p)
	if n <= 0 {
		return fmt.Errorf("%w: response id", ErrFrame)
	}
	resp.ID = id
	p = p[n:]
	resp.Found, resp.Val = false, 0
	resp.Keys, resp.Vals = resp.Keys[:0], resp.Vals[:0]
	resp.Blob, resp.Err = nil, ""
	var err error
	switch resp.Status {
	case StatusBusy:
		// header only
	case StatusErr:
		resp.Err = string(p)
		p = nil
	case StatusScanChunk:
		resp.Keys, resp.Vals, p, err = readPairs(p, resp.Keys, resp.Vals, true)
	case StatusOK:
		switch resp.Op {
		case OpGet:
			if len(p) == 0 {
				return fmt.Errorf("%w: get response", ErrFrame)
			}
			found := p[0]
			p = p[1:]
			if found > 1 {
				return fmt.Errorf("%w: get found byte %d", ErrFrame, found)
			}
			if found == 1 {
				resp.Found = true
				resp.Val, p, err = readVarint(p)
			}
		case OpDelete:
			if len(p) == 0 || p[0] > 1 {
				return fmt.Errorf("%w: delete response", ErrFrame)
			}
			resp.Found = p[0] == 1
			p = p[1:]
		case OpDeleteBatch:
			c, n := binary.Uvarint(p)
			if n <= 0 {
				return fmt.Errorf("%w: delete-batch count", ErrFrame)
			}
			resp.Val = int64(c)
			p = p[n:]
		case OpStats:
			resp.Blob = p
			p = nil
		}
	}
	if err != nil {
		return err
	}
	if len(p) != 0 {
		return fmt.Errorf("%w: %d trailing bytes", ErrFrame, len(p))
	}
	return nil
}

func readVarint(p []byte) (int64, []byte, error) {
	v, n := binary.Varint(p)
	if n <= 0 {
		return 0, p, fmt.Errorf("%w: truncated varint", ErrFrame)
	}
	return v, p[n:], nil
}

// readPairs decodes count | keys | vals (vals only when withVals). The
// count is bounded by the remaining payload before allocating — every key
// costs at least one byte — so a crafted count cannot force a huge slice.
func readPairs(p []byte, keys, vals []int64, withVals bool) ([]int64, []int64, []byte, error) {
	c, n := binary.Uvarint(p)
	if n <= 0 || c > uint64(len(p)-n) {
		return keys, vals, p, fmt.Errorf("%w: pair count", ErrFrame)
	}
	p = p[n:]
	var err error
	for i := uint64(0); i < c; i++ {
		var k int64
		if k, p, err = readVarint(p); err != nil {
			return keys, vals, p, err
		}
		keys = append(keys, k)
	}
	if withVals {
		for i := uint64(0); i < c; i++ {
			var v int64
			if v, p, err = readVarint(p); err != nil {
				return keys, vals, p, err
			}
			vals = append(vals, v)
		}
	}
	return keys, vals, p, nil
}
