package wire

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
)

// TestRequestRoundTrip encodes random requests of every op and decodes
// them back, via the same ReadFrame path the server uses.
func TestRequestRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ops := []byte{OpPut, OpGet, OpDelete, OpPutBatch, OpDeleteBatch, OpScan, OpStats, OpCancel}
	for i := 0; i < 2000; i++ {
		op := ops[rng.Intn(len(ops))]
		req := Request{Op: op, ID: rng.Uint64() >> uint(rng.Intn(64))}
		switch op {
		case OpPut, OpScan:
			req.Key, req.Val = rng.Int63()-rng.Int63(), rng.Int63()-rng.Int63()
		case OpGet, OpDelete:
			req.Key = rng.Int63() - rng.Int63()
		case OpPutBatch, OpDeleteBatch:
			n := rng.Intn(50)
			for j := 0; j < n; j++ {
				req.Keys = append(req.Keys, rng.Int63()-rng.Int63())
				if op == OpPutBatch {
					req.Vals = append(req.Vals, rng.Int63()-rng.Int63())
				}
			}
		}
		frame := AppendRequest(nil, &req)
		payload, err := ReadFrame(bytes.NewReader(frame), nil)
		if err != nil {
			t.Fatalf("op %d: ReadFrame: %v", op, err)
		}
		var got Request
		if err := DecodeRequest(payload, &got); err != nil {
			t.Fatalf("op %d: DecodeRequest: %v", op, err)
		}
		normalize := func(r *Request) {
			if len(r.Keys) == 0 {
				r.Keys = nil
			}
			if len(r.Vals) == 0 {
				r.Vals = nil
			}
		}
		normalize(&req)
		normalize(&got)
		if !reflect.DeepEqual(req, got) {
			t.Fatalf("op %d: round trip\n sent %+v\n got  %+v", op, req, got)
		}
	}
}

// TestResponseRoundTrip does the same for every status/op combination the
// server emits.
func TestResponseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	cases := []Response{
		{Status: StatusOK, Op: OpPut},
		{Status: StatusOK, Op: OpPutBatch},
		{Status: StatusOK, Op: OpGet, Found: true, Val: -12345},
		{Status: StatusOK, Op: OpGet, Found: false},
		{Status: StatusOK, Op: OpDelete, Found: true},
		{Status: StatusOK, Op: OpDelete, Found: false},
		{Status: StatusOK, Op: OpDeleteBatch, Val: 9999},
		{Status: StatusOK, Op: OpScan},
		{Status: StatusOK, Op: OpStats, Blob: []byte(`{"durable":true}`)},
		{Status: StatusBusy, Op: OpPut},
		{Status: StatusErr, Op: OpScan, Err: "store: sick"},
		{Status: StatusScanChunk, Op: OpScan, Keys: []int64{1, -2, 3}, Vals: []int64{4, 5, -6}},
	}
	for i, resp := range cases {
		resp.ID = rng.Uint64() >> uint(rng.Intn(64))
		frame := AppendResponse(nil, &resp)
		payload, err := ReadFrame(bytes.NewReader(frame), nil)
		if err != nil {
			t.Fatalf("case %d: ReadFrame: %v", i, err)
		}
		var got Response
		if err := DecodeResponse(payload, &got); err != nil {
			t.Fatalf("case %d: DecodeResponse: %v", i, err)
		}
		normalize := func(r *Response) {
			if len(r.Keys) == 0 {
				r.Keys = nil
			}
			if len(r.Vals) == 0 {
				r.Vals = nil
			}
			if len(r.Blob) == 0 {
				r.Blob = nil
			}
		}
		normalize(&resp)
		normalize(&got)
		if !reflect.DeepEqual(resp, got) {
			t.Fatalf("case %d: round trip\n sent %+v\n got  %+v", i, resp, got)
		}
	}
}

// TestFrameCorruption flips every byte of a valid frame and checks the
// reader rejects the mutation (or yields a decodable but different frame —
// never a crash, never a silent identical decode for header corruption).
func TestFrameCorruption(t *testing.T) {
	req := Request{Op: OpPutBatch, ID: 7, Keys: []int64{1, 2, 3}, Vals: []int64{4, 5, 6}}
	frame := AppendRequest(nil, &req)
	for i := range frame {
		for _, flip := range []byte{0x01, 0x80} {
			mut := append([]byte(nil), frame...)
			mut[i] ^= flip
			payload, err := ReadFrame(bytes.NewReader(mut), nil)
			if err != nil {
				continue // detected: good
			}
			var got Request
			if err := DecodeRequest(payload, &got); err != nil {
				continue // detected at decode: good
			}
			t.Fatalf("byte %d flip %#x: corruption not detected (got %+v)", i, flip, got)
		}
	}
}

// TestReadFrameTruncation feeds every strict prefix of a valid frame.
func TestReadFrameTruncation(t *testing.T) {
	frame := AppendRequest(nil, &Request{Op: OpPut, ID: 1, Key: 2, Val: 3})
	for n := 1; n < len(frame); n++ {
		if _, err := ReadFrame(bytes.NewReader(frame[:n]), nil); err == nil {
			t.Fatalf("prefix of %d/%d bytes: expected error", n, len(frame))
		}
	}
}
