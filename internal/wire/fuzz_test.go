package wire

import (
	"bytes"
	"testing"
)

// FuzzDecodeFrame drives the full receive path — frame read (length bound,
// CRC) then payload decode, both directions — with arbitrary bytes. The
// decoder's contract mirrors the WAL's: never panic, never allocate
// proportionally to a corrupt length or count, and when a request decodes
// successfully its re-encoding must decode to the same thing.
func FuzzDecodeFrame(f *testing.F) {
	f.Add(AppendRequest(nil, &Request{Op: OpPut, ID: 1, Key: -5, Val: 7}))
	f.Add(AppendRequest(nil, &Request{Op: OpGet, ID: 2, Key: 9}))
	f.Add(AppendRequest(nil, &Request{Op: OpPutBatch, ID: 3, Keys: []int64{1, 2}, Vals: []int64{3, 4}}))
	f.Add(AppendRequest(nil, &Request{Op: OpDeleteBatch, ID: 4, Keys: []int64{1, 2, 3}}))
	f.Add(AppendRequest(nil, &Request{Op: OpScan, ID: 5, Key: -100, Val: 100}))
	f.Add(AppendResponse(nil, &Response{Status: StatusOK, Op: OpGet, ID: 6, Found: true, Val: 42}))
	f.Add(AppendResponse(nil, &Response{Status: StatusScanChunk, Op: OpScan, ID: 7, Keys: []int64{1}, Vals: []int64{2}}))
	f.Add(AppendResponse(nil, &Response{Status: StatusErr, Op: OpPut, ID: 8, Err: "x"}))
	f.Fuzz(func(t *testing.T, data []byte) {
		payload, err := ReadFrame(bytes.NewReader(data), nil)
		if err != nil {
			return
		}
		var req Request
		if DecodeRequest(payload, &req) == nil {
			re := AppendRequest(nil, &req)
			p2, err := ReadFrame(bytes.NewReader(re), nil)
			if err != nil {
				t.Fatalf("re-encoded request frame unreadable: %v", err)
			}
			var req2 Request
			if err := DecodeRequest(p2, &req2); err != nil {
				t.Fatalf("re-encoded request undecodable: %v", err)
			}
			if req.Op != req2.Op || req.ID != req2.ID || len(req.Keys) != len(req2.Keys) {
				t.Fatalf("request re-encode mismatch: %+v vs %+v", req, req2)
			}
		}
		var resp Response
		if DecodeResponse(payload, &resp) == nil {
			re := AppendResponse(nil, &resp)
			if _, err := ReadFrame(bytes.NewReader(re), nil); err != nil {
				t.Fatalf("re-encoded response frame unreadable: %v", err)
			}
		}
	})
}
