package masstree

import "fmt"

func errf(format string, args ...any) error {
	return fmt.Errorf("masstree: "+format, args...)
}
