// Package masstree implements the Masstree-style baseline of Section 4 [Mao,
// Kohler & Morris, EuroSys 2012]: a write-optimised ordered index whose
// defining features are small border (leaf) nodes of 15 entries, unsorted
// in-node storage governed by a single permutation word, and optimistic
// readers that validate per-node version counters instead of taking locks.
// These are exactly the properties the paper credits for Masstree's high
// update throughput and blames for its poor scans ("small leaves cause more
// random memory jumps while introducing additional overhead due to version
// checks and unsorted elements").
//
// With the evaluation's fixed 8-byte keys a single trie layer suffices; the
// interior index above the border nodes reuses the optimistic-lock-coupling
// radix tree from internal/art (a trie interior, in the spirit of Masstree's
// trie-of-B+-trees layering). Masstree's background border-node garbage
// collection is omitted: emptied borders stay linked and scans skip them
// (documented simplification, DESIGN.md).
package masstree

import (
	"math"
	"runtime"
	"sync/atomic"

	"pmago/internal/art"
)

// Fanout is the number of entries per border node (Masstree uses 15).
const Fanout = 15

const (
	keyMin = math.MinInt64
	keyMax = math.MaxInt64
)

const lockBit uint32 = 1

// border is a Masstree border node: up to 15 key/value pairs stored in
// insertion slots, with the permutation word mapping key rank to slot. All
// reader-visible fields are atomics; writers serialise through the version
// lock bit and bump the version counter on unlock, invalidating optimistic
// readers.
type border struct {
	version atomic.Uint32
	perm    atomic.Uint64 // low 4 bits: count; nibble i+1: slot of rank i
	keys    [Fanout]atomic.Int64
	vals    [Fanout]atomic.Int64
	lo      int64        // inclusive lower fence; immutable
	hi      atomic.Int64 // inclusive upper fence; changes only on split
	next    atomic.Pointer[border]
}

// permutation helpers. The word always contains all 15 slot ids as nibbles;
// the first count nibbles are the live ranks in key order, the rest are the
// free list.
func permCount(p uint64) int { return int(p & 0xF) }

func permSlot(p uint64, rank int) int {
	return int((p >> (4 * (rank + 1))) & 0xF)
}

// permIdentity is the empty permutation: count 0, slots 0..14 in order.
func permIdentity() uint64 {
	var p uint64
	for i := 0; i < Fanout; i++ {
		p |= uint64(i) << (4 * (i + 1))
	}
	return p
}

// permInsert returns p with the first free slot spliced in at rank r, and
// that slot's index. Requires count < Fanout.
func permInsert(p uint64, r int) (uint64, int) {
	count := permCount(p)
	slot := permSlot(p, count) // first free nibble
	// Shift ranks r..count-1 up by one nibble.
	var np uint64 = uint64(count + 1)
	for i := 0; i < count+1; i++ {
		var s int
		switch {
		case i < r:
			s = permSlot(p, i)
		case i == r:
			s = slot
		default:
			s = permSlot(p, i-1)
		}
		np |= uint64(s) << (4 * (i + 1))
	}
	// Remaining free nibbles (after the consumed one) keep their order.
	for i := count + 1; i < Fanout; i++ {
		np |= uint64(permSlot(p, i)) << (4 * (i + 1))
	}
	return np, slot
}

// permRemove returns p with rank r removed; the freed slot goes to the end
// of the free list.
func permRemove(p uint64, r int) uint64 {
	count := permCount(p)
	freed := permSlot(p, r)
	var np uint64 = uint64(count - 1)
	pos := 0
	for i := 0; i < count; i++ {
		if i == r {
			continue
		}
		np |= uint64(permSlot(p, i)) << (4 * (pos + 1))
		pos++
	}
	for i := count; i < Fanout; i++ {
		np |= uint64(permSlot(p, i)) << (4 * (pos + 1))
		pos++
	}
	np |= uint64(freed) << (4 * (pos + 1))
	return np
}

// lock spins on the border's version lock bit.
func (b *border) lock() {
	for i := 0; ; i++ {
		v := b.version.Load()
		if v&lockBit == 0 && b.version.CompareAndSwap(v, v|lockBit) {
			return
		}
		if i > 64 {
			runtime.Gosched()
		}
	}
}

// unlock releases the lock, bumping the version counter so optimistic
// readers that overlapped the write retry.
func (b *border) unlock() {
	b.version.Store((b.version.Load() &^ lockBit) + 2)
}

// stable samples an unlocked version for an optimistic read.
func (b *border) stable() uint32 {
	for i := 0; ; i++ {
		v := b.version.Load()
		if v&lockBit == 0 {
			return v
		}
		if i > 64 {
			runtime.Gosched()
		}
	}
}

// Tree is the concurrent Masstree-style store.
type Tree struct {
	idx  *art.Tree[border]
	head *border
	size atomic.Int64
}

func ukey(k int64) uint64 { return uint64(k) ^ (1 << 63) }

// New returns an empty tree.
func New() *Tree {
	t := &Tree{idx: art.New[border]()}
	t.head = &border{lo: keyMin}
	t.head.hi.Store(keyMax)
	t.head.perm.Store(permIdentity())
	t.idx.Insert(ukey(keyMin), t.head)
	return t
}

// Len returns the number of stored pairs.
func (t *Tree) Len() int { return int(t.size.Load()) }

// route returns the border whose fences contain k (unlocked; caller
// validates under its own protocol).
func (t *Tree) route(k int64) *border {
	for i := 0; ; i++ {
		b, ok := t.idx.Floor(ukey(k))
		if ok && k >= b.lo && k <= b.hi.Load() {
			return b
		}
		if i > 32 {
			runtime.Gosched()
		}
	}
}

// Get returns the value stored under k via an optimistic read.
func (t *Tree) Get(k int64) (int64, bool) {
	for {
		b := t.route(k)
		v1 := b.stable()
		if k < b.lo || k > b.hi.Load() {
			continue // split moved the range; re-route
		}
		p := b.perm.Load()
		var val int64
		found := false
		for r, c := 0, permCount(p); r < c; r++ {
			s := permSlot(p, r)
			if b.keys[s].Load() == k {
				val = b.vals[s].Load()
				found = true
				break
			}
		}
		if b.version.Load() == v1 {
			return val, found
		}
	}
}

// lockedBorder routes k and locks the owning border, re-routing across
// concurrent splits.
func (t *Tree) lockedBorder(k int64) *border {
	for {
		b := t.route(k)
		b.lock()
		if k >= b.lo && k <= b.hi.Load() {
			return b
		}
		b.unlock()
	}
}

// Put inserts or replaces k/v.
func (t *Tree) Put(k, v int64) {
	if k == keyMin || k == keyMax {
		panic("masstree: cannot store sentinel key")
	}
	for {
		b := t.lockedBorder(k)
		p := b.perm.Load()
		count := permCount(p)
		// Rank search (keys are reached through the permutation, which
		// is maintained in key order).
		r := 0
		for ; r < count; r++ {
			s := permSlot(p, r)
			bk := b.keys[s].Load()
			if bk == k {
				b.vals[s].Store(v)
				b.unlock()
				return
			}
			if bk > k {
				break
			}
		}
		if count < Fanout {
			np, slot := permInsert(p, r)
			b.keys[slot].Store(k)
			b.vals[slot].Store(v)
			b.perm.Store(np) // publish after the pair is in place
			b.unlock()
			t.size.Add(1)
			return
		}
		t.split(b)
		// Retry: k now belongs to one of the two halves.
	}
}

// split divides the full, locked border in two and publishes the right half
// in the interior index; the border is unlocked on return.
func (t *Tree) split(b *border) {
	p := b.perm.Load()
	mid := Fanout / 2 // ranks [mid, Fanout) move right
	right := &border{}
	right.hi.Store(b.hi.Load())
	right.next.Store(b.next.Load())
	rp := permIdentity()
	for i, r := 0, mid; r < Fanout; i, r = i+1, r+1 {
		s := permSlot(p, r)
		var slot int
		rp, slot = permInsert(rp, i)
		right.keys[slot].Store(b.keys[s].Load())
		right.vals[slot].Store(b.vals[s].Load())
	}
	right.perm.Store(rp)
	right.lo = b.keys[permSlot(p, mid)].Load()

	// Publish the right node, then shrink the left under its lock.
	t.idx.Insert(ukey(right.lo), right)
	np := uint64(mid)
	for i := 0; i < mid; i++ {
		np |= uint64(permSlot(p, i)) << (4 * (i + 1))
	}
	pos := mid
	for r := mid; r < Fanout; r++ { // moved slots become free
		np |= uint64(permSlot(p, r)) << (4 * (pos + 1))
		pos++
	}
	b.perm.Store(np)
	b.hi.Store(right.lo - 1)
	b.next.Store(right)
	b.unlock()
}

// Delete removes k, reporting whether it was present. Emptied borders stay
// in place (no structural removal, as documented).
func (t *Tree) Delete(k int64) bool {
	if k == keyMin || k == keyMax {
		return false
	}
	b := t.lockedBorder(k)
	p := b.perm.Load()
	for r, c := 0, permCount(p); r < c; r++ {
		s := permSlot(p, r)
		bk := b.keys[s].Load()
		if bk == k {
			b.perm.Store(permRemove(p, r))
			b.unlock()
			t.size.Add(-1)
			return true
		}
		if bk > k {
			break
		}
	}
	b.unlock()
	return false
}

// Scan visits all pairs with lo <= key <= hi in ascending order, stopping
// when fn returns false. Each border is snapshotted optimistically (the
// version-check overhead the paper attributes to Masstree scans).
func (t *Tree) Scan(lo, hi int64, fn func(k, v int64) bool) {
	if lo > hi {
		return
	}
	var ks, vs [Fanout]int64
	b := t.route(lo)
	for b != nil {
		v1 := b.stable()
		p := b.perm.Load()
		count := permCount(p)
		n := 0
		for r := 0; r < count; r++ {
			s := permSlot(p, r)
			ks[n] = b.keys[s].Load()
			vs[n] = b.vals[s].Load()
			n++
		}
		next := b.next.Load()
		bHi := b.hi.Load()
		if b.version.Load() != v1 {
			continue // retry this border
		}
		for i := 0; i < n; i++ {
			if ks[i] < lo {
				continue
			}
			if ks[i] > hi {
				return
			}
			if !fn(ks[i], vs[i]) {
				return
			}
		}
		if bHi >= hi {
			return
		}
		b = next
	}
}

// ScanAll visits every pair in ascending key order.
func (t *Tree) ScanAll(fn func(k, v int64) bool) {
	t.Scan(keyMin+1, keyMax-1, fn)
}

// Keys returns all keys in order (test helper).
func (t *Tree) Keys() []int64 {
	out := make([]int64, 0, t.Len())
	t.ScanAll(func(k, _ int64) bool { out = append(out, k); return true })
	return out
}

// Validate checks border-chain invariants; quiescent use only.
func (t *Tree) Validate() error {
	prev := int64(keyMin)
	total := 0
	for b := t.head; b != nil; b = b.next.Load() {
		p := b.perm.Load()
		count := permCount(p)
		seen := map[int]bool{}
		for r := 0; r < count; r++ {
			s := permSlot(p, r)
			if seen[s] {
				return errf("duplicate slot %d in permutation", s)
			}
			seen[s] = true
			k := b.keys[s].Load()
			if k <= prev {
				return errf("order violation: %d after %d", k, prev)
			}
			if k < b.lo || k > b.hi.Load() {
				return errf("key %d outside fences [%d,%d]", k, b.lo, b.hi.Load())
			}
			prev = k
		}
		total += count
	}
	if total != t.Len() {
		return errf("border sum %d != size %d", total, t.Len())
	}
	return nil
}
