package masstree

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
)

func TestPermutationWord(t *testing.T) {
	p := permIdentity()
	if permCount(p) != 0 {
		t.Fatal("identity count != 0")
	}
	// Insert slots at ranks 0,0,1 -> three live ranks.
	p, s0 := permInsert(p, 0)
	p, s1 := permInsert(p, 0)
	p, s2 := permInsert(p, 1)
	if permCount(p) != 3 {
		t.Fatalf("count = %d", permCount(p))
	}
	if s0 == s1 || s1 == s2 || s0 == s2 {
		t.Fatal("slots not distinct")
	}
	if permSlot(p, 0) != s1 || permSlot(p, 1) != s2 || permSlot(p, 2) != s0 {
		t.Fatalf("rank order wrong: %d %d %d", permSlot(p, 0), permSlot(p, 1), permSlot(p, 2))
	}
	// Remove the middle rank; slot returns to the free list and the word
	// stays a permutation of 0..14.
	p = permRemove(p, 1)
	if permCount(p) != 2 {
		t.Fatalf("count after remove = %d", permCount(p))
	}
	seen := map[int]bool{}
	for i := 0; i < Fanout; i++ {
		s := permSlot(p, i)
		if seen[s] {
			t.Fatalf("slot %d duplicated", s)
		}
		seen[s] = true
	}
}

func TestBasic(t *testing.T) {
	tr := New()
	tr.Put(5, 50)
	tr.Put(3, 30)
	if v, ok := tr.Get(5); !ok || v != 50 {
		t.Fatalf("Get(5) = %d,%v", v, ok)
	}
	if _, ok := tr.Get(4); ok {
		t.Fatal("absent key found")
	}
	tr.Put(5, 51)
	if v, _ := tr.Get(5); v != 51 {
		t.Fatal("upsert failed")
	}
	if tr.Len() != 2 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if !tr.Delete(5) || tr.Delete(5) {
		t.Fatal("delete semantics wrong")
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSplitsBothDirections(t *testing.T) {
	for _, asc := range []bool{true, false} {
		tr := New()
		const n = 10_000
		for i := int64(0); i < n; i++ {
			k := i
			if !asc {
				k = n - 1 - i
			}
			tr.Put(k, k*2)
		}
		keys := tr.Keys()
		if len(keys) != n {
			t.Fatalf("asc=%v: %d keys", asc, len(keys))
		}
		for i, k := range keys {
			if k != int64(i) {
				t.Fatalf("asc=%v: keys[%d] = %d", asc, i, k)
			}
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("asc=%v: %v", asc, err)
		}
	}
}

func TestModelRandom(t *testing.T) {
	tr := New()
	model := map[int64]int64{}
	rng := rand.New(rand.NewSource(21))
	for i := 0; i < 60_000; i++ {
		k := int64(rng.Intn(4000)) - 2000
		switch rng.Intn(10) {
		case 0, 1, 2:
			want := false
			if _, ok := model[k]; ok {
				want = true
				delete(model, k)
			}
			if got := tr.Delete(k); got != want {
				t.Fatalf("op %d: Delete(%d) = %v want %v", i, k, got, want)
			}
		case 3:
			wv, wok := model[k]
			gv, gok := tr.Get(k)
			if gok != wok || (gok && gv != wv) {
				t.Fatalf("op %d: Get(%d) mismatch", i, k)
			}
		default:
			v := rng.Int63()
			model[k] = v
			tr.Put(k, v)
		}
	}
	if tr.Len() != len(model) {
		t.Fatalf("Len = %d, model %d", tr.Len(), len(model))
	}
	want := make([]int64, 0, len(model))
	for k := range model {
		want = append(want, k)
	}
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	got := tr.Keys()
	if len(got) != len(want) {
		t.Fatalf("scan %d keys want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("key[%d] = %d want %d", i, got[i], want[i])
		}
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestScanRangeAndEarlyStop(t *testing.T) {
	tr := New()
	for i := int64(0); i < 2000; i++ {
		tr.Put(i*10, i)
	}
	var got []int64
	tr.Scan(95, 205, func(k, _ int64) bool { got = append(got, k); return true })
	want := []int64{100, 110, 120, 130, 140, 150, 160, 170, 180, 190, 200}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	count := 0
	tr.ScanAll(func(_, _ int64) bool { count++; return count < 3 })
	if count != 3 {
		t.Fatalf("early stop visited %d", count)
	}
}

func TestConcurrentDisjoint(t *testing.T) {
	tr := New()
	const workers = 8
	const per = 5_000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := int64(w * per)
			for i := int64(0); i < per; i++ {
				tr.Put(base+i, base+i)
				if v, ok := tr.Get(base + i); !ok || v != base+i {
					t.Errorf("read-own-write failed at %d", base+i)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if tr.Len() != workers*per {
		t.Fatalf("Len = %d", tr.Len())
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentMixedWithScans(t *testing.T) {
	tr := New()
	stop := make(chan struct{})
	var scanners sync.WaitGroup
	for s := 0; s < 2; s++ {
		scanners.Add(1)
		go func() {
			defer scanners.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				prev := int64(-1 << 62)
				tr.ScanAll(func(k, _ int64) bool {
					if k <= prev {
						t.Errorf("scan order violation: %d after %d", k, prev)
						return false
					}
					prev = k
					return true
				})
			}
		}()
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 20_000; i++ {
				k := int64(rng.Intn(5_000))
				switch rng.Intn(4) {
				case 0:
					tr.Delete(k)
				case 1:
					tr.Get(k)
				default:
					tr.Put(k, k)
				}
			}
		}(int64(w))
	}
	wg.Wait()
	close(stop)
	scanners.Wait()
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSkewedContention(t *testing.T) {
	tr := New()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 10_000; i++ {
				k := int64(rng.Intn(100))
				tr.Put(k, k)
			}
		}(w)
	}
	wg.Wait()
	if tr.Len() != 100 {
		t.Fatalf("Len = %d, want 100", tr.Len())
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}
