package art

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
)

func vp(v int64) *int64 { return &v }

func TestInsertGet(t *testing.T) {
	tr := New[int64]()
	keys := []uint64{0, 1, 255, 256, 1 << 16, 1 << 32, 1<<64 - 1, 0xDEADBEEF}
	for _, k := range keys {
		tr.Insert(k, vp(int64(k%97)))
	}
	for _, k := range keys {
		v, ok := tr.Get(k)
		if !ok || *v != int64(k%97) {
			t.Fatalf("Get(%d) = %v,%v", k, v, ok)
		}
	}
	if _, ok := tr.Get(12345); ok {
		t.Fatal("absent key found")
	}
	if tr.Len() != len(keys) {
		t.Fatalf("Len = %d, want %d", tr.Len(), len(keys))
	}
}

func TestUpsert(t *testing.T) {
	tr := New[int64]()
	tr.Insert(7, vp(1))
	tr.Insert(7, vp(2))
	if tr.Len() != 1 {
		t.Fatalf("Len = %d", tr.Len())
	}
	v, _ := tr.Get(7)
	if *v != 2 {
		t.Fatalf("value = %d, want 2", *v)
	}
}

func TestNodeGrowthThroughAllKinds(t *testing.T) {
	tr := New[int64]()
	// 300 children under one byte position forces N4 -> N16 -> N48 -> N256.
	for i := uint64(0); i < 256; i++ {
		tr.Insert(i<<8, vp(int64(i)))
	}
	for i := uint64(0); i < 256; i++ {
		v, ok := tr.Get(i << 8)
		if !ok || *v != int64(i) {
			t.Fatalf("Get(%d) = %v,%v", i<<8, v, ok)
		}
	}
}

func TestDelete(t *testing.T) {
	tr := New[int64]()
	for i := uint64(0); i < 1000; i++ {
		tr.Insert(i*3, vp(int64(i)))
	}
	for i := uint64(0); i < 1000; i += 2 {
		if !tr.Delete(i * 3) {
			t.Fatalf("Delete(%d) = false", i*3)
		}
	}
	if tr.Delete(3_000_000) {
		t.Fatal("deleted an absent key")
	}
	for i := uint64(0); i < 1000; i++ {
		_, ok := tr.Get(i * 3)
		if want := i%2 == 1; ok != want {
			t.Fatalf("Get(%d) present=%v, want %v", i*3, ok, want)
		}
	}
	if tr.Len() != 500 {
		t.Fatalf("Len = %d, want 500", tr.Len())
	}
}

func TestDeleteEverythingAndReuse(t *testing.T) {
	tr := New[int64]()
	for i := uint64(1); i <= 500; i++ {
		tr.Insert(i, vp(int64(i)))
	}
	for i := uint64(1); i <= 500; i++ {
		tr.Delete(i)
	}
	if tr.Len() != 0 {
		t.Fatalf("Len = %d after erasure", tr.Len())
	}
	tr.Insert(42, vp(42))
	if v, ok := tr.Get(42); !ok || *v != 42 {
		t.Fatal("reuse failed")
	}
}

func TestWalkSorted(t *testing.T) {
	tr := New[int64]()
	rng := rand.New(rand.NewSource(5))
	want := map[uint64]bool{}
	for i := 0; i < 5000; i++ {
		k := rng.Uint64()
		tr.Insert(k, vp(int64(i)))
		want[k] = true
	}
	var got []uint64
	tr.Walk(func(k uint64, _ *int64) { got = append(got, k) })
	if len(got) != len(want) {
		t.Fatalf("walk %d keys, want %d", len(got), len(want))
	}
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
		t.Fatal("walk not in ascending order")
	}
}

func TestFloor(t *testing.T) {
	tr := New[int64]()
	keys := []uint64{10, 20, 30, 1000, 1 << 20, 1 << 40}
	for _, k := range keys {
		tr.Insert(k, vp(int64(k)))
	}
	cases := []struct {
		q     uint64
		want  int64
		found bool
	}{
		{9, 0, false},
		{10, 10, true},
		{15, 10, true},
		{20, 20, true},
		{999, 30, true},
		{1000, 1000, true},
		{1<<20 - 1, 1000, true},
		{1 << 20, 1 << 20, true},
		{1<<40 + 5, 1 << 40, true},
		{1<<64 - 1, 1 << 40, true},
	}
	for _, c := range cases {
		v, found := tr.Floor(c.q)
		if found != c.found {
			t.Fatalf("Floor(%d) found=%v, want %v", c.q, found, c.found)
		}
		if found && *v != c.want {
			t.Fatalf("Floor(%d) = %d, want %d", c.q, *v, c.want)
		}
	}
}

func TestFloorRandomAgainstReference(t *testing.T) {
	tr := New[int64]()
	rng := rand.New(rand.NewSource(77))
	var sorted []uint64
	for i := 0; i < 3000; i++ {
		k := rng.Uint64() >> uint(rng.Intn(40)) // mix of dense and sparse
		tr.Insert(k, vp(int64(k)))
		sorted = append(sorted, k)
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	// Dedup.
	uniq := sorted[:0]
	for i, k := range sorted {
		if i == 0 || k != uniq[len(uniq)-1] {
			uniq = append(uniq, k)
		}
	}
	for q := 0; q < 5000; q++ {
		k := rng.Uint64() >> uint(rng.Intn(40))
		i := sort.Search(len(uniq), func(i int) bool { return uniq[i] > k })
		v, found := tr.Floor(k)
		if i == 0 {
			if found {
				t.Fatalf("Floor(%d) found %d, want none", k, *v)
			}
			continue
		}
		if !found || *v != int64(uniq[i-1]) {
			t.Fatalf("Floor(%d) = %v,%v want %d", k, v, found, uniq[i-1])
		}
	}
}

func TestConcurrentInsertGet(t *testing.T) {
	tr := New[int64]()
	const workers = 8
	const per = 4000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				k := uint64(w*per + i)
				tr.Insert(k*7, vp(int64(k)))
				if v, ok := tr.Get(k * 7); !ok || *v != int64(k) {
					t.Errorf("read-own-write failed for %d", k*7)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if tr.Len() != workers*per {
		t.Fatalf("Len = %d, want %d", tr.Len(), workers*per)
	}
}

func TestConcurrentMixed(t *testing.T) {
	tr := New[int64]()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 8000; i++ {
				k := uint64(rng.Intn(4000))
				switch rng.Intn(4) {
				case 0:
					tr.Delete(k)
				case 1:
					tr.Get(k)
				case 2:
					tr.Floor(k)
				default:
					tr.Insert(k, vp(int64(k)))
				}
			}
		}(w)
	}
	wg.Wait()
	// Tree must still be structurally sound: walk is sorted and Get agrees.
	var prev uint64
	first := true
	tr.Walk(func(k uint64, v *int64) {
		if !first && k <= prev {
			t.Fatalf("walk order violation: %d after %d", k, prev)
		}
		if *v != int64(k) {
			t.Fatalf("value mismatch at %d", k)
		}
		prev, first = k, false
	})
}

func TestConcurrentFloorConsistency(t *testing.T) {
	tr := New[int64]()
	// Pre-seed so Floor always finds something.
	tr.Insert(0, vp(0))
	stop := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func(seed int64) {
			defer readers.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				q := uint64(rng.Intn(100_000))
				v, found := tr.Floor(q)
				if !found {
					t.Error("Floor lost the seed key 0")
					return
				}
				if *v < 0 || uint64(*v) > q {
					t.Errorf("Floor(%d) returned key %d", q, *v)
					return
				}
			}
		}(int64(r))
	}
	for i := 0; i < 50_000; i++ {
		k := uint64(rand.Intn(100_000))
		tr.Insert(k, vp(int64(k)))
	}
	close(stop)
	readers.Wait()
}

// TestFloorSkipsEmptiedBranch is a regression test: deletions can leave an
// empty inner node behind, and a floor query whose largest lower sibling is
// such an empty subtree must fall back to the next one instead of reporting
// no result.
func TestFloorSkipsEmptiedBranch(t *testing.T) {
	tr := New[int64]()
	// Three subtrees under distinct top bytes; the middle one has two
	// entries so deleting them leaves an inner node without children
	// (no compression happens when numCh drops 2 -> 0 in one subtree).
	tr.Insert(0x10<<56|1, vp(1))
	tr.Insert(0x10<<56|2, vp(2))
	tr.Insert(0x20<<56|1, vp(3))
	tr.Insert(0x20<<56|2, vp(4))
	tr.Insert(0x30<<56|1, vp(5))
	tr.Delete(0x20<<56 | 1)
	tr.Delete(0x20<<56 | 2)
	// Floor of a key routed into the 0x30 subtree below its min must
	// skip the emptied 0x20 subtree and land on the 0x10 maximum.
	v, found := tr.Floor(0x30 << 56)
	if !found || *v != 2 {
		t.Fatalf("Floor = %v,%v want 2,true", v, found)
	}
	// Floor of a key inside the emptied range behaves the same.
	v, found = tr.Floor(0x20<<56 | 5)
	if !found || *v != 2 {
		t.Fatalf("Floor in emptied range = %v,%v want 2,true", v, found)
	}
}
