// Package art implements an Adaptive Radix Tree [Leis et al., ICDE 2013]
// with Optimistic Lock Coupling [Leis et al., DaMoN 2016] over fixed 8-byte
// keys. In this repository it serves as the secondary index of the ART +
// B+-tree baseline of Section 4: it maps each B+-tree leaf's minimum key to
// the leaf, and answers Floor queries (the rightmost entry <= k) that route
// operations to leaves.
//
// Concurrency: every node carries a version word (bit 0 = obsolete, bit 1 =
// locked, upper bits = counter). Readers traverse without locks, validating
// versions after reading a node's fields and restarting the operation on any
// conflict. Writers spin-lock the nodes they modify (and the parent when the
// node is grown, shrunk or replaced). The fields optimistic readers touch
// (child keys, child count, compressed prefix) are stored atomically so the
// protocol is well-defined under the Go memory model: a torn logical state
// is still a sequence of valid loads, and the version validation rejects it.
//
// With 8-byte keys a compressed prefix is at most 7 bytes (every node
// consumes at least its child byte), so the whole prefix packs into a single
// atomic word: readers always observe a consistent (length, bytes) pair.
package art

import (
	"runtime"
	"sync/atomic"
)

// node kinds.
const (
	kindN4 uint8 = iota
	kindN16
	kindN48
	kindN256
	kindLeaf
)

// node is an ART node of any kind. Children are indexed differently per
// kind: N4/N16 keep parallel keys/children arrays, N48 keeps a 256-entry
// indirection into children, N256 indexes children directly.
type node[V any] struct {
	version atomic.Uint64
	prefix  atomic.Uint64 // packed compressed path: low byte = length, bytes 1..7 = path
	numCh   atomic.Uint32

	kind uint8

	keys     []atomic.Uint32           // N4/N16: child key bytes; N48: child slot + 1 (0 = empty)
	children []atomic.Pointer[node[V]] // kind-dependent fan-out

	// Leaf fields.
	key uint64
	val atomic.Pointer[V]
}

// Tree is a concurrent ART keyed by uint64 (compared numerically, traversed
// big-endian byte-wise) holding *V values.
type Tree[V any] struct {
	root atomic.Pointer[node[V]] // always an inner node (possibly empty N4)
}

// New returns an empty tree.
func New[V any]() *Tree[V] {
	t := &Tree[V]{}
	t.root.Store(newInner[V](kindN4, nil))
	return t
}

// packPrefix encodes up to 7 path bytes plus their count into one word.
func packPrefix(p []byte) uint64 {
	v := uint64(len(p))
	for i, b := range p {
		v |= uint64(b) << (8 * (i + 1))
	}
	return v
}

func unpackPrefix(v uint64) (b [7]byte, l int) {
	l = int(v & 0xFF)
	for i := 0; i < l; i++ {
		b[i] = byte(v >> (8 * (i + 1)))
	}
	return b, l
}

func newInner[V any](kind uint8, prefix []byte) *node[V] {
	n := &node[V]{kind: kind}
	n.prefix.Store(packPrefix(prefix))
	switch kind {
	case kindN4:
		n.keys = make([]atomic.Uint32, 4)
		n.children = make([]atomic.Pointer[node[V]], 4)
	case kindN16:
		n.keys = make([]atomic.Uint32, 16)
		n.children = make([]atomic.Pointer[node[V]], 16)
	case kindN48:
		n.keys = make([]atomic.Uint32, 256)
		n.children = make([]atomic.Pointer[node[V]], 48)
	case kindN256:
		n.children = make([]atomic.Pointer[node[V]], 256)
	}
	return n
}

func newLeaf[V any](k uint64, v *V) *node[V] {
	n := &node[V]{kind: kindLeaf, key: k}
	n.val.Store(v)
	return n
}

// --- version lock protocol ---

const (
	obsoleteBit uint64 = 1
	lockBit     uint64 = 2
)

// readLock samples a stable (unlocked) version.
func (n *node[V]) readLock() (uint64, bool) {
	for i := 0; ; i++ {
		v := n.version.Load()
		if v&lockBit == 0 {
			return v, v&obsoleteBit == 0
		}
		if i > 64 {
			runtime.Gosched()
		}
	}
}

// readUnlock validates that the version did not change.
func (n *node[V]) readUnlock(v uint64) bool {
	return n.version.Load() == v
}

// lock acquires the write lock, failing if the node became obsolete.
func (n *node[V]) lock() bool {
	for i := 0; ; i++ {
		v := n.version.Load()
		if v&obsoleteBit != 0 {
			return false
		}
		if v&lockBit == 0 && n.version.CompareAndSwap(v, v|lockBit) {
			return true
		}
		if i > 64 {
			runtime.Gosched()
		}
	}
}

// upgrade converts a validated read into a write lock; fails on conflict.
func (n *node[V]) upgrade(v uint64) bool {
	return n.version.CompareAndSwap(v, v|lockBit)
}

// unlock releases the write lock, bumping the version counter.
func (n *node[V]) unlock() {
	n.version.Store((n.version.Load() &^ lockBit) + 4)
}

// unlockObsolete releases the write lock and marks the node dead.
func (n *node[V]) unlockObsolete() {
	n.version.Store(((n.version.Load() &^ lockBit) + 4) | obsoleteBit)
}

// --- byte-wise helpers ---

func keyBytes(k uint64) [8]byte {
	var b [8]byte
	for i := 0; i < 8; i++ {
		b[i] = byte(k >> (56 - 8*i))
	}
	return b
}

// childIndex returns the slot of byte b in n, or -1.
func (n *node[V]) childIndex(b byte) int {
	switch n.kind {
	case kindN4, kindN16:
		nc := int(n.numCh.Load())
		for i := 0; i < nc && i < len(n.keys); i++ {
			if byte(n.keys[i].Load()) == b {
				return i
			}
		}
		return -1
	case kindN48:
		if idx := n.keys[b].Load(); idx != 0 {
			return int(idx - 1)
		}
		return -1
	default: // N256
		if n.children[b].Load() != nil {
			return int(b)
		}
		return -1
	}
}

// child returns the child for byte b (nil if absent).
func (n *node[V]) child(b byte) *node[V] {
	if i := n.childIndex(b); i >= 0 {
		return n.children[i].Load()
	}
	return nil
}

// childrenBelow appends to buf the children whose key byte is strictly below
// limit (pass 256 for all children), in descending byte order. Deletions can
// leave empty inner nodes behind, so floor searches must be able to fall
// back across several candidates, not just the largest one.
func (n *node[V]) childrenBelow(limit int, buf []*node[V]) []*node[V] {
	switch n.kind {
	case kindN4, kindN16:
		type kc struct {
			b byte
			c *node[V]
		}
		var tmp [16]kc
		cnt := 0
		nc := int(n.numCh.Load())
		for i := 0; i < nc && i < len(n.keys); i++ {
			kb := byte(n.keys[i].Load())
			if int(kb) < limit {
				if c := n.children[i].Load(); c != nil {
					tmp[cnt] = kc{kb, c}
					cnt++
				}
			}
		}
		// Insertion sort descending by byte (<= 16 entries).
		for i := 1; i < cnt; i++ {
			for j := i; j > 0 && tmp[j-1].b < tmp[j].b; j-- {
				tmp[j-1], tmp[j] = tmp[j], tmp[j-1]
			}
		}
		for i := 0; i < cnt; i++ {
			buf = append(buf, tmp[i].c)
		}
		return buf
	case kindN48:
		for kb := limit - 1; kb >= 0; kb-- {
			if idx := n.keys[kb].Load(); idx != 0 {
				if c := n.children[idx-1].Load(); c != nil {
					buf = append(buf, c)
				}
			}
		}
		return buf
	default:
		for kb := limit - 1; kb >= 0; kb-- {
			if c := n.children[kb].Load(); c != nil {
				buf = append(buf, c)
			}
		}
		return buf
	}
}

// addChild inserts (b -> c) into a node with spare capacity (caller ensures
// via full()). Caller holds the write lock. The child count is bumped last
// so optimistic readers never observe a half-written entry.
func (n *node[V]) addChild(b byte, c *node[V]) {
	switch n.kind {
	case kindN4, kindN16:
		i := n.numCh.Load()
		n.keys[i].Store(uint32(b))
		n.children[i].Store(c)
		n.numCh.Store(i + 1)
	case kindN48:
		for i := range n.children {
			if n.children[i].Load() == nil {
				n.children[i].Store(c)
				n.keys[b].Store(uint32(i + 1))
				n.numCh.Add(1)
				return
			}
		}
		panic("art: N48 addChild on full node")
	default:
		n.children[b].Store(c)
		n.numCh.Add(1)
	}
}

func (n *node[V]) full() bool {
	switch n.kind {
	case kindN4:
		return n.numCh.Load() == 4
	case kindN16:
		return n.numCh.Load() == 16
	case kindN48:
		return n.numCh.Load() == 48
	default:
		return false
	}
}

// grown returns a copy of n with the next larger kind (caller holds n's
// lock); children pointers are carried over.
func (n *node[V]) grown() *node[V] {
	pb, pl := unpackPrefix(n.prefix.Load())
	var g *node[V]
	switch n.kind {
	case kindN4:
		g = newInner[V](kindN16, pb[:pl])
	case kindN16:
		g = newInner[V](kindN48, pb[:pl])
	case kindN48:
		g = newInner[V](kindN256, pb[:pl])
	default:
		panic("art: cannot grow N256")
	}
	switch n.kind {
	case kindN4, kindN16:
		nc := int(n.numCh.Load())
		for i := 0; i < nc; i++ {
			g.addChild(byte(n.keys[i].Load()), n.children[i].Load())
		}
	case kindN48:
		for b := 0; b < 256; b++ {
			if idx := n.keys[b].Load(); idx != 0 {
				g.addChild(byte(b), n.children[idx-1].Load())
			}
		}
	}
	return g
}

// removeChild deletes the entry for byte b. Caller holds the write lock.
func (n *node[V]) removeChild(b byte) {
	switch n.kind {
	case kindN4, kindN16:
		nc := n.numCh.Load()
		for i := uint32(0); i < nc; i++ {
			if byte(n.keys[i].Load()) == b {
				last := nc - 1
				// Shrink first so readers never see the moved
				// entry twice with the count still high.
				n.numCh.Store(last)
				n.keys[i].Store(n.keys[last].Load())
				n.children[i].Store(n.children[last].Load())
				n.children[last].Store(nil)
				return
			}
		}
	case kindN48:
		if idx := n.keys[b].Load(); idx != 0 {
			n.keys[b].Store(0)
			n.children[idx-1].Store(nil)
			n.numCh.Add(^uint32(0))
		}
	default:
		if n.children[b].Load() != nil {
			n.children[b].Store(nil)
			n.numCh.Add(^uint32(0))
		}
	}
}

// matchPrefix compares the node prefix against the key at depth; returns the
// matched length, the byte position of divergence within the prefix, and
// whether the whole prefix matched. The prefix is read once, atomically.
func (n *node[V]) matchPrefix(kb [8]byte, depth int) (l int, diverge int, full bool) {
	pb, pl := unpackPrefix(n.prefix.Load())
	for i := 0; i < pl; i++ {
		if depth+i >= 8 || pb[i] != kb[depth+i] {
			return pl, i, false
		}
	}
	return pl, pl, true
}
