package art

// Insert upserts k -> v.
func (t *Tree[V]) Insert(k uint64, v *V) {
	kb := keyBytes(k)
	for !t.insertOnce(kb, k, v) {
	}
}

// insertOnce attempts one optimistic descent; false means a version conflict
// forced a restart.
func (t *Tree[V]) insertOnce(kb [8]byte, k uint64, v *V) bool {
	var parent *node[V]
	var parentV uint64
	var parentByte byte

	n := t.root.Load()
	depth := 0
	for {
		nV, ok := n.readLock()
		if !ok {
			return false
		}
		if n.kind == kindLeaf {
			if n.key == k {
				if !n.upgrade(nV) {
					return false
				}
				n.val.Store(v)
				n.unlock()
				return true
			}
			// Split the leaf: a new N4 holds the diverging byte of
			// both keys, with their common bytes as its prefix.
			if !parent.upgrade(parentV) {
				return false
			}
			if !n.upgrade(nV) {
				parent.unlock()
				return false
			}
			nb := keyBytes(n.key)
			c := 0
			for kb[depth+c] == nb[depth+c] {
				c++
			}
			nn := newInner[V](kindN4, kb[depth:depth+c])
			nn.addChild(kb[depth+c], newLeaf(k, v))
			nn.addChild(nb[depth+c], n)
			parent.replaceChild(parentByte, nn)
			n.unlock()
			parent.unlock()
			return true
		}
		pl, p, fullMatch := n.matchPrefix(kb, depth)
		if !fullMatch {
			// Split the compressed path at the divergence point.
			if !parent.upgrade(parentV) {
				return false
			}
			if !n.upgrade(nV) {
				parent.unlock()
				return false
			}
			pb, _ := unpackPrefix(n.prefix.Load())
			nn := newInner[V](kindN4, pb[:p])
			nn.addChild(kb[depth+p], newLeaf(k, v))
			oldByte := pb[p]
			n.prefix.Store(packPrefix(pb[p+1 : pl]))
			nn.addChild(oldByte, n)
			parent.replaceChild(parentByte, nn)
			n.unlock()
			parent.unlock()
			return true
		}
		depth += pl
		b := kb[depth]
		child := n.child(b)
		if !n.readUnlock(nV) {
			return false
		}
		if child == nil {
			if n.full() {
				if parent == nil {
					// Growing the root: swap the tree's root
					// pointer under the root's lock.
					if !n.upgrade(nV) {
						return false
					}
					g := n.grown()
					g.addChild(b, newLeaf(k, v))
					t.root.Store(g)
					n.unlockObsolete()
					return true
				}
				if !parent.upgrade(parentV) {
					return false
				}
				if !n.upgrade(nV) {
					parent.unlock()
					return false
				}
				g := n.grown()
				g.addChild(b, newLeaf(k, v))
				parent.replaceChild(parentByte, g)
				n.unlockObsolete()
				parent.unlock()
				return true
			}
			if !n.upgrade(nV) {
				return false
			}
			n.addChild(b, newLeaf(k, v))
			n.unlock()
			return true
		}
		parent, parentV, parentByte = n, nV, b
		n = child
		depth++
	}
}

// Delete removes k, reporting whether it was present.
func (t *Tree[V]) Delete(k uint64) bool {
	kb := keyBytes(k)
	for {
		if deleted, valid := t.deleteOnce(kb, k); valid {
			return deleted
		}
	}
}

func (t *Tree[V]) deleteOnce(kb [8]byte, k uint64) (deleted, valid bool) {
	var parent *node[V]
	var parentV uint64
	var parentByte byte

	n := t.root.Load()
	depth := 0
	for {
		nV, ok := n.readLock()
		if !ok {
			return false, false
		}
		if n.kind == kindLeaf {
			// Only reachable at the root position when the tree
			// degenerated; handled below via parent.
			return false, n.readUnlock(nV)
		}
		pl, _, fullMatch := n.matchPrefix(kb, depth)
		if !fullMatch {
			return false, n.readUnlock(nV)
		}
		depth += pl
		b := kb[depth]
		child := n.child(b)
		if !n.readUnlock(nV) {
			return false, false
		}
		if child == nil {
			return false, true
		}
		if child.kind == kindLeaf {
			if child.key != k {
				return false, n.readUnlock(nV)
			}
			if !n.upgrade(nV) {
				return false, false
			}
			if !child.lock() {
				n.unlock()
				return false, false
			}
			n.removeChild(b)
			child.unlockObsolete()
			// Path compression: an inner N4 left with one child is
			// folded into its parent (never the root, which stays
			// prefix-free).
			if n.kind == kindN4 && n.numCh.Load() == 1 && parent != nil {
				t.compress(parent, parentV, parentByte, n)
				// compress handles n's unlock; failure to
				// compress is benign (tree stays correct).
				return true, true
			}
			n.unlock()
			return true, true
		}
		parent, parentV, parentByte = n, nV, b
		n = child
		depth++
	}
}

// compress folds the single-child node n (write-locked by the caller) into
// parent, extending the child's prefix. Best-effort: on lock conflicts the
// tree is simply left uncompressed.
func (t *Tree[V]) compress(parent *node[V], parentV uint64, parentByte byte, n *node[V]) {
	if !parent.upgrade(parentV) {
		n.unlock()
		return
	}
	var onlyByte byte
	var only *node[V]
	switch n.kind {
	case kindN4:
		onlyByte = byte(n.keys[0].Load())
		only = n.children[0].Load()
	default:
		parent.unlock()
		n.unlock()
		return
	}
	if only == nil {
		parent.unlock()
		n.unlock()
		return
	}
	if only.kind == kindLeaf {
		// Leaves carry their whole key: drop n entirely.
		parent.replaceChild(parentByte, only)
		parent.unlock()
		n.unlockObsolete()
		return
	}
	if !only.lock() {
		parent.unlock()
		n.unlock()
		return
	}
	// New prefix: n.prefix + onlyByte + only.prefix.
	npb, npl := unpackPrefix(n.prefix.Load())
	opb, opl := unpackPrefix(only.prefix.Load())
	np := make([]byte, 0, npl+1+opl)
	np = append(np, npb[:npl]...)
	np = append(np, onlyByte)
	np = append(np, opb[:opl]...)
	only.prefix.Store(packPrefix(np))
	parent.replaceChild(parentByte, only)
	only.unlock()
	parent.unlock()
	n.unlockObsolete()
}

func (n *node[V]) replaceChild(b byte, c *node[V]) {
	switch n.kind {
	case kindN4, kindN16:
		nc := int(n.numCh.Load())
		for i := 0; i < nc; i++ {
			if byte(n.keys[i].Load()) == b {
				n.children[i].Store(c)
				return
			}
		}
	case kindN48:
		if idx := n.keys[b].Load(); idx != 0 {
			n.children[idx-1].Store(c)
			return
		}
	default:
		n.children[b].Store(c)
		return
	}
	panic("art: replaceChild on absent slot")
}

// Get returns the value stored under k.
func (t *Tree[V]) Get(k uint64) (*V, bool) {
	kb := keyBytes(k)
	for {
		if v, found, valid := t.getOnce(kb, k); valid {
			return v, found
		}
	}
}

func (t *Tree[V]) getOnce(kb [8]byte, k uint64) (v *V, found, valid bool) {
	n := t.root.Load()
	depth := 0
	for {
		nV, ok := n.readLock()
		if !ok {
			return nil, false, false
		}
		if n.kind == kindLeaf {
			key := n.key
			val := n.val.Load()
			if !n.readUnlock(nV) {
				return nil, false, false
			}
			if key == k {
				return val, true, true
			}
			return nil, false, true
		}
		pl, _, fullMatch := n.matchPrefix(kb, depth)
		if !fullMatch {
			return nil, false, n.readUnlock(nV)
		}
		depth += pl
		child := n.child(kb[depth])
		if !n.readUnlock(nV) {
			return nil, false, false
		}
		if child == nil {
			return nil, false, true
		}
		n = child
		depth++
	}
}

// Floor returns the value of the largest key <= k.
func (t *Tree[V]) Floor(k uint64) (*V, bool) {
	kb := keyBytes(k)
	for {
		n := t.root.Load()
		if v, found, valid := t.floorRec(n, kb, k, 0); valid {
			return v, found
		}
	}
}

func (t *Tree[V]) floorRec(n *node[V], kb [8]byte, k uint64, depth int) (v *V, found, valid bool) {
	nV, ok := n.readLock()
	if !ok {
		return nil, false, false
	}
	if n.kind == kindLeaf {
		key := n.key
		val := n.val.Load()
		if !n.readUnlock(nV) {
			return nil, false, false
		}
		if key <= k {
			return val, true, true
		}
		return nil, false, true
	}
	// Compare the compressed path against the key.
	pb, pl := unpackPrefix(n.prefix.Load())
	cmp := 0
	for i := 0; i < pl; i++ {
		if d := depth + i; d >= 8 || pb[i] != kb[d] {
			if d < 8 && pb[i] < kb[d] {
				cmp = -1
			} else {
				cmp = 1
			}
			break
		}
	}
	if cmp > 0 {
		// Every key below n is greater than k.
		return nil, false, n.readUnlock(nV)
	}
	if cmp < 0 {
		// Every key below n is smaller: the floor is n's maximum.
		if !n.readUnlock(nV) {
			return nil, false, false
		}
		return t.maxRec(n)
	}
	depth += pl
	b := kb[depth]
	child := n.child(b)
	below := n.childrenBelow(int(b), nil)
	if !n.readUnlock(nV) {
		return nil, false, false
	}
	if child != nil {
		v, found, valid = t.floorRec(child, kb, k, depth+1)
		if !valid {
			return nil, false, false
		}
		if found {
			return v, true, true
		}
	}
	// Fall back across the lower siblings in descending order: a deletion
	// may have left the largest one empty.
	for _, c := range below {
		v, found, valid = t.maxRec(c)
		if !valid {
			return nil, false, false
		}
		if found {
			return v, true, true
		}
	}
	return nil, false, true
}

// maxRec returns the value under the largest key of n's subtree, skipping
// branches deletions emptied out.
func (t *Tree[V]) maxRec(n *node[V]) (*V, bool, bool) {
	nV, ok := n.readLock()
	if !ok {
		return nil, false, false
	}
	if n.kind == kindLeaf {
		val := n.val.Load()
		if !n.readUnlock(nV) {
			return nil, false, false
		}
		return val, true, true
	}
	cands := n.childrenBelow(256, nil)
	if !n.readUnlock(nV) {
		return nil, false, false
	}
	for _, c := range cands {
		v, found, valid := t.maxRec(c)
		if !valid {
			return nil, false, false
		}
		if found {
			return v, true, true
		}
	}
	return nil, false, true
}

// Walk visits every key/value in ascending key order. Not concurrency-safe
// with writers; intended for tests and diagnostics.
func (t *Tree[V]) Walk(fn func(k uint64, v *V)) {
	t.walkRec(t.root.Load(), fn)
}

func (t *Tree[V]) walkRec(n *node[V], fn func(k uint64, v *V)) {
	if n == nil {
		return
	}
	if n.kind == kindLeaf {
		fn(n.key, n.val.Load())
		return
	}
	switch n.kind {
	case kindN4, kindN16:
		// Keys are unsorted in the arrays: visit in byte order.
		for b := 0; b < 256; b++ {
			if i := n.childIndex(byte(b)); i >= 0 {
				t.walkRec(n.children[i].Load(), fn)
			}
		}
	case kindN48:
		for b := 0; b < 256; b++ {
			if idx := n.keys[b].Load(); idx != 0 {
				t.walkRec(n.children[idx-1].Load(), fn)
			}
		}
	default:
		for b := 0; b < 256; b++ {
			t.walkRec(n.children[b].Load(), fn)
		}
	}
}

// Len counts the stored entries (O(n); tests only).
func (t *Tree[V]) Len() int {
	n := 0
	t.Walk(func(uint64, *V) { n++ })
	return n
}
