package bench

import (
	"testing"
	"time"
)

// TestRunReadsSmall keeps the reads experiment driver from rotting: every
// cell must run, measure a non-zero Get rate, and report the requested
// reader/writer split.
func TestRunReadsSmall(t *testing.T) {
	sc := Scale{LoadN: 10_000, Threads: 4, Seed: 1}
	rs := RunReads(sc, 30*time.Millisecond)
	if want := len(ReadsVariants) * len(ReadsWriterMixes); len(rs) != want {
		t.Fatalf("got %d cells, want %d", len(rs), want)
	}
	known := make(map[string]bool, len(ReadsVariants))
	for _, v := range ReadsVariants {
		known[v] = true
	}
	for _, r := range rs {
		if !known[r.Variant] {
			t.Fatalf("unexpected variant %q", r.Variant)
		}
		if r.GetsPerSec <= 0 {
			t.Fatalf("%s/%d%%: no Get progress", r.Variant, r.WriterPct)
		}
		if r.Readers+r.Writers != sc.Threads {
			t.Fatalf("%s/%d%%: %d readers + %d writers != %d threads",
				r.Variant, r.WriterPct, r.Readers, r.Writers, sc.Threads)
		}
		if r.WriterPct > 0 && r.Writers == 0 {
			t.Fatalf("%d%% mix ran without writers", r.WriterPct)
		}
	}
}
