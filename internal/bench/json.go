package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"pmago/internal/obs"
)

// Machine-readable benchmark output. `pmabench -json FILE` collects every
// experiment it runs into one Report and writes it as indented JSON; CI
// uploads the tiny-scale report as an artifact on every run, and full-scale
// local runs are committed as BENCH_<pr>.json at the repository root to
// record the performance trajectory across PRs. The schema is deliberately
// flat — one (experiment, name, labels, unit, value) row per measurement —
// so trend tooling can diff reports without knowing every experiment.

// Metric is one measurement row.
type Metric struct {
	Experiment string            `json:"experiment"`
	Name       string            `json:"name"`
	Labels     map[string]string `json:"labels,omitempty"`
	Unit       string            `json:"unit"`
	Value      float64           `json:"value"`
}

// Report is the top-level document.
type Report struct {
	SchemaVersion int      `json:"schema_version"`
	CreatedAt     string   `json:"created_at"`
	GoVersion     string   `json:"go_version"`
	GOMAXPROCS    int      `json:"gomaxprocs"`
	Scale         Scale    `json:"scale"`
	Metrics       []Metric `json:"metrics"`
}

// NewReport starts an empty report stamped with the run environment.
func NewReport(sc Scale) *Report {
	return &Report{
		SchemaVersion: 1,
		CreatedAt:     time.Now().UTC().Format(time.RFC3339),
		GoVersion:     runtime.Version(),
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		Scale:         sc,
	}
}

// Add appends one measurement.
func (r *Report) Add(experiment, name string, labels map[string]string, unit string, value float64) {
	if r == nil {
		return
	}
	r.Metrics = append(r.Metrics, Metric{
		Experiment: experiment,
		Name:       name,
		Labels:     labels,
		Unit:       unit,
		Value:      value,
	})
}

// AddResults flattens the figure-style harness results (update and scan
// throughput per store and distribution) into metric rows.
func (r *Report) AddResults(experiment string, rs []Result, showScans bool) {
	if r == nil {
		return
	}
	for _, res := range rs {
		labels := map[string]string{"store": res.Store, "distribution": res.Dist.String()}
		r.Add(experiment, "updates", labels, "ops/s", res.UpdatesPerSec)
		if showScans {
			r.Add(experiment, "scanned", labels, "elements/s", res.ScansPerSec)
		}
	}
}

// AddReads flattens the read-path comparison into metric rows.
func (r *Report) AddReads(rs []ReadsResult) {
	if r == nil {
		return
	}
	for _, res := range rs {
		labels := map[string]string{
			"variant":    res.Variant,
			"writer_pct": fmt.Sprintf("%d", res.WriterPct),
		}
		r.Add("reads", "gets", labels, "ops/s", res.GetsPerSec)
		if res.Writers > 0 {
			r.Add("reads", "puts", labels, "ops/s", res.PutsPerSec)
		}
	}
}

// AddStats flattens a store's metrics snapshot into metric rows under the
// given experiment, one row per counter and three (_count/_sum/_max) per
// distribution — the `pmabench -stats` path, so a BENCH_*.json records not
// just throughput but what the store structurally did to deliver it.
// Nanosecond distributions are scaled to seconds like the Prometheus
// exposition. The extra labels distinguish cells (e.g. the writer mix).
func (r *Report) AddStats(experiment string, labels map[string]string, s obs.Snapshot) {
	if r == nil {
		return
	}
	for _, p := range s.Points() {
		l := labels
		if p.Labels != nil {
			l = make(map[string]string, len(labels)+len(p.Labels))
			for k, v := range labels {
				l[k] = v
			}
			for k, v := range p.Labels {
				l[k] = v
			}
		}
		scale := p.Scale
		if scale == 0 {
			scale = 1
		}
		if p.Win != nil {
			r.Add(experiment, "stats_"+p.Name+"_count", l, "observations", float64(p.Win.Count))
			r.Add(experiment, "stats_"+p.Name+"_p50", l, p.Unit, p.Win.P50*scale)
			r.Add(experiment, "stats_"+p.Name+"_p95", l, p.Unit, p.Win.P95*scale)
			r.Add(experiment, "stats_"+p.Name+"_p99", l, p.Unit, p.Win.P99*scale)
			r.Add(experiment, "stats_"+p.Name+"_p999", l, p.Unit, p.Win.P999*scale)
			continue
		}
		if p.Dist == nil {
			r.Add(experiment, "stats_"+p.Name, l, p.Unit, float64(p.Value)*scale)
			continue
		}
		r.Add(experiment, "stats_"+p.Name+"_count", l, "observations", float64(p.Dist.Count))
		r.Add(experiment, "stats_"+p.Name+"_sum", l, p.Unit, float64(p.Dist.Sum)*scale)
		r.Add(experiment, "stats_"+p.Name+"_max", l, p.Unit, float64(p.Dist.Max)*scale)
	}
}

// WriteFile writes the report as indented JSON via a temp-file rename, so a
// crashed run never leaves a half-written report behind.
func (r *Report) WriteFile(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}
