package bench

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"pmago/internal/core"
)

// This file is the read-path experiment behind `pmabench -experiment reads`:
// it measures Get throughput of the optimistic (seqlock) read protocol
// against the shared-latch baseline (core.Config.DisableOptimisticReads) at
// 0%, 25% and 50% writer mixes, over the same preloaded store, plus a
// "nometrics" variant (optimistic path, core.Config.DisableMetrics) that
// guards the observability overhead: metrics-on must stay within a few
// percent of metrics-off on every mix. The acceptance bar for the
// optimistic path is that it improves the uncontended mix and regresses no
// mix — the numbers are recorded in README.md and the BENCH_*.json
// trajectory.

// ReadsResult is one cell of the read-path comparison.
type ReadsResult struct {
	Variant    string // "optimistic", "latched", "nometrics" or "compressed"
	WriterPct  int    // requested share of threads issuing updates
	Readers    int    // goroutines issuing Gets
	Writers    int    // goroutines issuing Puts
	GetsPerSec float64
	PutsPerSec float64
	Wall       time.Duration
	// Stats is the store's metrics snapshot at the end of the cell (zeros
	// for the nometrics variant) — `pmabench -stats` reports it.
	Stats core.Stats
}

// ReadsVariants are the evaluated read-path configurations. "compressed"
// is the optimistic path over compressed chunks (core.Config
// CompressedChunks): each Get pays one bounded segment decode, the cost
// side of the memory experiment's space win.
var ReadsVariants = []string{"optimistic", "latched", "nometrics", "compressed"}

// ReadsWriterMixes are the evaluated writer shares, in percent of threads.
var ReadsWriterMixes = []int{0, 25, 50}

// RunReads executes the full grid: for each writer mix, the same time-boxed
// workload against a PMA with optimistic reads enabled and one with them
// disabled. perCell bounds the measured window of each cell; every cell is
// run twice and the better Get rate kept, damping scheduler noise (the
// cells oversubscribe GOMAXPROCS on small machines, exactly like the
// paper's 16-thread runs).
func RunReads(sc Scale, perCell time.Duration) []ReadsResult {
	if perCell <= 0 {
		perCell = time.Second
	}
	threads := sc.Threads
	if threads < 2 {
		threads = 2
	}
	if sc.LoadN < 1 {
		sc.LoadN = 1 << 16 // readers index the loaded keys; never run empty
	}
	keys := make([]int64, sc.LoadN)
	vals := make([]int64, sc.LoadN)
	for i := range keys {
		keys[i] = int64(i)*2 + 1 // odd keys loaded; writers also touch even ones
		vals[i] = keys[i]
	}
	const repeats = 2
	var out []ReadsResult
	for _, pct := range ReadsWriterMixes {
		writers := threads * pct / 100
		if pct > 0 && writers < 1 {
			writers = 1 // small -threads must not mislabel a 0%-writer cell
		}
		readers := threads - writers
		if readers < 1 {
			readers = 1
		}
		for _, variant := range ReadsVariants {
			cfg := PaperPMAConfig()
			cfg.DisableOptimisticReads = variant == "latched"
			cfg.DisableMetrics = variant == "nometrics"
			cfg.CompressedChunks = variant == "compressed"
			var best ReadsResult
			for rep := 0; rep < repeats; rep++ {
				r := runReadsCell(cfg, variant, pct, readers, writers, keys, vals, perCell, sc.Seed+int64(rep))
				if rep == 0 || r.GetsPerSec > best.GetsPerSec {
					best = r
				}
			}
			out = append(out, best)
		}
	}
	return out
}

func runReadsCell(cfg core.Config, variant string, pct, readers, writers int, keys, vals []int64, perCell time.Duration, seed int64) ReadsResult {
	p, err := core.BulkLoad(cfg, keys, vals)
	if err != nil {
		panic(fmt.Sprintf("bench: reads bulk load: %v", err))
	}
	defer p.Close()

	domain := int64(2 * len(keys)) // even keys are writer-only churn
	stop := make(chan struct{})
	var gets, puts atomic.Int64
	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(rng int64) {
			defer wg.Done()
			n := int64(0)
			for {
				rng = rng*6364136223846793005 + 1442695040888963407
				k := keys[(uint64(rng)>>16)%uint64(len(keys))]
				p.Get(k)
				n++
				if n&0x3FF == 0 {
					select {
					case <-stop:
						gets.Add(n)
						return
					default:
					}
				}
			}
		}(seed + int64(r)*7919)
	}
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(rng int64) {
			defer wg.Done()
			n := int64(0)
			for {
				rng = rng*6364136223846793005 + 1442695040888963407
				k := int64(uint64(rng) >> 16 % uint64(domain))
				p.Put(k, k)
				n++
				if n&0x3FF == 0 {
					select {
					case <-stop:
						puts.Add(n)
						return
					default:
					}
				}
			}
		}(seed ^ int64(w+1)*104729)
	}
	start := time.Now()
	time.Sleep(perCell)
	close(stop)
	wg.Wait()
	wall := time.Since(start)
	secs := wall.Seconds()
	return ReadsResult{
		Variant:    variant,
		WriterPct:  pct,
		Readers:    readers,
		Writers:    writers,
		GetsPerSec: float64(gets.Load()) / secs,
		PutsPerSec: float64(puts.Load()) / secs,
		Wall:       wall,
		Stats:      p.Stats(),
	}
}
