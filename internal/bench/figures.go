package bench

import (
	"fmt"
	"io"
	"text/tabwriter"
	"time"

	"pmago/internal/core"
	"pmago/internal/workload"
)

// Scale sets the experiment size. The paper runs 1G elements on a dual
// socket Xeon; DefaultScale is the laptop-scale equivalent — the flags of
// cmd/pmabench restore any size.
type Scale struct {
	InsertN int // elements inserted in the insert-only plots
	LoadN   int // preloaded base for the mixed plots
	MixedN  int // timed update ops in the mixed plots
	Threads int // the paper's 16 hardware threads
	Seed    int64
}

// DefaultScale finishes in minutes on a laptop while still exercising many
// resizes and thousands of rebalances.
func DefaultScale() Scale {
	return Scale{InsertN: 1 << 21, LoadN: 1 << 21, MixedN: 1 << 20, Threads: 16, Seed: 1}
}

// Plot describes one sub-plot of Figure 3: a thread partition and whether
// the update pattern is insert-only or mixed.
type Plot struct {
	ID            string
	UpdateThreads int
	ScanThreads   int
	Mixed         bool
	Caption       string
}

// Figure3Plots returns the six sub-plots a-f for the given total thread
// count (16 in the paper).
func Figure3Plots(threads int) []Plot {
	q := threads / 4
	h := threads / 2
	return []Plot{
		{"a", threads, 0, false, fmt.Sprintf("%dt insertions only", threads)},
		{"b", threads - q, q, false, fmt.Sprintf("%dt insertions, %dt scans", threads-q, q)},
		{"c", h, h, false, fmt.Sprintf("%dt insertions, %dt scans", h, h)},
		{"d", threads, 0, true, fmt.Sprintf("%dt updates only", threads)},
		{"e", threads - q, q, true, fmt.Sprintf("%dt updates, %dt scans", threads-q, q)},
		{"f", h, h, true, fmt.Sprintf("%dt updates, %dt scans", h, h)},
	}
}

// RunFigure3 executes one sub-plot across the four structures and the four
// distributions, returning results grouped per structure in plot order.
func RunFigure3(plot Plot, factories []Factory, sc Scale) []Result {
	var out []Result
	for _, d := range workload.PaperDistributions() {
		for _, f := range factories {
			w := Workload{
				Dist:          d,
				UpdateThreads: plot.UpdateThreads,
				ScanThreads:   plot.ScanThreads,
				Seed:          sc.Seed,
			}
			if plot.Mixed {
				w.LoadN = sc.LoadN
				w.Ops = sc.MixedN
				w.Mixed = true
			} else {
				w.Ops = sc.InsertN
			}
			out = append(out, Run(f, w))
		}
	}
	return out
}

// Figure4Variant is one bar group of Figure 4.
type Figure4Variant struct {
	Name string
	Cfg  core.Config
}

// Figure4Variants returns the asynchronous-update configurations evaluated
// in Figure 4: the synchronous baseline, one-by-one processing, and batch
// processing with tdelay from 0 to 800 ms.
func Figure4Variants() []Figure4Variant {
	mk := func(name string, mode core.Mode, tdelay time.Duration) Figure4Variant {
		cfg := core.DefaultConfig()
		cfg.Mode = mode
		cfg.TDelay = tdelay
		return Figure4Variant{Name: name, Cfg: cfg}
	}
	return []Figure4Variant{
		mk("Baseline", core.ModeSync, 0),
		mk("1by1", core.ModeOneByOne, 0),
		mk("Batch 0ms", core.ModeBatch, 0),
		mk("Batch 100ms", core.ModeBatch, 100*time.Millisecond),
		mk("Batch 200ms", core.ModeBatch, 200*time.Millisecond),
		mk("Batch 400ms", core.ModeBatch, 400*time.Millisecond),
		mk("Batch 800ms", core.ModeBatch, 800*time.Millisecond),
	}
}

// SpeedupRow is one distribution's speedups relative to the baseline.
type SpeedupRow struct {
	Dist     workload.Distribution
	Baseline float64 // absolute updates/sec of the synchronous PMA
	Speedup  []float64
}

// RunFigure4 reproduces one sub-plot of Figure 4 (a: 16, b: 12, c: 8 update
// threads; the remaining threads scan), inserting InsertN elements and
// reporting per-variant speedup over the synchronous baseline.
func RunFigure4(updateThreads int, sc Scale) ([]Figure4Variant, []SpeedupRow) {
	variants := Figure4Variants()
	scanThreads := sc.Threads - updateThreads
	var rows []SpeedupRow
	for _, d := range workload.PaperDistributions() {
		row := SpeedupRow{Dist: d}
		for i, v := range variants {
			res := Run(PMAFactory("PMA-"+v.Name, v.Cfg), Workload{
				Dist:          d,
				Ops:           sc.InsertN,
				UpdateThreads: updateThreads,
				ScanThreads:   scanThreads,
				Seed:          sc.Seed,
			})
			if i == 0 {
				row.Baseline = res.UpdatesPerSec
				row.Speedup = append(row.Speedup, 1.0)
			} else {
				row.Speedup = append(row.Speedup, res.UpdatesPerSec/row.Baseline)
			}
		}
		rows = append(rows, row)
	}
	return variants, rows
}

// RunSegmentAblation reproduces the Section 4.1 text experiment: doubling
// the PMA segment size from 128 to 256 trades update throughput for scan
// throughput.
func RunSegmentAblation(sc Scale) []Result {
	var out []Result
	for _, segCap := range []int{128, 256} {
		cfg := PaperPMAConfig()
		cfg.SegmentCapacity = segCap
		f := PMAFactory(fmt.Sprintf("PMA B=%d", segCap), cfg)
		for _, d := range []workload.Distribution{workload.Uniform(), workload.Zipf(1.5)} {
			out = append(out, Run(f, Workload{
				Dist:          d,
				Ops:           sc.InsertN,
				UpdateThreads: sc.Threads / 2,
				ScanThreads:   sc.Threads / 2,
				Seed:          sc.Seed,
			}))
		}
	}
	return out
}

// RunLeafAblation reproduces the ART/B+-tree leaf-size experiment of
// Section 4.1: growing leaves from 4 KiB to 8 KiB closes most of the scan
// gap to the PMA at the cost of update throughput.
func RunLeafAblation(sc Scale) []Result {
	var out []Result
	factories := []Factory{
		ABTreeFactory("ART 4KiB", 256),
		ABTreeFactory("ART 8KiB", 512),
		PMAFactory("PMA", PaperPMAConfig()),
	}
	for _, f := range factories {
		for _, d := range []workload.Distribution{workload.Uniform(), workload.Zipf(1.5)} {
			out = append(out, Run(f, Workload{
				Dist:          d,
				Ops:           sc.InsertN,
				UpdateThreads: sc.Threads / 2,
				ScanThreads:   sc.Threads / 2,
				Seed:          sc.Seed,
			}))
		}
	}
	return out
}

// PrintResults renders results as the paper's two panels (update throughput
// and scan throughput) in aligned columns.
func PrintResults(w io.Writer, caption string, rs []Result, showScans bool) {
	fmt.Fprintf(w, "== %s ==\n", caption)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "structure\tdistribution\tupdates M/s\t")
	if showScans {
		fmt.Fprintf(tw, "scanned M elts/s\t")
	}
	fmt.Fprintf(tw, "final size\twall\n")
	for _, r := range rs {
		fmt.Fprintf(tw, "%s\t%s\t%.3f\t", r.Store, r.Dist, r.UpdatesPerSec/1e6)
		if showScans {
			fmt.Fprintf(tw, "%.2f\t", r.ScansPerSec/1e6)
		}
		fmt.Fprintf(tw, "%d\t%s\n", r.FinalLen, r.Wall.Round(time.Millisecond))
	}
	tw.Flush()
	fmt.Fprintln(w)
}

// PrintSpeedups renders a Figure 4 sub-plot.
func PrintSpeedups(w io.Writer, caption string, variants []Figure4Variant, rows []SpeedupRow) {
	fmt.Fprintf(w, "== %s (speedup w.r.t. baseline) ==\n", caption)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "distribution\tbaseline M/s")
	for _, v := range variants[1:] {
		fmt.Fprintf(tw, "\t%s", v.Name)
	}
	fmt.Fprintln(tw)
	for _, row := range rows {
		fmt.Fprintf(tw, "%s\t%.3f", row.Dist, row.Baseline/1e6)
		for _, s := range row.Speedup[1:] {
			fmt.Fprintf(tw, "\t%.2fx", s)
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()
	fmt.Fprintln(w)
}
