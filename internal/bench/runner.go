package bench

import (
	"sync"
	"sync/atomic"
	"time"

	"pmago/internal/workload"
)

// Workload describes one benchmark run: how to preload the store, how many
// update operations to apply with how many threads, and how many threads
// continuously scan meanwhile — the experiment structure of Figure 3.
type Workload struct {
	Dist workload.Distribution
	// LoadN preloads the store with uniform keys before timing (the 1G
	// base of plots d-f, scaled).
	LoadN int
	// Ops is the total number of timed update operations across all
	// update threads.
	Ops int
	// Mixed alternates insert and delete phases over the same keys
	// (plots d-f); otherwise all ops are insertions (plots a-c).
	Mixed bool
	// MixedChunk is the per-thread phase length in Mixed mode (the
	// paper's 16M-insert/16M-delete rounds, scaled). Default 16384.
	MixedChunk int
	// UpdateThreads and ScanThreads partition the workers (16 = the
	// paper's thread count).
	UpdateThreads int
	ScanThreads   int
	Domain        int64
	Seed          int64
}

// Result reports one run's throughput.
type Result struct {
	Store string
	Dist  workload.Distribution

	UpdatesPerSec float64 // update operations per second
	ScansPerSec   float64 // elements visited by scan threads per second
	Wall          time.Duration
	FinalLen      int
}

// Run executes the workload against a fresh store from the factory.
func Run(f Factory, w Workload) Result {
	if w.UpdateThreads <= 0 {
		w.UpdateThreads = 1
	}
	if w.Domain <= 0 {
		w.Domain = workload.DefaultDomain
	}
	if w.MixedChunk <= 0 {
		w.MixedChunk = 16384
	}
	s := f.New()
	defer func() {
		if c, ok := s.(Closer); ok {
			c.Close()
		}
	}()

	if w.LoadN > 0 {
		load(s, w)
	}

	stop := make(chan struct{})
	var scanned atomic.Int64
	var scanWG sync.WaitGroup
	for i := 0; i < w.ScanThreads; i++ {
		scanWG.Add(1)
		go func() {
			defer scanWG.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				n := int64(0)
				s.ScanAll(func(_, _ int64) bool {
					n++
					// Abort long scans promptly at shutdown.
					if n&0xFFFF == 0 {
						select {
						case <-stop:
							return false
						default:
						}
					}
					return true
				})
				scanned.Add(n)
			}
		}()
	}

	perThread := w.Ops / w.UpdateThreads
	var updWG sync.WaitGroup
	start := time.Now()
	for t := 0; t < w.UpdateThreads; t++ {
		updWG.Add(1)
		go func(t int) {
			defer updWG.Done()
			seed := w.Seed + int64(t)*7919
			if !w.Mixed {
				gen := workload.NewGenerator(w.Dist, w.Domain, seed)
				for i := 0; i < perThread; i++ {
					k := gen.Next()
					s.Put(k, k)
				}
				return
			}
			// Mixed: rounds of MixedChunk inserts followed by the
			// same keys deleted (replayed from the same seed), so
			// the store size stays near the preloaded base.
			done := 0
			round := int64(0)
			for done < perThread {
				chunk := w.MixedChunk
				if rem := (perThread - done) / 2; rem < chunk {
					chunk = rem
				}
				if chunk == 0 {
					break
				}
				rs := seed + round*104729
				gen := workload.NewGenerator(w.Dist, w.Domain, rs)
				for i := 0; i < chunk; i++ {
					k := gen.Next()
					s.Put(k, k)
				}
				gen = workload.NewGenerator(w.Dist, w.Domain, rs)
				for i := 0; i < chunk; i++ {
					s.Delete(gen.Next())
				}
				done += 2 * chunk
				round++
			}
		}(t)
	}
	updWG.Wait()
	if fl, ok := s.(Flusher); ok {
		fl.Flush()
	}
	wall := time.Since(start)
	close(stop)
	scanWG.Wait()

	secs := wall.Seconds()
	return Result{
		Store:         f.Name,
		Dist:          w.Dist,
		UpdatesPerSec: float64(w.Ops) / secs,
		ScansPerSec:   float64(scanned.Load()) / secs,
		Wall:          wall,
		FinalLen:      s.Len(),
	}
}

// load preloads the store with uniform keys in parallel (untimed).
func load(s Store, w Workload) {
	threads := w.UpdateThreads + w.ScanThreads
	if threads < 1 {
		threads = 1
	}
	per := w.LoadN / threads
	var wg sync.WaitGroup
	for t := 0; t < threads; t++ {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			gen := workload.NewGenerator(workload.Uniform(), w.Domain, w.Seed^int64(t*31+1))
			for i := 0; i < per; i++ {
				k := gen.Next()
				s.Put(k, k)
			}
		}(t)
	}
	wg.Wait()
	if fl, ok := s.(Flusher); ok {
		fl.Flush()
	}
}
