package bench

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"pmago/internal/workload"
)

// TestReportRoundTrip pins the -json report surface: nil receivers are
// no-ops (so drivers can add metrics unconditionally), results flatten into
// rows, and WriteFile output parses back.
func TestReportRoundTrip(t *testing.T) {
	var nilReport *Report
	nilReport.Add("x", "y", nil, "ops/s", 1) // must not panic
	nilReport.AddResults("x", []Result{{}}, true)
	nilReport.AddReads([]ReadsResult{{}})

	r := NewReport(Scale{LoadN: 1, Threads: 2})
	r.Add("reads", "gets", map[string]string{"variant": "optimistic"}, "ops/s", 123.5)
	r.AddResults("figure3a", []Result{{Store: "PMA", Dist: workload.Uniform(), UpdatesPerSec: 7, ScansPerSec: 9}}, true)
	r.AddReads([]ReadsResult{{Variant: "latched", WriterPct: 25, Writers: 1, GetsPerSec: 5, PutsPerSec: 3}})
	if len(r.Metrics) != 1+2+2 {
		t.Fatalf("got %d metrics, want 5", len(r.Metrics))
	}

	path := filepath.Join(t.TempDir(), "report.json")
	if err := r.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("report does not parse back: %v", err)
	}
	if back.SchemaVersion != 1 || len(back.Metrics) != len(r.Metrics) {
		t.Fatalf("round trip lost data: schema %d, %d metrics", back.SchemaVersion, len(back.Metrics))
	}
	if back.Metrics[0].Labels["variant"] != "optimistic" {
		t.Fatalf("labels lost: %+v", back.Metrics[0])
	}
}
