package bench

import (
	"time"

	"pmago/internal/core"
	"pmago/internal/graph"
	"pmago/internal/workload"
)

// GraphResult reports the Section 6 experiment: streaming edge updates into
// the CRS-on-PMA representation while analytics scan it.
type GraphResult struct {
	EdgesPerSec     float64 // edge insert/delete throughput
	NeighborsPerSec float64 // edges visited by concurrent neighbourhood scans per second
	PageRankTime    time.Duration
	FinalEdges      int
}

// RunGraph streams updates edge operations (1 delete per 5 inserts) over a
// power-law endpoint distribution with updThreads writers, while one
// analytics goroutine repeatedly expands neighbourhoods; finally a PageRank
// pass runs over the quiesced graph.
func RunGraph(updates, vertices, updThreads int, seed int64) GraphResult {
	g, err := graph.New(core.DefaultConfig())
	if err != nil {
		panic(err)
	}
	defer g.Close()

	stop := make(chan struct{})
	visited := make(chan int64, 1)
	go func() {
		var n int64
		gen := workload.NewGenerator(workload.Zipf(1), int64(vertices), seed^0x5151)
		for {
			select {
			case <-stop:
				visited <- n
				return
			default:
			}
			g.Neighbors(uint32(gen.Next()-1), func(uint32, int64) bool {
				n++
				return true
			})
		}
	}()

	start := time.Now()
	done := make(chan struct{})
	per := updates / updThreads
	for w := 0; w < updThreads; w++ {
		go func(w int) {
			defer func() { done <- struct{}{} }()
			gen := workload.NewGenerator(workload.Zipf(1), int64(vertices), seed+int64(w))
			for i := 0; i < per; i++ {
				src := uint32(gen.Next() - 1)
				dst := uint32(gen.Next() - 1)
				if i%6 == 5 {
					g.DeleteEdge(src, dst)
				} else {
					g.AddEdge(src, dst, 1)
				}
			}
		}(w)
	}
	for w := 0; w < updThreads; w++ {
		<-done
	}
	g.Flush()
	wall := time.Since(start)
	close(stop)
	scanned := <-visited

	prStart := time.Now()
	g.PageRank(3, 0.85)
	return GraphResult{
		EdgesPerSec:     float64(updates) / wall.Seconds(),
		NeighborsPerSec: float64(scanned) / wall.Seconds(),
		PageRankTime:    time.Since(prStart),
		FinalEdges:      g.EdgeCount(),
	}
}
