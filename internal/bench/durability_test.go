package bench

import "testing"

func TestRunDurableWritesSmall(t *testing.T) {
	rs := RunDurableWrites(4_000, 4, 1)
	if len(rs) != 4 {
		t.Fatalf("got %d results, want 4 (memory + 3 policies)", len(rs))
	}
	for _, r := range rs {
		if r.PerSec <= 0 {
			t.Fatalf("%s: zero durable-write throughput", r.Policy)
		}
	}
	if rs[0].Policy != "memory" {
		t.Fatalf("first result %q, want the in-memory baseline", rs[0].Policy)
	}
}

func TestRunRecoverySmall(t *testing.T) {
	rs := RunRecovery([]int{20_000}, 1)
	if len(rs) != 1 {
		t.Fatalf("got %d results", len(rs))
	}
	r := rs[0]
	if r.OpenTime <= 0 || r.SnapshotBytes <= 0 || r.WALBytes <= 0 {
		t.Fatalf("implausible recovery measurement: %+v", r)
	}
	if r.TailN != 2_000 {
		t.Fatalf("tail %d, want 2000", r.TailN)
	}
}
