package bench

import (
	"sort"
	"time"

	"pmago/internal/core"
)

// BatchStore extends Store with the batch-update surface. The concurrent
// PMA implements it natively; AsBatch adapts any point-update store so the
// harness can compare batch ingest against point loops on equal terms.
type BatchStore interface {
	Store
	PutBatch(keys, vals []int64)
	DeleteBatch(keys []int64) int
}

// forwarding wraps a Store while keeping the harness's Flusher and Closer
// probes working through the wrapper.
type forwarding struct{ Store }

func (s forwarding) Flush() {
	if f, ok := s.Store.(Flusher); ok {
		f.Flush()
	}
}

func (s forwarding) Close() {
	if c, ok := s.Store.(Closer); ok {
		c.Close()
	}
}

// pointBatch emulates batch operations with a point-update loop — the
// baseline every batch measurement is compared against.
type pointBatch struct{ forwarding }

func (s pointBatch) PutBatch(keys, vals []int64) {
	for i := range keys {
		s.Put(keys[i], vals[i])
	}
}

func (s pointBatch) DeleteBatch(keys []int64) int {
	n := 0
	for _, k := range keys {
		if s.Delete(k) {
			n++
		}
	}
	return n
}

// AsBatch returns the store itself when it supports native batch updates
// and a point-loop adapter otherwise.
func AsBatch(s Store) BatchStore {
	if b, ok := s.(BatchStore); ok {
		return b
	}
	return pointBatch{forwarding{s}}
}

// PointOnly wraps a store so AsBatch cannot discover a native batch path;
// it turns the PMA into its own point-update baseline. Flush and Close
// still reach the wrapped store.
func PointOnly(s Store) Store {
	return forwarding{s}
}

// BatchResult compares batched against point ingest of the same keys.
type BatchResult struct {
	LoadN      int // preloaded base size
	N          int // fresh keys ingested
	BatchSize  int
	ClusterLen int // 0 = uniformly scattered keys

	PointPerSec      float64 // keys/s via the point-update loop
	BatchPerSec      float64 // keys/s via PutBatch
	NoMetricsPerSec  float64 // keys/s via PutBatch with metrics disabled (overhead guard)
	CompressedPerSec float64 // keys/s via PutBatch into a compressed-chunk store
	Speedup          float64
}

// RunBatchComparison preloads a paper-configuration PMA with loadN uniform
// keys and then ingests n fresh keys in key-sorted batchSize chunks — once
// through the point-Put loop and once through PutBatch — returning both
// ingest rates. clusterLen shapes the ingest: 0 scatters the fresh keys
// uniformly (every key lands in a different segment, the batch path's worst
// case), while clusterLen > 0 emits runs of that many adjacent keys (the
// bulk-ingest shape: one vertex's edges, one time window of a telemetry
// series), which per-gate merging amortises and a point loop cannot.
func RunBatchComparison(loadN, n, batchSize, clusterLen int, seed int64) BatchResult {
	res := BatchResult{LoadN: loadN, N: n, BatchSize: batchSize, ClusterLen: clusterLen}
	run := func(batched, metrics, compressed bool) float64 {
		cfg := PaperPMAConfig()
		cfg.DisableMetrics = !metrics
		cfg.CompressedChunks = compressed
		s := core.MustNew(cfg)
		defer s.Close()
		preload(s, loadN, seed)
		keys, vals := ingestKeys(n, clusterLen, seed)
		sortChunks(keys, vals, batchSize)
		start := time.Now()
		for off := 0; off < n; off += batchSize {
			end := min(off+batchSize, n)
			if batched {
				s.PutBatch(keys[off:end], vals[off:end])
			} else {
				for i := off; i < end; i++ {
					s.Put(keys[i], vals[i])
				}
			}
		}
		s.Flush()
		return float64(n) / time.Since(start).Seconds()
	}
	res.PointPerSec = run(false, true, false)
	res.BatchPerSec = run(true, true, false)
	res.NoMetricsPerSec = run(true, false, false)
	res.CompressedPerSec = run(true, true, true)
	res.Speedup = res.BatchPerSec / res.PointPerSec
	return res
}

// BulkResult compares BulkLoad construction against point-Put construction
// of the same dataset.
type BulkResult struct {
	N         int
	PointWall time.Duration
	BulkWall  time.Duration
	// BulkCompressedWall is BulkLoad into a compressed-chunk store: the
	// single encode pass rides the same layout pass, so it should track
	// BulkWall closely while producing the smaller array.
	BulkCompressedWall time.Duration
	Speedup            float64
}

// RunBulkComparison builds a store of n sorted unique keys twice: with n
// point Puts into an empty PMA (paying every incremental rebalance and
// resize) and with one BulkLoad laying the array out at target density.
func RunBulkComparison(n int, seed int64) BulkResult {
	keys, vals := freshKeys(n, seed)
	sortChunks(keys, vals, n)
	res := BulkResult{N: n}

	s := core.MustNew(PaperPMAConfig())
	start := time.Now()
	for i := range keys {
		s.Put(keys[i], vals[i])
	}
	s.Flush()
	res.PointWall = time.Since(start)
	s.Close()

	start = time.Now()
	b, err := core.BulkLoad(PaperPMAConfig(), keys, vals)
	if err != nil {
		panic(err)
	}
	res.BulkWall = time.Since(start)
	b.Close()

	ccfg := PaperPMAConfig()
	ccfg.CompressedChunks = true
	start = time.Now()
	bc, err := core.BulkLoad(ccfg, keys, vals)
	if err != nil {
		panic(err)
	}
	res.BulkCompressedWall = time.Since(start)
	bc.Close()

	res.Speedup = res.PointWall.Seconds() / res.BulkWall.Seconds()
	return res
}

// ingestSlots is the number of even (preload) and odd (fresh) key slots the
// ingest experiments draw from; a power of two so an odd multiplier walks
// every slot exactly once.
const ingestSlots = 1 << 24

// slotSpace widens the slot space when a run asks for more keys than
// ingestSlots: an odd multiplier is a bijection modulo any power of two, so
// doubling until n fits keeps every generated key distinct (RunRecovery
// panics on duplicate-collapsed counts otherwise).
func slotSpace(n int) int64 {
	slots := int64(ingestSlots)
	for slots < int64(n) {
		slots <<= 1
	}
	return slots
}

// preloadKeys generates loadN distinct even keys scattered uniformly over
// the slot space, the base dataset of the ingest experiments.
func preloadKeys(loadN int, seed int64) (keys, vals []int64) {
	keys = make([]int64, loadN)
	vals = make([]int64, loadN)
	mask := slotSpace(loadN) - 1
	for i := range keys {
		keys[i] = 2 * ((int64(i)*0x85EBCA77 + seed) & mask)
		vals[i] = keys[i]
	}
	return keys, vals
}

// preload fills the store with loadN distinct even keys scattered uniformly
// over the slot space through the batch path (untimed setup).
func preload(s BatchStore, loadN int, seed int64) {
	if loadN == 0 {
		return
	}
	keys, vals := preloadKeys(loadN, seed)
	s.PutBatch(keys, vals)
	if fl, ok := s.(Flusher); ok {
		fl.Flush()
	}
}

// freshKeys generates n distinct odd keys scattered uniformly over the slot
// space — interleaved with but disjoint from the even preload keys, so every
// ingested key is a genuine insert and a batch touches gates across the
// whole array.
func freshKeys(n int, seed int64) (keys, vals []int64) {
	keys = make([]int64, n)
	vals = make([]int64, n)
	mask := slotSpace(n) - 1
	for i := range keys {
		keys[i] = 2*((int64(i)*0x9E3779B1+seed)&mask) + 1
		vals[i] = int64(i)
	}
	return keys, vals
}

// clusteredKeys generates n distinct odd keys as runs of clusterLen adjacent
// slots, the cluster positions scattered uniformly — fresh inserts that
// arrive in localised runs, as real bulk ingests do.
func clusteredKeys(n, clusterLen int, seed int64) (keys, vals []int64) {
	keys = make([]int64, n)
	vals = make([]int64, n)
	numClusters := slotSpace(n) / int64(clusterLen) // clusterLen: power of two
	ci := int64(0)
	for i := 0; i < n; i += clusterLen {
		cid := (ci*0x9E3779B1 + seed) & (numClusters - 1)
		ci++
		base := cid * int64(clusterLen)
		for j := 0; j < clusterLen && i+j < n; j++ {
			keys[i+j] = 2*(base+int64(j)) + 1
			vals[i+j] = base
		}
	}
	return keys, vals
}

// ingestKeys dispatches on clusterLen: 0 = scattered, else clustered.
func ingestKeys(n, clusterLen int, seed int64) (keys, vals []int64) {
	if clusterLen <= 0 {
		return freshKeys(n, seed)
	}
	return clusteredKeys(n, clusterLen, seed)
}

// sortChunks key-sorts each batchSize-aligned chunk of keys/vals in place:
// the arrival order of the sorted-ingest scenario (log shipping, sorted
// file loads), prepared before the ingest clock starts.
func sortChunks(keys, vals []int64, batchSize int) {
	for off := 0; off < len(keys); off += batchSize {
		end := min(off+batchSize, len(keys))
		sort.Sort(pairSorter{keys[off:end], vals[off:end]})
	}
}

type pairSorter struct{ k, v []int64 }

func (p pairSorter) Len() int           { return len(p.k) }
func (p pairSorter) Less(i, j int) bool { return p.k[i] < p.k[j] }
func (p pairSorter) Swap(i, j int) {
	p.k[i], p.k[j] = p.k[j], p.k[i]
	p.v[i], p.v[j] = p.v[j], p.v[i]
}
