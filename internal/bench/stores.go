// Package bench is the experiment harness that regenerates the paper's
// evaluation (Section 4): the thread-partitioned update/scan driver, the
// store adapters for the four competitors, and the per-figure drivers used
// by cmd/pmabench and the root benchmark suite. batch.go adds the
// batch-subsystem comparisons (PutBatch and BulkLoad against their
// point-update equivalents) and the BatchStore adapter; README.md in this
// directory documents the methodology and recorded results.
package bench

import (
	"time"

	"pmago/internal/abtree"
	"pmago/internal/bwtree"
	"pmago/internal/core"
	"pmago/internal/masstree"
)

// Store is the operation surface shared by the PMA and the three tree
// baselines: 8-byte integer keys and values, upsert semantics, ordered
// scans.
type Store interface {
	Put(k, v int64)
	Get(k int64) (int64, bool)
	Delete(k int64) bool
	Scan(lo, hi int64, fn func(k, v int64) bool)
	ScanAll(fn func(k, v int64) bool)
	Len() int
}

// Flusher is implemented by stores with asynchronous updates (the PMA's
// combining queues); the harness flushes before verifying final state.
type Flusher interface{ Flush() }

// Closer is implemented by stores with service goroutines.
type Closer interface{ Close() }

// Factory names and builds a store configuration under test.
type Factory struct {
	Name string
	New  func() Store
}

// PMAFactory builds the concurrent PMA with the given configuration.
func PMAFactory(name string, cfg core.Config) Factory {
	return Factory{Name: name, New: func() Store {
		return core.MustNew(cfg)
	}}
}

// PaperPMAConfig is the evaluation configuration of Section 4: segments of
// 128 elements, 8 segments per gate, batch processing with tdelay = 100ms.
func PaperPMAConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.Mode = core.ModeBatch
	cfg.TDelay = 100 * time.Millisecond
	return cfg
}

// MasstreeFactory builds the Masstree-style baseline.
func MasstreeFactory() Factory {
	return Factory{Name: "MassTree", New: func() Store { return masstree.New() }}
}

// BwTreeFactory builds the Bw-Tree baseline.
func BwTreeFactory() Factory {
	return Factory{Name: "BwTree", New: func() Store {
		return bwtree.New(bwtree.Config{})
	}}
}

// ABTreeFactory builds the ART + B+-tree baseline with the given leaf
// capacity in pairs (256 = the paper's 4 KiB default, 512 = the 8 KiB
// ablation).
func ABTreeFactory(name string, leafCapacity int) Factory {
	return Factory{Name: name, New: func() Store {
		return abtree.New(abtree.Config{LeafCapacity: leafCapacity})
	}}
}

// PaperFactories returns the four structures of Figure 3, PMA last as in the
// plots.
func PaperFactories() []Factory {
	return []Factory{
		MasstreeFactory(),
		BwTreeFactory(),
		ABTreeFactory("ART", abtree.DefaultLeafCapacity),
		PMAFactory("PMA", PaperPMAConfig()),
	}
}
