package bench

import (
	"fmt"
	"net"
	"os"
	"sort"
	"sync"
	"time"

	"pmago"
	"pmago/client"
	"pmago/internal/obs"
	"pmago/server"
)

// Wire experiment: what does the network front end cost, and what does
// cross-client group commit buy back? A real server (loopback TCP, durable
// FsyncAlways backend) is hammered by a growing number of clients, each
// issuing strictly sequential puts — one outstanding request per client, no
// pipelining — so every gain past one client is the serving layer
// coalescing concurrent clients' writes into shared WAL appends and
// fsyncs. Latency is recorded per op; the server's commit-batch
// distribution is read back over the same stats op the protocol serves.

// WireResult is one cell: `Clients` synchronous clients, `N` total puts.
type WireResult struct {
	Clients    int
	N          int
	PerSec     float64
	P50        time.Duration
	P95        time.Duration
	P99        time.Duration
	Commits    uint64  // group commits this cell
	BatchAvg   float64 // puts per group commit
	BatchMax   uint64
	ServerStat *obs.ServerSnapshot // cumulative, from the final cell's fetch
	Trace      *obs.TraceSnapshot  // windowed per-stage tails at cell end
}

// WireClientCounts doubles from 1 to max (always including max).
func WireClientCounts(max int) []int {
	if max < 1 {
		max = 1
	}
	var counts []int
	for c := 1; c < max; c *= 2 {
		counts = append(counts, c)
	}
	return append(counts, max)
}

// RunWire starts one durable server and sweeps the client counts. Each
// client performs opsPerClient sequential puts of fresh uniform keys; the
// cell's throughput is total puts over wall time and the percentiles pool
// every client's per-op latencies.
func RunWire(sc Scale, maxClients int) []WireResult {
	dir, err := os.MkdirTemp("", "pmago-wire-*")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)
	db, err := pmago.Open(dir, pmago.WithFsync(pmago.FsyncAlways), pmago.WithCompactRatio(0))
	if err != nil {
		panic(err)
	}
	defer db.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		panic(err)
	}
	srv := server.New(db, server.Options{})
	go srv.Serve(ln)
	defer srv.Close()
	addr := ln.Addr().String()

	// Per-client op count: enough fsync-bound round trips for stable
	// percentiles, bounded so the single-client baseline (one fsync per op)
	// stays tractable. Tiny CI scales shrink it via MixedN.
	opsPerClient := sc.MixedN / 128
	if opsPerClient > 4096 {
		opsPerClient = 4096
	}
	if opsPerClient < 64 {
		opsPerClient = 64
	}

	statsOf := func() (*obs.ServerSnapshot, *obs.TraceSnapshot) {
		st := srv.Stats()
		sv := st.Server
		if sv == nil {
			sv = &obs.ServerSnapshot{}
		}
		return sv, st.Trace
	}

	var results []WireResult
	keyBase := int64(1)
	for _, clients := range WireClientCounts(maxClients) {
		before, _ := statsOf()
		latencies := make([][]time.Duration, clients)
		conns := make([]*client.Client, clients)
		for i := range conns {
			cl, err := client.Dial(addr, client.Options{Timeout: time.Minute})
			if err != nil {
				panic(err)
			}
			conns[i] = cl
		}
		keys, vals := freshKeys(clients*opsPerClient, sc.Seed+int64(clients))
		start := time.Now()
		var wg sync.WaitGroup
		for i := 0; i < clients; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				lat := make([]time.Duration, 0, opsPerClient)
				lo := i * opsPerClient
				for j := 0; j < opsPerClient; j++ {
					t0 := time.Now()
					if err := conns[i].Put(keyBase+keys[lo+j], vals[lo+j]); err != nil {
						panic(fmt.Sprintf("bench: wire put: %v", err))
					}
					lat = append(lat, time.Since(t0))
				}
				latencies[i] = lat
			}(i)
		}
		wg.Wait()
		elapsed := time.Since(start)
		// Snapshot immediately after the cell's last op: the windowed
		// percentiles cover the trailing interval, so this is the cell's own
		// traffic (cells shorter than the window see a bit of the previous
		// cell's tail — acceptable for trend rows).
		after, trace := statsOf()
		for _, cl := range conns {
			cl.Close()
		}

		var all []time.Duration
		for _, l := range latencies {
			all = append(all, l...)
		}
		sort.Slice(all, func(a, b int) bool { return all[a] < all[b] })
		pct := func(p float64) time.Duration {
			if len(all) == 0 {
				return 0
			}
			i := int(p * float64(len(all)-1))
			return all[i]
		}
		res := WireResult{
			Clients:    clients,
			N:          clients * opsPerClient,
			PerSec:     float64(clients*opsPerClient) / elapsed.Seconds(),
			P50:        pct(0.50),
			P95:        pct(0.95),
			P99:        pct(0.99),
			Commits:    after.CommitOps.Count - before.CommitOps.Count,
			BatchMax:   after.CommitOps.Max,
			ServerStat: after,
			Trace:      trace,
		}
		if res.Commits > 0 {
			res.BatchAvg = float64(after.CommitOps.Sum-before.CommitOps.Sum) / float64(res.Commits)
		}
		results = append(results, res)
	}
	return results
}
