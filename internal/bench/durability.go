package bench

import (
	"fmt"
	"os"
	"sync"
	"time"

	"pmago"
)

// Durability experiment: what does the write-ahead log cost per fsync
// policy, and what does recovery cost per dataset size? Each measurement
// runs against a real durable store (pmago.Open) in a throwaway directory.

// DurableWriteResult is one durable-ingest measurement.
type DurableWriteResult struct {
	Policy  string // "memory" is the non-durable pmago.New baseline
	Threads int
	N       int
	PerSec  float64
}

// RunDurableWrites measures concurrent point-Put throughput for the
// in-memory baseline and each fsync policy, n total ops over `threads`
// writers per run. Keys are scattered uniformly, the paper's insert-heavy
// shape; under FsyncAlways throughput is fsync-bound and scales with the
// number of writers sharing each group commit.
func RunDurableWrites(n, threads int, seed int64) []DurableWriteResult {
	if threads < 1 {
		threads = 1
	}
	type target struct {
		name string
		open func(dir string) (benchStore, error)
	}
	targets := []target{
		{"memory", func(string) (benchStore, error) {
			p, err := pmago.New()
			if err != nil {
				return benchStore{}, err
			}
			return benchStore{p, func() error { p.Close(); return nil }}, nil
		}},
		{"always", openWith(pmago.FsyncAlways)},
		{"interval", openWith(pmago.FsyncInterval)},
		{"none", openWith(pmago.FsyncNone)},
	}
	var results []DurableWriteResult
	for _, tg := range targets {
		dir, err := os.MkdirTemp("", "pmago-dur-*")
		if err != nil {
			panic(err)
		}
		s, err := tg.open(dir)
		if err != nil {
			panic(err)
		}
		keys, vals := freshKeys(n, seed)
		start := time.Now()
		var wg sync.WaitGroup
		for w := 0; w < threads; w++ {
			lo, hi := n*w/threads, n*(w+1)/threads
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := lo; i < hi; i++ {
					s.Put(keys[i], vals[i])
				}
			}()
		}
		wg.Wait()
		s.Flush()
		elapsed := time.Since(start)
		_ = s.close()
		os.RemoveAll(dir)
		results = append(results, DurableWriteResult{
			Policy:  tg.name,
			Threads: threads,
			N:       n,
			PerSec:  float64(n) / elapsed.Seconds(),
		})
	}
	return results
}

// benchStore pairs any pmago.Store with its close function: the public
// Store interface deliberately leaves Close to the concrete type (PMA's
// returns nothing, DB's returns an error), so the harness carries it
// alongside instead of re-declaring a private store interface.
type benchStore struct {
	pmago.Store
	close func() error
}

func openWith(policy pmago.FsyncPolicy) func(dir string) (benchStore, error) {
	return func(dir string) (benchStore, error) {
		db, err := pmago.Open(dir, pmago.WithFsync(policy), pmago.WithCompactRatio(0))
		if err != nil {
			return benchStore{}, err
		}
		return benchStore{db, db.Close}, nil
	}
}

// RecoveryResult is one crash-recovery measurement: a store of N pairs —
// nine tenths checkpointed, one tenth in the WAL tail — reopened cold.
type RecoveryResult struct {
	N             int
	TailN         int // pairs replayed from the WAL
	SnapshotBytes int64
	WALBytes      int64
	OpenTime      time.Duration
}

// RunRecovery builds a durable store of each size (bulk ingest, snapshot
// at 90%, point-logged tail for the rest), closes it, and times Open —
// the restart cost a deployment actually pays.
func RunRecovery(sizes []int, seed int64) []RecoveryResult {
	var results []RecoveryResult
	for _, n := range sizes {
		dir, err := os.MkdirTemp("", "pmago-rec-*")
		if err != nil {
			panic(err)
		}
		db, err := pmago.Open(dir, pmago.WithFsync(pmago.FsyncNone), pmago.WithCompactRatio(0))
		if err != nil {
			panic(err)
		}
		keys, vals := freshKeys(n, seed)
		sortChunks(keys, vals, n)
		snapN := n * 9 / 10
		const chunk = 1 << 16
		for off := 0; off < snapN; off += chunk {
			end := min(off+chunk, snapN)
			db.PutBatch(keys[off:end], vals[off:end])
		}
		if err := db.Snapshot(); err != nil {
			panic(err)
		}
		for i := snapN; i < n; i++ { // point-logged WAL tail
			db.Put(keys[i], vals[i])
		}
		res := RecoveryResult{N: n, TailN: n - snapN, WALBytes: db.WALBytes()}
		if fi := snapshotFile(dir); fi != nil {
			res.SnapshotBytes = fi.Size()
		}
		if err := db.Close(); err != nil {
			panic(err)
		}

		start := time.Now()
		re, err := pmago.Open(dir)
		if err != nil {
			panic(err)
		}
		res.OpenTime = time.Since(start)
		if re.Len() != n {
			panic(fmt.Sprintf("bench: recovery lost data: %d of %d", re.Len(), n))
		}
		_ = re.Close()
		os.RemoveAll(dir)
		results = append(results, res)
	}
	return results
}

func snapshotFile(dir string) os.FileInfo {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil
	}
	for _, e := range ents {
		if len(e.Name()) > 9 && e.Name()[:5] == "snap-" {
			if fi, err := e.Info(); err == nil {
				return fi
			}
		}
	}
	return nil
}
