package bench

import (
	"strings"
	"testing"

	"pmago/internal/workload"
)

// smallScale keeps unit-test runs fast while still crossing resizes.
func smallScale() Scale {
	return Scale{InsertN: 40_000, LoadN: 40_000, MixedN: 20_000, Threads: 4, Seed: 1}
}

func TestRunInsertOnlyAllStores(t *testing.T) {
	for _, f := range PaperFactories() {
		res := Run(f, Workload{
			Dist:          workload.Uniform(),
			Ops:           20_000,
			UpdateThreads: 2,
			ScanThreads:   1,
			Seed:          3,
		})
		if res.UpdatesPerSec <= 0 {
			t.Fatalf("%s: zero update throughput", f.Name)
		}
		if res.FinalLen <= 0 || res.FinalLen > 20_000 {
			t.Fatalf("%s: implausible final size %d", f.Name, res.FinalLen)
		}
	}
}

func TestRunMixedKeepsSizeStable(t *testing.T) {
	for _, f := range PaperFactories() {
		res := Run(f, Workload{
			Dist:          workload.Uniform(),
			LoadN:         30_000,
			Ops:           20_000,
			Mixed:         true,
			MixedChunk:    1_000,
			UpdateThreads: 2,
			Seed:          5,
		})
		// Mixed rounds replay the same keys for deletion, so the final
		// size must stay close to the loaded base (uniform keys rarely
		// collide at this scale).
		if res.FinalLen < 25_000 || res.FinalLen > 31_000 {
			t.Fatalf("%s: final size %d drifted from base 30000", f.Name, res.FinalLen)
		}
	}
}

func TestRunCountsScans(t *testing.T) {
	res := Run(PMAFactory("PMA", PaperPMAConfig()), Workload{
		Dist:          workload.Uniform(),
		LoadN:         30_000,
		Ops:           30_000,
		UpdateThreads: 1,
		ScanThreads:   2,
		Seed:          7,
	})
	if res.ScansPerSec <= 0 {
		t.Fatal("scan threads recorded nothing")
	}
}

func TestZipfRunsOnPMA(t *testing.T) {
	for _, d := range workload.PaperDistributions() {
		res := Run(PMAFactory("PMA", PaperPMAConfig()), Workload{
			Dist:          d,
			Ops:           20_000,
			UpdateThreads: 4,
			Seed:          11,
		})
		if res.UpdatesPerSec <= 0 {
			t.Fatalf("%v: zero throughput", d)
		}
	}
}

func TestFigure3PlotsShape(t *testing.T) {
	plots := Figure3Plots(16)
	if len(plots) != 6 {
		t.Fatalf("%d plots", len(plots))
	}
	if plots[0].UpdateThreads != 16 || plots[0].ScanThreads != 0 || plots[0].Mixed {
		t.Fatal("plot a misconfigured")
	}
	if plots[2].UpdateThreads != 8 || plots[2].ScanThreads != 8 {
		t.Fatal("plot c misconfigured")
	}
	if !plots[3].Mixed {
		t.Fatal("plot d must be mixed")
	}
}

func TestFigure4VariantsMatchPaper(t *testing.T) {
	vs := Figure4Variants()
	want := []string{"Baseline", "1by1", "Batch 0ms", "Batch 100ms", "Batch 200ms", "Batch 400ms", "Batch 800ms"}
	if len(vs) != len(want) {
		t.Fatalf("%d variants", len(vs))
	}
	for i, v := range vs {
		if v.Name != want[i] {
			t.Fatalf("variant %d = %s, want %s", i, v.Name, want[i])
		}
	}
}

func TestPrintResults(t *testing.T) {
	var sb strings.Builder
	PrintResults(&sb, "test", []Result{{Store: "PMA", Dist: workload.Uniform(), UpdatesPerSec: 1e6, ScansPerSec: 2e6, FinalLen: 10}}, true)
	out := sb.String()
	for _, want := range []string{"PMA", "Uniform", "1.000", "2.00"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestPrintSpeedups(t *testing.T) {
	var sb strings.Builder
	vs := Figure4Variants()
	rows := []SpeedupRow{{Dist: workload.Zipf(2), Baseline: 5e5, Speedup: []float64{1, 2, 0.9, 4.7, 5.4, 6, 7.4}}}
	PrintSpeedups(&sb, "figure 4a", vs, rows)
	out := sb.String()
	for _, want := range []string{"Zipf a=2", "4.70x", "Batch 800ms"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}
