package bench

import (
	"fmt"
	"sync"
	"time"

	"pmago"
)

// Sharding experiment: how does write throughput scale with the shard count,
// and what does the k-way merge cost scans? Each cell runs the same workload
// against a pmago.Sharded with a different shard count (1 = the unsharded
// baseline, modulo the thin routing layer). Shards multiply the combining
// queues and rebalancer masters that serialize writers, so puts and batches
// should scale with shard count up to GOMAXPROCS; on a single-core box the
// cells mostly measure routing and merge overhead.

// ShardsResult is one shard-count cell.
type ShardsResult struct {
	Shards      int
	Threads     int
	N           int
	PutsPerSec  float64 // concurrent point Puts
	BatchPerSec float64 // chunked cross-shard PutBatch, single caller
	ScanPerSec  float64 // pairs/s through one merged ScanAll
	// Stats is the merged metrics snapshot at the end of the cell,
	// including the per-shard routing counters — `pmabench -stats`
	// reports it.
	Stats pmago.Stats
}

// RunShards measures each shard count: n point Puts over `threads` writers,
// then n more pairs via chunked PutBatch (the cross-shard split path), then
// one full merged scan.
func RunShards(n, threads int, shardCounts []int, seed int64) []ShardsResult {
	if threads < 1 {
		threads = 1
	}
	var results []ShardsResult
	for _, c := range shardCounts {
		s, err := pmago.NewSharded(pmago.WithShards(c))
		if err != nil {
			panic(err)
		}
		res := ShardsResult{Shards: c, Threads: threads, N: n}

		keys, vals := freshKeys(n, seed)
		start := time.Now()
		var wg sync.WaitGroup
		for w := 0; w < threads; w++ {
			lo, hi := n*w/threads, n*(w+1)/threads
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := lo; i < hi; i++ {
					s.Put(keys[i], vals[i])
				}
			}()
		}
		wg.Wait()
		s.Flush()
		res.PutsPerSec = float64(n) / time.Since(start).Seconds()

		bkeys, bvals := freshKeys(n, seed+1)
		const chunk = 1 << 14
		start = time.Now()
		for off := 0; off < n; off += chunk {
			end := min(off+chunk, n)
			s.PutBatch(bkeys[off:end], bvals[off:end])
		}
		s.Flush()
		res.BatchPerSec = float64(n) / time.Since(start).Seconds()

		start = time.Now()
		pairs := 0
		s.ScanAll(func(k, v int64) bool {
			pairs++
			return true
		})
		res.ScanPerSec = float64(pairs) / time.Since(start).Seconds()
		if pairs != s.Len() {
			panic(fmt.Sprintf("bench: merged scan saw %d pairs, store holds %d", pairs, s.Len()))
		}
		res.Stats = s.Stats()

		if err := s.Close(); err != nil {
			panic(err)
		}
		results = append(results, res)
	}
	return results
}
