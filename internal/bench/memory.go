package bench

import (
	"fmt"
	"runtime"
	"time"

	"pmago/internal/core"
)

// This file is the memory experiment behind `pmabench -experiment memory`:
// it builds the same dataset into an uncompressed and a compressed
// (core.Config.CompressedChunks) store and reports the live heap each one
// retains, the bytes per pair of the compressed payload itself, and the
// BulkLoad and full-scan rates — the space/time trade the compressed
// representation buys. Heap is measured as the HeapAlloc delta across the
// store's construction with a forced GC on both sides, so only memory the
// store keeps alive is attributed to it (the input slices are allocated
// before the first reading).

// MemoryResult is one variant's measurements.
type MemoryResult struct {
	Variant string // "uncompressed" or "compressed"
	N       int    // pairs stored

	HeapBytes        uint64  // live heap retained by the store
	HeapBytesPerPair float64 // HeapBytes / N
	// EncodedBytesPerPair is the compressed payload alone (from
	// Stats().Compression), excluding per-gate metadata; 0 when
	// uncompressed.
	EncodedBytesPerPair float64
	BulkLoadWall        time.Duration
	ScanWall            time.Duration // one full ScanAll over the n pairs
	ScanPairsPerSec     float64
}

// MemoryVariants are the evaluated representations.
var MemoryVariants = []string{"uncompressed", "compressed"}

// RunMemory measures both variants over sc.InsertN pairs: distinct sorted
// keys scattered uniformly over an 8x domain (average key gap 8, the dense
// shape the delta codec targets — a graph's edge lists, a time-ordered
// telemetry series) with small values.
func RunMemory(sc Scale) []MemoryResult {
	n := sc.InsertN
	if n < 1<<10 {
		n = 1 << 10
	}
	keys := make([]int64, n)
	vals := make([]int64, n)
	for i := range keys {
		keys[i] = int64(i) * 8
		vals[i] = int64(i)
	}
	var out []MemoryResult
	for _, variant := range MemoryVariants {
		cfg := PaperPMAConfig()
		cfg.CompressedChunks = variant == "compressed"
		out = append(out, runMemoryCell(cfg, variant, keys, vals))
	}
	return out
}

func runMemoryCell(cfg core.Config, variant string, keys, vals []int64) MemoryResult {
	n := len(keys)
	var before, after runtime.MemStats
	// Two collections on each side: sync.Pool victim caches (a previous
	// cell's scratch buffers) survive a single GC and would otherwise skew
	// the delta.
	runtime.GC()
	runtime.GC()
	runtime.ReadMemStats(&before)

	start := time.Now()
	p, err := core.BulkLoad(cfg, keys, vals)
	if err != nil {
		panic(fmt.Sprintf("bench: memory bulk load: %v", err))
	}
	loadWall := time.Since(start)

	runtime.GC()
	runtime.GC()
	runtime.ReadMemStats(&after)
	heap := after.HeapAlloc - before.HeapAlloc
	if after.HeapAlloc < before.HeapAlloc {
		heap = 0 // GC reclaimed more than the store retains; don't wrap
	}

	start = time.Now()
	seen := 0
	p.ScanAll(func(_, _ int64) bool {
		seen++
		return true
	})
	scanWall := time.Since(start)
	if seen != n {
		panic(fmt.Sprintf("bench: memory scan visited %d of %d pairs", seen, n))
	}

	res := MemoryResult{
		Variant:          variant,
		N:                n,
		HeapBytes:        heap,
		HeapBytesPerPair: float64(heap) / float64(n),
		BulkLoadWall:     loadWall,
		ScanWall:         scanWall,
		ScanPairsPerSec:  float64(n) / scanWall.Seconds(),
	}
	if st := p.Stats(); st.Compression.Enabled && st.Compression.Pairs > 0 {
		res.EncodedBytesPerPair = float64(st.Compression.EncodedBytes) / float64(st.Compression.Pairs)
	}
	p.Close()
	return res
}
