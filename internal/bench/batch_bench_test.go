package bench

import (
	"testing"

	"pmago/internal/core"
)

// The acceptance numbers for the batch subsystem (PutBatch >= 5x point Puts
// at batch size 10k, BulkLoad of 1M keys >= 10x of 1M point Puts) are
// measured with these benchmarks / the pmabench batch experiment; see
// internal/bench/README.md for recorded runs.

// benchClusterLen is the headline ingest shape: runs of 128 adjacent keys
// (one vertex's edges, one telemetry time window) at scattered positions.
const benchClusterLen = 128

func BenchmarkPutBatch(b *testing.B) {
	benchIngest(b, true, benchClusterLen)
}

func BenchmarkPutBatchScattered(b *testing.B) {
	benchIngest(b, true, 0)
}

func BenchmarkPutPoint(b *testing.B) {
	benchIngest(b, false, benchClusterLen)
}

func BenchmarkPutPointScattered(b *testing.B) {
	benchIngest(b, false, 0)
}

// benchIngest preloads 1M keys and ingests fresh keys in sorted 10k chunks,
// reporting ns per ingested key.
func benchIngest(b *testing.B, batched bool, clusterLen int) {
	const batchSize = 10_000
	loadK, loadV := preloadKeys(1_000_000, 42)
	s, err := core.BulkLoad(PaperPMAConfig(), loadK, loadV)
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	keys, vals := ingestKeys(batchSize*max(b.N, 1), clusterLen, 42)
	sortChunks(keys, vals, batchSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		chunkK := keys[i*batchSize : (i+1)*batchSize]
		chunkV := vals[i*batchSize : (i+1)*batchSize]
		if batched {
			s.PutBatch(chunkK, chunkV)
		} else {
			for j := range chunkK {
				s.Put(chunkK[j], chunkV[j])
			}
		}
	}
	s.Flush()
	b.StopTimer()
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*batchSize), "ns/key")
}

func BenchmarkBulkLoad1M(b *testing.B) {
	keys, vals := freshKeys(1_000_000, 7)
	sortChunks(keys, vals, len(keys))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := core.BulkLoad(PaperPMAConfig(), keys, vals)
		if err != nil {
			b.Fatal(err)
		}
		p.Close()
	}
}

func BenchmarkPointLoad1M(b *testing.B) {
	keys, vals := freshKeys(1_000_000, 7)
	sortChunks(keys, vals, len(keys))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := core.MustNew(PaperPMAConfig())
		for j := range keys {
			p.Put(keys[j], vals[j])
		}
		p.Flush()
		p.Close()
	}
}

// TestBatchAdapters checks both sides of AsBatch: the PMA's native batch
// path and the point-loop fallback produce the same store contents.
func TestBatchAdapters(t *testing.T) {
	native := AsBatch(core.MustNew(PaperPMAConfig()))
	fallback := AsBatch(PointOnly(core.MustNew(PaperPMAConfig())))
	if _, ok := any(native).(pointBatch); ok {
		t.Fatal("PMA should use its native batch path")
	}
	if _, ok := any(fallback).(pointBatch); !ok {
		t.Fatal("PointOnly store should get the loop adapter")
	}
	keys := []int64{5, 1, 9, 1}
	vals := []int64{50, 10, 90, 11}
	for _, s := range []BatchStore{native, fallback} {
		s.PutBatch(keys, vals)
		if fl, ok := s.(Flusher); ok {
			fl.Flush()
		}
		if v, ok := s.Get(1); !ok || v != 11 {
			t.Fatalf("Get(1) = %d,%v", v, ok)
		}
		if n := s.DeleteBatch([]int64{5, 7}); n != 1 {
			t.Fatalf("DeleteBatch = %d", n)
		}
		if s.Len() != 2 {
			t.Fatalf("Len = %d", s.Len())
		}
		if c, ok := s.(Closer); ok {
			c.Close()
		}
	}
}

// TestBatchComparisonReport runs a scaled-down batch-vs-point comparison and
// logs the measured speedups. The hard acceptance thresholds are verified
// with the full-size benchmarks above (timing asserts in unit tests would
// flake on loaded CI machines).
func TestBatchComparisonReport(t *testing.T) {
	if testing.Short() {
		t.Skip("timing report")
	}
	res := RunBatchComparison(200_000, 50_000, 10_000, benchClusterLen, 1)
	t.Logf("PutBatch clustered: point %.2f Mkeys/s, batch %.2f Mkeys/s, speedup %.1fx",
		res.PointPerSec/1e6, res.BatchPerSec/1e6, res.Speedup)
	bulk := RunBulkComparison(200_000, 1)
	t.Logf("BulkLoad %d keys: point %v, bulk %v, speedup %.1fx",
		bulk.N, bulk.PointWall, bulk.BulkWall, bulk.Speedup)
	if res.Speedup < 1 || bulk.Speedup < 1 {
		t.Errorf("batch paths slower than point paths: batch %.2fx bulk %.2fx", res.Speedup, bulk.Speedup)
	}
}
