// Package core implements the paper's contribution: a Packed Memory Array
// supporting concurrent reads and updates (Sections 3.1-3.5).
//
// The sparse array is split into equal chunks protected by gates (read-write
// latches plus fence keys and per-segment minima). A static B+-tree index
// routes operations to gates in O(log_B N) without synchronisation; fence-key
// verification absorbs racy index reads. Readers normally bypass the latch
// entirely: each gate carries a seqlock version counter (gate.go) that is
// odd while an exclusive holder may be mutating the chunk, and Get/Scan
// validate an unsynchronised chunk read against it, falling back to the
// shared latch only on sustained contention (read.go).
//
// Optimistic readers still run inside an epoch guard. The guard is not what
// makes the racy chunk reads safe — that is the version validation plus
// Go's GC keeping racily-loaded references alive — but it keeps the
// reclamation bookkeeping of Section 3.4 uniform: a retired state is not
// counted reclaimed while any reader that might still route through its
// gates is in flight, which also keeps the door open for non-GC resources
// (e.g. file-backed buffers) behind the same mechanism. Rebalances that span multiple gates
// are executed by a centralised rebalancer service (one master goroutine,
// a pool of workers) to which writers transfer their latch ownership, so no
// client ever holds more than one latch — the deadlock-freedom argument of
// Section 3.3. Resizes rebuild array, gates and index behind an atomic state
// pointer with epoch-based garbage collection (Section 3.4). Skewed writers
// are decoupled through per-gate combining queues with one-by-one or batch
// processing and a tdelay rate limit on global rebalances (Section 3.5).
//
// Beyond the paper, batch.go adds a client-facing batch subsystem
// (PutBatch, DeleteBatch, BulkLoad): sorted batches are partitioned along
// the gate fences so each affected gate is latched once and its run merged
// in a single pass, reusing the Section 3.5 machinery only when a run
// overflows its chunk.
package core

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"pmago/internal/epoch"
	"pmago/internal/obs"
	"pmago/internal/rewire"
	"pmago/internal/rma"
	"pmago/internal/sindex"
)

// Mode selects the update-processing scheme of Section 3.5.
type Mode int

const (
	// ModeSync is the baseline: every writer latches its gate exclusively
	// and blocks until its update is applied.
	ModeSync Mode = iota
	// ModeOneByOne combines blocked writers' updates into the active
	// writer's queue and processes them in arrival order, preserving the
	// benefit of adaptive rebalancing.
	ModeOneByOne
	// ModeBatch combines blocked writers' updates and applies them in two
	// passes (deletions first, then insertions merged into one rebalance),
	// deferring global rebalances by TDelay per gate.
	ModeBatch
)

func (m Mode) String() string {
	switch m {
	case ModeSync:
		return "sync"
	case ModeOneByOne:
		return "1by1"
	case ModeBatch:
		return "batch"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Config holds the tunable parameters of the concurrent PMA.
type Config struct {
	// SegmentCapacity is the number of slots per segment (the paper's
	// B = 128). Power of two, >= 4.
	SegmentCapacity int
	// SegmentsPerGate is the chunk granularity (the paper uses 8).
	// Power of two, >= 1.
	SegmentsPerGate int
	// Mode selects synchronous or asynchronous update processing.
	Mode Mode
	// TDelay is the minimum time between global rebalances of the same
	// gate in ModeBatch (the paper evaluates 0-800ms, default 100ms).
	TDelay time.Duration
	// Workers is the size of the rebalancer's worker pool (the paper
	// uses 8, matching its cores). Defaults to GOMAXPROCS capped at 8.
	Workers int
	// Calibrator-tree thresholds; see rma.Config. The leaf lower
	// threshold is fixed at 0 with downsizing below 50% occupancy,
	// matching the paper's evaluation configuration.
	RhoRoot, TauRoot, TauLeaf float64
	// Adaptive forces adaptive rebalancing for local rebalances. It is
	// implied by ModeOneByOne.
	Adaptive bool
	// PredictorSize bounds the per-gate adaptive predictor.
	PredictorSize int
	// GCInterval is the epoch garbage collector period.
	GCInterval time.Duration
	// DisableOptimisticReads forces Get and Scan onto the blocking
	// shared-latch path instead of the seqlock fast path (read.go). The
	// zero value — optimistic reads on — is the intended configuration;
	// the switch exists for the before/after comparison in the bench
	// harness (pmabench -experiment reads) and for diagnosing suspected
	// fast-path issues.
	DisableOptimisticReads bool
	// DisableMetrics turns off the obs counters and histograms. The zero
	// value — metrics on — is the intended configuration: enabled metrics
	// cost striped-counter increments off the contended cache lines, and
	// disabling them reduces every instrumentation site to a single nil
	// check (Stats then reports zeros, except EpochReclaimed which the
	// epoch manager tracks regardless).
	DisableMetrics bool
	// Events receives structural-event callbacks (global rebalances and
	// resizes) from the rebalancer master goroutine. Independent of
	// DisableMetrics; nil means no callbacks. See obs.EventHook for the
	// reentrancy and latency contract.
	Events obs.EventHook
	// CompressedChunks stores each segment delta-encoded (cgate.go) instead
	// of as fixed 16-byte slots: ~2-4x less memory for dense key runs, at
	// the cost of a bounded per-segment decode on reads and a re-encode on
	// writes. All semantics, the seqlock read protocol and the rebalance
	// machinery are unchanged; the representation is fixed at construction.
	CompressedChunks bool
}

// DefaultConfig mirrors the evaluation setup of Section 4.
func DefaultConfig() Config {
	return Config{
		SegmentCapacity: 128,
		SegmentsPerGate: 8,
		Mode:            ModeBatch,
		TDelay:          100 * time.Millisecond,
		RhoRoot:         0.75,
		TauRoot:         0.75,
		TauLeaf:         1.0,
		PredictorSize:   64,
		GCInterval:      10 * time.Millisecond,
	}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.SegmentCapacity < 4 || c.SegmentCapacity&(c.SegmentCapacity-1) != 0 {
		return fmt.Errorf("core: segment capacity %d must be a power of two >= 4", c.SegmentCapacity)
	}
	if c.SegmentsPerGate < 1 || c.SegmentsPerGate&(c.SegmentsPerGate-1) != 0 {
		return fmt.Errorf("core: segments per gate %d must be a power of two >= 1", c.SegmentsPerGate)
	}
	if !(0 < c.RhoRoot && c.RhoRoot <= c.TauRoot && c.TauRoot < c.TauLeaf && c.TauLeaf <= 1) {
		return fmt.Errorf("core: thresholds must satisfy 0 < rho_h <= tau_h < tau1 <= 1")
	}
	if c.Mode < ModeSync || c.Mode > ModeBatch {
		return fmt.Errorf("core: unknown mode %d", int(c.Mode))
	}
	if c.TDelay < 0 {
		return fmt.Errorf("core: negative tdelay")
	}
	return nil
}

// UpdateHook observes every accepted update before it is applied to the
// array. It is the seam the durability layer hangs off: a write-ahead log
// implements UpdateHook and pmago.Open installs it with SetHook, so a hook
// that blocks until its record is durable makes every acknowledged update
// recoverable. The hook is invoked with the caller's original arguments
// (unsorted, duplicates intact, after sentinel validation) and must be safe
// for concurrent use; when no hook is installed the only hot-path cost is a
// nil check.
type UpdateHook interface {
	Put(k, v int64)
	Delete(k int64)
	PutBatch(keys, vals []int64)
	DeleteBatch(keys []int64)
}

// SetHook installs the update hook. It must be called before the PMA is
// shared with other goroutines (pmago.Open installs it between recovery and
// returning the store); there is no synchronisation on the field itself.
func (p *PMA) SetHook(h UpdateHook) { p.hook = h }

// Stats is the typed metrics snapshot returned by PMA.Stats: the obs-layer
// core section (read path, combining queues, rebalancer).
type Stats = obs.CoreSnapshot

// state is one immutable-geometry generation of the sparse array. A resize
// builds a fresh state and publishes it through PMA.state.
type state struct {
	p       *PMA
	gates   []*gate
	index   *sindex.Index
	spg     int
	b       int
	numSegs int // len(gates) * spg
	height  int // calibrator tree height over all segments
	card    atomic.Int64
}

func (st *state) slots() int { return st.numSegs * st.b }

// thresholds interpolates the calibrator-tree density thresholds for level k
// of a tree of height h (Section 2), with the evaluation's relaxed rho1 = 0.
func (st *state) thresholds(k, h int) (rho, tau float64) {
	c := st.p.cfg
	if h <= 1 {
		return c.RhoRoot, c.TauRoot
	}
	f := float64(h-k) / float64(h-1)
	tau = c.TauRoot + (c.TauLeaf-c.TauRoot)*f
	rho = c.RhoRoot * (1 - f) // rho1 = 0
	return rho, tau
}

// PMA is the concurrent packed memory array. All methods are safe for
// concurrent use by any number of goroutines.
type PMA struct {
	cfg      Config
	adaptive bool
	hook     UpdateHook

	state atomic.Pointer[state]

	pool   *rewire.Pool
	epochs *epoch.Manager
	gc     *epoch.Collector
	reb    *rebalancer

	// cctx is non-nil exactly when Config.CompressedChunks is set; gates of
	// a compressed store carry it instead of a rewire buffer (cgate.go).
	cctx *cctx

	// scanBufs recycles the per-Scan chunk copies of the copy-out read
	// protocol (read.go); geometry is fixed, so every buffer fits every
	// gate.
	scanBufs sync.Pool

	shrinkPending atomic.Bool
	closed        atomic.Bool

	// metrics is nil when Config.DisableMetrics is set; every
	// instrumentation site guards with `if m := p.metrics; m != nil`.
	// events is the structural-event hook (nil means none).
	metrics *obs.CoreMetrics
	events  obs.EventHook
}

// New creates an empty concurrent PMA and starts its service goroutines
// (rebalancer master, worker pool, epoch collector). Callers must Close it.
func New(cfg Config) (*PMA, error) {
	p, err := newShell(cfg)
	if err != nil {
		return nil, err
	}
	p.state.Store(p.newState(1))
	p.startServices()
	return p, nil
}

// newShell normalises and validates the configuration and allocates the PMA
// without a state or running services. New and BulkLoad install their state
// (empty, or pre-filled at target density) before calling startServices.
func newShell(cfg Config) (*PMA, error) {
	if cfg.SegmentCapacity == 0 { // fill zero fields from the default
		def := DefaultConfig()
		def.Mode = cfg.Mode
		def.DisableOptimisticReads = cfg.DisableOptimisticReads
		def.DisableMetrics = cfg.DisableMetrics
		def.Events = cfg.Events
		def.CompressedChunks = cfg.CompressedChunks
		cfg = def
	}
	if cfg.Workers <= 0 {
		cfg.Workers = defaultWorkers()
	}
	if cfg.GCInterval <= 0 {
		cfg.GCInterval = 10 * time.Millisecond
	}
	if cfg.PredictorSize <= 0 {
		cfg.PredictorSize = 64
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	p := &PMA{
		cfg:      cfg,
		adaptive: cfg.Adaptive || cfg.Mode == ModeOneByOne,
		pool:     rewire.NewPool(cfg.SegmentsPerGate*cfg.SegmentCapacity, 4*cfg.Workers+16),
		epochs:   epoch.NewManager(),
		events:   cfg.Events,
	}
	if !cfg.DisableMetrics {
		p.metrics = &obs.CoreMetrics{}
	}
	if cfg.CompressedChunks {
		p.cctx = newCctx(cfg.SegmentsPerGate, cfg.SegmentCapacity, p.metrics)
	}
	return p, nil
}

// startServices launches the epoch collector and the rebalancer. The state
// must be installed first: the rebalancer dereferences it on its first
// request.
func (p *PMA) startServices() {
	p.gc = p.epochs.StartCollector(p.cfg.GCInterval)
	p.reb = newRebalancer(p, p.cfg.Workers)
}

// MustNew is New for configurations known statically valid.
func MustNew(cfg Config) *PMA {
	p, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return p
}

// newState builds an empty state with the given number of gates.
func (p *PMA) newState(numGates int) *state {
	st := &state{
		p:       p,
		spg:     p.cfg.SegmentsPerGate,
		b:       p.cfg.SegmentCapacity,
		numSegs: numGates * p.cfg.SegmentsPerGate,
	}
	st.height = log2(st.numSegs) + 1
	st.gates = make([]*gate, numGates)
	st.index = sindex.New(numGates)
	for i := range st.gates {
		var pred *rma.Predictor
		if p.adaptive {
			pred = rma.NewPredictor(p.cfg.PredictorSize)
		}
		var buf *rewire.Buffer
		if p.cctx == nil {
			buf = p.pool.Get()
		}
		st.gates[i] = newGate(i, st.spg, st.b, buf, pred, p.cctx)
	}
	// Degenerate fences for an all-empty array: gate 0 owns everything.
	st.gates[0].fenceLo = rma.KeyMin
	st.gates[len(st.gates)-1].fenceHi = rma.KeyMax
	for i := 1; i < len(st.gates); i++ {
		st.gates[i].fenceLo = rma.KeyMax
		st.gates[i-1].fenceHi = rma.KeyMax - 1
		st.index.Set(i, rma.KeyMax)
	}
	st.index.Set(0, rma.KeyMin)
	return st
}

// Close shuts down the service goroutines. Pending delayed batches are
// applied first so no accepted update is lost. Concurrent operations must
// have completed before Close is called. Close is idempotent; any other
// operation on a closed PMA panics with a "use after Close" message.
func (p *PMA) Close() {
	if p.closed.Swap(true) {
		return
	}
	p.reb.close()
	p.gc.Stop()
}

// checkOpen guards every client operation against use after Close: without
// it a closed store fails obscurely (a Put can hang forever on the stopped
// rebalancer). The message carries the public package name — it is what the
// user sees.
func (p *PMA) checkOpen() {
	if p.closed.Load() {
		panic("pmago: use after Close")
	}
}

// Len returns the number of elements applied to the array. Updates still
// sitting in combining queues are not counted; call Flush first for an exact
// answer after asynchronous updates.
func (p *PMA) Len() int {
	return int(p.state.Load().card.Load())
}

// Capacity returns the current number of slots.
func (p *PMA) Capacity() int {
	return p.state.Load().slots()
}

// NumGates returns the current number of gates (test/diagnostic helper).
func (p *PMA) NumGates() int {
	return len(p.state.Load().gates)
}

// Stats returns a snapshot of the metrics. With DisableMetrics set, every
// field is zero except EpochReclaimed, which the epoch manager always
// tracks (its GC loop needs the count anyway).
func (p *PMA) Stats() Stats {
	s := p.metrics.Snapshot()
	s.Rebalance.EpochReclaimed = uint64(p.epochs.Reclaimed())
	if p.cctx != nil {
		s.Compression.Enabled = true
		st := p.state.Load()
		var bytes int64
		for _, g := range st.gates {
			bytes += g.encBytes.Load()
		}
		if bytes > 0 {
			s.Compression.EncodedBytes = uint64(bytes)
		}
		s.Compression.Pairs = uint64(st.card.Load())
	}
	return s
}

// Compressed reports whether the store uses the compressed chunk
// representation (Config.CompressedChunks).
func (p *PMA) Compressed() bool { return p.cctx != nil }

// Mode returns the configured update-processing mode.
func (p *PMA) Mode() Mode { return p.cfg.Mode }

func defaultWorkers() int {
	n := runtime.GOMAXPROCS(0)
	if n > 8 {
		n = 8
	}
	if n < 1 {
		n = 1
	}
	return n
}
