package core

import "pmago/internal/rma"

// Get returns the value stored under k. Reads never block behind combining
// queues: updates still queued are not yet visible (Section 3.5 semantics).
func (p *PMA) Get(k int64) (int64, bool) {
	p.checkOpen()
	if k == rma.KeyMin || k == rma.KeyMax {
		return 0, false
	}
	guard := p.epochs.Enter()
	defer guard.Leave()
	for {
		st := p.state.Load()
		gi := clampGate(st.index.Lookup(k), len(st.gates))
		for {
			g := st.gates[gi]
			g.lockShared()
			if g.invalid {
				g.unlockShared()
				break
			}
			if k < g.fenceLo && gi > 0 {
				g.unlockShared()
				gi--
				continue
			}
			if k > g.fenceHi && gi < len(st.gates)-1 {
				g.unlockShared()
				gi++
				continue
			}
			v, ok := g.get(k)
			g.unlockShared()
			return v, ok
		}
		guard.Refresh()
	}
}

// Scan visits all pairs with lo <= key <= hi in ascending key order,
// stopping early when fn returns false. The callback runs while the current
// gate's latch is held in shared mode, so it must not call update operations
// of the same PMA (reads are fine) and should be short. The scan latches one
// gate at a time; it observes each chunk atomically and the sequence of
// chunks at increasing fence boundaries, which is the same guarantee the
// paper's scans provide.
func (p *PMA) Scan(lo, hi int64, fn func(k, v int64) bool) {
	p.checkOpen()
	if lo > hi {
		return
	}
	if lo == rma.KeyMin {
		lo++
	}
	if hi == rma.KeyMax {
		hi--
	}
	guard := p.epochs.Enter()
	defer guard.Leave()
	from := lo
	for {
		st := p.state.Load()
		gi := clampGate(st.index.Lookup(from), len(st.gates))
		for {
			g := st.gates[gi]
			g.lockShared()
			if g.invalid {
				g.unlockShared()
				break
			}
			if from < g.fenceLo && gi > 0 {
				g.unlockShared()
				gi--
				continue
			}
			if from > g.fenceHi && gi < len(st.gates)-1 {
				g.unlockShared()
				gi++
				continue
			}
			cont := g.scanFrom(from, hi, fn)
			fenceHi := g.fenceHi
			g.unlockShared()
			if !cont || fenceHi >= hi || fenceHi == rma.KeyMax {
				return
			}
			from = fenceHi + 1
			if gi++; gi >= len(st.gates) {
				return
			}
		}
		guard.Refresh()
	}
}

// ScanAll visits every stored pair in ascending key order.
func (p *PMA) ScanAll(fn func(k, v int64) bool) {
	p.Scan(rma.KeyMin+1, rma.KeyMax-1, fn)
}

// Keys collects all stored keys in order (test/diagnostic helper).
func (p *PMA) Keys() []int64 {
	out := make([]int64, 0, p.Len())
	p.ScanAll(func(k, _ int64) bool { out = append(out, k); return true })
	return out
}
