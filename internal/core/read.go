package core

import (
	"pmago/internal/rma"
)

// The read path is optimistic (a seqlock over each gate, Section 3.1's
// latches demoted to a fallback): a reader samples the gate's version
// counter, performs the unsynchronised chunk read, and accepts the result
// only if the version is unchanged and was even (stable) throughout — in
// which case no exclusive holder ran concurrently and the read is equivalent
// to one under the shared latch. Readers therefore touch no mutex cache line
// on the fast path and never contend with each other, with writers, or with
// the rebalancer. After optimisticAttempts failed validations (a
// writer-heavy gate) the reader falls back to the blocking shared latch, so
// tail latency stays bounded by the same writer-priority protocol as before.

// optimisticAttempts bounds how often a reader retries the seqlock fast path
// before taking the shared latch. Attempts are cheap (two atomic loads plus
// the chunk read), but under a steady writer they can fail indefinitely —
// the fallback keeps reads latency-bounded rather than live-locked.
const optimisticAttempts = 3

// readStatus is the outcome of one validated gate read.
type readStatus int

const (
	readOK        readStatus = iota // snapshot consistent, result usable
	readInvalid                     // gate retired by a resize: reload the state
	readLeft                        // key below fenceLo: walk to the left neighbour
	readRight                       // key above fenceHi: walk to the right neighbour
	readContended                   // validation kept failing: take the shared latch
)

// Get returns the value stored under k. Reads never block behind combining
// queues: updates still queued are not yet visible (Section 3.5 semantics).
func (p *PMA) Get(k int64) (int64, bool) {
	p.checkOpen()
	if k == rma.KeyMin || k == rma.KeyMax {
		return 0, false
	}
	guard := p.epochs.Enter()
	defer guard.Leave()
	optimistic := !p.cfg.DisableOptimisticReads && !raceEnabled
	for {
		st := p.state.Load()
		gi := clampGate(st.index.Lookup(k), len(st.gates))
	walk:
		for {
			g := st.gates[gi]
			if optimistic {
				v, ok, res, fails := p.getOptimistic(g, k)
				// Record probe failures before any latched serve so that
				// GetLatched <= GetProbeFails holds under concurrent Stats
				// (the fallback's failures are visible before it is).
				if m := p.metrics; m != nil && fails > 0 {
					m.GetProbeFails.Add(uint64(fails))
				}
				switch res {
				case readOK:
					if m := p.metrics; m != nil {
						m.GetOptimistic.Inc()
					}
					return v, ok
				case readInvalid:
					break walk
				case readLeft:
					if gi > 0 {
						gi--
						continue
					}
				case readRight:
					if gi < len(st.gates)-1 {
						gi++
						continue
					}
				}
				// readContended (or a fence miss at the array boundary,
				// which cannot happen with sentinel fences): shared latch.
			}
			g.lockShared()
			if g.invalid {
				g.unlockShared()
				break walk
			}
			if k < g.fenceLo && gi > 0 {
				g.unlockShared()
				gi--
				continue
			}
			if k > g.fenceHi && gi < len(st.gates)-1 {
				g.unlockShared()
				gi++
				continue
			}
			v, ok := g.get(k)
			g.unlockShared()
			if m := p.metrics; m != nil {
				m.GetLatched.Inc()
			}
			return v, ok
		}
		guard.Refresh()
	}
}

// getOptimistic performs the seqlock read of one gate: version sample,
// unsynchronised lookup, version validation. Every field read between the
// two version loads (invalid, fences, chunk contents) belongs to one
// consistent snapshot iff the versions match and are even; on any mismatch
// the attempt is discarded and retried, and after optimisticAttempts the
// caller is told to take the latch. Failed attempts retry immediately
// rather than yielding: a writer's exclusive section is short, so either a
// quick re-probe succeeds or the gate is genuinely writer-heavy and parking
// on the shared latch (which writers wake on release) beats burning cycles.
// The returned fails count is the number of discarded attempts (failed
// seqlock validations), which the caller feeds the metrics.
func (p *PMA) getOptimistic(g *gate, k int64) (int64, bool, readStatus, int) {
	fails := 0
	for attempt := 0; attempt < optimisticAttempts; attempt++ {
		v1 := g.version.Load()
		if v1&1 != 0 {
			fails++
			continue // exclusive holder active; snapshot cannot validate
		}
		invalid := g.invalid
		lo, hi := g.fenceLo, g.fenceHi
		val, ok := g.getRacy(k)
		if g.version.Load() != v1 {
			fails++
			continue // an exclusive holder intervened; discard everything
		}
		switch {
		case invalid:
			return 0, false, readInvalid, fails
		case k < lo:
			return 0, false, readLeft, fails
		case k > hi:
			return 0, false, readRight, fails
		default:
			return val, ok, readOK, fails
		}
	}
	return 0, false, readContended, fails
}

// Scan visits all pairs with lo <= key <= hi in ascending key order,
// stopping early when fn returns false. Each gate's chunk is copied out
// under validation (optimistically, or under the shared latch after
// contention) and fn runs on the copy with no latch held, so — unlike
// earlier versions of this package — fn may call update operations of the
// same PMA, including Put, Delete, the batch calls and Flush. The scan
// observes each chunk atomically and the sequence of chunks at increasing
// fence boundaries, which is the same guarantee the paper's scans provide;
// updates applied to a chunk after it was copied are not reflected in the
// callbacks for that chunk.
func (p *PMA) Scan(lo, hi int64, fn func(k, v int64) bool) {
	p.checkOpen()
	if lo > hi {
		return
	}
	if lo == rma.KeyMin {
		lo++
	}
	if hi == rma.KeyMax {
		hi--
	}
	guard := p.epochs.Enter()
	defer guard.Leave()
	optimistic := !p.cfg.DisableOptimisticReads && !raceEnabled
	sb := p.getScanBuf()
	defer p.putScanBuf(sb)
	from := lo
	for {
		st := p.state.Load()
		gi := clampGate(st.index.Lookup(from), len(st.gates))
	walk:
		for {
			fenceHi, res := p.snapshotGate(st, gi, from, hi, sb, optimistic)
			switch res {
			case readInvalid:
				break walk
			case readLeft:
				gi--
				continue
			case readRight:
				gi++
				continue
			}
			// The chunk copy in sb is a validated snapshot; run the
			// callback outside every latch.
			for i := range sb.ks {
				if !fn(sb.ks[i], sb.vs[i]) {
					return
				}
			}
			if fenceHi >= hi || fenceHi == rma.KeyMax {
				return
			}
			from = fenceHi + 1
			if gi++; gi >= len(st.gates) {
				return
			}
		}
		guard.Refresh()
	}
}

// snapshotGate copies gate gi's pairs with key in [from, hi] into sb as one
// consistent snapshot, optimistically first and under the shared latch after
// optimisticAttempts failures (or when the optimistic path is disabled). On
// readOK the returned fenceHi is the gate's upper fence from the same
// snapshot — the scan's resume point. readLeft/readRight are only returned
// when the corresponding neighbour exists, mirroring the fence-verification
// walk of the latched path.
func (p *PMA) snapshotGate(st *state, gi int, from, hi int64, sb *scanBuf, optimistic bool) (int64, readStatus) {
	g := st.gates[gi]
	m := p.metrics
	if optimistic {
		fails := 0
		for attempt := 0; attempt < optimisticAttempts; attempt++ {
			v1 := g.version.Load()
			if v1&1 != 0 {
				fails++
				continue
			}
			sb.reset(g.spg * g.b)
			invalid := g.invalid
			lo, fhi := g.fenceLo, g.fenceHi
			sb.ks, sb.vs = g.collectRacy(from, hi, sb.ks, sb.vs)
			if g.version.Load() != v1 {
				fails++
				continue
			}
			if m != nil && fails > 0 {
				m.ScanProbeFails.Add(uint64(fails))
			}
			switch {
			case invalid:
				return 0, readInvalid
			case from < lo && gi > 0:
				return 0, readLeft
			case from > fhi && gi < len(st.gates)-1:
				return 0, readRight
			default:
				if m != nil {
					m.ScanChunksOptimistic.Inc()
				}
				return fhi, readOK
			}
		}
		// All attempts failed; record them before the latched fallback so
		// ScanChunksLatched <= ScanProbeFails holds under concurrent Stats.
		if m != nil {
			m.ScanProbeFails.Add(uint64(fails))
		}
	}
	g.lockShared()
	if g.invalid {
		g.unlockShared()
		return 0, readInvalid
	}
	if from < g.fenceLo && gi > 0 {
		g.unlockShared()
		return 0, readLeft
	}
	if from > g.fenceHi && gi < len(st.gates)-1 {
		g.unlockShared()
		return 0, readRight
	}
	sb.reset(g.spg * g.b)
	g.scanFrom(from, hi, func(k, v int64) bool {
		sb.ks = append(sb.ks, k)
		sb.vs = append(sb.vs, v)
		return true
	})
	fenceHi := g.fenceHi
	g.unlockShared()
	if m != nil {
		m.ScanChunksLatched.Inc()
	}
	return fenceHi, readOK
}

// scanBuf is the per-Scan chunk copy, pooled on the PMA (the geometry is
// fixed, so one chunk's worth of capacity fits every gate for the store's
// lifetime).
type scanBuf struct {
	ks, vs []int64
}

// reset empties the buffer, pre-growing it to one full chunk so the racy
// collector never allocates mid-snapshot (appends stay within capacity).
func (sb *scanBuf) reset(capacity int) {
	if cap(sb.ks) < capacity {
		sb.ks = make([]int64, 0, capacity)
		sb.vs = make([]int64, 0, capacity)
		return
	}
	sb.ks = sb.ks[:0]
	sb.vs = sb.vs[:0]
}

func (p *PMA) getScanBuf() *scanBuf {
	if sb, ok := p.scanBufs.Get().(*scanBuf); ok {
		return sb
	}
	return &scanBuf{}
}

func (p *PMA) putScanBuf(sb *scanBuf) {
	p.scanBufs.Put(sb)
}

// ScanAll visits every stored pair in ascending key order.
func (p *PMA) ScanAll(fn func(k, v int64) bool) {
	p.Scan(rma.KeyMin+1, rma.KeyMax-1, fn)
}

// Keys collects all stored keys in order (test/diagnostic helper). Like Len,
// it needs no latches at all: it rides on Scan's validated chunk copies.
func (p *PMA) Keys() []int64 {
	out := make([]int64, 0, p.Len())
	p.ScanAll(func(k, _ int64) bool { out = append(out, k); return true })
	return out
}
