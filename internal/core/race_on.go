//go:build race

package core

// raceEnabled reports whether the race detector is compiled in.
//
// Under -race the optimistic read path is disabled (read.go checks this
// constant) and every Get/Scan takes the shared latch: the seqlock fast
// path's unsynchronised chunk loads are real data races by the memory
// model — benign only because validation discards their results — and the
// detector has no userland mechanism to exempt individual loads
// (runtime.RaceDisable suppresses synchronization events, not access
// recording). Race builds therefore verify the latched protocol and every
// writer-side interleaving, while the seqlock protocol itself is verified
// by the model-checking stress suite in normal builds (stress_test.go; CI
// runs the package both ways).
const raceEnabled = true
