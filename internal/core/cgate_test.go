package core

import (
	"math/rand"
	"testing"

	"pmago/internal/codec"
)

// testConfigC is testConfig with the compressed chunk representation on.
func testConfigC(mode Mode) Config {
	cfg := testConfig(mode)
	cfg.CompressedChunks = true
	return cfg
}

func newTestC(t *testing.T, mode Mode) *PMA {
	t.Helper()
	p, err := New(testConfigC(mode))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)
	return p
}

// TestCompressedModelEquivalence runs a mixed random workload (point puts
// and deletes, batch puts and deletes, upserts) against a compressed store
// and a map model, in every mode, checking Get, ScanAll, Len and the full
// structural Validate (which decodes every segment) at the end.
func TestCompressedModelEquivalence(t *testing.T) {
	for _, mode := range allModes() {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			p := newTestC(t, mode)
			model := make(map[int64]int64)
			rng := rand.New(rand.NewSource(7))
			const domain = 1 << 13
			for i := 0; i < 30_000; i++ {
				k := rng.Int63n(domain)
				switch rng.Intn(10) {
				case 0:
					p.Delete(k)
					delete(model, k)
				case 1: // batch put
					n := 1 + rng.Intn(200)
					ks := make([]int64, n)
					vs := make([]int64, n)
					for j := range ks {
						ks[j] = rng.Int63n(domain)
						vs[j] = rng.Int63()
						model[ks[j]] = vs[j]
					}
					// Later duplicates win in PutBatch; replay the model in
					// order so it agrees.
					for j := range ks {
						model[ks[j]] = vs[j]
					}
					p.PutBatch(ks, vs)
				case 2: // batch delete
					n := 1 + rng.Intn(100)
					ks := make([]int64, n)
					for j := range ks {
						ks[j] = rng.Int63n(domain)
						delete(model, ks[j])
					}
					p.DeleteBatch(ks)
				default:
					v := rng.Int63()
					p.Put(k, v)
					model[k] = v
				}
			}
			p.Flush()
			if p.Len() != len(model) {
				t.Fatalf("Len = %d, model has %d", p.Len(), len(model))
			}
			for k, want := range model {
				if v, ok := p.Get(k); !ok || v != want {
					t.Fatalf("Get(%d) = %d,%v want %d,true", k, v, ok, want)
				}
			}
			seen := 0
			prev := int64(-1)
			p.ScanAll(func(k, v int64) bool {
				if k <= prev {
					t.Fatalf("scan not ascending: %d after %d", k, prev)
				}
				if want, ok := model[k]; !ok || v != want {
					t.Fatalf("scan saw %d/%d, model %d,%v", k, v, want, ok)
				}
				prev = k
				seen++
				return true
			})
			if seen != len(model) {
				t.Fatalf("scan visited %d, model has %d", seen, len(model))
			}
			if err := p.Validate(); err != nil {
				t.Fatal(err)
			}
			st := p.Stats()
			if !st.Compression.Enabled || st.Compression.SegDecodes == 0 {
				t.Fatalf("compression stats not live: %+v", st.Compression)
			}
		})
	}
}

// TestCompressedBulkLoad pins the BulkLoad path through fillChunkC and the
// encoded-bytes accounting surfaced by Stats.
func TestCompressedBulkLoad(t *testing.T) {
	const n = 50_000
	keys := make([]int64, n)
	vals := make([]int64, n)
	for i := range keys {
		keys[i] = int64(i) * 3
		vals[i] = int64(i)
	}
	p, err := BulkLoad(testConfigC(ModeBatch), keys, vals)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if !p.Compressed() {
		t.Fatal("Compressed() = false")
	}
	if p.Len() != n {
		t.Fatalf("Len = %d, want %d", p.Len(), n)
	}
	for i := 0; i < n; i += 997 {
		if v, ok := p.Get(keys[i]); !ok || v != vals[i] {
			t.Fatalf("Get(%d) = %d,%v", keys[i], v, ok)
		}
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	st := p.Stats()
	if st.Compression.Pairs != n {
		t.Fatalf("Compression.Pairs = %d, want %d", st.Compression.Pairs, n)
	}
	if st.Compression.EncodedBytes == 0 {
		t.Fatal("Compression.EncodedBytes = 0 on a loaded store")
	}
	// The codec's reason to exist: a dense run must store far below the 16
	// raw bytes per pair of the uncompressed representation.
	if bpp := float64(st.Compression.EncodedBytes) / float64(n); bpp > 8 {
		t.Fatalf("%.2f bytes/pair, want <= 8", bpp)
	}
}

// TestCompressedScanBlocks checks the snapshot fast path: the streamed
// blocks decode back to exactly the store's content, in order, with
// strictly ascending block first keys.
func TestCompressedScanBlocks(t *testing.T) {
	p := newTestC(t, ModeBatch)
	rng := rand.New(rand.NewSource(3))
	model := make(map[int64]int64)
	for i := 0; i < 20_000; i++ {
		k := rng.Int63n(1 << 40)
		model[k] = int64(i)
		p.Put(k, int64(i))
	}
	p.Flush()

	var gotK, gotV []int64
	prevFirst := int64(-1 << 62)
	done := p.ScanBlocks(func(payload []byte, pairs int) bool {
		ks, vs, err := codec.DecodeBlock(payload, nil, nil, pairs)
		if err != nil {
			t.Fatalf("block decode: %v", err)
		}
		if len(ks) != pairs {
			t.Fatalf("block claims %d pairs, decoded %d", pairs, len(ks))
		}
		if ks[0] <= prevFirst {
			t.Fatalf("block first keys not ascending: %d after %d", ks[0], prevFirst)
		}
		prevFirst = ks[0]
		gotK = append(gotK, ks...)
		gotV = append(gotV, vs...)
		return true
	})
	if !done {
		t.Fatal("ScanBlocks stopped early")
	}
	if len(gotK) != len(model) {
		t.Fatalf("streamed %d pairs, model has %d", len(gotK), len(model))
	}
	for i, k := range gotK {
		if i > 0 && k <= gotK[i-1] {
			t.Fatalf("keys not ascending at %d", i)
		}
		if want, ok := model[k]; !ok || gotV[i] != want {
			t.Fatalf("pair %d/%d, model %d,%v", k, gotV[i], want, ok)
		}
	}

	// Early stop propagates.
	calls := 0
	if p.ScanBlocks(func([]byte, int) bool { calls++; return false }) {
		t.Fatal("ScanBlocks did not report the early stop")
	}
	if calls != 1 {
		t.Fatalf("fn called %d times after stopping, want 1", calls)
	}
}

// TestCompressedScanBlocksEmpty: an empty compressed store streams zero
// blocks and completes.
func TestCompressedScanBlocksEmpty(t *testing.T) {
	p := newTestC(t, ModeSync)
	if !p.ScanBlocks(func([]byte, int) bool { t.Fatal("block from empty store"); return false }) {
		t.Fatal("ScanBlocks returned false on empty store")
	}
}

// TestCompressedMatchesUncompressed drives the same operation sequence into
// a compressed and an uncompressed store and requires identical content —
// the representation must be invisible to every caller.
func TestCompressedMatchesUncompressed(t *testing.T) {
	for _, mode := range allModes() {
		cu := newTest(t, mode)
		cc := newTestC(t, mode)
		rng := rand.New(rand.NewSource(11))
		for i := 0; i < 20_000; i++ {
			k := rng.Int63n(1 << 12)
			if rng.Intn(4) == 0 {
				cu.Delete(k)
				cc.Delete(k)
			} else {
				v := rng.Int63()
				cu.Put(k, v)
				cc.Put(k, v)
			}
		}
		cu.Flush()
		cc.Flush()
		ku, kc := cu.Keys(), cc.Keys()
		if len(ku) != len(kc) {
			t.Fatalf("%v: %d keys uncompressed, %d compressed", mode, len(ku), len(kc))
		}
		for i := range ku {
			if ku[i] != kc[i] {
				t.Fatalf("%v: key %d differs: %d vs %d", mode, i, ku[i], kc[i])
			}
			vu, _ := cu.Get(ku[i])
			vc, ok := cc.Get(kc[i])
			if !ok || vu != vc {
				t.Fatalf("%v: value for %d differs: %d vs %d,%v", mode, ku[i], vu, vc, ok)
			}
		}
	}
}
