package core

import (
	"fmt"

	"pmago/internal/codec"
	"pmago/internal/rma"
)

// Validate checks the structural invariants of the whole concurrent PMA:
// per-chunk ordering and metadata, fence-key containment and tiling across
// gates, index separators mirroring the fences, and the global cardinality.
// It must be called while no updates are in flight (tests quiesce first);
// reads may continue.
func (p *PMA) Validate() error {
	st := p.state.Load()
	total := 0
	prevKey := int64(rma.KeyMin)
	var prevHi int64 // tiling check only applies from gate 1 onward
	for gi, g := range st.gates {
		g.lockShared()
		err := func() error {
			if g.invalid {
				return fmt.Errorf("gate %d invalid in current state", gi)
			}
			// Holding the latch shared excludes every exclusive holder,
			// so the seqlock version must be even: an odd version here
			// means some mutation path forgot its endExclusive bump and
			// optimistic readers would validate mid-update snapshots.
			if v := g.version.Load(); v&1 != 0 {
				return fmt.Errorf("gate %d seqlock version %d odd under shared latch", gi, v)
			}
			if g.idx != gi {
				return fmt.Errorf("gate %d has idx %d", gi, g.idx)
			}
			if gi == 0 && g.fenceLo != rma.KeyMin {
				return fmt.Errorf("gate 0 fenceLo = %d, want KeyMin", g.fenceLo)
			}
			if gi == len(st.gates)-1 && g.fenceHi != rma.KeyMax {
				return fmt.Errorf("last gate fenceHi = %d, want KeyMax", g.fenceHi)
			}
			if gi > 0 && g.fenceLo != prevHi+1 {
				return fmt.Errorf("gate %d fenceLo %d does not tile with previous fenceHi %d", gi, g.fenceLo, prevHi)
			}
			if sep := st.index.Get(gi); gi > 0 && sep != g.fenceLo {
				return fmt.Errorf("gate %d index separator %d != fenceLo %d", gi, sep, g.fenceLo)
			}
			// segKeys reads segment s's stored keys; compressed chunks
			// are decoded with the hardened decoder so corruption reports
			// as an error here instead of the latched paths' panic.
			var sc *cScratch
			if g.enc != nil {
				sc = g.cc.get()
				defer g.cc.put(sc)
			}
			segKeys := func(s int) ([]int64, error) {
				if g.segCard[s] == 0 {
					// Empty segments hold no payload to decode; the
					// empty-payload invariant (e.n == 0) is checked below.
					return nil, nil
				}
				if g.enc == nil {
					base := s * g.b
					return g.buf.Keys[base : base+g.segCard[s]], nil
				}
				e := g.enc[s]
				if e == nil || int(e.n) > len(e.data) {
					return nil, fmt.Errorf("gate %d segment %d: bad encoded payload", gi, s)
				}
				ks, vs, err := codec.DecodeBlock(e.data[:e.n], sc.ks[:0], sc.vs[:0], g.b)
				if err != nil {
					return nil, fmt.Errorf("gate %d segment %d: decode: %w", gi, s, err)
				}
				if len(ks) != g.segCard[s] || len(vs) != g.segCard[s] {
					return nil, fmt.Errorf("gate %d segment %d: decoded %d pairs, segCard %d", gi, s, len(ks), g.segCard[s])
				}
				return ks, nil
			}
			if g.enc != nil {
				var sum int64
				for s, e := range g.enc {
					if e == nil {
						continue
					}
					if g.segCard[s] == 0 && e.n != 0 {
						return fmt.Errorf("gate %d empty segment %d holds %d encoded bytes", gi, s, e.n)
					}
					sum += int64(e.n)
				}
				if tracked := g.encBytes.Load(); sum != tracked {
					return fmt.Errorf("gate %d encoded bytes %d != tracked %d", gi, sum, tracked)
				}
			}
			gtotal := 0
			inherit := int64(rma.KeyMax)
			for s := g.spg - 1; s >= 0; s-- {
				c := g.segCard[s]
				if c < 0 || c > g.b {
					return fmt.Errorf("gate %d segment %d cardinality %d", gi, s, c)
				}
				if c > 0 {
					ks, err := segKeys(s)
					if err != nil {
						return err
					}
					if g.smin[s] != ks[0] {
						return fmt.Errorf("gate %d segment %d cached min mismatch", gi, s)
					}
					inherit = g.smin[s]
				} else if g.smin[s] != inherit {
					return fmt.Errorf("gate %d empty segment %d min not inherited", gi, s)
				}
				gtotal += c
			}
			if gtotal != g.gcard {
				return fmt.Errorf("gate %d gcard %d != segment sum %d", gi, g.gcard, gtotal)
			}
			for s := 0; s < g.spg; s++ {
				ks, err := segKeys(s)
				if err != nil {
					return err
				}
				for i, k := range ks {
					if k <= prevKey {
						return fmt.Errorf("gate %d segment %d offset %d: key %d after %d", gi, s, i, k, prevKey)
					}
					if k < g.fenceLo || k > g.fenceHi {
						return fmt.Errorf("gate %d key %d outside fences [%d,%d]", gi, k, g.fenceLo, g.fenceHi)
					}
					prevKey = k
				}
			}
			total += gtotal
			prevHi = g.fenceHi
			return nil
		}()
		g.unlockShared()
		if err != nil {
			return err
		}
	}
	if int64(total) != st.card.Load() {
		return fmt.Errorf("element sum %d != recorded cardinality %d", total, st.card.Load())
	}
	return p.validateStats()
}

// validateStats cross-checks the live metrics' own invariants, so a broken
// instrumentation site (a double count, a missed drain observation) fails
// the existing structural test suites instead of silently skewing operator
// dashboards. Reads may still be in flight, so each check loads its
// bounded side first: the bounding counter is always incremented first on
// the instrumented paths, making the inequality stable under races.
func (p *PMA) validateStats() error {
	m := p.metrics
	if m == nil {
		return nil
	}
	if !p.cfg.DisableOptimisticReads && !raceEnabled {
		// A latched fallback only happens after failed probes, and the
		// failures are recorded before the latched serve.
		latched := m.GetLatched.Load()
		if fails := m.GetProbeFails.Load(); latched > fails {
			return fmt.Errorf("stats: latched gets %d > probe failures %d", latched, fails)
		}
		scanLatched := m.ScanChunksLatched.Load()
		if fails := m.ScanProbeFails.Load(); scanLatched > fails {
			return fmt.Errorf("stats: latched scan chunks %d > scan probe failures %d", scanLatched, fails)
		}
	}
	// Every absorbed op enters a combining queue, and every queue detach
	// observes its length into DrainSize — so, with the still-queued ops
	// added, the drained total bounds the absorbed one. (The converse
	// doesn't hold: drains also carry the seeding writer's own op and
	// re-queued batch inserts.)
	combined := m.CombinedOps.Load()
	drained := m.DrainSize.Snapshot().Sum + uint64(p.QueuedOps())
	if combined > drained {
		return fmt.Errorf("stats: combined ops %d > drained+queued ops %d", combined, drained)
	}
	return nil
}

// QueuedOps reports how many updates are currently sitting in combining
// queues (diagnostic; racy by nature).
func (p *PMA) QueuedOps() int {
	st := p.state.Load()
	n := 0
	for _, g := range st.gates {
		g.mu.Lock()
		if g.q != nil {
			n += len(g.q.ops)
		}
		g.mu.Unlock()
	}
	return n
}
