package core

import (
	"pmago/internal/epoch"
	"pmago/internal/rma"
)

// op is one pending update, as stored in a combining queue.
type op struct {
	key int64
	val int64
	del bool
}

// opQueue is the paper's Qw, reached through the gate's pQ pointer. It is
// guarded by the owning gate's mu.
type opQueue struct {
	ops []op
}

// lockResult describes how lockForWrite resolved.
type lockResult int

const (
	lockAcquired lockResult = iota // caller holds the gate exclusively
	lockEnqueued                   // op was absorbed into the active writer's queue
	lockInvalid                    // gate belongs to a retired state; reload
)

// lockForWrite implements the writer-side gate protocol of Section 3.5: if a
// combining queue is installed (an active writer, or a batch pending at the
// rebalancer), the update is appended and the call returns immediately;
// otherwise the caller acquires the latch exclusively. The caller installs
// its own queue only after verifying the fences (runWriter), matching the
// paper: a writer first reaches its gate, then publishes pQ.
func (p *PMA) lockForWrite(g *gate, o op) lockResult {
	async := p.cfg.Mode != ModeSync
	g.mu.Lock()
	g.wWaiting++ // readers yield while an update is pending here
	for {
		if g.invalid {
			g.wWaiting--
			g.cond.Broadcast()
			g.mu.Unlock()
			return lockInvalid
		}
		if async && g.q != nil {
			g.q.ops = append(g.q.ops, o)
			g.wWaiting--
			g.cond.Broadcast()
			g.mu.Unlock()
			if m := p.metrics; m != nil {
				m.CombinedOps.Inc()
			}
			return lockEnqueued
		}
		if g.lstate == lsFree && !g.rebWanted {
			g.wWaiting--
			g.lstate = lsWriter
			g.beginExclusive() // optimistic readers stand down until release
			g.mu.Unlock()
			return lockAcquired
		}
		g.cond.Wait()
	}
}

// releaseWriter drops the exclusive latch; in async modes the caller must
// have emptied and detached the queue first (drainQueue does).
func (g *gate) releaseWriter() {
	g.mu.Lock()
	g.endExclusive() // all mutations precede this; publish to optimistic readers
	g.lstate = lsFree
	g.cond.Broadcast()
	g.mu.Unlock()
}

// Put inserts or replaces k/v. In the asynchronous modes the update may be
// deferred: it is guaranteed to be applied before a Flush returns, but an
// immediately following Get may not observe it.
func (p *PMA) Put(k, v int64) {
	p.checkOpen()
	if k == rma.KeyMin || k == rma.KeyMax {
		panic("core: cannot store sentinel key")
	}
	if h := p.hook; h != nil {
		h.Put(k, v)
	}
	guard := p.epochs.Enter()
	defer guard.Leave()
	p.update(op{key: k, val: v}, guard)
}

// Delete removes k. The result reports whether an element was removed
// synchronously; a deferred (combined) delete returns true optimistically,
// matching the fire-and-forget semantics of Section 3.5.
func (p *PMA) Delete(k int64) bool {
	p.checkOpen()
	if k == rma.KeyMin || k == rma.KeyMax {
		return false
	}
	if h := p.hook; h != nil {
		h.Delete(k)
	}
	guard := p.epochs.Enter()
	defer guard.Leave()
	return p.update(op{key: k, del: true}, guard)
}

// update routes one update to its gate and applies it according to the
// configured mode. It restarts across resizes and walks neighbour gates when
// a racy index read landed it wrongly.
func (p *PMA) update(o op, guard *epoch.Guard) bool {
	for {
		st := p.state.Load()
		gi := clampGate(st.index.Lookup(o.key), len(st.gates))
	walk:
		for {
			g := st.gates[gi]
			switch p.lockForWrite(g, o) {
			case lockEnqueued:
				return true
			case lockInvalid:
				break walk
			}
			// Holding the latch: verify the fences (Section 3.2).
			if g.invalid {
				p.abandonWriter(g)
				break walk
			}
			if o.key < g.fenceLo && gi > 0 {
				p.abandonWriter(g)
				gi--
				continue
			}
			if o.key > g.fenceHi && gi < len(st.gates)-1 {
				p.abandonWriter(g)
				gi++
				continue
			}
			done, res := p.runWriter(st, g, o, guard)
			if done {
				return res
			}
			break walk // a global rebalance intervened; retry from the top
		}
		guard.Refresh()
	}
}

// abandonWriter releases a just-acquired exclusive latch (no queue was
// installed yet).
func (p *PMA) abandonWriter(g *gate) {
	g.releaseWriter()
}

// runWriter applies op o while holding gate g exclusively, then (in async
// modes) drains the combining queue. It returns done=false when a global
// rebalance was necessary and the caller must re-route the operation.
func (p *PMA) runWriter(st *state, g *gate, o op, guard *epoch.Guard) (done, result bool) {
	switch p.cfg.Mode {
	case ModeSync:
		return p.applySync(st, g, o)
	default:
		// Become the gate's active writer: publish pQ (waking writers
		// blocked in lockForWrite so they can combine), seed it with
		// our own op, and drain. Our op heads the queue, so its
		// outcome is determined by the state at latch acquisition.
		result = true
		if o.del {
			_, result = g.get(o.key)
		}
		g.mu.Lock()
		g.q = &opQueue{ops: []op{o}}
		g.cond.Broadcast()
		g.mu.Unlock()
		p.drainQueue(st, g, guard)
		return true, result
	}
}

// applySync is the baseline path: apply in place or transfer the latch to
// the rebalancer and wait (Section 3.3).
func (p *PMA) applySync(st *state, g *gate, o op) (done, result bool) {
	if o.del {
		deleted := g.del(o.key)
		if deleted {
			st.card.Add(-1)
		}
		g.releaseWriter()
		p.maybeRequestShrink(st)
		return true, deleted
	}
	switch g.put(st, o.key, o.val) {
	case putReplaced:
		g.releaseWriter()
		return true, true
	case putInserted:
		st.card.Add(1)
		g.releaseWriter()
		return true, true
	default: // putNeedsGlobal
		p.requestGlobalAndWait(st, g, 1)
		return false, false
	}
}

// requestGlobalAndWait transfers the caller's exclusive latch to the
// rebalancer, asks it to rebalance around g, and blocks until done.
func (p *PMA) requestGlobalAndWait(st *state, g *gate, pending int) {
	req := &request{
		kind:    reqRebalance,
		st:      st,
		g:       g,
		gen:     g.rebGen,
		pending: pending,
		done:    make(chan struct{}),
	}
	g.transferToReb()
	p.reb.submit(req)
	<-req.done
}

// maybeRequestShrink notifies the rebalancer (once) when occupancy dropped
// below the 50% downsizing threshold of the evaluation configuration.
func (p *PMA) maybeRequestShrink(st *state) {
	if st.numSegs <= st.spg {
		return
	}
	if st.card.Load()*2 >= int64(st.slots()) {
		return
	}
	if p.shrinkPending.Swap(true) {
		return
	}
	p.reb.submit(&request{kind: reqShrink, st: st})
}

func clampGate(gi, n int) int {
	if gi < 0 {
		return 0
	}
	if gi >= n {
		return n - 1
	}
	return gi
}
