package core

import (
	"pmago/internal/codec"
	"pmago/internal/rma"
)

// ScanBlocks streams the store's content as codec-encoded delta blocks in
// ascending key order — the snapshot fast path for compressed stores: each
// segment's payload is copied verbatim under the shared latch (no decode,
// no per-pair work) and handed to fn outside every latch, so a checkpoint
// moves encoded bytes end-to-end from chunk to disk. Panics on an
// uncompressed store; callers gate on Compressed().
//
// Like Scan, the walk rides fence boundaries and restarts on a resize; a
// restart can land mid-gate, in which case that one gate is decoded,
// filtered to the unemitted suffix and re-encoded (rare, and bounded to a
// single gate per restart). Block first keys are strictly ascending across
// the whole stream. Returns false if fn stopped the scan.
func (p *PMA) ScanBlocks(fn func(payload []byte, pairs int) bool) bool {
	p.checkOpen()
	if p.cctx == nil {
		panic("core: ScanBlocks on an uncompressed store")
	}
	guard := p.epochs.Enter()
	defer guard.Leave()
	var (
		scratch []byte // this gate's payloads, copied under the latch
		offs    []int  // start of each payload within scratch
		counts  []int  // pair count of each payload
	)
	from := int64(rma.KeyMin + 1)
	for {
		st := p.state.Load()
		gi := clampGate(st.index.Lookup(from), len(st.gates))
	walk:
		for {
			g := st.gates[gi]
			g.lockShared()
			if g.invalid {
				g.unlockShared()
				break walk
			}
			if from < g.fenceLo && gi > 0 {
				g.unlockShared()
				gi--
				continue
			}
			if from > g.fenceHi && gi < len(st.gates)-1 {
				g.unlockShared()
				gi++
				continue
			}
			scratch, offs, counts = scratch[:0], offs[:0], counts[:0]
			if g.fenceLo >= from || from == rma.KeyMin+1 {
				// Every key this gate stores is >= from: copy the encoded
				// segments verbatim.
				for s := 0; s < g.spg; s++ {
					if g.segCard[s] == 0 {
						continue
					}
					e := g.enc[s]
					offs = append(offs, len(scratch))
					counts = append(counts, g.segCard[s])
					scratch = append(scratch, e.data[:e.n]...)
				}
			} else {
				// A resize restarted the walk mid-gate: drop the already
				// emitted prefix by decoding, filtering and re-encoding
				// this one gate.
				sc := p.cctx.get()
				for s := g.findSeg(from); s < g.spg; s++ {
					if g.segCard[s] == 0 {
						continue
					}
					ks, vs := g.decodeSeg(s, sc)
					i := 0
					if ks[0] < from {
						i = searchKeys(ks, from)
					}
					if i == len(ks) {
						continue
					}
					offs = append(offs, len(scratch))
					counts = append(counts, len(ks)-i)
					scratch = codec.AppendBlock(scratch, ks[i:], vs[i:])
				}
				p.cctx.put(sc)
			}
			fenceHi := g.fenceHi
			g.unlockShared()
			for i := range offs {
				end := len(scratch)
				if i+1 < len(offs) {
					end = offs[i+1]
				}
				if !fn(scratch[offs[i]:end], counts[i]) {
					return false
				}
			}
			if fenceHi >= rma.KeyMax-1 {
				return true
			}
			from = fenceHi + 1
			if gi++; gi >= len(st.gates) {
				return true
			}
		}
		guard.Refresh()
	}
}
