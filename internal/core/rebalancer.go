package core

import (
	"sort"
	"sync"
	"time"

	"pmago/internal/codec"
	"pmago/internal/obs"
	"pmago/internal/rewire"
	"pmago/internal/rma"
)

// reqKind enumerates the work items the rebalancer master serves.
type reqKind int

const (
	reqRebalance    reqKind = iota // a writer's insert needs a multi-gate window
	reqBatch                       // a gate's combining queue needs a global merge
	reqShrink                      // occupancy dropped below the downsize threshold
	reqFlushDelayed                // force all delayed batches through (Flush)
	reqBarrier                     // no-op: completes once everything ahead of it ran
)

// request is one unit of work submitted to the master.
type request struct {
	kind      reqKind
	st        *state
	g         *gate
	gen       uint64    // g.rebGen at submission; stale requests complete vacuously
	pending   int       // inserts the rebalanced window must make room for
	notBefore time.Time // batch rate limiting (tdelay); zero = immediate
	ins       []op      // a synchronous batch's key-sorted inserts (reqBatch);
	// carried on the request rather than the queue so they supersede any op
	// redistributed into the gate's queue before pickup
	done chan struct{}
}

// rebalancer is the centralised service of Section 3.3: a single master
// goroutine that owns all multi-gate coordination, plus a pool of workers
// that redistribute partitions of a window in parallel.
type rebalancer struct {
	p       *PMA
	ch      chan *request
	stopCh  chan struct{}
	doneCh  chan struct{}
	workCh  chan func()
	workers sync.WaitGroup

	// master-only state
	delayed  []*request
	timer    *time.Timer
	scratchK []int64
	scratchV []int64
}

func newRebalancer(p *PMA, workers int) *rebalancer {
	r := &rebalancer{
		p:      p,
		ch:     make(chan *request, 4096),
		stopCh: make(chan struct{}),
		doneCh: make(chan struct{}),
		workCh: make(chan func(), workers),
	}
	for i := 0; i < workers; i++ {
		r.workers.Add(1)
		go func() {
			defer r.workers.Done()
			for f := range r.workCh {
				f()
			}
		}()
	}
	go r.run()
	return r
}

// submit hands a request to the master. Callers must have released or
// transferred every gate latch they hold: the master never blocks on a
// latch in state transferred, so latch-free submitters guarantee progress.
func (r *rebalancer) submit(req *request) {
	select {
	case r.ch <- req:
	case <-r.stopCh:
		r.complete(req)
	}
}

func (r *rebalancer) complete(req *request) {
	if req.done != nil {
		close(req.done)
	}
}

func (r *rebalancer) close() {
	close(r.stopCh)
	<-r.doneCh
	close(r.workCh)
	r.workers.Wait()
}

// run is the master loop: it serves requests in order, parking rate-limited
// batches until their tdelay expires.
func (r *rebalancer) run() {
	defer close(r.doneCh)
	for {
		var timerC <-chan time.Time
		if len(r.delayed) > 0 {
			i := r.earliestDelayed()
			d := time.Until(r.delayed[i].notBefore)
			if d <= 0 {
				req := r.delayed[i]
				r.delayed = append(r.delayed[:i], r.delayed[i+1:]...)
				r.handle(req)
				continue
			}
			if r.timer == nil {
				r.timer = time.NewTimer(d)
			} else {
				if !r.timer.Stop() {
					select {
					case <-r.timer.C:
					default:
					}
				}
				r.timer.Reset(d)
			}
			timerC = r.timer.C
		}
		select {
		case req := <-r.ch:
			r.dispatch(req)
		case <-timerC:
		case <-r.stopCh:
			r.shutdown()
			return
		}
	}
}

func (r *rebalancer) dispatch(req *request) {
	switch {
	case req.kind == reqFlushDelayed:
		for len(r.delayed) > 0 {
			d := r.delayed[0]
			r.delayed = r.delayed[1:]
			r.handle(d)
		}
		r.complete(req)
	case req.kind == reqBatch && !req.notBefore.IsZero() && time.Now().Before(req.notBefore):
		r.delayed = append(r.delayed, req)
	default:
		r.handle(req)
	}
}

func (r *rebalancer) earliestDelayed() int {
	best := 0
	for i := 1; i < len(r.delayed); i++ {
		if r.delayed[i].notBefore.Before(r.delayed[best].notBefore) {
			best = i
		}
	}
	return best
}

// shutdown applies everything still pending so accepted updates are not
// lost: delayed batches and channel requests are drained together, since
// handling either can redistribute displaced ops into new delayed entries.
func (r *rebalancer) shutdown() {
	for {
		if len(r.delayed) > 0 {
			d := r.delayed[0]
			r.delayed = r.delayed[1:]
			r.handle(d)
			continue
		}
		select {
		case req := <-r.ch:
			if req.kind == reqFlushDelayed {
				r.complete(req)
				continue
			}
			r.handle(req)
		default:
			return
		}
	}
}

// handle serves one request; updates that had to be re-routed because
// fences moved are redistributed into their new gates' combining queues in
// bulk (applying them one by one could trigger a global rebalance per op).
// Redistribution happens before the requester is released so that by the
// time a synchronous waiter (requestGlobalAndWait, handOffBatch with wait)
// resumes, every displaced op is at least parked in a queue a later batch
// will absorb.
func (r *rebalancer) handle(req *request) {
	leftovers := r.process(req)
	if len(leftovers) > 0 {
		r.redistribute(leftovers)
	}
	r.complete(req)
}

// redistribute routes misdirected ops to their current gates and parks them
// in combining queues, scheduling immediate batch requests to apply them.
// Fence keys only move under this (single) master goroutine, so routing
// reads them without latches.
//
// Parked ops carry no version: if a later update to the same key lands at
// the new gate before the scheduled batch drains, the replay applies the
// older value — the documented unordered caveat for concurrent updates.
// Batch callers stay ordered despite this: they absorb same-gate queues,
// filter their own keys from leftovers, and barrier the master after any
// hand-off, so none of their ops is still parked when the call returns.
func (r *rebalancer) redistribute(ops []op) {
	p := r.p
	st := p.state.Load()
	groups := make(map[int][]op)
	for _, o := range ops {
		gi := clampGate(st.index.Lookup(o.key), len(st.gates))
		for o.key < st.gates[gi].fenceLo && gi > 0 {
			gi--
		}
		for o.key > st.gates[gi].fenceHi && gi < len(st.gates)-1 {
			gi++
		}
		groups[gi] = append(groups[gi], o)
	}
	for gi, group := range groups {
		g := st.gates[gi]
		g.mu.Lock()
		if g.q != nil {
			// An active writer or a pending batch will absorb them.
			g.q.ops = append(g.q.ops, group...)
			g.mu.Unlock()
			continue
		}
		g.q = &opQueue{ops: group}
		g.pendingBatch = true
		g.cond.Broadcast()
		g.mu.Unlock()
		// Schedule through the master's own pending list (never through
		// the channel: we are the master, and the channel may be full).
		r.delayed = append(r.delayed, &request{kind: reqBatch, st: st, g: g})
	}
}

// process performs the request's structural work, returning ops that must be
// re-routed through the normal update path.
func (r *rebalancer) process(req *request) []op {
	p := r.p
	if req.kind == reqBarrier {
		// Nothing to do: the master reads its channel only when no due
		// delayed batch remains, so reaching this request means every
		// zero-delay redistribution queued before it has been applied.
		return nil
	}
	if req.kind == reqShrink {
		r.maybeShrink()
		p.shrinkPending.Store(false)
		return nil
	}
	st := p.state.Load()
	if req.st != st {
		// The array was resized since submission: queues were absorbed
		// into the rebuild and waiting writers retry against the new
		// state. Request-carried batch inserts were NOT in any queue, so
		// they re-route into the current state's gates.
		return req.ins
	}
	g := req.g
	g.rebLock()
	if g.invalid {
		g.rebUnlock()
		return req.ins
	}
	if req.kind == reqRebalance && g.rebGen != req.gen {
		// A covering rebalance already ran; the writer just retries.
		g.rebUnlock()
		return nil
	}

	// Absorb the gate's combining queue into this job. The request's own
	// batch inserts go after the queue ops: compactOps keeps the later op
	// per key, so the synchronous batch supersedes anything older that was
	// redistributed into the queue between hand-off and pickup.
	ops := r.detachQueue(g)
	ops = append(ops, req.ins...)
	ins, dels, leftovers := compactOps(ops, g.fenceLo, g.fenceHi)

	// Batch pass one: deletions only lower density, apply them in place.
	removed := int64(0)
	for _, dk := range dels {
		if g.del(dk) {
			removed++
		}
	}
	if removed > 0 {
		st.card.Add(-removed)
	}

	if req.kind == reqBatch {
		if len(ins) == 0 {
			g.rebUnlock()
			return leftovers
		}
		// Deletions may have freed enough space to keep the batch local.
		if delta, ok := g.mergeLocal(st, ins); ok {
			st.card.Add(int64(delta))
			g.rebUnlock()
			return leftovers
		}
	}

	// Window search above the chunk level (Section 3.3): expand aligned
	// gate ranges upward through the calibrator tree, latching the newly
	// covered gates along the way. Only the master ever holds more than
	// one latch. The search is timed as part of the rebalance: escalation
	// cost is what the window histogram is meant to explain. Only the
	// (single) master goroutine reaches this code, so the clock reads
	// cannot contend.
	var t0 time.Time
	if p.metrics != nil || p.events != nil {
		t0 = time.Now()
	}
	glo, ghi := g.idx, g.idx+1
	pending := req.pending + len(ins)
	chunkLevel := log2(st.spg) + 1
	found := false
	for k := chunkLevel + 1; k <= st.height; k++ {
		wSegs := 1 << (k - 1)
		wGates := wSegs / st.spg
		nlo := g.idx &^ (wGates - 1)
		nhi := nlo + wGates
		for i := nlo; i < glo; i++ {
			st.gates[i].rebLock()
		}
		for i := ghi; i < nhi; i++ {
			st.gates[i].rebLock()
		}
		glo, ghi = nlo, nhi
		cardW := 0
		for i := glo; i < ghi; i++ {
			cardW += st.gates[i].gcard
		}
		_, tau := st.thresholds(k, st.height)
		if float64(cardW+pending) <= tau*float64(wSegs*st.b) && cardW+pending <= wSegs*(st.b-1) {
			found = true
			break
		}
	}
	if found {
		r.executeRebalance(st, glo, ghi, ins)
		for i := glo; i < ghi; i++ {
			st.gates[i].rebUnlock()
		}
		if m := p.metrics; m != nil {
			m.GlobalRebalances.Inc()
			m.RebalanceWindow.Observe(uint64(ghi - glo))
			m.RebalanceNanos.ObserveDuration(time.Since(t0))
		}
		if h := p.events; h != nil {
			h.OnRebalance(obs.RebalanceEvent{Gates: ghi - glo, Duration: time.Since(t0)})
		}
	} else {
		r.resize(st, glo, ghi, ins, true)
	}
	return leftovers
}

func (r *rebalancer) detachQueue(g *gate) []op {
	g.mu.Lock()
	var ops []op
	if g.q != nil {
		ops = g.q.ops
		g.q = nil
		g.pendingBatch = false
	}
	g.mu.Unlock()
	if m := r.p.metrics; m != nil && len(ops) > 0 {
		m.DrainSize.Observe(uint64(len(ops)))
	}
	return ops
}

// --- data movement ---

// elemSource provides elements in key order for the fill phase.
type elemSource interface {
	copyInto(dk, dv []int64)
}

// gateCursor reads the window's existing elements in key order directly from
// the (untouched) source buffers — the single-copy path that memory rewiring
// enables: destinations are spare buffers, sources stay intact until the
// publish step swaps them.
type gateCursor struct {
	st  *state
	ghi int
	g   int // current absolute gate
	s   int // current segment within gate
	off int // offset within segment

	// Compressed sources: the decode of the current segment, cached so the
	// forward-only walk decodes each source segment exactly once.
	ck, cv []int64
	cg, cs int // segment identity of the cache; -1 = none
}

func newGateCursor(st *state, glo, ghi, skip int) *gateCursor {
	c := &gateCursor{st: st, ghi: ghi, g: glo, cg: -1, cs: -1}
	for skip > 0 && c.g < ghi {
		gc := st.gates[c.g].gcard
		if skip >= gc {
			skip -= gc
			c.g++
			continue
		}
		g := st.gates[c.g]
		for {
			sc := g.segCard[c.s]
			if skip >= sc {
				skip -= sc
				c.s++
				continue
			}
			c.off = skip
			return c
		}
	}
	return c
}

func (c *gateCursor) copyInto(dk, dv []int64) {
	need := len(dk)
	pos := 0
	for pos < need {
		g := c.st.gates[c.g]
		if c.s >= g.spg {
			c.g++
			c.s, c.off = 0, 0
			continue
		}
		sc := g.segCard[c.s]
		run := sc - c.off
		if run <= 0 {
			c.s++
			c.off = 0
			continue
		}
		if run > need-pos {
			run = need - pos
		}
		if g.enc != nil {
			c.ensureDecoded(g)
			copy(dk[pos:pos+run], c.ck[c.off:c.off+run])
			copy(dv[pos:pos+run], c.cv[c.off:c.off+run])
		} else {
			base := c.s*g.b + c.off
			copy(dk[pos:pos+run], g.buf.Keys[base:base+run])
			copy(dv[pos:pos+run], g.buf.Vals[base:base+run])
		}
		c.off += run
		pos += run
	}
}

// ensureDecoded fills the cursor's cache with the current segment's pairs.
func (c *gateCursor) ensureDecoded(g *gate) {
	if c.cg == c.g && c.cs == c.s {
		return
	}
	if c.ck == nil {
		c.ck = make([]int64, 0, g.b)
		c.cv = make([]int64, 0, g.b)
	}
	c.ck, c.cv = g.decodeSegInto(c.s, c.ck[:0], c.cv[:0])
	c.cg, c.cs = c.g, c.s
}

// sliceSource feeds elements from the master's scratch arrays.
type sliceSource struct {
	ks, vs []int64
	off    int
}

func (s *sliceSource) copyInto(dk, dv []int64) {
	n := len(dk)
	copy(dk, s.ks[s.off:s.off+n])
	copy(dv, s.vs[s.off:s.off+n])
	s.off += n
}

// destPlan is the fully built replacement content for one gate, produced by
// a worker and published by the master.
type destPlan struct {
	buf      *rewire.Buffer
	enc      []*encSeg // compressed stores: encoded segments instead of buf
	encBytes int64     // sum of the enc payload lengths
	segCard  []int
	smin     []int64
	gcard    int
	firstKey int64
	hasKey   bool
}

// fillChunk copies elements into a fresh buffer laid out per segCounts and
// derives the chunk metadata. It is shared by the rebalancer's workers and
// by BulkLoad's direct construction.
func (p *PMA) fillChunk(segCounts []int, b int, src elemSource) destPlan {
	if p.cctx != nil {
		return p.fillChunkC(segCounts, src)
	}
	spg := len(segCounts)
	pl := destPlan{
		buf:     p.pool.Get(),
		segCard: make([]int, spg),
		smin:    make([]int64, spg),
	}
	for j, c := range segCounts {
		base := j * b
		if c > 0 {
			src.copyInto(pl.buf.Keys[base:base+c], pl.buf.Vals[base:base+c])
		}
		pl.segCard[j] = c
		pl.gcard += c
	}
	inherit := int64(rma.KeyMax)
	for j := spg - 1; j >= 0; j-- {
		if pl.segCard[j] > 0 {
			pl.smin[j] = pl.buf.Keys[j*b]
			inherit = pl.smin[j]
		} else {
			pl.smin[j] = inherit
		}
	}
	if pl.gcard > 0 {
		pl.firstKey = inherit // after the loop, inherit is the chunk minimum
		pl.hasKey = true
	}
	return pl
}

// fillChunkC is fillChunk for compressed stores: each destination segment is
// staged through a scratch decode of its pairs and encoded exactly-sized —
// rebalanced chunks carry no slack; growth slack is added by the first
// in-place rewrite that outgrows a payload (encodeSegPairs).
func (p *PMA) fillChunkC(segCounts []int, src elemSource) destPlan {
	spg := len(segCounts)
	pl := destPlan{
		segCard: make([]int, spg),
		smin:    make([]int64, spg),
		enc:     make([]*encSeg, spg),
	}
	sc := p.cctx.get()
	defer p.cctx.put(sc)
	for j, c := range segCounts {
		if c > 0 {
			ks, vs := sc.ks[:c], sc.vs[:c]
			src.copyInto(ks, vs)
			payload := codec.AppendBlock(sc.eb[:0], ks, vs)
			data := make([]byte, len(payload))
			copy(data, payload)
			pl.enc[j] = &encSeg{data: data, n: int32(len(payload))}
			pl.encBytes += int64(len(payload))
			pl.smin[j] = ks[0]
		}
		pl.segCard[j] = c
		pl.gcard += c
	}
	inherit := int64(rma.KeyMax)
	for j := spg - 1; j >= 0; j-- {
		if pl.segCard[j] > 0 {
			inherit = pl.smin[j]
		} else {
			pl.smin[j] = inherit
		}
	}
	if pl.gcard > 0 {
		pl.firstKey = inherit
		pl.hasKey = true
	}
	if m := p.metrics; m != nil && pl.encBytes > 0 {
		m.ReencodeBytes.Add(uint64(pl.encBytes))
	}
	return pl
}

// parallel runs the tasks on the worker pool, executing inline when the pool
// is saturated, and waits for all of them.
func (r *rebalancer) parallel(tasks []func()) {
	var wg sync.WaitGroup
	wg.Add(len(tasks))
	for _, t := range tasks {
		t := t
		select {
		case r.workCh <- func() { defer wg.Done(); t() }:
		default:
			t()
			wg.Done()
		}
	}
	wg.Wait()
}

// executeRebalance redistributes gates [glo, ghi) evenly (the traditional
// policy used for all global rebalances), merging the optional batch inserts
// in. The master holds all the window's latches.
func (r *rebalancer) executeRebalance(st *state, glo, ghi int, ins []op) {
	m := ghi - glo
	nSegs := m * st.spg
	plans := make([]destPlan, m)

	if len(ins) == 0 {
		total := 0
		for i := glo; i < ghi; i++ {
			total += st.gates[i].gcard
		}
		counts := rma.EvenCounts(total, nSegs)
		prefix := 0
		tasks := make([]func(), m)
		for i := 0; i < m; i++ {
			i := i
			segCounts := counts[i*st.spg : (i+1)*st.spg]
			skip := prefix
			for _, c := range segCounts {
				prefix += c
			}
			tasks[i] = func() {
				cur := newGateCursor(st, glo, ghi, skip)
				plans[i] = r.p.fillChunk(segCounts, st.b, cur)
			}
		}
		r.parallel(tasks)
		r.publish(st, glo, ghi, plans)
		return
	}

	// Merge path: materialise (existing ∪ inserts) into scratch in
	// parallel per source gate, then fill destinations from scratch.
	before := 0
	for i := glo; i < ghi; i++ {
		before += st.gates[i].gcard
	}
	total := r.materialize(st, glo, ghi, ins, nil)
	counts := rma.EvenCounts(total, nSegs)
	tasks := make([]func(), m)
	prefix := 0
	for i := 0; i < m; i++ {
		i := i
		segCounts := counts[i*st.spg : (i+1)*st.spg]
		skip := prefix
		for _, c := range segCounts {
			prefix += c
		}
		tasks[i] = func() {
			src := &sliceSource{ks: r.scratchK, vs: r.scratchV, off: skip}
			plans[i] = r.p.fillChunk(segCounts, st.b, src)
		}
	}
	r.parallel(tasks)
	st.card.Add(int64(total - before))
	r.publish(st, glo, ghi, plans)
}

// materialize merges each source gate's elements with its slice of the
// sorted batch inserts (minus deletes, when given) into the master's scratch
// arrays, in parallel, and returns the total element count.
func (r *rebalancer) materialize(st *state, glo, ghi int, ins []op, dels []int64) int {
	m := ghi - glo
	counts := make([]int, m)
	countTasks := make([]func(), m)
	for i := 0; i < m; i++ {
		i := i
		g := st.gates[glo+i]
		gIns := opRange(ins, g.fenceLo, g.fenceHi)
		gDels := keyRange(dels, g.fenceLo, g.fenceHi)
		countTasks[i] = func() { counts[i] = countMerged(g, gIns, gDels) }
	}
	r.parallel(countTasks)

	total := 0
	offsets := make([]int, m)
	for i, c := range counts {
		offsets[i] = total
		total += c
	}
	if cap(r.scratchK) < total {
		r.scratchK = make([]int64, total)
		r.scratchV = make([]int64, total)
	}
	r.scratchK = r.scratchK[:total]
	r.scratchV = r.scratchV[:total]

	writeTasks := make([]func(), m)
	for i := 0; i < m; i++ {
		i := i
		g := st.gates[glo+i]
		gIns := opRange(ins, g.fenceLo, g.fenceHi)
		gDels := keyRange(dels, g.fenceLo, g.fenceHi)
		off, end := offsets[i], offsets[i]+counts[i]
		writeTasks[i] = func() {
			mergeInto(r.scratchK[off:end], r.scratchV[off:end], g, gIns, gDels)
		}
	}
	r.parallel(writeTasks)
	return total
}

// publish swaps the freshly built buffers into the window's gates, updates
// fence keys right-to-left (interior boundaries move to the first key now
// stored in each gate; the window's outer boundaries are preserved), mirrors
// the new separators into the static index, and recycles the old buffers —
// the O(1) "rewiring" step. Every gate in the window is rebLock'd, so its
// seqlock version has been odd since before the first buffer or fence move:
// an optimistic reader that sampled the pre-rebalance version cannot
// validate across any part of this swap, and one that samples afterwards
// sees the completed window.
func (r *rebalancer) publish(st *state, glo, ghi int, plans []destPlan) {
	now := time.Now().UnixNano()
	nextLo := int64(rma.KeyMax)
	if ghi < len(st.gates) {
		nextLo = st.gates[ghi].fenceLo
	}
	for i := ghi - 1; i >= glo; i-- {
		g := st.gates[i]
		pl := plans[i-glo]
		old := g.buf
		g.buf = pl.buf
		g.enc = pl.enc
		g.encBytes.Store(pl.encBytes)
		g.segCard = pl.segCard
		g.smin = pl.smin
		g.gcard = pl.gcard
		r.p.pool.Put(old)
		if nextLo == rma.KeyMax {
			g.fenceHi = rma.KeyMax
		} else {
			g.fenceHi = nextLo - 1
		}
		if i > glo {
			lo := nextLo
			if pl.hasKey {
				lo = pl.firstKey
			}
			g.fenceLo = lo
			st.index.Set(i, lo)
		}
		g.rebGen++
		g.lastReb = now
		nextLo = g.fenceLo
	}
}

// --- resizes (Section 3.4) ---

// resize rebuilds the whole sparse array at a new capacity, absorbing every
// combining queue, publishes the new state and invalidates the old gates.
// The master already holds latches for gates [heldLo, heldHi); resize
// acquires the rest, and releases everything before returning.
func (r *rebalancer) resize(st *state, heldLo, heldHi int, ins []op, grow bool) {
	p := r.p
	// Timed from here (latching the world is part of the cost); the
	// abandoned-shrink early return below deliberately counts nothing.
	var t0 time.Time
	if p.metrics != nil || p.events != nil {
		t0 = time.Now()
	}
	for i := 0; i < heldLo; i++ {
		st.gates[i].rebLock()
	}
	for i := heldHi; i < len(st.gates); i++ {
		st.gates[i].rebLock()
	}

	// Fold every pending queue into the rebuild. Request inserts are
	// older than queued ops, so they are compacted first.
	allOps := make([]op, 0, len(ins))
	for _, o := range ins {
		allOps = append(allOps, o)
	}
	for _, g := range st.gates {
		allOps = append(allOps, r.detachQueue(g)...)
	}
	finalIns, finalDels, _ := compactOps(allOps, rma.KeyMin+1, rma.KeyMax-1)

	total := r.materialize(st, 0, len(st.gates), finalIns, finalDels)

	target := (p.cfg.RhoRoot + p.cfg.TauRoot) / 2
	newSegs := nextPow2(ceilDiv(max(total, 1), int(float64(st.b)*target)))
	if newSegs < st.spg {
		newSegs = st.spg
	}
	if grow {
		if newSegs < st.numSegs*2 {
			newSegs = st.numSegs * 2
		}
	} else if newSegs >= st.numSegs || float64(total) > (p.cfg.TauRoot-0.05)*float64(newSegs*st.b) {
		// The shrink is no longer worthwhile (pending inserts absorbed
		// from the combining queues inflated the count, or the margin
		// guard against grow/shrink thrash fired). The queues are
		// already detached, so their updates MUST be applied: rebuild
		// in place (a whole-array rebalance merging the batch) unless
		// nothing was absorbed, in which case releasing is safe.
		if len(finalIns) == 0 && len(finalDels) == 0 {
			for _, g := range st.gates {
				g.rebUnlock()
			}
			return
		}
		if newSegs < st.numSegs {
			newSegs = st.numSegs
		}
	}

	newSt := p.newState(newSegs / st.spg)
	counts := rma.EvenCounts(total, newSegs)
	mNew := len(newSt.gates)
	plans := make([]destPlan, mNew)
	tasks := make([]func(), mNew)
	prefix := 0
	for i := 0; i < mNew; i++ {
		i := i
		segCounts := counts[i*st.spg : (i+1)*st.spg]
		skip := prefix
		for _, c := range segCounts {
			prefix += c
		}
		tasks[i] = func() {
			src := &sliceSource{ks: r.scratchK, vs: r.scratchV, off: skip}
			plans[i] = r.p.fillChunk(segCounts, st.b, src)
		}
	}
	r.parallel(tasks)

	// Install plans and fences on the new state (not yet visible).
	p.installState(newSt, plans, total)

	p.state.Store(newSt)

	// Invalidate and release the old gates; waiting clients observe the
	// invalid flag and restart against the new state in a fresh epoch.
	//
	// Ordering matters for the optimistic readers: invalid is set before
	// endExclusive bumps the version to even, and the buffer is recycled
	// only after the bump. Every gate here has been rebLock'd (version
	// odd) since before the new state was published, so the only even
	// version an optimistic reader can ever validate against a retired
	// gate is this final one — and that snapshot carries invalid=true, so
	// the read is discarded and the reader restarts on the new state. A
	// racy read of the buffer after the pool re-issues it to a new gate
	// therefore can never be returned to a caller (the retired-gate
	// regression test in stress_test.go pins this down).
	for _, g := range st.gates {
		g.mu.Lock()
		g.invalid = true
		g.endExclusive()
		g.lstate = lsFree
		g.cond.Broadcast()
		g.mu.Unlock()
		p.pool.Put(g.buf)
	}
	p.epochs.Retire(func() {})
	if m := p.metrics; m != nil {
		m.Resizes.Inc()
		// A resize is the top escalation level: its window is the whole
		// (old) table, so it lands in the window histogram's tail.
		m.RebalanceWindow.Observe(uint64(len(st.gates)))
		m.ResizeNanos.ObserveDuration(time.Since(t0))
	}
	if h := p.events; h != nil {
		h.OnRebalance(obs.RebalanceEvent{Gates: len(st.gates), Resize: true, Duration: time.Since(t0)})
	}
}

// installState wires freshly built chunk plans into a not-yet-published
// state: buffers, per-chunk metadata, fence keys (right to left, each
// interior boundary at the first key its gate stores) and the mirroring
// index separators. Shared by resize and BulkLoad's direct construction.
func (p *PMA) installState(st *state, plans []destPlan, total int) {
	nextLo := int64(rma.KeyMax)
	for i := len(st.gates) - 1; i >= 0; i-- {
		g := st.gates[i]
		p.pool.Put(g.buf) // replace the placeholder buffer from newState
		pl := plans[i]
		g.buf = pl.buf
		g.enc = pl.enc
		g.encBytes.Store(pl.encBytes)
		g.segCard = pl.segCard
		g.smin = pl.smin
		g.gcard = pl.gcard
		if nextLo == rma.KeyMax {
			g.fenceHi = rma.KeyMax
		} else {
			g.fenceHi = nextLo - 1
		}
		lo := nextLo
		if pl.hasKey {
			lo = pl.firstKey
		}
		if i == 0 {
			lo = rma.KeyMin
		}
		g.fenceLo = lo
		st.index.Set(i, lo)
		nextLo = lo
	}
	st.card.Store(int64(total))
}

// maybeShrink re-validates the downsize condition and performs the resize.
// The cheap pre-check on the applied cardinality avoids latching the world
// (and detaching every combining queue) when the shrink could not possibly
// materialise — e.g. right after a growth whose power-of-two rounding left
// the density just under 50%.
func (r *rebalancer) maybeShrink() {
	p := r.p
	st := p.state.Load()
	if st.numSegs <= st.spg {
		return
	}
	card := int(st.card.Load())
	if card*2 >= st.slots() {
		return
	}
	target := (p.cfg.RhoRoot + p.cfg.TauRoot) / 2
	needSegs := nextPow2(ceilDiv(max(card, 1), int(float64(st.b)*target)))
	if needSegs < st.spg {
		needSegs = st.spg
	}
	if needSegs >= st.numSegs || float64(card) > (p.cfg.TauRoot-0.05)*float64(needSegs*st.b) {
		return
	}
	r.resize(st, 0, 0, nil, false)
}

// --- merge helpers ---

// opRange returns the subslice of key-sorted ops with keys in [lo, hi].
func opRange(ops []op, lo, hi int64) []op {
	a := sort.Search(len(ops), func(i int) bool { return ops[i].key >= lo })
	b := sort.Search(len(ops), func(i int) bool { return ops[i].key > hi })
	return ops[a:b]
}

// keyRange returns the subslice of sorted keys in [lo, hi].
func keyRange(ks []int64, lo, hi int64) []int64 {
	a := sort.Search(len(ks), func(i int) bool { return ks[i] >= lo })
	b := sort.Search(len(ks), func(i int) bool { return ks[i] > hi })
	return ks[a:b]
}

// countMerged computes |(existing \ dels) ∪ ins| for one gate without
// allocating. ins and dels are key-disjoint (compactOps keeps one final op
// per key).
func countMerged(g *gate, ins []op, dels []int64) int {
	count := g.gcard + len(ins)
	i, j := 0, 0
	forEachKey(g, func(k int64) {
		for i < len(ins) && ins[i].key < k {
			i++
		}
		if i < len(ins) && ins[i].key == k {
			count-- // upsert: not a new element
			i++
			return
		}
		for j < len(dels) && dels[j] < k {
			j++
		}
		if j < len(dels) && dels[j] == k {
			count-- // deleted existing element
			j++
		}
	})
	return count
}

// mergeInto writes (existing \ dels) ∪ ins for one gate into dk/dv in key
// order. The destination length must equal countMerged's result.
func mergeInto(dk, dv []int64, g *gate, ins []op, dels []int64) {
	pos, i, j := 0, 0, 0
	forEachPair(g, func(k, v int64) {
		for i < len(ins) && ins[i].key < k {
			dk[pos], dv[pos] = ins[i].key, ins[i].val
			pos++
			i++
		}
		if i < len(ins) && ins[i].key == k {
			dk[pos], dv[pos] = ins[i].key, ins[i].val // upsert replaces
			pos++
			i++
			return
		}
		for j < len(dels) && dels[j] < k {
			j++
		}
		if j < len(dels) && dels[j] == k {
			j++ // drop the deleted element
			return
		}
		dk[pos], dv[pos] = k, v
		pos++
	})
	for ; i < len(ins); i++ {
		dk[pos], dv[pos] = ins[i].key, ins[i].val
		pos++
	}
}

// forEachKey visits the gate's stored keys in order.
func forEachKey(g *gate, fn func(k int64)) {
	if g.enc != nil {
		sc := g.cc.get()
		defer g.cc.put(sc)
		for s := 0; s < g.spg; s++ {
			ks, _ := g.decodeSeg(s, sc)
			for _, k := range ks {
				fn(k)
			}
		}
		return
	}
	for s := 0; s < g.spg; s++ {
		base := s * g.b
		for i, c := 0, g.segCard[s]; i < c; i++ {
			fn(g.buf.Keys[base+i])
		}
	}
}

// forEachPair visits the gate's stored pairs in order.
func forEachPair(g *gate, fn func(k, v int64)) {
	if g.enc != nil {
		sc := g.cc.get()
		defer g.cc.put(sc)
		for s := 0; s < g.spg; s++ {
			ks, vs := g.decodeSeg(s, sc)
			for i := range ks {
				fn(ks[i], vs[i])
			}
		}
		return
	}
	for s := 0; s < g.spg; s++ {
		base := s * g.b
		for i, c := 0, g.segCard[s]; i < c; i++ {
			fn(g.buf.Keys[base+i], g.buf.Vals[base+i])
		}
	}
}

func nextPow2(v int) int {
	if v <= 1 {
		return 1
	}
	n := 1
	for n < v {
		n <<= 1
	}
	return n
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }
