package core

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"
)

// testConfig uses tiny segments and chunks so rebalances, gates and resizes
// are exercised by small tests.
func testConfig(mode Mode) Config {
	cfg := DefaultConfig()
	cfg.SegmentCapacity = 8
	cfg.SegmentsPerGate = 2
	cfg.Mode = mode
	cfg.TDelay = 0
	cfg.Workers = 2
	cfg.GCInterval = time.Millisecond
	return cfg
}

func newTest(t *testing.T, mode Mode) *PMA {
	t.Helper()
	p, err := New(testConfig(mode))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)
	return p
}

func allModes() []Mode { return []Mode{ModeSync, ModeOneByOne, ModeBatch} }

func TestEmpty(t *testing.T) {
	for _, mode := range allModes() {
		p := newTest(t, mode)
		if p.Len() != 0 {
			t.Fatalf("%v: Len = %d", mode, p.Len())
		}
		if _, ok := p.Get(42); ok {
			t.Fatalf("%v: Get on empty returned ok", mode)
		}
		count := 0
		p.ScanAll(func(_, _ int64) bool { count++; return true })
		if count != 0 {
			t.Fatalf("%v: scan of empty visited %d", mode, count)
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
	}
}

func TestSequentialInsertGrowth(t *testing.T) {
	for _, mode := range allModes() {
		p := newTest(t, mode)
		const n = 20_000
		for i := int64(1); i <= n; i++ {
			p.Put(i, i*2)
		}
		p.Flush()
		if p.Len() != n {
			t.Fatalf("%v: Len = %d, want %d", mode, p.Len(), n)
		}
		if p.NumGates() < 2 {
			t.Fatalf("%v: array never grew beyond one gate", mode)
		}
		for i := int64(1); i <= n; i += 97 {
			v, ok := p.Get(i)
			if !ok || v != i*2 {
				t.Fatalf("%v: Get(%d) = %d,%v", mode, i, v, ok)
			}
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
	}
}

func TestDescendingInsert(t *testing.T) {
	for _, mode := range allModes() {
		p := newTest(t, mode)
		const n = 10_000
		for i := int64(n); i >= 1; i-- {
			p.Put(i, -i)
		}
		p.Flush()
		keys := p.Keys()
		if len(keys) != n {
			t.Fatalf("%v: %d keys, want %d", mode, len(keys), n)
		}
		for i, k := range keys {
			if k != int64(i+1) {
				t.Fatalf("%v: keys[%d] = %d", mode, i, k)
			}
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
	}
}

func TestUpsert(t *testing.T) {
	for _, mode := range allModes() {
		p := newTest(t, mode)
		for i := 0; i < 100; i++ {
			p.Put(7, int64(i))
		}
		p.Flush()
		if p.Len() != 1 {
			t.Fatalf("%v: Len = %d, want 1", mode, p.Len())
		}
		if v, _ := p.Get(7); v != 99 {
			t.Fatalf("%v: Get(7) = %d, want 99", mode, v)
		}
	}
}

func TestDeleteShrinks(t *testing.T) {
	for _, mode := range allModes() {
		p := newTest(t, mode)
		const n = 20_000
		for i := int64(0); i < n; i++ {
			p.Put(i, i)
		}
		p.Flush()
		grown := p.Capacity()
		for i := int64(0); i < n; i++ {
			p.Delete(i)
		}
		p.Flush()
		// Shrink requests are asynchronous hints; give the master a
		// moment and nudge it by flushing again.
		deadline := time.Now().Add(10 * time.Second)
		for p.Capacity() >= grown && time.Now().Before(deadline) {
			p.Flush()
			time.Sleep(time.Millisecond)
		}
		if p.Len() != 0 {
			t.Fatalf("%v: Len = %d after deleting all", mode, p.Len())
		}
		if p.Capacity() >= grown {
			t.Fatalf("%v: capacity %d never shrank from %d", mode, p.Capacity(), grown)
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		// Still usable.
		p.Put(5, 50)
		p.Flush()
		if v, ok := p.Get(5); !ok || v != 50 {
			t.Fatalf("%v: reuse after erasure failed", mode)
		}
	}
}

func TestScanRange(t *testing.T) {
	for _, mode := range allModes() {
		p := newTest(t, mode)
		for i := int64(0); i < 5000; i++ {
			p.Put(i*10, i)
		}
		p.Flush()
		var got []int64
		p.Scan(95, 205, func(k, _ int64) bool { got = append(got, k); return true })
		want := []int64{100, 110, 120, 130, 140, 150, 160, 170, 180, 190, 200}
		if len(got) != len(want) {
			t.Fatalf("%v: scan got %v", mode, got)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%v: scan[%d] = %d want %d", mode, i, got[i], want[i])
			}
		}
		// Early stop.
		count := 0
		p.ScanAll(func(_, _ int64) bool { count++; return count < 7 })
		if count != 7 {
			t.Fatalf("%v: early stop visited %d", mode, count)
		}
	}
}

func TestRandomModelSequential(t *testing.T) {
	for _, mode := range allModes() {
		p := newTest(t, mode)
		model := map[int64]int64{}
		rng := rand.New(rand.NewSource(11))
		for i := 0; i < 50_000; i++ {
			k := int64(rng.Intn(3000))
			if rng.Intn(10) < 3 {
				delete(model, k)
				p.Delete(k)
			} else {
				v := rng.Int63()
				model[k] = v
				p.Put(k, v)
			}
		}
		p.Flush()
		checkModel(t, p, model, mode.String())
	}
}

func checkModel(t *testing.T, p *PMA, model map[int64]int64, label string) {
	t.Helper()
	if p.Len() != len(model) {
		t.Fatalf("%s: Len = %d, model %d", label, p.Len(), len(model))
	}
	want := make([]int64, 0, len(model))
	for k := range model {
		want = append(want, k)
	}
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	var got []int64
	ok := true
	p.ScanAll(func(k, v int64) bool {
		if model[k] != v {
			ok = false
		}
		got = append(got, k)
		return true
	})
	if !ok {
		t.Fatalf("%s: scan saw a wrong value", label)
	}
	if len(got) != len(want) {
		t.Fatalf("%s: scan %d keys, want %d", label, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: key[%d] = %d, want %d", label, i, got[i], want[i])
		}
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("%s: %v", label, err)
	}
}

func TestConcurrentDisjointInserts(t *testing.T) {
	for _, mode := range allModes() {
		p := newTest(t, mode)
		const workers = 8
		const per = 5_000
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				base := int64(w * per)
				for i := int64(0); i < per; i++ {
					p.Put(base+i, base+i)
				}
			}(w)
		}
		wg.Wait()
		p.Flush()
		if p.Len() != workers*per {
			t.Fatalf("%v: Len = %d, want %d", mode, p.Len(), workers*per)
		}
		prev := int64(-1)
		count := 0
		p.ScanAll(func(k, v int64) bool {
			if k != prev+1 || v != k {
				t.Errorf("%v: unexpected pair %d/%d after %d", mode, k, v, prev)
				return false
			}
			prev = k
			count++
			return true
		})
		if count != workers*per {
			t.Fatalf("%v: scan visited %d", mode, count)
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
	}
}

func TestConcurrentSkewedInserts(t *testing.T) {
	// All writers hammer the same small key range: the combining-queue
	// worst case.
	for _, mode := range allModes() {
		p := newTest(t, mode)
		const workers = 8
		const per = 4_000
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(w)))
				for i := 0; i < per; i++ {
					k := int64(rng.Intn(2000))
					p.Put(k, k*10)
				}
			}(w)
		}
		wg.Wait()
		p.Flush()
		seen := map[int64]bool{}
		okVals := true
		p.ScanAll(func(k, v int64) bool {
			if v != k*10 {
				okVals = false
			}
			seen[k] = true
			return true
		})
		if !okVals {
			t.Fatalf("%v: wrong value observed", mode)
		}
		if len(seen) != p.Len() {
			t.Fatalf("%v: scan saw %d distinct keys, Len = %d", mode, len(seen), p.Len())
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
	}
}

func TestConcurrentMixedWithScans(t *testing.T) {
	for _, mode := range allModes() {
		p := newTest(t, mode)
		stop := make(chan struct{})
		var scans sync.WaitGroup
		for s := 0; s < 2; s++ {
			scans.Add(1)
			go func() {
				defer scans.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					prev := int64(-1 << 62)
					p.ScanAll(func(k, _ int64) bool {
						if k <= prev {
							t.Errorf("%v: scan order violation %d after %d", mode, k, prev)
							return false
						}
						prev = k
						return true
					})
				}
			}()
		}
		var wg sync.WaitGroup
		for w := 0; w < 4; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(100 + w)))
				for i := 0; i < 8_000; i++ {
					k := int64(rng.Intn(10_000))
					switch rng.Intn(4) {
					case 0:
						p.Delete(k)
					case 1:
						p.Get(k)
					default:
						p.Put(k, k)
					}
				}
			}(w)
		}
		wg.Wait()
		close(stop)
		scans.Wait()
		p.Flush()
		if err := p.Validate(); err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
	}
}

func TestCombiningHappensUnderSkew(t *testing.T) {
	cfg := testConfig(ModeBatch)
	cfg.TDelay = time.Millisecond
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 5_000; i++ {
				p.Put(int64(rng.Intn(500)), 1)
			}
		}(w)
	}
	wg.Wait()
	p.Flush()
	if p.Stats().Updates.CombinedOps == 0 {
		t.Fatal("no updates were ever combined under heavy skew")
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestTDelayDefersBatches(t *testing.T) {
	cfg := testConfig(ModeBatch)
	cfg.TDelay = time.Hour // effectively forever; only Flush can force them
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 20_000; i++ {
				p.Put(int64(w*1_000_000+i), 1) // contiguous: forces rebalances
			}
		}(w)
	}
	wg.Wait()
	p.Flush()
	if p.Len() != 80_000 {
		t.Fatalf("Len = %d after Flush, want 80000", p.Len())
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestStatsCounters(t *testing.T) {
	p := newTest(t, ModeSync)
	for i := int64(0); i < 30_000; i++ {
		p.Put(i, i)
	}
	st := p.Stats()
	if st.Rebalance.Resizes == 0 {
		t.Error("no resizes recorded")
	}
	if st.Rebalance.Local == 0 {
		t.Error("no local rebalances recorded")
	}
	if st.Rebalance.Global == 0 {
		t.Error("no global rebalances recorded")
	}
	if st.Rebalance.EpochReclaimed == 0 {
		// Resizes retire the old state; the collector should have
		// reclaimed at least one by now.
		time.Sleep(50 * time.Millisecond)
		if p.Stats().Rebalance.EpochReclaimed == 0 {
			t.Error("epoch collector never reclaimed a retired state")
		}
	}
}

func TestGetWhileGrowing(t *testing.T) {
	p := newTest(t, ModeSync)
	const n = 30_000
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := int64(0); i < n; i++ {
			p.Put(i, i)
		}
	}()
	// Readers chase the writer across many resizes.
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 20_000; i++ {
				k := int64(rng.Intn(n))
				if v, ok := p.Get(k); ok && v != k {
					t.Errorf("Get(%d) = %d", k, v)
					return
				}
			}
		}(int64(r))
	}
	wg.Wait()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestLargeValuesAndNegativeKeys(t *testing.T) {
	p := newTest(t, ModeSync)
	for i := int64(-5000); i <= 5000; i++ {
		p.Put(i, i<<40)
	}
	if p.Len() != 10_001 {
		t.Fatalf("Len = %d", p.Len())
	}
	for _, k := range []int64{-5000, -1, 0, 1, 5000} {
		v, ok := p.Get(k)
		if !ok || v != k<<40 {
			t.Fatalf("Get(%d) = %d,%v", k, v, ok)
		}
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSentinelRejected(t *testing.T) {
	p := newTest(t, ModeSync)
	defer func() {
		if recover() == nil {
			t.Fatal("sentinel Put did not panic")
		}
	}()
	p.Put(-1<<63, 0)
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{SegmentCapacity: 3, SegmentsPerGate: 8, RhoRoot: 0.75, TauRoot: 0.75, TauLeaf: 1},
		{SegmentCapacity: 8, SegmentsPerGate: 3, RhoRoot: 0.75, TauRoot: 0.75, TauLeaf: 1},
		{SegmentCapacity: 8, SegmentsPerGate: 8, RhoRoot: 0, TauRoot: 0.75, TauLeaf: 1},
		{SegmentCapacity: 8, SegmentsPerGate: 8, RhoRoot: 0.8, TauRoot: 0.75, TauLeaf: 1},
		{SegmentCapacity: 8, SegmentsPerGate: 8, RhoRoot: 0.75, TauRoot: 0.75, TauLeaf: 1, TDelay: -1},
	}
	for i, cfg := range bad {
		cfg.Workers = 1
		cfg.GCInterval = time.Second
		cfg.PredictorSize = 8
		if _, err := New(cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

func TestCloseIsIdempotent(t *testing.T) {
	p, err := New(testConfig(ModeBatch))
	if err != nil {
		t.Fatal(err)
	}
	p.Put(1, 1)
	p.Close()
	p.Close()
}

func TestFlushOnIdleIsNoop(t *testing.T) {
	p := newTest(t, ModeBatch)
	p.Flush()
	p.Put(1, 1)
	p.Flush()
	p.Flush()
	if v, ok := p.Get(1); !ok || v != 1 {
		t.Fatal("value lost across flushes")
	}
}
