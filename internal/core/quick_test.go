package core

import (
	"math/rand"
	"reflect"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

// quickOps is a generated random operation sequence.
type quickOps struct {
	ops  []op
	mode Mode
}

func (quickOps) Generate(r *rand.Rand, size int) reflect.Value {
	n := 500 + r.Intn(3000)
	domain := int64(1 + r.Intn(2000))
	ops := make([]op, n)
	for i := range ops {
		ops[i] = op{
			key: r.Int63n(domain) - domain/4,
			val: r.Int63(),
			del: r.Intn(4) == 0,
		}
	}
	return reflect.ValueOf(quickOps{ops: ops, mode: Mode(r.Intn(3))})
}

// TestQuickModelEquivalence: after any op sequence (in any mode, flushed),
// the concurrent PMA equals a model map, in sorted order, with every
// structural invariant intact.
func TestQuickModelEquivalence(t *testing.T) {
	property := func(q quickOps) bool {
		p, err := New(testConfig(q.mode))
		if err != nil {
			return false
		}
		defer p.Close()
		model := map[int64]int64{}
		for _, o := range q.ops {
			if o.del {
				delete(model, o.key)
				p.Delete(o.key)
			} else {
				model[o.key] = o.val
				p.Put(o.key, o.val)
			}
		}
		p.Flush()
		if p.Len() != len(model) {
			t.Logf("mode %v: Len %d != model %d", q.mode, p.Len(), len(model))
			return false
		}
		if err := p.Validate(); err != nil {
			t.Logf("mode %v: %v", q.mode, err)
			return false
		}
		want := make([]int64, 0, len(model))
		for k := range model {
			want = append(want, k)
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		i := 0
		ok := true
		p.ScanAll(func(k, v int64) bool {
			if i >= len(want) || k != want[i] || v != model[k] {
				ok = false
				return false
			}
			i++
			return true
		})
		return ok && i == len(want)
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickConcurrentPutBatchScan checks the batch/scan consistency
// contract: while a writer replaces every value with generation-stamped
// batches, concurrent scans must always observe the full sorted key set
// with no duplicates or tears, every value must be a valid generation, and
// the value seen for a key must never move backwards between scans
// (per-gate atomicity means a scan may mix generations, but generations
// only advance).
func TestQuickConcurrentPutBatchScan(t *testing.T) {
	for _, mode := range allModes() {
		p := newTest(t, mode)
		const n = 20_000
		const gens = 25
		keys := make([]int64, n)
		vals := make([]int64, n)
		for i := range keys {
			keys[i] = int64(i) * 3
		}
		p.PutBatch(keys, vals) // generation 0
		p.Flush()

		var maxGen atomic.Int64
		done := make(chan struct{})
		go func() {
			defer close(done)
			for gen := int64(1); gen <= gens; gen++ {
				for i := range vals {
					vals[i] = gen
				}
				p.PutBatch(keys, vals)
				maxGen.Store(gen)
			}
		}()

		var wg sync.WaitGroup
		errCh := make(chan string, 4)
		report := func(msg string) {
			select {
			case errCh <- msg:
			default:
			}
		}
		for s := 0; s < 2; s++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				last := make([]int64, n) // highest generation seen per key
				for {
					select {
					case <-done:
						return
					default:
					}
					i := 0
					prev := int64(-1)
					bad := false
					p.ScanAll(func(k, v int64) bool {
						if k <= prev || i >= n || k != keys[i] {
							report("scan saw torn or out-of-order keys")
							bad = true
							return false
						}
						if v < last[i] || v > maxGen.Load()+1 {
							report("scan saw value from an impossible generation")
							bad = true
							return false
						}
						last[i] = v
						prev = k
						i++
						return true
					})
					if !bad && i != n {
						report("scan missed keys")
					}
				}
			}()
		}
		<-done
		wg.Wait()
		select {
		case msg := <-errCh:
			t.Fatalf("mode %v: %s", mode, msg)
		default:
		}
		p.Flush()
		if err := p.Validate(); err != nil {
			t.Fatalf("mode %v: %v", mode, err)
		}
	}
}
