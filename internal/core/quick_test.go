package core

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

// quickOps is a generated random operation sequence.
type quickOps struct {
	ops  []op
	mode Mode
}

func (quickOps) Generate(r *rand.Rand, size int) reflect.Value {
	n := 500 + r.Intn(3000)
	domain := int64(1 + r.Intn(2000))
	ops := make([]op, n)
	for i := range ops {
		ops[i] = op{
			key: r.Int63n(domain) - domain/4,
			val: r.Int63(),
			del: r.Intn(4) == 0,
		}
	}
	return reflect.ValueOf(quickOps{ops: ops, mode: Mode(r.Intn(3))})
}

// TestQuickModelEquivalence: after any op sequence (in any mode, flushed),
// the concurrent PMA equals a model map, in sorted order, with every
// structural invariant intact.
func TestQuickModelEquivalence(t *testing.T) {
	property := func(q quickOps) bool {
		p, err := New(testConfig(q.mode))
		if err != nil {
			return false
		}
		defer p.Close()
		model := map[int64]int64{}
		for _, o := range q.ops {
			if o.del {
				delete(model, o.key)
				p.Delete(o.key)
			} else {
				model[o.key] = o.val
				p.Put(o.key, o.val)
			}
		}
		p.Flush()
		if p.Len() != len(model) {
			t.Logf("mode %v: Len %d != model %d", q.mode, p.Len(), len(model))
			return false
		}
		if err := p.Validate(); err != nil {
			t.Logf("mode %v: %v", q.mode, err)
			return false
		}
		want := make([]int64, 0, len(model))
		for k := range model {
			want = append(want, k)
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		i := 0
		ok := true
		p.ScanAll(func(k, v int64) bool {
			if i >= len(want) || k != want[i] || v != model[k] {
				ok = false
				return false
			}
			i++
			return true
		})
		return ok && i == len(want)
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
