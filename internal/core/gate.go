package core

import (
	"sort"
	"sync"
	"sync/atomic"

	"pmago/internal/rewire"
	"pmago/internal/rma"
)

// Latch states (Section 3.1/3.3). Positive values count shared holders.
const (
	lsFree        int32 = 0
	lsWriter      int32 = -1 // held exclusively by a client writer
	lsTransferred int32 = -2 // a writer handed its exclusive latch to the rebalancer
	lsReb         int32 = -3 // held exclusively by the rebalancer service
)

// gate guards one chunk of the sparse array (Section 3.1). It bundles the
// read-write latch, the fence keys, the per-segment minimum keys, the
// combining-queue pointer pQ of Section 3.5, and — in this implementation —
// the chunk's storage itself, so that "memory rewiring" is an O(1) swap of
// the buffer pointer under the latch.
//
// Locking discipline: mu protects the latch state machine and the combining
// queue pointer. Everything else (fences, storage, minima, counters) is
// protected by holding the latch itself in the appropriate mode.
type gate struct {
	mu        sync.Mutex
	cond      sync.Cond
	lstate    int32
	wWaiting  int32 // writers parked on the latch; readers yield to them
	rebWanted bool  // the rebalancer is waiting: new clients queue behind it
	invalid   bool  // the array was resized; clients must restart on the new state

	// version is the gate's seqlock generation counter, the optimistic-read
	// protocol layered over the latch: it is odd exactly while an exclusive
	// holder (a client writer or the rebalancer) owns the latch and may be
	// mutating the latch-protected fields, and even while they are stable.
	// Every transition into exclusive ownership bumps it to odd
	// (beginExclusive) and every transition out bumps it to even
	// (endExclusive); the writer→transferred→rebalancer hand-off keeps the
	// latch exclusively owned throughout, so it bumps neither. Shared
	// holders never bump: they do not mutate.
	//
	// Memory ordering: the bumps are atomic adds and the readers' fences
	// are atomic loads, so under the Go memory model the odd bump
	// happens-before the holder's plain writes become observable through a
	// later even load, and a reader that loads the same even value before
	// and after its plain reads (Get/Scan fast path, read.go) observed no
	// concurrent mutation. The reads between the two loads are still racy
	// by the letter of the model — they may observe torn or stale words —
	// which is why the fast path clamps all derived indices (getRacy,
	// collectRacy) and discards everything unless the version validates.
	// Because those benign-by-construction races cannot be exempted from
	// the race detector, -race builds compile the fast path out and read
	// under the shared latch (race_on.go); the stress suite model-checks
	// the seqlock protocol in normal builds instead.
	version atomic.Uint64

	q            *opQueue // pQ: set while a writer (or a pending batch) combines
	pendingBatch bool     // the queue has been handed to the rebalancer

	// --- latch-protected fields ---
	fenceLo int64 // minimum key this chunk may store (inclusive)
	fenceHi int64 // maximum key this chunk may store (inclusive)
	buf     *rewire.Buffer
	segCard []int
	smin    []int64 // per-segment minima; empty segments inherit from the right
	gcard   int     // elements stored in this chunk
	rebGen  uint64  // bumped every time a global rebalance/resize covers this gate
	lastReb int64   // monotonic nanos of the last global rebalance (tdelay)
	pred    *rma.Predictor

	// Compressed-chunk storage (cgate.go): non-nil exactly when the store
	// was built with Config.CompressedChunks, in which case buf stays nil
	// and each segment's pairs live delta-encoded in enc[s] (nil element =
	// never-encoded empty segment). Like buf/segCard/smin, enc is swapped
	// whole under the latch and its length is always spg, so the racy
	// readers' torn-header discipline carries over unchanged. encBytes is
	// the sum of the segments' encoded lengths, atomic so Stats can walk
	// the live gates without latching them. cc is the store-wide scratch
	// pool and metrics context, fixed at creation.
	enc      []*encSeg
	encBytes atomic.Int64
	cc       *cctx

	idx int // gate number within its state (fixed)
	spg int // segments per gate
	b   int // slots per segment
}

func newGate(idx, spg, b int, buf *rewire.Buffer, pred *rma.Predictor, cc *cctx) *gate {
	g := &gate{
		idx:     idx,
		spg:     spg,
		b:       b,
		buf:     buf,
		segCard: make([]int, spg),
		smin:    make([]int64, spg),
		fenceLo: rma.KeyMin,
		fenceHi: rma.KeyMax,
		pred:    pred,
		cc:      cc,
	}
	if cc != nil {
		g.enc = make([]*encSeg, spg)
	}
	g.cond.L = &g.mu
	for i := range g.smin {
		g.smin[i] = rma.KeyMax
	}
	return g
}

// --- latch state machine ---

// beginExclusive marks the gate unstable (version odd) as part of acquiring
// the latch exclusively. Callers hold g.mu and must bump before the acquiring
// goroutine can issue its first mutation — i.e. before releasing mu. The
// atomic add is the release barrier that orders the bump before the holder's
// subsequent plain writes as seen by optimistic readers.
func (g *gate) beginExclusive() {
	g.version.Add(1)
}

// endExclusive marks the gate stable again (version even) as part of
// releasing an exclusive hold. Callers hold g.mu; every mutation happened
// before the caller re-acquired mu, so the add publishes a consistent chunk.
func (g *gate) endExclusive() {
	g.version.Add(1)
}

// lockShared blocks while the latch is exclusive, the rebalancer wants the
// gate, or a writer is parked: without writer priority, back-to-back scan
// threads would re-acquire the shared latch forever and starve updates.
func (g *gate) lockShared() {
	g.mu.Lock()
	for g.lstate < 0 || g.rebWanted || g.wWaiting > 0 {
		g.cond.Wait()
	}
	g.lstate++
	g.mu.Unlock()
}

func (g *gate) unlockShared() {
	g.mu.Lock()
	g.lstate--
	if g.lstate == 0 {
		g.cond.Broadcast()
	}
	g.mu.Unlock()
}

func (g *gate) lockX() {
	g.mu.Lock()
	g.wWaiting++
	for g.lstate != lsFree || g.rebWanted {
		g.cond.Wait()
	}
	g.wWaiting--
	g.lstate = lsWriter
	g.beginExclusive()
	g.mu.Unlock()
}

func (g *gate) unlockX() {
	g.mu.Lock()
	g.endExclusive()
	g.lstate = lsFree
	g.cond.Broadcast()
	g.mu.Unlock()
}

// transferToReb converts the caller's exclusive hold into the transferred
// state: the latch stays exclusive, but the rebalancer may adopt it without
// waiting. This is what prevents the master from deadlocking against writers
// that queued rebalance requests behind the one being served. The version
// stays odd across the whole hand-off — the latch never becomes free.
func (g *gate) transferToReb() {
	g.mu.Lock()
	g.lstate = lsTransferred
	g.mu.Unlock()
}

// rebLock acquires the latch on behalf of the rebalancer, adopting
// transferred latches immediately and taking priority over waiting clients.
func (g *gate) rebLock() {
	g.mu.Lock()
	g.rebWanted = true
	for g.lstate != lsFree && g.lstate != lsTransferred {
		g.cond.Wait()
	}
	if g.lstate == lsFree {
		// Adopted transferred latches are already odd (the transferring
		// writer bumped at acquisition); only a fresh acquisition does.
		g.beginExclusive()
	}
	g.lstate = lsReb
	g.rebWanted = false
	g.mu.Unlock()
}

func (g *gate) rebUnlock() {
	g.mu.Lock()
	g.endExclusive()
	g.lstate = lsFree
	g.cond.Broadcast()
	g.mu.Unlock()
}

// --- chunk storage operations (caller holds the latch) ---

// findSeg locates the segment within the chunk whose range covers k:
// the rightmost segment whose cached minimum is <= k.
func (g *gate) findSeg(k int64) int {
	return findSegIn(g.smin, g.spg, k)
}

// findSegIn is findSeg over an explicit minima slice, shared with the
// optimistic readers (getRacy, collectRacy), which operate on locally
// copied slice headers instead of the gate fields. The caller guarantees
// len(smin) >= spg.
func findSegIn(smin []int64, spg int, k int64) int {
	s := 0
	for i := 1; i < spg; i++ { // spg is small (default 8): linear scan
		if smin[i] <= k {
			s = i
		} else {
			break
		}
	}
	return s
}

// clampCard bounds a racily-read segment cardinality to [0, b] so the
// optimistic readers can never index out of a chunk buffer, whatever torn
// value they loaded.
func clampCard(c, b int) int {
	if c < 0 {
		return 0
	}
	if c > b {
		return b
	}
	return c
}

// get looks k up within the chunk.
func (g *gate) get(k int64) (int64, bool) {
	if g.enc != nil {
		return g.getC(k)
	}
	s := g.findSeg(k)
	base := s * g.b
	keys := g.buf.Keys[base : base+g.segCard[s]]
	i := sort.Search(len(keys), func(i int) bool { return keys[i] >= k })
	if i < len(keys) && keys[i] == k {
		return g.buf.Vals[base+i], true
	}
	return 0, false
}

// getRacy is get for the optimistic read path: it runs without any
// synchronisation, possibly concurrent with an exclusive holder mutating the
// chunk, so every load may be torn or stale. The caller (read.go) discards
// the result unless the gate's version was stable across the call; the job
// here is merely to never fault on garbage. Slice headers are copied to
// locals once (a concurrent publish replaces them whole; the referenced
// arrays stay live through the local copies), lengths are verified against
// the fixed geometry, and the per-segment cardinality is clamped to [0, b],
// so all indexing stays in bounds no matter what was read.
func (g *gate) getRacy(k int64) (int64, bool) {
	if g.enc != nil {
		return g.getRacyC(k)
	}
	buf, segCard, smin := g.buf, g.segCard, g.smin
	if buf == nil || len(smin) < g.spg || len(segCard) < g.spg ||
		len(buf.Keys) < g.spg*g.b || len(buf.Vals) < g.spg*g.b {
		return 0, false // torn headers; the version check will reject
	}
	s := findSegIn(smin, g.spg, k)
	c := clampCard(segCard[s], g.b)
	base := s * g.b
	keys := buf.Keys[base : base+c]
	i := searchKeys(keys, k)
	if i < c && keys[i] == k {
		return buf.Vals[base+i], true
	}
	return 0, false
}

// putResult describes the outcome of an in-gate insert attempt.
type putResult int

const (
	putInserted    putResult = iota // new element placed
	putReplaced                     // existing value overwritten
	putNeedsGlobal                  // no in-chunk window can absorb the insert
)

// put upserts k/v within the chunk, rebalancing inside the chunk when the
// target segment is full. Returns putNeedsGlobal when even the whole chunk
// cannot absorb the insert under its calibrator threshold, in which case
// nothing was modified.
func (g *gate) put(st *state, k, v int64) putResult {
	if g.enc != nil {
		return g.putC(st, k, v)
	}
	s := g.findSeg(k)
	base := s * g.b
	keys := g.buf.Keys[base : base+g.segCard[s]]
	i := sort.Search(len(keys), func(i int) bool { return keys[i] >= k })
	if i < len(keys) && keys[i] == k {
		g.buf.Vals[base+i] = v
		return putReplaced
	}
	if g.segCard[s] == g.b {
		ws, we, ok := g.localInsertWindow(st, s, 1)
		if !ok {
			return putNeedsGlobal
		}
		g.rebalanceLocal(ws, we)
		if m := st.p.metrics; m != nil {
			m.LocalRebalances.Inc()
		}
		s = g.findSeg(k)
		base = s * g.b
		keys = g.buf.Keys[base : base+g.segCard[s]]
		i = sort.Search(len(keys), func(i int) bool { return keys[i] >= k })
	}
	g.insertAt(s, i, k, v)
	if g.pred != nil {
		g.pred.Record(k)
	}
	return putInserted
}

// insertAt places k/v at offset i of segment s (which has a free slot).
func (g *gate) insertAt(s, i int, k, v int64) {
	base := s * g.b
	c := g.segCard[s]
	copy(g.buf.Keys[base+i+1:base+c+1], g.buf.Keys[base+i:base+c])
	copy(g.buf.Vals[base+i+1:base+c+1], g.buf.Vals[base+i:base+c])
	g.buf.Keys[base+i] = k
	g.buf.Vals[base+i] = v
	g.segCard[s] = c + 1
	g.gcard++
	if i == 0 {
		g.setSegMin(s, k)
	}
}

// del removes k from the chunk, reporting whether it was present.
func (g *gate) del(k int64) bool {
	if g.enc != nil {
		return g.delC(k)
	}
	s := g.findSeg(k)
	base := s * g.b
	c := g.segCard[s]
	keys := g.buf.Keys[base : base+c]
	i := sort.Search(len(keys), func(i int) bool { return keys[i] >= k })
	if i == len(keys) || keys[i] != k {
		return false
	}
	copy(g.buf.Keys[base+i:base+c-1], g.buf.Keys[base+i+1:base+c])
	copy(g.buf.Vals[base+i:base+c-1], g.buf.Vals[base+i+1:base+c])
	g.segCard[s] = c - 1
	g.gcard--
	if i == 0 {
		if g.segCard[s] > 0 {
			g.setSegMin(s, g.buf.Keys[base])
		} else {
			g.clearSegMin(s)
		}
	}
	return true
}

func (g *gate) setSegMin(s int, k int64) {
	g.smin[s] = k
	for t := s - 1; t >= 0 && g.segCard[t] == 0; t-- {
		g.smin[t] = k
	}
}

func (g *gate) clearSegMin(s int) {
	inherit := int64(rma.KeyMax)
	if s+1 < g.spg {
		inherit = g.smin[s+1]
	}
	g.smin[s] = inherit
	for t := s - 1; t >= 0 && g.segCard[t] == 0; t-- {
		g.smin[t] = inherit
	}
}

// localInsertWindow walks the calibrator tree upward from segment s (local
// index), considering only windows fully contained in this chunk, and
// returns the smallest window that can absorb extra pending inserts within
// its upper density threshold while leaving a free slot per segment.
// Thresholds are evaluated against the global tree height (the chunk's
// segments are leaves of the whole PMA's calibrator tree).
func (g *gate) localInsertWindow(st *state, s, pending int) (ws, we int, ok bool) {
	h := st.height
	maxLevel := log2(g.spg) + 1
	for k := 2; k <= maxLevel; k++ {
		w := 1 << (k - 1)
		ws = s &^ (w - 1)
		we = ws + w
		cardW := 0
		for i := ws; i < we; i++ {
			cardW += g.segCard[i]
		}
		_, tau := st.thresholds(k, h)
		if float64(cardW+pending) <= tau*float64(w*g.b) && cardW+pending <= w*(g.b-1) {
			return ws, we, true
		}
	}
	return 0, 0, false
}

// rebalanceLocal redistributes segments [ws, we) of this chunk (a "local
// rebalance", Section 3.3) using the adaptive policy when a predictor is
// attached, the traditional even spread otherwise.
func (g *gate) rebalanceLocal(ws, we int) {
	ks, vs := g.gatherLocal(ws, we)
	g.spreadLocal(ws, we, ks, vs)
}

// gatherLocal copies the window's elements into fresh slices in key order.
func (g *gate) gatherLocal(ws, we int) (ks, vs []int64) {
	n := 0
	for s := ws; s < we; s++ {
		n += g.segCard[s]
	}
	ks = make([]int64, 0, n)
	vs = make([]int64, 0, n)
	for s := ws; s < we; s++ {
		base := s * g.b
		ks = append(ks, g.buf.Keys[base:base+g.segCard[s]]...)
		vs = append(vs, g.buf.Vals[base:base+g.segCard[s]]...)
	}
	return ks, vs
}

// spreadLocal writes the sorted elements across segments [ws, we) and
// refreshes cardinalities and minima.
func (g *gate) spreadLocal(ws, we int, ks, vs []int64) {
	m := we - ws
	var counts []int
	if g.pred != nil {
		counts = g.pred.AdaptiveCounts(ks, m, g.b)
	} else {
		counts = rma.EvenCounts(len(ks), m)
	}
	pos := 0
	for i := 0; i < m; i++ {
		s := ws + i
		base := s * g.b
		c := counts[i]
		copy(g.buf.Keys[base:base+c], ks[pos:pos+c])
		copy(g.buf.Vals[base:base+c], vs[pos:pos+c])
		g.segCard[s] = c
		pos += c
	}
	g.refreshMinima(ws, we)
}

// refreshMinima recomputes smin for segments [ws, we) and propagates
// inherited minima to empty segments on the left.
func (g *gate) refreshMinima(ws, we int) {
	inherit := int64(rma.KeyMax)
	if we < g.spg {
		inherit = g.smin[we]
	}
	for s := we - 1; s >= ws; s-- {
		if g.segCard[s] > 0 {
			g.smin[s] = g.buf.Keys[s*g.b]
			inherit = g.smin[s]
		} else {
			g.smin[s] = inherit
		}
	}
	for s := ws - 1; s >= 0 && g.segCard[s] == 0; s-- {
		g.smin[s] = inherit
	}
}

// searchKeys returns the first index i with a[i] >= k. Manual binary search:
// the sort.Search closure is a measurable cost on the batch hot path.
func searchKeys(a []int64, k int64) int {
	lo, hi := 0, len(a)
	for lo < hi {
		m := int(uint(lo+hi) >> 1)
		if a[m] < k {
			lo = m + 1
		} else {
			hi = m
		}
	}
	return lo
}

// mergeBySegment is the cheapest batch-insert path: the key-sorted,
// deduplicated run (all within this gate's fences) is partitioned into
// per-segment groups, and when every target segment can absorb its group's
// genuinely new keys within capacity, each segment is rewritten with one
// backward merge pass — no window search, no rebalance, and elements below
// the group's lowest insertion point are never touched. Returns the number
// of newly created elements and whether the run fit; on false nothing was
// modified.
func (g *gate) mergeBySegment(ins []op) (int, bool) {
	if g.enc != nil {
		return g.mergeBySegmentC(ins)
	}
	type group struct {
		s, lo, hi int // ins[lo:hi] targets segment s
		fresh     int // keys in the group not already stored
	}
	groups := make([]group, 0, g.spg)
	for lo := 0; lo < len(ins); {
		s := g.findSeg(ins[lo].key)
		hi := lo + 1
		for hi < len(ins) && g.findSeg(ins[hi].key) == s {
			hi++
		}
		keys := g.buf.Keys[s*g.b : s*g.b+g.segCard[s]]
		fresh := 0
		for _, o := range ins[lo:hi] {
			i := searchKeys(keys, o.key)
			if i == len(keys) || keys[i] != o.key {
				fresh++
			}
		}
		if g.segCard[s]+fresh > g.b {
			return 0, false
		}
		groups = append(groups, group{s: s, lo: lo, hi: hi, fresh: fresh})
		lo = hi
	}
	delta := 0
	for _, gr := range groups {
		base := gr.s * g.b
		run := ins[gr.lo:gr.hi]
		c := g.segCard[gr.s]
		keys := g.buf.Keys[base : base+g.b]
		vals := g.buf.Vals[base : base+g.b]
		// Merge from the back, block-moving the span of existing elements
		// between consecutive insertion points so each element moves at
		// most once via copy. E[0:i] is the untouched original prefix; w
		// is one past the next final slot to fill; w-i equals the fresh
		// inserts still to place.
		i, w := c, c+gr.fresh
		for j := len(run) - 1; j >= 0; j-- {
			k := run[j].key
			up := searchKeys(keys[:i], k+1) // first index with key > k
			if t := i - up; t > 0 && w != i {
				copy(keys[w-t:w], keys[up:i])
				copy(vals[w-t:w], vals[up:i])
			}
			w -= i - up
			i = up
			if i > 0 && keys[i-1] == k {
				i-- // upsert: the existing element is consumed
			}
			w--
			keys[w] = k
			vals[w] = run[j].val
		}
		g.segCard[gr.s] = c + gr.fresh
		g.gcard += gr.fresh
		delta += gr.fresh
		if g.smin[gr.s] != keys[0] {
			g.setSegMin(gr.s, keys[0])
		}
	}
	return delta, true
}

// mergeLocal applies key-sorted, deduplicated insert ops (all within this
// gate's fences) by rebalancing the smallest in-chunk calibrator window that
// fits them, merging the insertions during the spread — the second pass of
// batch processing (Section 3.5). It returns the number of newly created
// elements and whether the batch fit locally; on false nothing was modified.
func (g *gate) mergeLocal(st *state, ins []op) (int, bool) {
	n := len(ins)
	if n == 0 {
		return 0, true
	}
	if g.enc != nil {
		return g.mergeLocalC(st, ins)
	}
	s0 := g.findSeg(ins[0].key)
	s1 := g.findSeg(ins[n-1].key)

	// Level 1: all insertions target a single segment with enough gaps
	// (tau_1 = 1 allows filling it completely).
	if s0 == s1 && g.segCard[s0]+n <= g.b {
		base := s0 * g.b
		delta := 0
		for _, o := range ins {
			keys := g.buf.Keys[base : base+g.segCard[s0]]
			i := sort.Search(len(keys), func(i int) bool { return keys[i] >= o.key })
			if i < len(keys) && keys[i] == o.key {
				g.buf.Vals[base+i] = o.val
				continue
			}
			g.insertAt(s0, i, o.key, o.val)
			delta++
		}
		return delta, true
	}

	h := st.height
	maxLevel := log2(g.spg) + 1
	for k := 2; k <= maxLevel; k++ {
		w := 1 << (k - 1)
		ws := s0 &^ (w - 1)
		we := ws + w
		if s1 >= we {
			continue // window does not cover the batch's key span
		}
		cardW := 0
		for i := ws; i < we; i++ {
			cardW += g.segCard[i]
		}
		_, tau := st.thresholds(k, h)
		if float64(cardW+n) <= tau*float64(w*g.b) && cardW+n <= w*(g.b-1) {
			exK, exV := g.gatherLocal(ws, we)
			ks, vs := mergeSorted(exK, exV, ins)
			g.spreadLocal(ws, we, ks, vs)
			delta := len(ks) - len(exK)
			g.gcard += delta
			if m := st.p.metrics; m != nil {
				m.LocalRebalances.Inc()
			}
			return delta, true
		}
	}
	return 0, false
}

// scanFrom visits the chunk's elements with key in [from, hi], in order,
// returning false if fn stopped the scan.
func (g *gate) scanFrom(from, hi int64, fn func(k, v int64) bool) bool {
	if g.enc != nil {
		return g.scanFromC(from, hi, fn)
	}
	s := g.findSeg(from)
	base := s * g.b
	keys := g.buf.Keys[base : base+g.segCard[s]]
	i := sort.Search(len(keys), func(i int) bool { return keys[i] >= from })
	for ; s < g.spg; s++ {
		base = s * g.b
		for c := g.segCard[s]; i < c; i++ {
			k := g.buf.Keys[base+i]
			if k > hi {
				return true
			}
			if !fn(k, g.buf.Vals[base+i]) {
				return false
			}
		}
		i = 0
	}
	return true
}

// collectRacy is scanFrom for the optimistic read path: it appends the
// chunk's pairs with key in [from, hi] to ks/vs without synchronisation,
// under the same torn-read discipline as getRacy — clamped indexing, at most
// spg*b appends, result meaningless unless the caller validates the gate
// version afterwards. Garbage keys can only truncate the copy early or admit
// out-of-range elements; both are discarded with the failed validation.
func (g *gate) collectRacy(from, hi int64, ks, vs []int64) ([]int64, []int64) {
	if g.enc != nil {
		return g.collectRacyC(from, hi, ks, vs)
	}
	buf, segCard, smin := g.buf, g.segCard, g.smin
	if buf == nil || len(smin) < g.spg || len(segCard) < g.spg ||
		len(buf.Keys) < g.spg*g.b || len(buf.Vals) < g.spg*g.b {
		return ks, vs
	}
	s := findSegIn(smin, g.spg, from)
	i := searchKeys(buf.Keys[s*g.b:s*g.b+clampCard(segCard[s], g.b)], from)
	for ; s < g.spg; s++ {
		base := s * g.b
		for c := clampCard(segCard[s], g.b); i < c; i++ {
			k := buf.Keys[base+i]
			if k > hi {
				return ks, vs
			}
			ks = append(ks, k)
			vs = append(vs, buf.Vals[base+i])
		}
		i = 0
	}
	return ks, vs
}

func log2(v int) int {
	n := 0
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}
