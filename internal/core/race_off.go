//go:build !race

package core

// raceEnabled reports whether the race detector is compiled in; see
// race_on.go for why the optimistic read path is gated on it.
const raceEnabled = false
