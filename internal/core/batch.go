package core

import (
	"fmt"
	"runtime"
	"slices"
	"sync"
	"sync/atomic"

	"pmago/internal/epoch"
	"pmago/internal/rma"
)

// This file is the batch-update subsystem. Point updates (write.go) pay the
// full routing cost — epoch guard, index lookup, gate latch — once per key;
// the batch entry points below pay it once per *gate*: the batch is sorted
// and deduplicated, partitioned into per-gate runs along the fence keys, and
// each run is merged into its gate's segments in a single pass. Only when a
// run does not fit under the gate's calibrator threshold does the work fall
// back to the centralised rebalancer, which merges the run during the global
// rebalance it was going to perform anyway (Section 3.5's batch processing,
// applied synchronously). BulkLoad skips the incremental machinery entirely
// and lays a sorted dataset out at the calibrator tree's target density in
// O(n).

// PutBatch upserts all keys[i]/vals[i] pairs. Duplicate keys within the
// batch collapse to their last occurrence, matching the effect of issuing
// the Puts in order. The batch is partitioned by gate and each affected gate
// is latched exactly once, so a batch is far cheaper than the equivalent
// point-Put loop but is not atomic: a concurrent scan may observe a gate
// that already carries its run next to one that does not. When PutBatch
// returns the whole batch has been applied — displaced stragglers are
// drained through a rebalancer barrier first — but updates to the same keys
// from concurrent calls remain unordered with respect to the batch.
func (p *PMA) PutBatch(keys, vals []int64) {
	p.checkOpen()
	if len(keys) != len(vals) {
		panic(fmt.Sprintf("core: PutBatch got %d keys but %d values", len(keys), len(vals)))
	}
	ops := make([]op, len(keys))
	for i, k := range keys {
		if k == rma.KeyMin || k == rma.KeyMax {
			panic("core: cannot store sentinel key")
		}
		ops[i] = op{key: k, val: vals[i]}
	}
	if h := p.hook; h != nil {
		h.PutBatch(keys, vals)
	}
	ops = sortDedupOps(ops)
	p.applyBatchParallel(ops)
}

// DeleteBatch removes every given key, reporting how many elements were
// removed from the array. Sentinel keys and duplicates are ignored. Unlike
// point Deletes in the asynchronous modes, the count is exact — deletions
// only lower density, so every run is applied in place under its gate latch
// — and it stays exact under concurrent writers: deletions belonging to
// absorbed queue ops are applied but never attributed to the batch.
func (p *PMA) DeleteBatch(keys []int64) int {
	p.checkOpen()
	if h := p.hook; h != nil {
		h.DeleteBatch(keys)
	}
	ops := make([]op, 0, len(keys))
	for _, k := range keys {
		if k == rma.KeyMin || k == rma.KeyMax {
			continue
		}
		ops = append(ops, op{key: k, del: true})
	}
	ops = sortDedupOps(ops)
	return int(p.applyBatchParallel(ops))
}

// applyBatchParallel splits a key-sorted, deduplicated op slice into
// contiguous chunks applied by concurrent workers — the batch-parallel
// property a point-update loop cannot have: chunks cover disjoint key
// ranges, every op still applies under its gate's latch, and at most the
// two gates straddling a chunk boundary see more than one worker. Small
// batches run inline.
func (p *PMA) applyBatchParallel(ops []op) int64 {
	n := len(ops)
	if n == 0 {
		return 0
	}
	const minChunk = 1024 // below this, goroutine handoff costs more than it buys
	workers := runtime.GOMAXPROCS(0)
	if workers > p.cfg.Workers {
		workers = p.cfg.Workers
	}
	if workers > n/minChunk {
		workers = n / minChunk
	}
	if workers <= 1 {
		guard := p.epochs.Enter()
		removed, handedOff := p.applyBatch(ops, ops, guard)
		guard.Leave()
		if handedOff {
			p.barrier()
		}
		return removed
	}
	var removed atomic.Int64
	var anyHandOff atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		chunk := ops[n*w/workers : n*(w+1)/workers]
		wg.Add(1)
		go func() {
			defer wg.Done()
			guard := p.epochs.Enter()
			defer guard.Leave()
			rem, handedOff := p.applyBatch(chunk, ops, guard)
			removed.Add(rem)
			if handedOff {
				anyHandOff.Store(true)
			}
		}()
	}
	wg.Wait()
	if anyHandOff.Load() {
		p.barrier()
	}
	return removed.Load()
}

// barrier round-trips the rebalancer master. Because the master serves every
// due zero-delay batch before reading its channel, a completed barrier means
// every op this call displaced into another gate's queue (a rebalance moved
// the fences mid-flight) has been applied — a later batch can therefore
// never be overwritten by this batch's stragglers.
func (p *PMA) barrier() {
	req := &request{kind: reqBarrier, done: make(chan struct{})}
	p.reb.submit(req)
	<-req.done
}

// sortDedupOps puts ops in ascending key order keeping only the last op per
// key (later updates supersede earlier ones, as in sequential application).
// Already-sorted input — the common case for bulk ingest — is detected and
// skips the sort.
func sortDedupOps(ops []op) []op {
	sorted, unique := true, true
	for i := 1; i < len(ops); i++ {
		if ops[i].key < ops[i-1].key {
			sorted = false
			break
		}
		if ops[i].key == ops[i-1].key {
			unique = false
		}
	}
	if sorted && unique { // already in batch form: skip the compaction pass
		return ops
	}
	if !sorted {
		slices.SortStableFunc(ops, func(a, b op) int {
			switch {
			case a.key < b.key:
				return -1
			case a.key > b.key:
				return 1
			default:
				return 0
			}
		})
	}
	out := ops[:0]
	for i := range ops {
		if i+1 < len(ops) && ops[i+1].key == ops[i].key {
			continue
		}
		out = append(out, ops[i])
	}
	return out
}

// applyBatch routes a key-sorted, deduplicated op slice gate by gate in
// ascending key order, returning the number of elements deleted and whether
// any run was handed to the rebalancer (the caller then barriers so no
// displaced op outlives the call). all is the complete batch the slice
// belongs to — the whole slice again, or the full op set when workers split
// it — used to keep absorbed stale ops from clobbering any part of the
// batch. Like the point-update path it restarts across resizes and walks
// neighbours after a racy index read; unlike it, every op covered by one
// gate's fences is handled under a single latch acquisition.
func (p *PMA) applyBatch(ops, all []op, guard *epoch.Guard) (int64, bool) {
	removedTotal := int64(0)
	anyHandOff := false
	rem := ops
	for len(rem) > 0 {
		st := p.state.Load()
		gi := clampGate(st.index.Lookup(rem[0].key), len(st.gates))
		for {
			g := st.gates[gi]
			g.lockX()
			if g.invalid {
				g.unlockX()
				break // the array was resized: reload the state
			}
			if rem[0].key < g.fenceLo && gi > 0 {
				g.unlockX()
				gi--
				continue
			}
			if rem[0].key > g.fenceHi && gi < len(st.gates)-1 {
				g.unlockX()
				gi++
				continue
			}
			run := opRange(rem, g.fenceLo, g.fenceHi) // a prefix of rem
			rem = rem[len(run):]
			removed, leftovers, handedOff := p.applyGateBatch(st, g, run)
			removedTotal += removed
			anyHandOff = anyHandOff || handedOff
			// Absorbed queue ops whose keys fall outside the gate's
			// fences are replayed through the synchronous path, as
			// drainQueue does — except keys the batch also carries
			// (anywhere in it, including other workers' chunks): the
			// absorbed op is older, and replaying it would clobber the
			// batch's value.
			for _, o := range leftovers {
				if i := searchOps(all, o.key); i < len(all) && all[i].key == o.key {
					continue
				}
				p.updateSyncInternal(o, guard)
			}
			break
		}
		guard.Refresh()
	}
	p.maybeRequestShrink(p.state.Load())
	return removedTotal, anyHandOff
}

// applyGateBatch applies one gate's run while holding its latch exclusively
// and releases the latch. Any ops parked in the gate's combining queue are
// absorbed first — they are older than the batch and applying them later
// would revert it (the batch wins per key through the dedup). Deletions go
// first (they only lower density), then the insert run is merged with
// escalating effort: per-segment single-pass merges, an in-chunk rebalance
// merging the run (mergeLocal), and finally a hand-off to the rebalancer,
// which merges the run into the global rebalance it performs —
// applyGateBatch blocks until that completes. Absorbed ops routed outside
// the fences are returned for the caller to replay, and handedOff reports
// whether the rebalancer was involved (the batch caller then barriers).
func (p *PMA) applyGateBatch(st *state, g *gate, run []op) (removed int64, leftovers []op, handedOff bool) {
	orig := run // the batch's own ops: only their deletions count
	absorbed := false
	g.mu.Lock()
	if g.q != nil {
		// A parked batch (pendingBatch) — we hold the latch, so no
		// active writer owns the queue. Its outstanding rebalancer
		// request completes vacuously on the emptied queue.
		parked := g.q.ops
		g.q = nil
		g.pendingBatch = false
		g.mu.Unlock()
		absorbed = len(parked) > 0
		if m := p.metrics; m != nil && absorbed {
			m.DrainSize.Observe(uint64(len(parked)))
		}
		merged := make([]op, 0, len(parked)+len(run))
		merged = append(merged, parked...)
		merged = append(merged, run...)
		merged = sortDedupOps(merged)
		run = opRange(merged, g.fenceLo, g.fenceHi)
		if len(run) != len(merged) {
			a := searchOps(merged, g.fenceLo)
			leftovers = append(leftovers, merged[:a]...)
			leftovers = append(leftovers, merged[a+len(run):]...)
		}
	} else {
		g.mu.Unlock()
	}
	ins := run
	if hasDeletes(run) {
		ins = make([]op, 0, len(run))
		cardRemoved := int64(0)
		for _, o := range run {
			if !o.del {
				ins = append(ins, o)
				continue
			}
			if g.del(o.key) {
				cardRemoved++
				// Deletes that rode in from the absorbed queue belong to
				// concurrent point callers, not to this batch: keep them
				// out of the returned count (DeleteBatch's exact-count
				// contract). An op that survived the last-wins dedup with
				// its key present in orig is the batch's own.
				if !absorbed {
					removed++
				} else if i := searchOps(orig, o.key); i < len(orig) && orig[i].key == o.key {
					removed++
				}
			}
		}
		if cardRemoved > 0 {
			st.card.Add(-cardRemoved)
		}
	}
	if len(ins) == 0 {
		g.unlockX()
		return removed, leftovers, false
	}
	if delta, ok := g.mergeBySegment(ins); ok {
		st.card.Add(int64(delta))
		g.unlockX()
		return removed, leftovers, false
	}
	if delta, ok := g.mergeLocal(st, ins); ok {
		st.card.Add(int64(delta))
		g.unlockX()
		return removed, leftovers, false
	}
	// The run overflows the chunk. Clip so queue appends cannot stomp the
	// caller's remaining ops, then hand the gate to the rebalancer.
	p.handOffBatch(st, g, slices.Clip(ins), true)
	return removed, leftovers, true
}

// searchOps returns the first index in key-sorted ops with key >= k.
func searchOps(ops []op, k int64) int {
	lo, hi := 0, len(ops)
	for lo < hi {
		m := int(uint(lo+hi) >> 1)
		if ops[m].key < k {
			lo = m + 1
		} else {
			hi = m
		}
	}
	return lo
}

func hasDeletes(ops []op) bool {
	for _, o := range ops {
		if o.del {
			return true
		}
	}
	return false
}

// BulkLoad builds a PMA already containing the given pairs. The elements are
// sorted and deduplicated (later occurrences win, as with sequential Puts)
// and written directly into a sparse array sized for the calibrator tree's
// target density — O(n log n) for unsorted input, a single O(n) pass for
// sorted input — instead of n point inserts with their O(n log² n) total
// rebalancing work. The returned PMA is fully started; callers must Close it.
func BulkLoad(cfg Config, keys, vals []int64) (*PMA, error) {
	if len(keys) != len(vals) {
		return nil, fmt.Errorf("core: BulkLoad got %d keys but %d values", len(keys), len(vals))
	}
	p, err := newShell(cfg)
	if err != nil {
		return nil, err
	}
	ops := make([]op, len(keys))
	for i, k := range keys {
		if k == rma.KeyMin || k == rma.KeyMax {
			return nil, fmt.Errorf("core: BulkLoad key %d is a reserved sentinel", k)
		}
		ops[i] = op{key: k, val: vals[i]}
	}
	ops = sortDedupOps(ops)
	ks := make([]int64, len(ops))
	vs := make([]int64, len(ops))
	for i, o := range ops {
		ks[i] = o.key
		vs[i] = o.val
	}
	p.state.Store(p.buildLoadedState(ks, vs))
	p.startServices()
	return p, nil
}

// buildLoadedState lays the sorted unique pairs out across a fresh state
// whose capacity puts the array at the midpoint of the root thresholds —
// the same density a resize targets — with an even spread per segment.
func (p *PMA) buildLoadedState(ks, vs []int64) *state {
	n := len(ks)
	target := (p.cfg.RhoRoot + p.cfg.TauRoot) / 2
	numSegs := nextPow2(ceilDiv(max(n, 1), int(float64(p.cfg.SegmentCapacity)*target)))
	if numSegs < p.cfg.SegmentsPerGate {
		numSegs = p.cfg.SegmentsPerGate
	}
	st := p.newState(numSegs / p.cfg.SegmentsPerGate)
	counts := rma.EvenCounts(n, numSegs)
	plans := make([]destPlan, len(st.gates))
	src := &sliceSource{ks: ks, vs: vs}
	for i := range st.gates {
		plans[i] = p.fillChunk(counts[i*st.spg:(i+1)*st.spg], st.b, src)
	}
	p.installState(st, plans, n)
	return st
}
