package core

import (
	"sort"
	"time"

	"pmago/internal/epoch"
)

// drainQueue is the active writer's loop of Section 3.5: with pQ installed,
// it repeatedly takes whatever accumulated in the queue and processes it with
// the configured policy, leaving the gate only once the queue is empty (or
// after handing work to the rebalancer).
func (p *PMA) drainQueue(st *state, g *gate, guard *epoch.Guard) {
	var reroute []op
	for {
		g.mu.Lock()
		ops := g.q.ops
		g.q.ops = nil
		if len(ops) == 0 {
			g.q = nil
			g.endExclusive() // the drain's mutations are complete
			g.lstate = lsFree
			g.cond.Broadcast()
			g.mu.Unlock()
			break
		}
		g.mu.Unlock()
		if m := p.metrics; m != nil {
			m.DrainSize.Observe(uint64(len(ops)))
		}

		var rest []op
		var released bool
		if p.cfg.Mode == ModeOneByOne {
			rest, released = p.drainOneByOne(st, g, ops)
		} else {
			rest, released = p.drainBatch(st, g, ops)
		}
		reroute = append(reroute, rest...)
		if released {
			break
		}
	}
	p.maybeRequestShrink(st)
	// Updates that no longer belong to this gate (its fences moved under a
	// global rebalance, or a racy index read misrouted their writer) are
	// replayed through the synchronous path.
	for _, o := range reroute {
		p.updateSyncInternal(o, guard)
	}
}

// drainOneByOne processes ops in arrival order through the normal in-gate
// path, preserving adaptive rebalancing. When an op forces a global
// rebalance, the writer stops accepting new updates (detaching pQ), transfers
// its latch to the rebalancer, and returns the residue for re-routing —
// exactly the policy described for the one-by-one scheme.
func (p *PMA) drainOneByOne(st *state, g *gate, ops []op) (reroute []op, released bool) {
	for i, o := range ops {
		if o.key < g.fenceLo || o.key > g.fenceHi {
			reroute = append(reroute, o)
			continue
		}
		if o.del {
			if g.del(o.key) {
				st.card.Add(-1)
			}
			continue
		}
		switch g.put(st, o.key, o.val) {
		case putInserted:
			st.card.Add(1)
		case putReplaced:
		case putNeedsGlobal:
			gen := g.rebGen
			g.mu.Lock()
			extra := g.q.ops
			g.q = nil // stop accepting
			// No version bump: the latch stays exclusively owned across
			// the transfer; the rebalancer's rebUnlock ends the odd
			// period this writer's acquisition began.
			g.lstate = lsTransferred
			g.mu.Unlock()
			if m := p.metrics; m != nil && len(extra) > 0 {
				m.DrainSize.Observe(uint64(len(extra)))
			}
			req := &request{kind: reqRebalance, st: st, g: g, gen: gen, pending: 1, done: make(chan struct{})}
			p.reb.submit(req)
			<-req.done
			reroute = append(reroute, o)
			reroute = append(reroute, ops[i+1:]...)
			reroute = append(reroute, extra...)
			return reroute, true
		}
	}
	return reroute, false
}

// drainBatch implements batch processing: deletions first, then the smallest
// calibrator window that fits all insertions is rebalanced with them merged
// in. When no in-chunk window fits, the batch is handed to the rebalancer,
// rate-limited by TDelay per gate; the latch is released but pQ stays set so
// the queue keeps absorbing updates until the rebalancer picks it up.
func (p *PMA) drainBatch(st *state, g *gate, ops []op) (reroute []op, released bool) {
	ins, dels, out := compactOps(ops, g.fenceLo, g.fenceHi)
	reroute = out

	removed := int64(0)
	for _, dk := range dels {
		if g.del(dk) {
			removed++
		}
	}
	if removed > 0 {
		st.card.Add(-removed)
	}
	if len(ins) == 0 {
		return reroute, false
	}
	if delta, ok := g.mergeLocal(st, ins); ok {
		st.card.Add(int64(delta))
		return reroute, false
	}

	p.handOffBatch(st, g, ins, false)
	return reroute, true
}

// handOffBatch hands key-sorted insert ops to the rebalancer as a batch
// request for gate g. The caller must hold the gate exclusively; the latch
// is released with pQ left set so the queue keeps absorbing updates until
// the rebalancer picks it up.
//
// On the asynchronous drain path (wait=false) the ops are prepended to the
// queue — they are older than anything writers combined meanwhile — and the
// request carries the gate's tdelay rate limit. On the synchronous batch
// path (wait=true) the ops ride on the request itself so they supersede any
// older op the master redistributes into the queue before pickup; the
// request is immediate and the call blocks until it has been served.
func (p *PMA) handOffBatch(st *state, g *gate, ins []op, wait bool) {
	var notBefore time.Time
	if !wait {
		// lastReb is read under the latch we still hold.
		nb := time.Unix(0, g.lastReb).Add(p.cfg.TDelay)
		if time.Now().Before(nb) {
			if m := p.metrics; m != nil {
				m.DeferredBatches.Inc()
			}
			notBefore = nb
		}
	}
	req := &request{kind: reqBatch, st: st, g: g, notBefore: notBefore}
	g.mu.Lock()
	switch {
	case wait:
		req.ins = ins
		req.done = make(chan struct{})
		if g.q == nil {
			g.q = &opQueue{}
		}
	case g.q != nil:
		pending := make([]op, 0, len(ins)+len(g.q.ops))
		pending = append(pending, ins...)
		pending = append(pending, g.q.ops...)
		g.q.ops = pending
	default:
		g.q = &opQueue{ops: ins}
	}
	g.pendingBatch = true
	g.endExclusive() // chunk mutations done; queue hand-off is mu-protected
	g.lstate = lsFree
	g.cond.Broadcast()
	g.mu.Unlock()
	p.reb.submit(req)
	if wait {
		<-req.done
	}
}

// compactOps reduces an op sequence to its final effect per key (later ops
// supersede earlier ones on the same key), split into key-sorted insert ops,
// sorted delete keys, and ops outside [lo, hi] that must be re-routed.
func compactOps(ops []op, lo, hi int64) (ins []op, dels []int64, reroute []op) {
	final := make(map[int64]op, len(ops))
	for _, o := range ops {
		if o.key < lo || o.key > hi {
			reroute = append(reroute, o)
			continue
		}
		final[o.key] = o
	}
	for _, o := range final {
		if o.del {
			dels = append(dels, o.key)
		} else {
			ins = append(ins, o)
		}
	}
	sort.Slice(ins, func(i, j int) bool { return ins[i].key < ins[j].key })
	sort.Slice(dels, func(i, j int) bool { return dels[i] < dels[j] })
	return ins, dels, reroute
}

// mergeSorted merges the chunk elements exK/exV with sorted unique insert
// ops, upsert-style (an insert with an existing key replaces its value).
func mergeSorted(exK, exV []int64, ins []op) (ks, vs []int64) {
	ks = make([]int64, 0, len(exK)+len(ins))
	vs = make([]int64, 0, len(exK)+len(ins))
	i, j := 0, 0
	for i < len(exK) && j < len(ins) {
		switch {
		case exK[i] < ins[j].key:
			ks = append(ks, exK[i])
			vs = append(vs, exV[i])
			i++
		case exK[i] == ins[j].key:
			ks = append(ks, ins[j].key)
			vs = append(vs, ins[j].val)
			i++
			j++
		default:
			ks = append(ks, ins[j].key)
			vs = append(vs, ins[j].val)
			j++
		}
	}
	for ; i < len(exK); i++ {
		ks = append(ks, exK[i])
		vs = append(vs, exV[i])
	}
	for ; j < len(ins); j++ {
		ks = append(ks, ins[j].key)
		vs = append(vs, ins[j].val)
	}
	return ks, vs
}

// updateSyncInternal applies one op through the synchronous path regardless
// of the configured mode. Used to re-route misdirected queued ops and by
// Flush.
func (p *PMA) updateSyncInternal(o op, guard *epoch.Guard) bool {
	for {
		st := p.state.Load()
		gi := clampGate(st.index.Lookup(o.key), len(st.gates))
		for {
			g := st.gates[gi]
			g.lockX()
			if g.invalid {
				g.unlockX()
				break
			}
			if o.key < g.fenceLo && gi > 0 {
				g.unlockX()
				gi--
				continue
			}
			if o.key > g.fenceHi && gi < len(st.gates)-1 {
				g.unlockX()
				gi++
				continue
			}
			if o.del {
				deleted := g.del(o.key)
				if deleted {
					st.card.Add(-1)
				}
				g.unlockX()
				return deleted
			}
			switch g.put(st, o.key, o.val) {
			case putReplaced:
				g.unlockX()
				return true
			case putInserted:
				st.card.Add(1)
				g.unlockX()
				return true
			default:
				p.requestGlobalAndWait(st, g, 1)
				guard.Refresh()
				break
			}
			break
		}
		guard.Refresh()
	}
}

// Flush forces every combining queue and every deferred batch to be applied.
// After Flush returns (and provided no new updates raced with it), reads
// observe all previously accepted updates. In ModeSync it is a no-op beyond
// a service round-trip.
func (p *PMA) Flush() {
	p.checkOpen()
	guard := p.epochs.Enter()
	defer guard.Leave()
	for {
		// Push all delayed batches through the rebalancer now.
		done := make(chan struct{})
		p.reb.submit(&request{kind: reqFlushDelayed, done: done})
		<-done
		if !p.sweepQueues(guard) {
			return
		}
	}
}

// sweepQueues steals every idle gate's combining queue and replays its ops
// synchronously, reporting whether anything was found.
func (p *PMA) sweepQueues(guard *epoch.Guard) bool {
	stole := false
	st := p.state.Load()
	for gi := 0; gi < len(st.gates); gi++ {
		g := st.gates[gi]
		g.mu.Lock()
		if g.invalid {
			g.mu.Unlock()
			return true // resized under us: report dirty so Flush retries
		}
		var ops []op
		if g.q != nil && g.lstate == lsFree && !g.rebWanted {
			ops = g.q.ops
			g.q = nil
			g.pendingBatch = false
		}
		g.mu.Unlock()
		if len(ops) > 0 {
			if m := p.metrics; m != nil {
				m.DrainSize.Observe(uint64(len(ops)))
			}
			stole = true
			for _, o := range ops {
				p.updateSyncInternal(o, guard)
			}
		}
	}
	return stole
}
