package core

import (
	"sync"
	"testing"
	"time"
)

// TestNoOpsLostUnderBatchPressure is a regression test for a bug where a
// shrink request that could not materialise (pending inserts absorbed from
// the combining queues inflated the element count past the shrink guard)
// detached every gate's queue and then returned, dropping tens of thousands
// of accepted updates. With an effectively infinite TDelay every overflow is
// funnelled through the rebalancer's queues, maximising the exposure.
func TestNoOpsLostUnderBatchPressure(t *testing.T) {
	cfg := testConfig(ModeBatch)
	cfg.TDelay = time.Hour
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	const writers = 4
	const per = 20_000
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				p.Put(int64(w*1_000_000+i), 1)
			}
		}(w)
	}
	wg.Wait()
	p.Flush()
	if got := p.Len(); got != writers*per {
		missing := 0
		for w := 0; w < writers; w++ {
			for i := 0; i < per; i++ {
				if _, ok := p.Get(int64(w*1_000_000 + i)); !ok {
					missing++
				}
			}
		}
		t.Fatalf("Len = %d, want %d (%d keys unreachable)", got, writers*per, missing)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestShrinkDuringBatchBacklog exercises the same machinery with deletes in
// the mix, so shrink requests genuinely fire while queues hold backlogs.
func TestShrinkDuringBatchBacklog(t *testing.T) {
	cfg := testConfig(ModeBatch)
	cfg.TDelay = 50 * time.Millisecond
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	const n = 30_000
	for i := int64(0); i < n; i++ {
		p.Put(i, i)
	}
	p.Flush()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := int64(w); i < n; i += 4 {
				if i%3 == 0 {
					p.Delete(i)
				} else {
					p.Put(n+i, i)
				}
			}
		}(w)
	}
	wg.Wait()
	p.Flush()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	// Recount: every surviving key must be reachable.
	expect := map[int64]bool{}
	for i := int64(0); i < n; i++ {
		expect[i] = true
	}
	for w := int64(0); w < 4; w++ {
		for i := w; i < n; i += 4 {
			if i%3 == 0 {
				delete(expect, i)
			} else {
				expect[n+i] = true
			}
		}
	}
	if p.Len() != len(expect) {
		t.Fatalf("Len = %d, want %d", p.Len(), len(expect))
	}
	for k := range expect {
		if _, ok := p.Get(k); !ok {
			t.Fatalf("key %d lost", k)
		}
	}
}
