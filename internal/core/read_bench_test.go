package core

import "testing"

// benchGet measures single-threaded random Get over a 1M-element store —
// the uncontended comparison between the seqlock fast path and the
// shared-latch baseline (the multi-threaded mixes live in
// internal/bench/reads.go behind `pmabench -experiment reads`).
func benchGet(b *testing.B, disable bool) {
	cfg := DefaultConfig()
	cfg.DisableOptimisticReads = disable
	const n = 1 << 20
	keys := make([]int64, n)
	vals := make([]int64, n)
	for i := range keys {
		keys[i] = int64(i)*2 + 1
		vals[i] = keys[i]
	}
	p, err := BulkLoad(cfg, keys, vals)
	if err != nil {
		b.Fatal(err)
	}
	defer p.Close()
	b.ResetTimer()
	rng := int64(1)
	for i := 0; i < b.N; i++ {
		rng = rng*6364136223846793005 + 1442695040888963407
		k := keys[(uint64(rng)>>16)%uint64(n)]
		p.Get(k)
	}
}

func BenchmarkGetOptimistic(b *testing.B) { benchGet(b, false) }
func BenchmarkGetLatched(b *testing.B)    { benchGet(b, true) }
