package core

import "testing"

// benchGet measures single-threaded random Get over a 1M-element store —
// the uncontended comparison between the seqlock fast path and the
// shared-latch baseline (the multi-threaded mixes live in
// internal/bench/reads.go behind `pmabench -experiment reads`). The
// metricsOff variant is the observability overhead guard: it must stay
// within a few percent of the default (metrics-on) cell, and both must run
// allocation-free (TestGetDoesNotAllocate pins that).
func benchGet(b *testing.B, mutate func(*Config)) {
	cfg := DefaultConfig()
	mutate(&cfg)
	const n = 1 << 20
	keys := make([]int64, n)
	vals := make([]int64, n)
	for i := range keys {
		keys[i] = int64(i)*2 + 1
		vals[i] = keys[i]
	}
	p, err := BulkLoad(cfg, keys, vals)
	if err != nil {
		b.Fatal(err)
	}
	defer p.Close()
	b.ReportAllocs()
	b.ResetTimer()
	rng := int64(1)
	for i := 0; i < b.N; i++ {
		rng = rng*6364136223846793005 + 1442695040888963407
		k := keys[(uint64(rng)>>16)%uint64(n)]
		p.Get(k)
	}
}

func BenchmarkGetOptimistic(b *testing.B) { benchGet(b, func(*Config) {}) }
func BenchmarkGetLatched(b *testing.B) {
	benchGet(b, func(c *Config) { c.DisableOptimisticReads = true })
}
func BenchmarkGetMetricsOff(b *testing.B) {
	benchGet(b, func(c *Config) { c.DisableMetrics = true })
}

// TestGetDoesNotAllocate pins the read path's zero-allocation contract in
// both metrics modes: the striped counters increment in place (the stripe
// index comes from a stack address, not a heap handle), and the disabled
// path is a single nil check. CI asserts the same property on the
// BenchmarkGetMetricsOff output.
func TestGetDoesNotAllocate(t *testing.T) {
	for _, tc := range []struct {
		name    string
		disable bool
	}{{"metrics-on", false}, {"metrics-off", true}} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := DefaultConfig()
			cfg.DisableMetrics = tc.disable
			const n = 1 << 12
			keys := make([]int64, n)
			vals := make([]int64, n)
			for i := range keys {
				keys[i] = int64(i)*2 + 1
				vals[i] = keys[i]
			}
			p, err := BulkLoad(cfg, keys, vals)
			if err != nil {
				t.Fatal(err)
			}
			defer p.Close()
			rng := int64(1)
			avg := testing.AllocsPerRun(1000, func() {
				rng = rng*6364136223846793005 + 1442695040888963407
				p.Get(keys[(uint64(rng)>>16)%uint64(n)])
			})
			if avg != 0 {
				t.Errorf("Get allocates %.2f objects/op, want 0", avg)
			}
		})
	}
}
