package core

import (
	"sync"

	"pmago/internal/codec"
	"pmago/internal/obs"
	"pmago/internal/rma"
)

// Compressed chunk storage (CPMA-style). When Config.CompressedChunks is
// set, each segment's pairs are stored as one delta block (internal/codec:
// uvarint count, zigzag first key, uvarint key gaps, zigzag values) instead
// of fixed 16-byte slots in a rewire.Buffer. The gate's derived structure —
// segCard, smin, gcard, fences — is unchanged, so findSeg, the calibrator
// windows and all fence math work without touching the payload; only the
// operations that read or write actual pairs decode, and they decode one
// segment at a time into pooled scratch.
//
// Concurrency contract. Latched paths (exclusive or shared) see well-formed
// payloads by invariant and panic on a decode failure. The optimistic read
// paths (getRacyC, collectRacyC) run concurrently with in-place re-encodes,
// so every byte they read may be garbage: they clamp the payload length to
// the backing array, lean on the hardened decoder (bounded appends, decode
// or error, never a fault) and let the caller's seqlock version check
// discard the result. -race builds never reach them — read.go compiles the
// optimistic paths out entirely.

// encSeg is one segment's encoded payload. data is allocated with len ==
// cap and never resliced, so its slice header is immutable for the
// pointee's lifetime; n is the payload's live prefix. Growing past cap
// publishes a fresh *encSeg with a single pointer store into gate.enc —
// the same single-word publication discipline as the rewire buffer swap —
// while same-size rewrites mutate data/n in place under the latch, which
// racy readers tolerate per the contract above.
type encSeg struct {
	data []byte
	n    int32
}

// cScratch is one decode/encode workspace: ks/vs take a decoded segment
// (or a gathered window — capacity is a full chunk), mk/mv take merge and
// gather results, eb takes one segment's encoding.
type cScratch struct {
	ks, vs []int64
	mk, mv []int64
	eb     []byte
}

// cctx is the store-wide context for compressed gates: the scratch pool
// and the metrics sink, reachable from gate methods that have no *PMA.
type cctx struct {
	pool    sync.Pool
	chunk   int // spg * b: slots per chunk
	b       int // slots per segment
	metrics *obs.CoreMetrics
}

func newCctx(spg, b int, m *obs.CoreMetrics) *cctx {
	c := &cctx{chunk: spg * b, b: b, metrics: m}
	c.pool.New = func() any {
		return &cScratch{
			ks: make([]int64, 0, c.chunk),
			vs: make([]int64, 0, c.chunk),
			mk: make([]int64, 0, c.chunk),
			mv: make([]int64, 0, c.chunk),
			eb: make([]byte, 0, codec.MaxEncodedLen(c.b)),
		}
	}
	return c
}

func (c *cctx) get() *cScratch  { return c.pool.Get().(*cScratch) }
func (c *cctx) put(s *cScratch) { c.pool.Put(s) }

// decodeSegInto appends segment s's pairs to dk/dv. The caller holds the
// latch, so the payload is well-formed by invariant: a decode error or
// count mismatch here means corrupted memory, and failing loudly beats
// serving wrong answers.
func (g *gate) decodeSegInto(s int, dk, dv []int64) ([]int64, []int64) {
	c := g.segCard[s]
	if c == 0 {
		return dk, dv
	}
	e := g.enc[s]
	base := len(dk)
	dk, dv, err := codec.DecodeBlock(e.data[:e.n], dk, dv, g.b)
	if err != nil || len(dk)-base != c {
		panic("core: corrupt compressed segment")
	}
	if m := g.cc.metrics; m != nil {
		m.SegDecodes.Inc()
	}
	return dk, dv
}

func (g *gate) decodeSeg(s int, sc *cScratch) ([]int64, []int64) {
	return g.decodeSegInto(s, sc.ks[:0], sc.vs[:0])
}

// encodeSegPairs rewrites segment s to hold exactly ks/vs, reusing the
// existing backing array when the new payload fits and publishing a fresh
// encSeg (with growth slack) otherwise. The caller holds the latch
// exclusively and still owns segCard/smin bookkeeping.
func (g *gate) encodeSegPairs(s int, ks, vs []int64, sc *cScratch) {
	e := g.enc[s]
	var old int64
	if e != nil {
		old = int64(e.n)
	}
	if len(ks) == 0 {
		if e != nil {
			e.n = 0
		}
		g.encBytes.Add(-old)
		return
	}
	p := codec.AppendBlock(sc.eb[:0], ks, vs)
	if e != nil && len(p) <= len(e.data) {
		copy(e.data, p)
		e.n = int32(len(p))
	} else {
		nd := make([]byte, len(p)+len(p)/4+16)
		copy(nd, p)
		g.enc[s] = &encSeg{data: nd, n: int32(len(p))}
	}
	g.encBytes.Add(int64(len(p)) - old)
	if m := g.cc.metrics; m != nil {
		m.ReencodeBytes.Add(uint64(len(p)))
	}
}

// getC is get for compressed chunks: decode the one covering segment and
// binary-search the scratch copy.
func (g *gate) getC(k int64) (int64, bool) {
	s := g.findSeg(k)
	if g.segCard[s] == 0 {
		return 0, false
	}
	sc := g.cc.get()
	defer g.cc.put(sc)
	ks, vs := g.decodeSeg(s, sc)
	if i := searchKeys(ks, k); i < len(ks) && ks[i] == k {
		return vs[i], true
	}
	return 0, false
}

// getRacyC is getC under the optimistic-read torn-read discipline: slice
// headers copied once and length-checked, the payload length clamped to
// its array, the decode bounded and allowed to fail. The caller discards
// the result unless the gate version validates.
func (g *gate) getRacyC(k int64) (int64, bool) {
	enc, segCard, smin := g.enc, g.segCard, g.smin
	if len(enc) < g.spg || len(smin) < g.spg || len(segCard) < g.spg {
		return 0, false // torn headers; the version check will reject
	}
	s := findSegIn(smin, g.spg, k)
	e := enc[s]
	if e == nil {
		return 0, false
	}
	n := int(e.n)
	if n <= 0 {
		return 0, false
	}
	if n > len(e.data) {
		n = len(e.data)
	}
	sc := g.cc.get()
	defer g.cc.put(sc)
	if m := g.cc.metrics; m != nil {
		m.SegDecodes.Inc()
	}
	ks, vs, err := codec.DecodeBlock(e.data[:n], sc.ks[:0], sc.vs[:0], g.b)
	if err != nil {
		return 0, false
	}
	if i := searchKeys(ks, k); i < len(ks) && ks[i] == k {
		return vs[i], true
	}
	return 0, false
}

// putC is put for compressed chunks: decode the target segment, modify the
// scratch copy, re-encode. Escalation (local window rebalance, then
// putNeedsGlobal) mirrors the uncompressed path exactly.
func (g *gate) putC(st *state, k, v int64) putResult {
	sc := g.cc.get()
	defer g.cc.put(sc)
	s := g.findSeg(k)
	ks, vs := g.decodeSeg(s, sc)
	i := searchKeys(ks, k)
	if i < len(ks) && ks[i] == k {
		vs[i] = v
		g.encodeSegPairs(s, ks, vs, sc)
		return putReplaced
	}
	if g.segCard[s] == g.b {
		ws, we, ok := g.localInsertWindow(st, s, 1)
		if !ok {
			return putNeedsGlobal
		}
		g.rebalanceLocalC(ws, we, sc)
		if m := st.p.metrics; m != nil {
			m.LocalRebalances.Inc()
		}
		s = g.findSeg(k)
		ks, vs = g.decodeSeg(s, sc)
		i = searchKeys(ks, k)
	}
	ks = append(ks, 0)
	copy(ks[i+1:], ks[i:])
	ks[i] = k
	vs = append(vs, 0)
	copy(vs[i+1:], vs[i:])
	vs[i] = v
	g.encodeSegPairs(s, ks, vs, sc)
	g.segCard[s]++
	g.gcard++
	if i == 0 {
		g.setSegMin(s, k)
	}
	if g.pred != nil {
		g.pred.Record(k)
	}
	return putInserted
}

// delC is del for compressed chunks.
func (g *gate) delC(k int64) bool {
	s := g.findSeg(k)
	if g.segCard[s] == 0 {
		return false
	}
	sc := g.cc.get()
	defer g.cc.put(sc)
	ks, vs := g.decodeSeg(s, sc)
	i := searchKeys(ks, k)
	if i == len(ks) || ks[i] != k {
		return false
	}
	copy(ks[i:], ks[i+1:])
	copy(vs[i:], vs[i+1:])
	ks = ks[:len(ks)-1]
	vs = vs[:len(vs)-1]
	g.encodeSegPairs(s, ks, vs, sc)
	g.segCard[s]--
	g.gcard--
	if i == 0 {
		if len(ks) > 0 {
			g.setSegMin(s, ks[0])
		} else {
			g.clearSegMin(s)
		}
	}
	return true
}

// rebalanceLocalC redistributes segments [ws, we) of a compressed chunk:
// decode the window into scratch, re-encode it spread across the segments.
func (g *gate) rebalanceLocalC(ws, we int, sc *cScratch) {
	ks, vs := g.gatherLocalC(ws, we, sc)
	g.spreadLocalC(ws, we, ks, vs, sc)
}

// gatherLocalC decodes the window's elements into sc.mk/sc.mv in key order.
func (g *gate) gatherLocalC(ws, we int, sc *cScratch) (ks, vs []int64) {
	ks, vs = sc.mk[:0], sc.mv[:0]
	for s := ws; s < we; s++ {
		ks, vs = g.decodeSegInto(s, ks, vs)
	}
	return ks, vs
}

// spreadLocalC writes the sorted elements across segments [ws, we),
// re-encoding each segment and refreshing cardinalities and minima. Unlike
// refreshMinima it reads the minima from the gathered keys — the encoded
// payloads would need another decode.
func (g *gate) spreadLocalC(ws, we int, ks, vs []int64, sc *cScratch) {
	m := we - ws
	var counts []int
	if g.pred != nil {
		counts = g.pred.AdaptiveCounts(ks, m, g.b)
	} else {
		counts = rma.EvenCounts(len(ks), m)
	}
	pos := 0
	for i := 0; i < m; i++ {
		s := ws + i
		c := counts[i]
		g.encodeSegPairs(s, ks[pos:pos+c], vs[pos:pos+c], sc)
		g.segCard[s] = c
		pos += c
	}
	inherit := int64(rma.KeyMax)
	if we < g.spg {
		inherit = g.smin[we]
	}
	for i := m - 1; i >= 0; i-- {
		s := ws + i
		pos -= counts[i]
		if counts[i] > 0 {
			g.smin[s] = ks[pos]
			inherit = ks[pos]
		} else {
			g.smin[s] = inherit
		}
	}
	for s := ws - 1; s >= 0 && g.segCard[s] == 0; s-- {
		g.smin[s] = inherit
	}
}

// mergeOpsInto merges sorted existing pairs with a key-sorted, deduplicated
// insert run into dk/dv (append semantics), with inserts winning on equal
// keys — the scratch-friendly sibling of mergeSorted (async.go).
func mergeOpsInto(dk, dv, exK, exV []int64, ins []op) ([]int64, []int64) {
	i, j := 0, 0
	for i < len(exK) && j < len(ins) {
		switch {
		case exK[i] < ins[j].key:
			dk = append(dk, exK[i])
			dv = append(dv, exV[i])
			i++
		case exK[i] > ins[j].key:
			dk = append(dk, ins[j].key)
			dv = append(dv, ins[j].val)
			j++
		default:
			dk = append(dk, ins[j].key)
			dv = append(dv, ins[j].val)
			i++
			j++
		}
	}
	for ; i < len(exK); i++ {
		dk = append(dk, exK[i])
		dv = append(dv, exV[i])
	}
	for ; j < len(ins); j++ {
		dk = append(dk, ins[j].key)
		dv = append(dv, ins[j].val)
	}
	return dk, dv
}

// mergeBySegmentC is mergeBySegment for compressed chunks: the same
// all-or-nothing two-pass shape, but each touched segment is decoded,
// merged into scratch and re-encoded once instead of block-moved in place.
func (g *gate) mergeBySegmentC(ins []op) (int, bool) {
	sc := g.cc.get()
	defer g.cc.put(sc)
	type group struct {
		s, lo, hi int // ins[lo:hi] targets segment s
		fresh     int // keys in the group not already stored
	}
	groups := make([]group, 0, g.spg)
	for lo := 0; lo < len(ins); {
		s := g.findSeg(ins[lo].key)
		hi := lo + 1
		for hi < len(ins) && g.findSeg(ins[hi].key) == s {
			hi++
		}
		ks, _ := g.decodeSeg(s, sc)
		fresh := 0
		for _, o := range ins[lo:hi] {
			i := searchKeys(ks, o.key)
			if i == len(ks) || ks[i] != o.key {
				fresh++
			}
		}
		if g.segCard[s]+fresh > g.b {
			return 0, false
		}
		groups = append(groups, group{s: s, lo: lo, hi: hi, fresh: fresh})
		lo = hi
	}
	delta := 0
	for _, gr := range groups {
		ks, vs := g.decodeSeg(gr.s, sc)
		mk, mv := mergeOpsInto(sc.mk[:0], sc.mv[:0], ks, vs, ins[gr.lo:gr.hi])
		g.encodeSegPairs(gr.s, mk, mv, sc)
		g.segCard[gr.s] = len(mk)
		g.gcard += gr.fresh
		delta += gr.fresh
		if g.smin[gr.s] != mk[0] {
			g.setSegMin(gr.s, mk[0])
		}
	}
	return delta, true
}

// mergeLocalC is mergeLocal for compressed chunks: a single-segment merge
// re-encodes once; the window path gathers decoded pairs, merges and
// spreads re-encoded segments under the same calibrator thresholds.
func (g *gate) mergeLocalC(st *state, ins []op) (int, bool) {
	n := len(ins)
	sc := g.cc.get()
	defer g.cc.put(sc)
	s0 := g.findSeg(ins[0].key)
	s1 := g.findSeg(ins[n-1].key)

	if s0 == s1 && g.segCard[s0]+n <= g.b {
		ks, vs := g.decodeSeg(s0, sc)
		mk, mv := mergeOpsInto(sc.mk[:0], sc.mv[:0], ks, vs, ins)
		delta := len(mk) - len(ks)
		g.encodeSegPairs(s0, mk, mv, sc)
		g.segCard[s0] = len(mk)
		g.gcard += delta
		if g.smin[s0] != mk[0] {
			g.setSegMin(s0, mk[0])
		}
		return delta, true
	}

	h := st.height
	maxLevel := log2(g.spg) + 1
	for k := 2; k <= maxLevel; k++ {
		w := 1 << (k - 1)
		ws := s0 &^ (w - 1)
		we := ws + w
		if s1 >= we {
			continue // window does not cover the batch's key span
		}
		cardW := 0
		for i := ws; i < we; i++ {
			cardW += g.segCard[i]
		}
		_, tau := st.thresholds(k, h)
		if float64(cardW+n) <= tau*float64(w*g.b) && cardW+n <= w*(g.b-1) {
			exK, exV := g.gatherLocalC(ws, we, sc)
			ks, vs := mergeSorted(exK, exV, ins)
			g.spreadLocalC(ws, we, ks, vs, sc)
			delta := len(ks) - len(exK)
			g.gcard += delta
			if m := st.p.metrics; m != nil {
				m.LocalRebalances.Inc()
			}
			return delta, true
		}
	}
	return 0, false
}

// scanFromC streams the chunk's elements with key in [from, hi] in order,
// decoding one segment at a time into pooled scratch.
func (g *gate) scanFromC(from, hi int64, fn func(k, v int64) bool) bool {
	sc := g.cc.get()
	defer g.cc.put(sc)
	for s := g.findSeg(from); s < g.spg; s++ {
		if g.segCard[s] == 0 {
			continue
		}
		ks, vs := g.decodeSeg(s, sc)
		i := 0
		if ks[0] < from {
			// Only the covering segment can hold keys below from: minima
			// are non-decreasing, so every later segment starts above it.
			i = searchKeys(ks, from)
		}
		for ; i < len(ks); i++ {
			if ks[i] > hi {
				return true
			}
			if !fn(ks[i], vs[i]) {
				return false
			}
		}
	}
	return true
}

// collectRacyC is collectRacy for compressed chunks: bounded clamped
// decodes per segment, at most spg*b appends in total, result meaningless
// unless the caller validates the gate version afterwards. Each segment
// decodes straight into the destination buffers — no intermediate scratch,
// no per-pair range checks — with the [from, hi] trim done by binary
// search on the decoded run: only the covering segment can hold keys below
// from, and a key above hi ends the whole collection. A decode error keeps
// the pairs recovered before it — garbage either truncates the copy or
// admits out-of-range elements, both discarded with the failed validation.
func (g *gate) collectRacyC(from, hi int64, ks, vs []int64) ([]int64, []int64) {
	enc, segCard, smin := g.enc, g.segCard, g.smin
	if len(enc) < g.spg || len(smin) < g.spg || len(segCard) < g.spg {
		return ks, vs
	}
	first := true
	for s := findSegIn(smin, g.spg, from); s < g.spg; s++ {
		if clampCard(segCard[s], g.b) == 0 {
			continue
		}
		e := enc[s]
		if e == nil {
			continue
		}
		n := int(e.n)
		if n <= 0 {
			continue
		}
		if n > len(e.data) {
			n = len(e.data)
		}
		if m := g.cc.metrics; m != nil {
			m.SegDecodes.Inc()
		}
		kb, vb := len(ks), len(vs)
		dk, dv, err := codec.DecodeBlock(e.data[:n], ks, vs, g.b)
		if err != nil {
			// Keep pairs aligned across a partial decode (keys are
			// appended before values, so the key run can be longer).
			if nk, nv := len(dk)-kb, len(dv)-vb; nk > nv {
				dk = dk[:kb+nv]
			} else if nv > nk {
				dv = dv[:vb+nk]
			}
		}
		ks, vs = dk, dv
		if first {
			first = false
			if cut := kb + searchKeys(ks[kb:], from); cut > kb {
				kept := copy(ks[kb:], ks[cut:])
				copy(vs[kb:], vs[cut:])
				ks, vs = ks[:kb+kept], vs[:vb+kept]
			}
		}
		if l := len(ks); l > kb && ks[l-1] > hi {
			cut := kb + searchKeys(ks[kb:], hi+1)
			return ks[:cut], vs[:cut]
		}
	}
	return ks, vs
}
