package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// stressVal is the model every stress writer maintains: the value stored
// under k is always stressVal(k). A torn optimistic read — a value from a
// half-completed mutation, a value paired with the wrong key, or data from a
// retired gate's recycled buffer — is overwhelmingly likely to break the
// relation, so checking it on every Get/Scan turns the readers into a
// torn-read detector for the seqlock protocol.
func stressVal(k int64) int64 { return k*31 + 7 }

// TestOptimisticReadStress hammers the optimistic Get/Scan path against
// concurrent point updates, batch updates, rebalances and resizes, in every
// mode, validating all read results against the model — the torn-read
// detector for the seqlock protocol. The last sub-test runs the same load
// with DisableOptimisticReads so the shared-latch path keeps equivalent
// coverage. Under -race every sub-test reads latched (the fast path is
// compiled out; race_on.go), which is exactly the configuration the
// detector can verify; normal builds are where the seqlock itself is
// checked.
func TestOptimisticReadStress(t *testing.T) {
	for _, mode := range allModes() {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) { stressReads(t, mode, false, false) })
		t.Run(mode.String()+"-compressed", func(t *testing.T) { stressReads(t, mode, false, true) })
	}
	t.Run("latched-fallback", func(t *testing.T) { stressReads(t, ModeBatch, true, false) })
	t.Run("latched-fallback-compressed", func(t *testing.T) { stressReads(t, ModeBatch, true, true) })
}

func stressReads(t *testing.T, mode Mode, disableOptimistic, compressed bool) {
	cfg := testConfig(mode)
	cfg.DisableOptimisticReads = disableOptimistic
	cfg.CompressedChunks = compressed
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	const domain = 1 << 14
	keys := make([]int64, 0, domain/2)
	vals := make([]int64, 0, domain/2)
	for k := int64(0); k < domain; k += 2 {
		keys = append(keys, k)
		vals = append(vals, stressVal(k))
	}
	p.PutBatch(keys, vals)
	p.Flush()

	dur := 600 * time.Millisecond
	if testing.Short() {
		dur = 150 * time.Millisecond
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var reads, scans atomic.Int64
	fail := make(chan string, 8)
	report := func(format string, args ...any) {
		select {
		case fail <- fmt.Sprintf(format, args...):
		default:
		}
	}

	// Point writers: churn inserts and deletes across the whole domain so
	// local and global rebalances fire constantly.
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := seed
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				rng = rng*6364136223846793005 + 1442695040888963407
				k := (rng >> 16) & (domain - 1)
				if i%3 == 0 {
					p.Delete(k)
				} else {
					p.Put(k, stressVal(k))
				}
			}
		}(int64(w + 1))
	}

	// Batch writer: block inserts and deletes big enough to force gate
	// hand-offs and grow/shrink resizes.
	wg.Add(1)
	go func() {
		defer wg.Done()
		const block = 4096
		bk := make([]int64, block)
		bv := make([]int64, block)
		for round := int64(0); ; round++ {
			select {
			case <-stop:
				return
			default:
			}
			base := (round * 7919) % domain
			for i := range bk {
				bk[i] = (base + int64(i)*3) % domain
				bv[i] = stressVal(bk[i])
			}
			if round%2 == 0 {
				p.PutBatch(bk, bv)
			} else {
				p.DeleteBatch(bk[: block/2 : block/2])
			}
		}
	}()

	// Get readers: any found value must satisfy the model.
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := seed
			for {
				select {
				case <-stop:
					return
				default:
				}
				rng = rng*6364136223846793005 + 1442695040888963407
				k := (rng >> 16) & (domain - 1)
				if v, ok := p.Get(k); ok && v != stressVal(k) {
					report("Get(%d) = %d, want %d (torn read)", k, v, stressVal(k))
					return
				}
				reads.Add(1)
			}
		}(int64(100 + r))
	}

	// Scanner: windows must come back strictly ascending, in range, and
	// model-consistent.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := int64(42)
		for {
			select {
			case <-stop:
				return
			default:
			}
			rng = rng*6364136223846793005 + 1442695040888963407
			lo := (rng >> 16) & (domain - 1)
			hi := lo + 2048
			prev := int64(-1)
			ok := true
			p.Scan(lo, hi, func(k, v int64) bool {
				switch {
				case k < lo || k > hi:
					report("Scan[%d,%d] visited out-of-range key %d", lo, hi, k)
				case k <= prev:
					report("Scan[%d,%d] keys not strictly ascending: %d after %d", lo, hi, k, prev)
				case v != stressVal(k):
					report("Scan[%d,%d] value %d for key %d, want %d (torn read)", lo, hi, v, k, stressVal(k))
				default:
					prev = k
					return true
				}
				ok = false
				return false
			})
			if !ok {
				return
			}
			scans.Add(1)
		}
	}()

	time.Sleep(dur)
	close(stop)
	wg.Wait()
	select {
	case msg := <-fail:
		t.Fatalf("mode %v (optimistic=%v): %s", mode, !disableOptimistic, msg)
	default:
	}
	p.Flush()
	if err := p.Validate(); err != nil {
		t.Fatalf("mode %v: %v", mode, err)
	}
	if reads.Load() == 0 || scans.Load() == 0 {
		t.Fatalf("mode %v: readers made no progress (reads=%d scans=%d)", mode, reads.Load(), scans.Load())
	}
	t.Logf("mode %v optimistic=%v race=%v: %d gets, %d scans, stats %+v",
		mode, !disableOptimistic, raceEnabled, reads.Load(), scans.Load(), p.Stats())
}

// TestReadDuringResizeHandOff pins down the retired-gate hand-off: while a
// batch writer forces the array through repeated grow and shrink resizes
// (which invalidate every gate and recycle its buffer into the new state),
// readers continuously Get and Scan a fixed set of canary keys that are
// never mutated. If the optimistic path ever validated a read against a
// retired gate — whose buffer may already hold another gate's data — a
// canary would come back missing, with a wrong value, or out of order.
func TestReadDuringResizeHandOff(t *testing.T) {
	cfg := testConfig(ModeBatch)
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	// Canaries are the odd keys; all transient churn uses even keys.
	const numCanaries = 64
	const spread = 10_000
	canaries := make([]int64, numCanaries)
	cvals := make([]int64, numCanaries)
	for i := range canaries {
		canaries[i] = int64(i)*spread + 1
		cvals[i] = stressVal(canaries[i])
	}
	p.PutBatch(canaries, cvals)
	p.Flush()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	fail := make(chan string, 4)
	report := func(format string, args ...any) {
		select {
		case fail <- fmt.Sprintf(format, args...):
		default:
		}
	}

	// Get readers over the canaries.
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := seed; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				k := canaries[i%numCanaries]
				v, ok := p.Get(k)
				if !ok {
					report("canary %d disappeared mid-resize", k)
					return
				}
				if v != stressVal(k) {
					report("canary %d = %d, want %d (retired-gate read?)", k, v, stressVal(k))
					return
				}
			}
		}(r * 7)
	}

	// Scanner: every full scan must surface exactly the canaries among the
	// odd keys, in order.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			seen := 0
			ok := true
			p.ScanAll(func(k, v int64) bool {
				if k&1 == 0 {
					return true // transient churn
				}
				if seen >= numCanaries || k != canaries[seen] {
					report("scan: unexpected odd key %d at canary position %d", k, seen)
					ok = false
					return false
				}
				if v != stressVal(k) {
					report("scan: canary %d = %d, want %d", k, v, stressVal(k))
					ok = false
					return false
				}
				seen++
				return true
			})
			if !ok {
				return
			}
			if seen != numCanaries {
				report("scan: saw %d canaries, want %d", seen, numCanaries)
				return
			}
		}
	}()

	// Resizer: a block big enough to force growth well past the canary
	// footprint, then deleted again to trigger the shrink path.
	const block = 6_000
	bk := make([]int64, block)
	bv := make([]int64, block)
	wantResizes := uint64(6)
	if testing.Short() {
		wantResizes = 2
	}
	deadline := time.Now().Add(20 * time.Second)
	for round := int64(0); p.Stats().Rebalance.Resizes < wantResizes && time.Now().Before(deadline); round++ {
		for i := range bk {
			bk[i] = ((round*31 + int64(i)*2) % (numCanaries * spread)) &^ 1
			bv[i] = stressVal(bk[i])
		}
		p.PutBatch(bk, bv)
		p.DeleteBatch(bk)
		// Round-trip the master so the asynchronous shrink request runs
		// before the next growth round (on a single-CPU box the busy
		// client loop can otherwise starve the master goroutine).
		p.Flush()
		select {
		case msg := <-fail:
			t.Fatal(msg)
		default:
		}
	}
	close(stop)
	wg.Wait()
	select {
	case msg := <-fail:
		t.Fatal(msg)
	default:
	}
	if got := p.Stats().Rebalance.Resizes; got < wantResizes {
		t.Fatalf("churn produced only %d resizes, want >= %d — test did not exercise the hand-off", got, wantResizes)
	}
	p.Flush()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestSeqlockVersionParity is the white-box protocol check: the version must
// be odd exactly while the latch is held exclusively, across every
// acquisition path including the writer→transferred→rebalancer hand-off
// (which must not double-bump).
func TestSeqlockVersionParity(t *testing.T) {
	p := newTest(t, ModeSync)
	g := p.state.Load().gates[0]

	check := func(stage string, wantOdd bool) {
		t.Helper()
		if odd := g.version.Load()&1 == 1; odd != wantOdd {
			t.Fatalf("%s: version %d odd=%v, want odd=%v", stage, g.version.Load(), odd, wantOdd)
		}
	}
	check("initial", false)

	g.lockX()
	check("after lockX", true)
	g.unlockX()
	check("after unlockX", false)

	g.rebLock()
	check("after rebLock from free", true)
	g.rebUnlock()
	check("after rebUnlock", false)

	g.lockX()
	g.transferToReb()
	check("after transferToReb", true)
	g.rebLock() // adopts the transferred latch; must not bump again
	check("after rebLock adoption", true)
	g.rebUnlock()
	check("after hand-off rebUnlock", false)

	g.lockShared()
	check("under shared latch", false)
	g.unlockShared()
}
