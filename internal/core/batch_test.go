package core

import (
	"math/rand"
	"sort"
	"sync"
	"testing"

	"pmago/internal/rma"
)

// checkAgainstModel verifies that the PMA holds exactly the model's pairs in
// ascending key order and that every structural invariant holds.
func checkAgainstModel(t *testing.T, p *PMA, model map[int64]int64, label string) {
	t.Helper()
	p.Flush()
	if p.Len() != len(model) {
		t.Fatalf("%s: Len = %d, want %d", label, p.Len(), len(model))
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("%s: %v", label, err)
	}
	want := make([]int64, 0, len(model))
	for k := range model {
		want = append(want, k)
	}
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	i := 0
	p.ScanAll(func(k, v int64) bool {
		if i >= len(want) {
			t.Fatalf("%s: scan visited extra key %d", label, k)
		}
		if k != want[i] || v != model[k] {
			t.Fatalf("%s: scan[%d] = %d/%d, want %d/%d", label, i, k, v, want[i], model[want[i]])
		}
		i++
		return true
	})
	if i != len(want) {
		t.Fatalf("%s: scan visited %d keys, want %d", label, i, len(want))
	}
}

func TestPutBatchSorted(t *testing.T) {
	for _, mode := range allModes() {
		p := newTest(t, mode)
		keys := make([]int64, 5000)
		vals := make([]int64, 5000)
		model := map[int64]int64{}
		for i := range keys {
			keys[i] = int64(i) * 3
			vals[i] = int64(i) * 30
			model[keys[i]] = vals[i]
		}
		p.PutBatch(keys, vals)
		checkAgainstModel(t, p, model, mode.String()+"/sorted")
	}
}

func TestPutBatchUnsorted(t *testing.T) {
	for _, mode := range allModes() {
		p := newTest(t, mode)
		rng := rand.New(rand.NewSource(7))
		keys := make([]int64, 4000)
		vals := make([]int64, 4000)
		model := map[int64]int64{}
		for i := range keys {
			keys[i] = rng.Int63n(1 << 40)
			vals[i] = rng.Int63()
			model[keys[i]] = vals[i]
		}
		p.PutBatch(keys, vals)
		checkAgainstModel(t, p, model, mode.String()+"/unsorted")
	}
}

func TestPutBatchDuplicatesLastWins(t *testing.T) {
	p := newTest(t, ModeBatch)
	keys := []int64{5, 1, 5, 3, 1, 5}
	vals := []int64{50, 10, 51, 30, 11, 52}
	p.PutBatch(keys, vals)
	model := map[int64]int64{5: 52, 1: 11, 3: 30}
	checkAgainstModel(t, p, model, "duplicates")
}

func TestPutBatchUpsertsExisting(t *testing.T) {
	for _, mode := range allModes() {
		p := newTest(t, mode)
		keys := make([]int64, 3000)
		vals := make([]int64, 3000)
		model := map[int64]int64{}
		for i := range keys {
			keys[i] = int64(i)
			vals[i] = 1
			model[keys[i]] = 1
		}
		p.PutBatch(keys, vals)
		// Re-put every key with a new value: pure replaces, no growth.
		for i := range vals {
			vals[i] = 2
			model[keys[i]] = 2
		}
		p.Flush()
		before := p.Len()
		p.PutBatch(keys, vals)
		p.Flush()
		if p.Len() != before {
			t.Fatalf("%v: upsert batch changed Len %d -> %d", mode, before, p.Len())
		}
		checkAgainstModel(t, p, model, mode.String()+"/upsert")
	}
}

func TestPutBatchSpanningManyGates(t *testing.T) {
	p := newTest(t, ModeBatch)
	// Grow the array so a later batch spans a large number of gates.
	base := make([]int64, 40_000)
	for i := range base {
		base[i] = int64(i) * 10
	}
	p.PutBatch(base, base)
	p.Flush()
	if g := p.NumGates(); g < 32 {
		t.Fatalf("want many gates after load, got %d", g)
	}
	model := map[int64]int64{}
	for _, k := range base {
		model[k] = k
	}
	// Interleaved fresh keys hit every gate in one batch.
	keys := make([]int64, 40_000)
	vals := make([]int64, 40_000)
	for i := range keys {
		keys[i] = int64(i)*10 + 5
		vals[i] = int64(i)
		model[keys[i]] = vals[i]
	}
	p.PutBatch(keys, vals)
	checkAgainstModel(t, p, model, "spanning")
}

func TestPutBatchOverflowFallsBackToRebalancer(t *testing.T) {
	p := newTest(t, ModeSync)
	// One giant batch into a minimal array cannot fit any chunk: the gate
	// hand-off must trigger global rebalances/resizes via the rebalancer.
	keys := make([]int64, 10_000)
	vals := make([]int64, 10_000)
	model := map[int64]int64{}
	for i := range keys {
		keys[i] = int64(i)
		vals[i] = int64(-i)
		model[keys[i]] = vals[i]
	}
	p.PutBatch(keys, vals)
	st := p.Stats()
	if st.Rebalance.Resizes == 0 {
		t.Fatalf("expected resizes from batch overflow, got %+v", st)
	}
	checkAgainstModel(t, p, model, "overflow")
}

func TestDeleteBatchExactCount(t *testing.T) {
	for _, mode := range allModes() {
		p := newTest(t, mode)
		keys := make([]int64, 8000)
		for i := range keys {
			keys[i] = int64(i)
		}
		p.PutBatch(keys, keys)
		p.Flush()

		// Delete every third key plus some misses and duplicates.
		var dels []int64
		model := map[int64]int64{}
		for _, k := range keys {
			model[k] = k
		}
		want := 0
		for i := int64(0); i < 8000; i += 3 {
			dels = append(dels, i, i, i+100_000) // dup + miss
			if _, ok := model[i]; ok {
				delete(model, i)
				want++
			}
		}
		if got := p.DeleteBatch(dels); got != want {
			t.Fatalf("%v: DeleteBatch = %d, want %d", mode, got, want)
		}
		checkAgainstModel(t, p, model, mode.String()+"/delete")
	}
}

// TestDeleteBatchExactCountConcurrentWriters pins the exact-count contract
// under concurrency: while DeleteBatch removes a set of present keys, point
// and batch writers hammer disjoint keys hard enough to force rebalances,
// fence moves and resizes under the batch. None of that may perturb the
// returned count, because every deletion applies in place under its gate
// latch.
func TestDeleteBatchExactCountConcurrentWriters(t *testing.T) {
	for _, mode := range allModes() {
		for round := 0; round < 3; round++ {
			p := newTest(t, mode)
			// Present targets: keys = 0 mod 4. Concurrent writers use
			// keys = 1,2,3 mod 4 — disjoint, so the expected count is
			// exact even while the array churns.
			const targets = 4000
			tk := make([]int64, targets)
			for i := range tk {
				tk[i] = int64(i) * 4
			}
			p.PutBatch(tk, tk)
			p.Flush()

			stop := make(chan struct{})
			var wg sync.WaitGroup
			for w := 0; w < 4; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(int64(w)))
					var batchK, batchV []int64
					for i := 0; ; i++ {
						select {
						case <-stop:
							return
						default:
						}
						k := rng.Int63n(4*targets)&^3 + 1 + int64(w%3)
						switch i % 3 {
						case 0:
							p.Put(k, k)
						case 1:
							p.Delete(k)
						default:
							batchK = append(batchK[:0], k, k+4, k+8)
							batchV = append(batchV[:0], k, k, k)
							p.PutBatch(batchK, batchV)
						}
					}
				}(w)
			}
			// Two concurrent DeleteBatches over disjoint halves of the
			// targets: each count must be exact, and so must the sum.
			type res struct{ got, want int }
			results := make(chan res, 2)
			for half := 0; half < 2; half++ {
				go func(half int) {
					part := tk[half*targets/2 : (half+1)*targets/2]
					// Shuffled + duplicated input exercises sortDedupOps.
					dels := make([]int64, 0, len(part)*2)
					rng := rand.New(rand.NewSource(int64(half)))
					for _, k := range part {
						dels = append(dels, k, k) // dup collapses
					}
					rng.Shuffle(len(dels), func(i, j int) { dels[i], dels[j] = dels[j], dels[i] })
					results <- res{got: p.DeleteBatch(dels), want: len(part)}
				}(half)
			}
			var rs []res
			for i := 0; i < 2; i++ {
				rs = append(rs, <-results)
			}
			close(stop)
			wg.Wait()
			for _, r := range rs {
				if r.got != r.want {
					t.Fatalf("%v/round%d: DeleteBatch = %d, want %d", mode, round, r.got, r.want)
				}
			}
			p.Flush()
			if err := p.Validate(); err != nil {
				t.Fatalf("%v/round%d: %v", mode, round, err)
			}
			// Every target key must be gone despite the concurrent churn.
			for _, k := range tk {
				if _, ok := p.Get(k); ok {
					t.Fatalf("%v/round%d: deleted key %d still present", mode, round, k)
				}
			}
			p.Close()
		}
	}
}

func TestDeleteBatchTriggersShrink(t *testing.T) {
	p := newTest(t, ModeSync)
	keys := make([]int64, 30_000)
	for i := range keys {
		keys[i] = int64(i)
	}
	p.PutBatch(keys, keys)
	p.Flush()
	capBefore := p.Capacity()
	if got := p.DeleteBatch(keys[:29_000]); got != 29_000 {
		t.Fatalf("DeleteBatch = %d", got)
	}
	// The master serves requests in order, so a Flush round-trip drains
	// the shrink request DeleteBatch submitted.
	p.Flush()
	if p.Capacity() >= capBefore {
		t.Fatalf("capacity %d did not shrink from %d", p.Capacity(), capBefore)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBatchMixedRandomAgainstModel(t *testing.T) {
	// Random op stream applied in chunks via PutBatch/DeleteBatch must
	// match the model that applies the same chunks in order.
	for _, mode := range allModes() {
		p := newTest(t, mode)
		rng := rand.New(rand.NewSource(99))
		model := map[int64]int64{}
		for round := 0; round < 30; round++ {
			n := 1 + rng.Intn(700)
			if rng.Intn(3) == 0 {
				dels := make([]int64, n)
				for i := range dels {
					dels[i] = rng.Int63n(5000)
					delete(model, dels[i])
				}
				p.DeleteBatch(dels)
			} else {
				keys := make([]int64, n)
				vals := make([]int64, n)
				for i := range keys {
					keys[i] = rng.Int63n(5000)
					vals[i] = rng.Int63()
					model[keys[i]] = vals[i]
				}
				p.PutBatch(keys, vals)
			}
		}
		checkAgainstModel(t, p, model, mode.String()+"/mixed")
	}
}

func TestBulkLoadBasic(t *testing.T) {
	keys := make([]int64, 50_000)
	vals := make([]int64, 50_000)
	model := map[int64]int64{}
	for i := range keys {
		keys[i] = int64(i) * 7
		vals[i] = int64(i)
		model[keys[i]] = vals[i]
	}
	p, err := BulkLoad(testConfig(ModeBatch), keys, vals)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	checkAgainstModel(t, p, model, "bulkload")

	// The load density must sit between the root thresholds, like a resize.
	fill := float64(p.Len()) / float64(p.Capacity())
	if fill < 0.30 || fill > 0.80 {
		t.Fatalf("bulk load fill factor %.2f outside sane range", fill)
	}

	// The store must remain fully usable for point updates afterwards.
	for i := int64(0); i < 2000; i++ {
		p.Put(i*7+1, i)
		model[i*7+1] = i
	}
	checkAgainstModel(t, p, model, "bulkload+puts")
}

func TestBulkLoadUnsortedWithDuplicates(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	keys := make([]int64, 20_000)
	vals := make([]int64, 20_000)
	model := map[int64]int64{}
	for i := range keys {
		keys[i] = rng.Int63n(8000) // plenty of duplicates
		vals[i] = int64(i)
		model[keys[i]] = vals[i] // later occurrence wins, as documented
	}
	p, err := BulkLoad(testConfig(ModeSync), keys, vals)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	checkAgainstModel(t, p, model, "bulkload-dups")
}

func TestBulkLoadEmpty(t *testing.T) {
	p, err := BulkLoad(testConfig(ModeBatch), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if p.Len() != 0 {
		t.Fatalf("Len = %d", p.Len())
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	p.Put(1, 2)
	p.Flush()
	if v, ok := p.Get(1); !ok || v != 2 {
		t.Fatalf("Get after empty bulk load = %d,%v", v, ok)
	}
}

func TestBulkLoadErrors(t *testing.T) {
	if _, err := BulkLoad(testConfig(ModeBatch), []int64{1, 2}, []int64{1}); err == nil {
		t.Fatal("mismatched lengths accepted")
	}
	if _, err := BulkLoad(testConfig(ModeBatch), []int64{rma.KeyMin}, []int64{1}); err == nil {
		t.Fatal("sentinel key accepted")
	}
}

func TestPutBatchPanics(t *testing.T) {
	p := newTest(t, ModeBatch)
	mustPanic(t, func() { p.PutBatch([]int64{1, 2}, []int64{1}) })
	mustPanic(t, func() { p.PutBatch([]int64{rma.KeyMax}, []int64{1}) })
}

func mustPanic(t *testing.T, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	fn()
}

// TestBatchAbsorbsParkedQueue reproduces the program-order hazard the batch
// path must avoid: ops parked in a gate's combining queue (as an overflowing
// drain or a redistribution leaves them) are older than a later batch. The
// batch must absorb them — applying them, but never letting them overwrite
// its own newer values or resurrect its deletions.
func TestBatchAbsorbsParkedQueue(t *testing.T) {
	p := newTest(t, ModeBatch)
	p.Put(100, 1)
	p.Flush()
	park := func(ops []op) {
		st := p.state.Load()
		g := st.gates[clampGate(st.index.Lookup(ops[0].key), len(st.gates))]
		g.mu.Lock()
		g.q = &opQueue{ops: ops}
		g.pendingBatch = true
		g.mu.Unlock()
	}

	// A newer PutBatch wins over the parked older write to the same key
	// and applies the unrelated parked op.
	park([]op{{key: 100, val: 2}, {key: 300, val: 2}})
	p.PutBatch([]int64{100}, []int64{3})
	p.Flush()
	if v, ok := p.Get(100); !ok || v != 3 {
		t.Fatalf("Get(100) = %d,%v, want 3: parked older op overwrote a newer batch", v, ok)
	}
	if v, ok := p.Get(300); !ok || v != 2 {
		t.Fatalf("Get(300) = %d,%v, want 2: parked op was lost", v, ok)
	}

	// A newer DeleteBatch cancels a parked insert instead of being
	// resurrected by it.
	park([]op{{key: 400, val: 5}})
	if n := p.DeleteBatch([]int64{400}); n != 0 {
		t.Fatalf("DeleteBatch(400) = %d, want 0 (cancelled parked insert was never applied)", n)
	}
	p.Flush()
	if _, ok := p.Get(400); ok {
		t.Fatal("parked insert resurrected a key deleted by a newer DeleteBatch")
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}
