// Package sindex implements the static index of Section 3.2: a B+-tree over
// the gates' minimum fence keys (the separator keys) whose nodes are laid out
// contiguously in dense arrays, level by level, and traversed with pointer
// arithmetic instead of child pointers.
//
// The index is static: the number of separators is fixed at construction and
// the whole index is rebuilt only when the sparse array is resized. The
// *values* of separators change during rebalances; a writer owning the
// corresponding gate's latch updates them in place with plain atomic stores,
// at positions computed arithmetically — no traversal, no latching of the
// index itself.
//
// Readers traverse without synchronisation. A concurrent separator update
// can therefore route a reader to a nearby-but-wrong gate; callers must
// verify the target gate's fence keys and walk to neighbours, as the paper
// prescribes. What the index does guarantee, even under races, is that the
// returned position is always a valid gate number.
package sindex

import (
	"math"
	"sync/atomic"
)

// Fanout is the number of separator keys per node. Sixteen 8-byte keys span
// two cache lines, keeping the per-level search short and local.
const Fanout = 16

// MinKey is the -inf separator of gate 0.
const MinKey = math.MinInt64

// Index is the static separator-key tree. It is immutable in shape; separator
// values are updated atomically in place.
type Index struct {
	// levels[0] holds the n separator keys; levels[i+1][j] caches
	// levels[i][j*Fanout]. The top level has at most Fanout entries.
	levels [][]int64
	n      int
}

// New builds an index over n gates. Separators are initialised to MinKey;
// callers set real values with Set before use (or rely on fence-key
// verification, which tolerates any interim value).
func New(n int) *Index {
	if n < 1 {
		n = 1
	}
	idx := &Index{n: n}
	for sz := n; ; sz = (sz + Fanout - 1) / Fanout {
		level := make([]int64, sz)
		for i := range level {
			level[i] = MinKey
		}
		idx.levels = append(idx.levels, level)
		if sz <= Fanout {
			break
		}
	}
	return idx
}

// Len returns the number of gates indexed.
func (ix *Index) Len() int { return ix.n }

// Height returns the number of levels (1 for a single-node index).
func (ix *Index) Height() int { return len(ix.levels) }

// Set updates the separator key of gate g, propagating the value to the
// ancestor copies whose position is derivable arithmetically (gate g is the
// leftmost leaf of an ancestor node exactly when g is divisible by the
// corresponding power of the fanout). The caller must own gate g's latch in
// exclusive mode; concurrent readers may observe the ancestors and the leaf
// out of sync, which the fence-key check absorbs.
func (ix *Index) Set(g int, key int64) {
	if g < 0 || g >= ix.n {
		panic("sindex: separator position out of range")
	}
	atomic.StoreInt64(&ix.levels[0][g], key)
	for l := 1; l < len(ix.levels); l++ {
		if g%Fanout != 0 {
			break
		}
		g /= Fanout
		atomic.StoreInt64(&ix.levels[l][g], key)
	}
}

// Get returns the current separator of gate g (test helper).
func (ix *Index) Get(g int) int64 {
	return atomic.LoadInt64(&ix.levels[0][g])
}

// Lookup returns the gate that should hold key k: the rightmost gate whose
// separator is <= k. Under concurrent separator updates the result may be a
// neighbour of the correct gate; it is always within [0, Len()).
func (ix *Index) Lookup(k int64) int {
	top := len(ix.levels) - 1
	node := 0 // node index within the current level
	for l := top; l >= 0; l-- {
		level := ix.levels[l]
		lo := node * Fanout
		if l == top {
			lo = 0
		}
		hi := lo + Fanout
		if hi > len(level) {
			hi = len(level)
		}
		// Rightmost separator <= k within the node; entry lo is the
		// subtree minimum, taken as the fallback even if a torn read
		// makes it appear > k.
		pos := lo
		for i := lo + 1; i < hi; i++ {
			if atomic.LoadInt64(&level[i]) <= k {
				pos = i
			} else {
				break
			}
		}
		node = pos
	}
	if node >= ix.n {
		node = ix.n - 1
	}
	return node
}
