package sindex

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
)

// buildSeps creates n sorted separators spaced by 100: gate i >= keys
// [i*100, (i+1)*100).
func buildSeps(n int) (*Index, []int64) {
	ix := New(n)
	seps := make([]int64, n)
	seps[0] = MinKey
	for i := 1; i < n; i++ {
		seps[i] = int64(i * 100)
	}
	for i, s := range seps {
		ix.Set(i, s)
	}
	return ix, seps
}

// refLookup is the O(n) reference: rightmost separator <= k.
func refLookup(seps []int64, k int64) int {
	g := 0
	for i, s := range seps {
		if s <= k {
			g = i
		}
	}
	return g
}

func TestLookupSingleGate(t *testing.T) {
	ix := New(1)
	ix.Set(0, MinKey)
	for _, k := range []int64{-1 << 60, 0, 1 << 60} {
		if g := ix.Lookup(k); g != 0 {
			t.Fatalf("Lookup(%d) = %d, want 0", k, g)
		}
	}
}

func TestLookupExhaustiveSmall(t *testing.T) {
	for _, n := range []int{1, 2, 3, 15, 16, 17, 255, 256, 257, 1000} {
		ix, seps := buildSeps(n)
		for k := int64(-50); k < int64(n*100+50); k += 7 {
			want := refLookup(seps, k)
			if got := ix.Lookup(k); got != want {
				t.Fatalf("n=%d Lookup(%d) = %d, want %d", n, k, got, want)
			}
		}
	}
}

func TestLookupOnSeparatorBoundary(t *testing.T) {
	ix, _ := buildSeps(64)
	for i := 1; i < 64; i++ {
		if g := ix.Lookup(int64(i * 100)); g != i {
			t.Fatalf("Lookup(sep %d) = %d, want %d", i*100, g, i)
		}
		if g := ix.Lookup(int64(i*100 - 1)); g != i-1 {
			t.Fatalf("Lookup(sep-1) = %d, want %d", g, i-1)
		}
	}
}

func TestSetPropagatesToAncestors(t *testing.T) {
	n := Fanout*Fanout + 1 // forces three levels
	ix, seps := buildSeps(n)
	if ix.Height() != 3 {
		t.Fatalf("height = %d, want 3", ix.Height())
	}
	// Gate Fanout^2 is the leftmost leaf of both its level-1 and level-2
	// ancestors: updating it must update both copies, otherwise lookups
	// route wrongly.
	g := Fanout * Fanout
	seps[g] = seps[g] + 50
	ix.Set(g, seps[g])
	for k := seps[g] - 60; k < seps[g]+60; k++ {
		want := refLookup(seps, k)
		if got := ix.Lookup(k); got != want {
			t.Fatalf("after Set: Lookup(%d) = %d, want %d", k, got, want)
		}
	}
}

func TestSetOutOfRangePanics(t *testing.T) {
	ix := New(4)
	for _, g := range []int{-1, 4} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Set(%d) did not panic", g)
				}
			}()
			ix.Set(g, 1)
		}()
	}
}

func TestLookupRandomisedAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(2000)
		seps := make([]int64, n)
		seps[0] = MinKey
		cur := int64(0)
		for i := 1; i < n; i++ {
			cur += 1 + rng.Int63n(1000)
			seps[i] = cur
		}
		ix := New(n)
		for i, s := range seps {
			ix.Set(i, s)
		}
		for q := 0; q < 200; q++ {
			k := rng.Int63n(cur + 100)
			want := refLookup(seps, k)
			if got := ix.Lookup(k); got != want {
				t.Fatalf("n=%d Lookup(%d) = %d, want %d", n, k, got, want)
			}
		}
	}
}

// TestConcurrentLookupsAndSets verifies the contract under races: lookups
// must stay within bounds and, once updates stop, converge to the reference.
func TestConcurrentLookupsAndSets(t *testing.T) {
	const n = 500
	ix, seps := buildSeps(n)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				g := ix.Lookup(rng.Int63n(n * 100))
				if g < 0 || g >= n {
					t.Errorf("Lookup out of bounds: %d", g)
					return
				}
			}
		}(int64(w))
	}
	// Writer: jitter separators (keeping them within their slot) as a
	// rebalance updating fence keys would.
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 50_000; i++ {
		g := 1 + rng.Intn(n-1)
		ix.Set(g, int64(g*100)+rng.Int63n(50))
	}
	close(stop)
	wg.Wait()
	// Restore canonical separators and verify convergence.
	for i, s := range seps {
		ix.Set(i, s)
	}
	for k := int64(0); k < n*100; k += 13 {
		if got, want := ix.Lookup(k), refLookup(seps, k); got != want {
			t.Fatalf("after quiescence Lookup(%d) = %d, want %d", k, got, want)
		}
	}
}

func TestHeightGrowth(t *testing.T) {
	cases := []struct{ n, h int }{
		{1, 1}, {Fanout, 1}, {Fanout + 1, 2},
		{Fanout * Fanout, 2}, {Fanout*Fanout + 1, 3},
	}
	for _, c := range cases {
		if got := New(c.n).Height(); got != c.h {
			t.Errorf("Height(%d gates) = %d, want %d", c.n, got, c.h)
		}
	}
}

func TestLookupIsMonotonic(t *testing.T) {
	ix, _ := buildSeps(333)
	prev := 0
	keys := make([]int64, 0, 1000)
	for k := int64(-10); k < 34000; k += 11 {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, k := range keys {
		g := ix.Lookup(k)
		if g < prev {
			t.Fatalf("Lookup not monotonic: key %d -> gate %d after gate %d", k, g, prev)
		}
		prev = g
	}
}
