package obs

// ServerMetrics instruments the network serving layer (pmago/server): one
// set per Server, feeding the Server section of the snapshot its Stats
// endpoint and side HTTP handler expose. Like every other metric set it is
// hot-path cheap — striped counter increments and lock-free histogram
// observes — and nil-safe to snapshot.
type ServerMetrics struct {
	// Per-op request counters and handling latency (from frame decode to
	// the response frame being queued), indexed by ServerOp.
	Requests [NumServerOps]Counter
	OpNanos  [NumServerOps]Histogram

	// ConnsOpened/ConnsClosed count accepted and finished connections
	// (opened - closed = currently live). BytesRead/BytesWritten count
	// framed wire bytes in both directions.
	ConnsOpened  Counter
	ConnsClosed  Counter
	BytesRead    Counter
	BytesWritten Counter

	// Busy counts requests rejected with an explicit busy response by the
	// bounded in-flight queues; Errors counts error responses (bad frames
	// excluded — those kill the connection).
	Busy   Counter
	Errors Counter

	// ScanChunks counts streamed scan chunk frames; ScanCancels counts
	// scans stopped early by client cancel or disconnect.
	ScanChunks  Counter
	ScanCancels Counter

	// GroupCommits counts committer drains; CommitOps observes how many
	// client write ops each drain coalesced (the cross-client group-commit
	// batch size — >1 means clients shared an fsync), and CommitKeys the
	// keys in the consolidated PutBatch each drain issued.
	GroupCommits Counter
	CommitOps    Histogram
	CommitKeys   Histogram
}

// ServerOp indexes the per-op arrays of ServerMetrics.
type ServerOp int

const (
	ServerOpPut ServerOp = iota
	ServerOpGet
	ServerOpDelete
	ServerOpPutBatch
	ServerOpDeleteBatch
	ServerOpScan
	ServerOpStats
	NumServerOps
)

// ServerOpNames maps ServerOp to its stable metric label.
var ServerOpNames = [NumServerOps]string{
	"put", "get", "delete", "put_batch", "delete_batch", "scan", "stats",
}

// ServerOpSnapshot is one op's section of a server snapshot.
type ServerOpSnapshot struct {
	Op       string       `json:"op"`
	Requests uint64       `json:"requests"`
	Nanos    Distribution `json:"nanos"`
}

// ServerSnapshot is the serving-layer section of a snapshot.
type ServerSnapshot struct {
	ConnsOpened  uint64             `json:"conns_opened"`
	ConnsClosed  uint64             `json:"conns_closed"`
	BytesRead    uint64             `json:"bytes_read"`
	BytesWritten uint64             `json:"bytes_written"`
	Busy         uint64             `json:"busy"`
	Errors       uint64             `json:"errors"`
	ScanChunks   uint64             `json:"scan_chunks"`
	ScanCancels  uint64             `json:"scan_cancels"`
	GroupCommits uint64             `json:"group_commits"`
	CommitOps    Distribution       `json:"commit_ops"`
	CommitKeys   Distribution       `json:"commit_keys"`
	Ops          []ServerOpSnapshot `json:"ops"`
}

// Snapshot copies the live counters (nil-safe: a disabled serving layer
// reports nil, which omits the section entirely).
func (m *ServerMetrics) Snapshot() *ServerSnapshot {
	if m == nil {
		return nil
	}
	s := &ServerSnapshot{
		ConnsOpened:  m.ConnsOpened.Load(),
		ConnsClosed:  m.ConnsClosed.Load(),
		BytesRead:    m.BytesRead.Load(),
		BytesWritten: m.BytesWritten.Load(),
		Busy:         m.Busy.Load(),
		Errors:       m.Errors.Load(),
		ScanChunks:   m.ScanChunks.Load(),
		ScanCancels:  m.ScanCancels.Load(),
		GroupCommits: m.GroupCommits.Load(),
		CommitOps:    m.CommitOps.Snapshot(),
		CommitKeys:   m.CommitKeys.Snapshot(),
		Ops:          make([]ServerOpSnapshot, NumServerOps),
	}
	for i := range s.Ops {
		s.Ops[i] = ServerOpSnapshot{
			Op:       ServerOpNames[i],
			Requests: m.Requests[i].Load(),
			Nanos:    m.OpNanos[i].Snapshot(),
		}
	}
	return s
}
