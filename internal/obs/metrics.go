package obs

// The live metric sets. Each layer of the store owns one (core.PMA a
// *CoreMetrics, persist.Log a *WALMetrics, pmago.DB a *CheckpointMetrics),
// nil when metrics are disabled — every instrumentation site guards with a
// single nil check, which is the entire disabled-mode cost. Snapshot
// methods are nil-safe for the same reason: a disabled layer reports zero
// counters rather than forcing callers to branch.

// CoreMetrics instruments the in-memory PMA: the seqlock read path, the
// Section 3.5 combining queues, and the rebalancer.
type CoreMetrics struct {
	// Read path (read.go). A Get or Scan chunk is counted exactly once,
	// at its serve point: Optimistic when a seqlock-validated snapshot
	// was returned, Latched when it was served under the shared latch
	// (after optimistic validation kept failing, or with the optimistic
	// path disabled). ProbeFails counts individual failed seqlock
	// validations, so fallbacks are bounded by probe failures.
	GetOptimistic        Counter
	GetLatched           Counter
	GetProbeFails        Counter
	ScanChunksOptimistic Counter
	ScanChunksLatched    Counter
	ScanProbeFails       Counter

	// Update combining (write.go, async.go). CombinedOps counts updates
	// absorbed into another writer's queue (the op never latched its
	// gate); DrainSize observes the ops taken per queue detach, on every
	// consumption path (active-writer drain rounds, rebalancer pickups,
	// resize absorption, Flush sweeps) — so, quiesced, CombinedOps <=
	// DrainSize.Sum + queued. DeferredBatches counts batches parked at
	// the rebalancer by the tdelay rate limit.
	CombinedOps     Counter
	DeferredBatches Counter
	DrainSize       Histogram

	// Rebalancer (gate.go local path, rebalancer.go global path).
	// RebalanceWindow observes the window width in gates per global
	// rebalance — with log2 buckets that is exactly the escalation-level
	// distribution (a window of 2^k gates lands in bucket k+1).
	LocalRebalances  Counter
	GlobalRebalances Counter
	Resizes          Counter
	RebalanceWindow  Histogram
	RebalanceNanos   Histogram
	ResizeNanos      Histogram

	// Compressed chunks (core/cgate.go). SegDecodes counts segment
	// decodes on any path (point reads, writes re-reading their segment,
	// scans, rebalance gathers); ReencodeBytes accumulates bytes written
	// by segment re-encodes, the compressed write amplification. Both
	// stay zero for an uncompressed store. The gauges of the snapshot's
	// compression section (encoded bytes, pairs) are not counters — the
	// core computes them from the live array at Stats time.
	SegDecodes    Counter
	ReencodeBytes Counter
}

// ReadStats is the read-path section of a snapshot.
type ReadStats struct {
	GetOptimistic        uint64 `json:"get_optimistic"`
	GetLatched           uint64 `json:"get_latched"`
	GetProbeFails        uint64 `json:"get_probe_fails"`
	ScanChunksOptimistic uint64 `json:"scan_chunks_optimistic"`
	ScanChunksLatched    uint64 `json:"scan_chunks_latched"`
	ScanProbeFails       uint64 `json:"scan_probe_fails"`
}

// UpdateStats is the combining-queue section of a snapshot.
type UpdateStats struct {
	CombinedOps     uint64       `json:"combined_ops"`
	DeferredBatches uint64       `json:"deferred_batches"`
	DrainSize       Distribution `json:"drain_size"`
}

// RebalanceStats is the rebalancer section of a snapshot.
type RebalanceStats struct {
	Local          uint64       `json:"local"`
	Global         uint64       `json:"global"`
	Resizes        uint64       `json:"resizes"`
	WindowGates    Distribution `json:"window_gates"`
	RebalanceNanos Distribution `json:"rebalance_nanos"`
	ResizeNanos    Distribution `json:"resize_nanos"`
	EpochReclaimed uint64       `json:"epoch_reclaimed"`
}

// CompressionStats is the compressed-chunks section of a snapshot. For an
// uncompressed store every field is zero and Enabled is false. EncodedBytes
// and Pairs are gauges over the live array (filled by the core at Stats
// time, like EpochReclaimed); EncodedBytes/Pairs is the store's bytes/pair.
type CompressionStats struct {
	Enabled       bool   `json:"enabled"`
	SegDecodes    uint64 `json:"seg_decodes"`
	ReencodeBytes uint64 `json:"reencode_bytes"`
	EncodedBytes  uint64 `json:"encoded_bytes"`
	Pairs         uint64 `json:"pairs"`
}

// CoreSnapshot is one PMA's counters at a point in time.
type CoreSnapshot struct {
	Reads       ReadStats        `json:"reads"`
	Updates     UpdateStats      `json:"updates"`
	Rebalance   RebalanceStats   `json:"rebalance"`
	Compression CompressionStats `json:"compression"`
}

// Snapshot copies the live counters. Nil-safe: a disabled core reports
// zeros. EpochReclaimed is not a metric here — the epoch manager owns it —
// so the caller fills it in afterwards.
func (m *CoreMetrics) Snapshot() CoreSnapshot {
	if m == nil {
		return CoreSnapshot{}
	}
	return CoreSnapshot{
		Reads: ReadStats{
			GetOptimistic:        m.GetOptimistic.Load(),
			GetLatched:           m.GetLatched.Load(),
			GetProbeFails:        m.GetProbeFails.Load(),
			ScanChunksOptimistic: m.ScanChunksOptimistic.Load(),
			ScanChunksLatched:    m.ScanChunksLatched.Load(),
			ScanProbeFails:       m.ScanProbeFails.Load(),
		},
		Updates: UpdateStats{
			CombinedOps:     m.CombinedOps.Load(),
			DeferredBatches: m.DeferredBatches.Load(),
			DrainSize:       m.DrainSize.Snapshot(),
		},
		Rebalance: RebalanceStats{
			Local:          m.LocalRebalances.Load(),
			Global:         m.GlobalRebalances.Load(),
			Resizes:        m.Resizes.Load(),
			WindowGates:    m.RebalanceWindow.Snapshot(),
			RebalanceNanos: m.RebalanceNanos.Snapshot(),
			ResizeNanos:    m.ResizeNanos.Snapshot(),
		},
		Compression: CompressionStats{
			SegDecodes:    m.SegDecodes.Load(),
			ReencodeBytes: m.ReencodeBytes.Load(),
		},
	}
}

// merge sums o into s.
func (s CoreSnapshot) merge(o CoreSnapshot) CoreSnapshot {
	s.Reads.GetOptimistic += o.Reads.GetOptimistic
	s.Reads.GetLatched += o.Reads.GetLatched
	s.Reads.GetProbeFails += o.Reads.GetProbeFails
	s.Reads.ScanChunksOptimistic += o.Reads.ScanChunksOptimistic
	s.Reads.ScanChunksLatched += o.Reads.ScanChunksLatched
	s.Reads.ScanProbeFails += o.Reads.ScanProbeFails
	s.Updates.CombinedOps += o.Updates.CombinedOps
	s.Updates.DeferredBatches += o.Updates.DeferredBatches
	s.Updates.DrainSize = s.Updates.DrainSize.merge(o.Updates.DrainSize)
	s.Rebalance.Local += o.Rebalance.Local
	s.Rebalance.Global += o.Rebalance.Global
	s.Rebalance.Resizes += o.Rebalance.Resizes
	s.Rebalance.WindowGates = s.Rebalance.WindowGates.merge(o.Rebalance.WindowGates)
	s.Rebalance.RebalanceNanos = s.Rebalance.RebalanceNanos.merge(o.Rebalance.RebalanceNanos)
	s.Rebalance.ResizeNanos = s.Rebalance.ResizeNanos.merge(o.Rebalance.ResizeNanos)
	s.Rebalance.EpochReclaimed += o.Rebalance.EpochReclaimed
	s.Compression.Enabled = s.Compression.Enabled || o.Compression.Enabled
	s.Compression.SegDecodes += o.Compression.SegDecodes
	s.Compression.ReencodeBytes += o.Compression.ReencodeBytes
	s.Compression.EncodedBytes += o.Compression.EncodedBytes
	s.Compression.Pairs += o.Compression.Pairs
	return s
}

// WALMetrics instruments the write-ahead log (persist/wal.go).
type WALMetrics struct {
	// Appends/AppendBytes count records (and their framed bytes) handed
	// to the kernel. Rotations counts segment boundaries. Fsyncs counts
	// actual File.Sync calls (group commit means this is typically far
	// below Appends under FsyncAlways); FsyncNanos is their latency, and
	// GroupCommit observes how many appended records each fsync newly
	// made durable — the group-commit batch size.
	Appends     Counter
	AppendBytes Counter
	Rotations   Counter
	Fsyncs      Counter
	FsyncNanos  Histogram
	GroupCommit Histogram

	// AppendWindow/FsyncWindow are the sliding-window mirrors of the append
	// and fsync latencies: AppendWindow times each append call end to end
	// (mutex wait + encode + the kernel write), FsyncWindow each File.Sync —
	// the store-side attribution for the serving layer's StageApply, and the
	// only attribution an embedded user needs. Cumulative histograms answer
	// "since start"; these answer "over the last ten seconds".
	AppendWindow Window
	FsyncWindow  Window
}

// WALSnapshot is the WAL section of a snapshot.
type WALSnapshot struct {
	Appends            uint64         `json:"appends"`
	AppendBytes        uint64         `json:"append_bytes"`
	Rotations          uint64         `json:"rotations"`
	Fsyncs             uint64         `json:"fsyncs"`
	FsyncNanos         Distribution   `json:"fsync_nanos"`
	GroupCommitRecords Distribution   `json:"group_commit_records"`
	AppendWindow       WindowSnapshot `json:"append_window"`
	FsyncWindow        WindowSnapshot `json:"fsync_window"`
}

// Snapshot copies the live counters (nil-safe).
func (m *WALMetrics) Snapshot() WALSnapshot {
	if m == nil {
		return WALSnapshot{}
	}
	return WALSnapshot{
		Appends:            m.Appends.Load(),
		AppendBytes:        m.AppendBytes.Load(),
		Rotations:          m.Rotations.Load(),
		Fsyncs:             m.Fsyncs.Load(),
		FsyncNanos:         m.FsyncNanos.Snapshot(),
		GroupCommitRecords: m.GroupCommit.Snapshot(),
		AppendWindow:       m.AppendWindow.Snapshot(),
		FsyncWindow:        m.FsyncWindow.Snapshot(),
	}
}

func (s WALSnapshot) merge(o WALSnapshot) WALSnapshot {
	s.Appends += o.Appends
	s.AppendBytes += o.AppendBytes
	s.Rotations += o.Rotations
	s.Fsyncs += o.Fsyncs
	s.FsyncNanos = s.FsyncNanos.merge(o.FsyncNanos)
	s.GroupCommitRecords = s.GroupCommitRecords.merge(o.GroupCommitRecords)
	s.AppendWindow = s.AppendWindow.merge(o.AppendWindow)
	s.FsyncWindow = s.FsyncWindow.merge(o.FsyncWindow)
	return s
}

// CheckpointMetrics instruments snapshots/compaction (pmago durable layer).
type CheckpointMetrics struct {
	// Snapshots counts completed checkpoints; AutoCompactions the subset
	// triggered by the WAL-growth heuristic rather than an explicit
	// Snapshot call. Pairs/Bytes accumulate what the checkpoint files
	// contained; SnapshotNanos times the whole checkpoint (cut + scan +
	// write + publish).
	Snapshots       Counter
	AutoCompactions Counter
	PairsWritten    Counter
	BytesWritten    Counter
	SnapshotNanos   Histogram
}

// CheckpointSnapshot is the checkpoint section of a snapshot.
type CheckpointSnapshot struct {
	Snapshots       uint64       `json:"snapshots"`
	AutoCompactions uint64       `json:"auto_compactions"`
	PairsWritten    uint64       `json:"pairs_written"`
	BytesWritten    uint64       `json:"bytes_written"`
	SnapshotNanos   Distribution `json:"snapshot_nanos"`
}

// Snapshot copies the live counters (nil-safe).
func (m *CheckpointMetrics) Snapshot() CheckpointSnapshot {
	if m == nil {
		return CheckpointSnapshot{}
	}
	return CheckpointSnapshot{
		Snapshots:       m.Snapshots.Load(),
		AutoCompactions: m.AutoCompactions.Load(),
		PairsWritten:    m.PairsWritten.Load(),
		BytesWritten:    m.BytesWritten.Load(),
		SnapshotNanos:   m.SnapshotNanos.Snapshot(),
	}
}

func (s CheckpointSnapshot) merge(o CheckpointSnapshot) CheckpointSnapshot {
	s.Snapshots += o.Snapshots
	s.AutoCompactions += o.AutoCompactions
	s.PairsWritten += o.PairsWritten
	s.BytesWritten += o.BytesWritten
	s.SnapshotNanos = s.SnapshotNanos.merge(o.SnapshotNanos)
	return s
}

// RecoverySnapshot records what the last Open had to do to restore the
// store. It is written once, before the store is shared, so plain fields
// suffice; a sharded store's sections sum across shards (Recoveries then
// counts the shards).
type RecoverySnapshot struct {
	Recoveries        uint64 `json:"recoveries"`
	SnapshotPairs     uint64 `json:"snapshot_pairs"`
	SnapshotBytes     uint64 `json:"snapshot_bytes"`
	SnapshotLoadNanos uint64 `json:"snapshot_load_nanos"`
	WALRecords        uint64 `json:"wal_records"`
	WALReplayNanos    uint64 `json:"wal_replay_nanos"`
}

func (s RecoverySnapshot) merge(o RecoverySnapshot) RecoverySnapshot {
	s.Recoveries += o.Recoveries
	s.SnapshotPairs += o.SnapshotPairs
	s.SnapshotBytes += o.SnapshotBytes
	s.SnapshotLoadNanos += o.SnapshotLoadNanos
	s.WALRecords += o.WALRecords
	s.WALReplayNanos += o.WALReplayNanos
	return s
}

// ShardStats is one shard's routing counters in a sharded store's snapshot.
type ShardStats struct {
	Ops       uint64 `json:"ops"`        // point ops (Put/Get/Delete) routed here
	BatchKeys uint64 `json:"batch_keys"` // batch keys routed here
}

// Snapshot is the full typed metrics snapshot returned by Stats() at every
// level of the public API. In-memory stores leave the durable sections
// zero; sharded stores sum their shards and add the per-shard routing
// section.
type Snapshot struct {
	CoreSnapshot
	Durable    bool               `json:"durable"`
	WAL        WALSnapshot        `json:"wal"`
	Checkpoint CheckpointSnapshot `json:"checkpoint"`
	Recovery   RecoverySnapshot   `json:"recovery"`
	Shards     []ShardStats       `json:"shards,omitempty"`
	// Err is the first background durability failure ("" while healthy): a
	// WAL append or sync error makes the store sick permanently, and health
	// checks scrape it here. Mirrored as the pmago_unhealthy gauge.
	Err string `json:"err,omitempty"`
	// Server is the serving-layer section, set only on snapshots taken
	// through a pmago/server.Server.
	Server *ServerSnapshot `json:"server,omitempty"`
	// Trace is the request-path tracing section (per-op, per-stage sliding
	// windows), set alongside Server by pmago/server.Server.
	Trace *TraceSnapshot `json:"trace,omitempty"`
}

// Merge sums o into s, returning the result (sharded aggregation). The
// per-shard routing sections are concatenated in order.
func (s Snapshot) Merge(o Snapshot) Snapshot {
	s.CoreSnapshot = s.CoreSnapshot.merge(o.CoreSnapshot)
	s.Durable = s.Durable || o.Durable
	s.WAL = s.WAL.merge(o.WAL)
	s.Checkpoint = s.Checkpoint.merge(o.Checkpoint)
	s.Recovery = s.Recovery.merge(o.Recovery)
	s.Shards = append(s.Shards, o.Shards...)
	if s.Err == "" {
		s.Err = o.Err
	}
	if s.Server == nil {
		s.Server = o.Server
	}
	if s.Trace == nil {
		s.Trace = o.Trace
	}
	return s
}
