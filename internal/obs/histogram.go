package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// histBuckets is the bucket count of a Histogram: one per possible
// bits.Len64 result (0 for v == 0, up to 64), i.e. power-of-two bucket
// boundaries. Log2 bucketing costs one LZCNT on the observe path and needs
// no configuration: the same histogram shape serves nanosecond latencies,
// byte sizes and op counts.
const histBuckets = 65

// Histogram is a concurrent log2-bucketed histogram. Observe places v in
// bucket bits.Len64(v), so bucket i (i >= 1) covers [2^(i-1), 2^i - 1] and
// bucket 0 covers exactly 0. The zero value is ready to use. Like Counter,
// it is updated with plain atomics and snapshotted racily: a snapshot taken
// under concurrent observes is approximate, and exact once writers quiesce.
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Uint64
	max     atomic.Uint64
	buckets [histBuckets]atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v uint64) {
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.max.Load()
		if cur >= v || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
	h.buckets[bits.Len64(v)].Add(1)
}

// ObserveDuration records a duration in nanoseconds (negative clamps to 0).
func (h *Histogram) ObserveDuration(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.Observe(uint64(d))
}

// Snapshot copies the histogram into a Distribution, dropping empty
// buckets. Safe on a nil receiver (returns the zero Distribution), so
// disabled-metrics owners can snapshot unconditionally. The reads are racy
// by contract, so Max is clamped up to the floor of the highest non-empty
// bucket: a torn max-vs-buckets read can otherwise report Max below values
// the buckets prove were observed (even Max < Mean).
func (h *Histogram) Snapshot() Distribution {
	var d Distribution
	if h == nil {
		return d
	}
	d.Count = h.count.Load()
	d.Sum = h.sum.Load()
	d.Max = h.max.Load()
	for i := range h.buckets {
		if n := h.buckets[i].Load(); n > 0 {
			d.Buckets = append(d.Buckets, HistBucket{Le: bucketBound(i), N: n})
		}
	}
	d.clampMax()
	return d
}

// bucketBound is the inclusive upper bound of bucket i: 0, 1, 3, 7, ...,
// 2^i - 1 (saturating at MaxUint64 for i = 64).
func bucketBound(i int) uint64 {
	if i >= 64 {
		return math.MaxUint64
	}
	return 1<<uint(i) - 1
}

// bucketFloor is the inclusive lower bound of the bucket whose upper bound
// is le: 0 for the zero bucket, otherwise 2^(i-1) — le/2+1 works for every
// le = 2^i - 1 including the saturated top bucket.
func bucketFloor(le uint64) uint64 {
	if le == 0 {
		return 0
	}
	return le/2 + 1
}

// HistBucket is one non-empty bucket of a Distribution: N observations
// with value <= Le (and greater than the previous bucket's bound).
type HistBucket struct {
	Le uint64 `json:"le"`
	N  uint64 `json:"n"`
}

// Distribution is the immutable snapshot of a Histogram, embedded in the
// Stats snapshot types. Buckets hold only the non-empty log2 buckets in
// ascending bound order.
type Distribution struct {
	Count   uint64       `json:"count"`
	Sum     uint64       `json:"sum"`
	Max     uint64       `json:"max"`
	Buckets []HistBucket `json:"buckets,omitempty"`
}

// Mean returns Sum/Count (0 when empty).
func (d Distribution) Mean() float64 {
	if d.Count == 0 {
		return 0
	}
	return float64(d.Sum) / float64(d.Count)
}

// Quantile returns the q-quantile (q clamped to [0, 1]) by walking the
// cumulative bucket counts to the target rank and interpolating linearly
// within the log2 bucket that contains it, clamped to the recorded Max so a
// wide top bucket cannot report a value nothing reached. Empty
// distributions return 0. Because bucket counts merge exactly, quantiles of
// a merged (e.g. sharded) distribution are computed the same way — never by
// averaging per-shard quantiles.
func (d Distribution) Quantile(q float64) float64 {
	if d.Count == 0 {
		return 0
	}
	switch {
	case q < 0:
		q = 0
	case q > 1:
		q = 1
	}
	rank := q * float64(d.Count)
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for _, b := range d.Buckets {
		if float64(cum)+float64(b.N) < rank {
			cum += b.N
			continue
		}
		lo := float64(bucketFloor(b.Le))
		frac := (rank - float64(cum)) / float64(b.N)
		v := lo + frac*(float64(b.Le)-lo)
		if d.Max > 0 && v > float64(d.Max) {
			v = float64(d.Max)
		}
		return v
	}
	return float64(d.Max)
}

// clampMax raises Max to the floor of the highest non-empty bucket — the
// racy-snapshot repair Snapshot and the window fold apply.
func (d *Distribution) clampMax() {
	if n := len(d.Buckets); n > 0 {
		if floor := bucketFloor(d.Buckets[n-1].Le); d.Max < floor {
			d.Max = floor
		}
	}
}

// merge folds o into d (sharded stores sum their shards' snapshots).
// Bucket lists are merged by bound; Max takes the larger.
func (d Distribution) merge(o Distribution) Distribution {
	d.Count += o.Count
	d.Sum += o.Sum
	if o.Max > d.Max {
		d.Max = o.Max
	}
	if len(o.Buckets) == 0 {
		return d
	}
	if len(d.Buckets) == 0 {
		d.Buckets = append([]HistBucket(nil), o.Buckets...)
		return d
	}
	merged := make([]HistBucket, 0, len(d.Buckets)+len(o.Buckets))
	i, j := 0, 0
	for i < len(d.Buckets) && j < len(o.Buckets) {
		switch {
		case d.Buckets[i].Le < o.Buckets[j].Le:
			merged = append(merged, d.Buckets[i])
			i++
		case d.Buckets[i].Le > o.Buckets[j].Le:
			merged = append(merged, o.Buckets[j])
			j++
		default:
			merged = append(merged, HistBucket{Le: d.Buckets[i].Le, N: d.Buckets[i].N + o.Buckets[j].N})
			i++
			j++
		}
	}
	merged = append(merged, d.Buckets[i:]...)
	merged = append(merged, o.Buckets[j:]...)
	d.Buckets = merged
	return d
}
