package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// histBuckets is the bucket count of a Histogram: one per possible
// bits.Len64 result (0 for v == 0, up to 64), i.e. power-of-two bucket
// boundaries. Log2 bucketing costs one LZCNT on the observe path and needs
// no configuration: the same histogram shape serves nanosecond latencies,
// byte sizes and op counts.
const histBuckets = 65

// Histogram is a concurrent log2-bucketed histogram. Observe places v in
// bucket bits.Len64(v), so bucket i (i >= 1) covers [2^(i-1), 2^i - 1] and
// bucket 0 covers exactly 0. The zero value is ready to use. Like Counter,
// it is updated with plain atomics and snapshotted racily: a snapshot taken
// under concurrent observes is approximate, and exact once writers quiesce.
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Uint64
	max     atomic.Uint64
	buckets [histBuckets]atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v uint64) {
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.max.Load()
		if cur >= v || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
	h.buckets[bits.Len64(v)].Add(1)
}

// ObserveDuration records a duration in nanoseconds (negative clamps to 0).
func (h *Histogram) ObserveDuration(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.Observe(uint64(d))
}

// Snapshot copies the histogram into a Distribution, dropping empty
// buckets. Safe on a nil receiver (returns the zero Distribution), so
// disabled-metrics owners can snapshot unconditionally.
func (h *Histogram) Snapshot() Distribution {
	var d Distribution
	if h == nil {
		return d
	}
	d.Count = h.count.Load()
	d.Sum = h.sum.Load()
	d.Max = h.max.Load()
	for i := range h.buckets {
		if n := h.buckets[i].Load(); n > 0 {
			d.Buckets = append(d.Buckets, HistBucket{Le: bucketBound(i), N: n})
		}
	}
	return d
}

// bucketBound is the inclusive upper bound of bucket i: 0, 1, 3, 7, ...,
// 2^i - 1 (saturating at MaxUint64 for i = 64).
func bucketBound(i int) uint64 {
	if i >= 64 {
		return math.MaxUint64
	}
	return 1<<uint(i) - 1
}

// HistBucket is one non-empty bucket of a Distribution: N observations
// with value <= Le (and greater than the previous bucket's bound).
type HistBucket struct {
	Le uint64 `json:"le"`
	N  uint64 `json:"n"`
}

// Distribution is the immutable snapshot of a Histogram, embedded in the
// Stats snapshot types. Buckets hold only the non-empty log2 buckets in
// ascending bound order.
type Distribution struct {
	Count   uint64       `json:"count"`
	Sum     uint64       `json:"sum"`
	Max     uint64       `json:"max"`
	Buckets []HistBucket `json:"buckets,omitempty"`
}

// Mean returns Sum/Count (0 when empty).
func (d Distribution) Mean() float64 {
	if d.Count == 0 {
		return 0
	}
	return float64(d.Sum) / float64(d.Count)
}

// merge folds o into d (sharded stores sum their shards' snapshots).
// Bucket lists are merged by bound; Max takes the larger.
func (d Distribution) merge(o Distribution) Distribution {
	d.Count += o.Count
	d.Sum += o.Sum
	if o.Max > d.Max {
		d.Max = o.Max
	}
	if len(o.Buckets) == 0 {
		return d
	}
	if len(d.Buckets) == 0 {
		d.Buckets = append([]HistBucket(nil), o.Buckets...)
		return d
	}
	merged := make([]HistBucket, 0, len(d.Buckets)+len(o.Buckets))
	i, j := 0, 0
	for i < len(d.Buckets) && j < len(o.Buckets) {
		switch {
		case d.Buckets[i].Le < o.Buckets[j].Le:
			merged = append(merged, d.Buckets[i])
			i++
		case d.Buckets[i].Le > o.Buckets[j].Le:
			merged = append(merged, o.Buckets[j])
			j++
		default:
			merged = append(merged, HistBucket{Le: d.Buckets[i].Le, N: d.Buckets[i].N + o.Buckets[j].N})
			i++
			j++
		}
	}
	merged = append(merged, d.Buckets[i:]...)
	merged = append(merged, o.Buckets[j:]...)
	d.Buckets = merged
	return d
}
