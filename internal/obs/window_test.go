package obs

import (
	"encoding/json"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fakeClock steps a Window's clock deterministically from tests.
type fakeClock struct{ now atomic.Int64 }

func (f *fakeClock) install(w *Window) { w.clock = f.now.Load }

// TestWindowRotationConcurrentFakeClock drives concurrent observers while a
// stepped fake clock walks the window across slot boundaries — fewer
// boundaries than winSlots, so no slot is ever reused and every observation
// must survive into the final snapshot. Run under -race this also proves
// the rotation latch is data-race-free.
func TestWindowRotationConcurrentFakeClock(t *testing.T) {
	w := NewWindow(8000 * time.Nanosecond) // 1000ns slots
	var clk fakeClock
	clk.install(w)

	const (
		goroutines = 8
		perG       = 20000
		steps      = 6 // < winSlots: no slot reuse, zero loss tolerated
	)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() { // clock stepper: crosses a slot boundary every few µs
		defer wg.Done()
		for i := 1; i <= steps; i++ {
			time.Sleep(200 * time.Microsecond)
			clk.now.Store(int64(i) * 1000)
		}
		close(stop)
	}()
	var observed atomic.Uint64
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				w.Observe(uint64(g + 1))
				observed.Add(1)
				if i%1024 == 0 {
					select {
					case <-stop:
						return
					default:
					}
				}
			}
		}(g)
	}
	wg.Wait()

	ws := w.SnapshotAt(clk.now.Load())
	if ws.Count != observed.Load() {
		t.Fatalf("windowed count = %d, want %d (no slot was reused, so no observation may be lost)",
			ws.Count, observed.Load())
	}
	var bucketTotal uint64
	for _, b := range ws.Buckets {
		bucketTotal += b.N
	}
	if bucketTotal != ws.Count {
		t.Fatalf("bucket total %d != count %d", bucketTotal, ws.Count)
	}
}

// TestWindowExpiry checks that observations roll out of the snapshot once
// the clock moves a full interval past them, and that a slot is cleanly
// reused on its next lap.
func TestWindowExpiry(t *testing.T) {
	w := NewWindow(8000 * time.Nanosecond)
	var clk fakeClock
	clk.install(w)

	w.Observe(100) // slot 0
	clk.now.Store(3000)
	w.Observe(200) // slot 3
	if got := w.Snapshot().Count; got != 2 {
		t.Fatalf("count before expiry = %d, want 2", got)
	}

	// Move past slot 0's coverage (snapshot keeps slots [cur-7, cur]).
	clk.now.Store(9000) // cur slot 9, oldest kept = 2
	ws := w.Snapshot()
	if ws.Count != 1 || ws.Sum != 200 {
		t.Fatalf("after expiry: count=%d sum=%d, want 1/200", ws.Count, ws.Sum)
	}

	// Lap onto slot 0's ring position (slot 8): old contents must clear.
	clk.now.Store(8000)
	w.Observe(300)
	clk.now.Store(9000)
	ws = w.Snapshot()
	if ws.Count != 2 || ws.Sum != 500 {
		t.Fatalf("after lap: count=%d sum=%d, want 2/500", ws.Count, ws.Sum)
	}
}

// TestWindowQuantileEdges covers the interpolation corner cases: empty
// window, a single bucket, the all-zero distribution, and quantile
// monotonicity up to the recorded max.
func TestWindowQuantileEdges(t *testing.T) {
	var empty Window
	ws := empty.Snapshot()
	if ws.P50 != 0 || ws.P99 != 0 || ws.P999 != 0 {
		t.Fatalf("empty window quantiles = %v/%v/%v, want all 0", ws.P50, ws.P99, ws.P999)
	}
	var nilW *Window
	if got := nilW.Snapshot(); got.Count != 0 || got.P99 != 0 {
		t.Fatalf("nil window snapshot = %+v, want zero", got)
	}

	single := NewWindow(time.Second)
	var clk fakeClock
	clk.install(single)
	for i := 0; i < 100; i++ {
		single.Observe(100) // all in bucket (64,127]
	}
	ws = single.Snapshot()
	if ws.P50 < 65 || ws.P50 > 100 {
		t.Fatalf("single-bucket p50 = %v, want within (64, 100]", ws.P50)
	}
	if ws.P999 > float64(ws.Max) {
		t.Fatalf("p999 %v exceeds max %d", ws.P999, ws.Max)
	}

	zeros := NewWindow(time.Second)
	clk.install(zeros)
	for i := 0; i < 10; i++ {
		zeros.Observe(0)
	}
	ws = zeros.Snapshot()
	if ws.P50 != 0 || ws.P999 != 0 || ws.Max != 0 {
		t.Fatalf("all-zero quantiles = %v/%v max %d, want 0", ws.P50, ws.P999, ws.Max)
	}

	mixed := NewWindow(time.Second)
	clk.install(mixed)
	for i := uint64(1); i <= 1000; i++ {
		mixed.Observe(i)
	}
	ws = mixed.Snapshot()
	if !(ws.P50 <= ws.P95 && ws.P95 <= ws.P99 && ws.P99 <= ws.P999) {
		t.Fatalf("quantiles not monotonic: %v %v %v %v", ws.P50, ws.P95, ws.P99, ws.P999)
	}
	if ws.P999 > float64(ws.Max) {
		t.Fatalf("p999 %v exceeds max %d", ws.P999, ws.Max)
	}
}

// TestDistributionQuantile pins the interpolation arithmetic on a
// hand-built distribution.
func TestDistributionQuantile(t *testing.T) {
	d := Distribution{
		Count: 100,
		Max:   3,
		Buckets: []HistBucket{
			{Le: 1, N: 50}, // values == 1
			{Le: 3, N: 50}, // values in [2, 3]
		},
	}
	if got := d.Quantile(0.5); got != 1 {
		t.Fatalf("Q(0.5) = %v, want 1", got)
	}
	// Rank 75 is halfway through the [2,3] bucket: 2 + 0.5*(3-2) = 2.5.
	if got := d.Quantile(0.75); got != 2.5 {
		t.Fatalf("Q(0.75) = %v, want 2.5", got)
	}
	if got := d.Quantile(1); got != 3 {
		t.Fatalf("Q(1) = %v, want 3 (clamped to max)", got)
	}
	if got := d.Quantile(-1); got != d.Quantile(0) {
		t.Fatalf("Q(-1) = %v, want clamp to Q(0) = %v", got, d.Quantile(0))
	}
}

// TestHistogramMaxClampRegression pins the torn max-vs-buckets repair: a
// snapshot whose max atomic lags the buckets (simulated directly) must
// still report Max at least the floor of the highest non-empty bucket.
func TestHistogramMaxClampRegression(t *testing.T) {
	var h Histogram
	h.Observe(1000) // bucket (512, 1023]
	h.max.Store(0)  // simulate the torn read: buckets updated, max not yet
	d := h.Snapshot()
	if d.Max < 512 {
		t.Fatalf("snapshot max = %d, want >= 512 (floor of highest non-empty bucket)", d.Max)
	}
	if q := d.Quantile(0.99); q > float64(d.Max) {
		t.Fatalf("quantile %v exceeds clamped max %d", q, d.Max)
	}
}

// TestWindowSnapshotMerge checks the sharded-store fold: counts merge
// exactly and quantiles are recomputed from merged buckets.
func TestWindowSnapshotMerge(t *testing.T) {
	a := NewWindow(time.Second)
	b := NewWindow(time.Second)
	var clk fakeClock
	clk.install(a)
	clk.install(b)
	for i := 0; i < 100; i++ {
		a.Observe(10)
		b.Observe(1000)
	}
	m := a.Snapshot().merge(b.Snapshot())
	if m.Count != 200 || m.Sum != 100*10+100*1000 {
		t.Fatalf("merged count/sum = %d/%d", m.Count, m.Sum)
	}
	if m.P50 > 16 {
		t.Fatalf("merged p50 = %v, want within the low bucket", m.P50)
	}
	if m.P99 < 513 {
		t.Fatalf("merged p99 = %v, want within the high bucket", m.P99)
	}
}

// TestSlowRingConcurrent hammers Record from many goroutines while a
// dumper keeps reading; every dumped record must be internally consistent
// (a torn record would mix op and stage values). Run under -race this also
// proves the try-lock protocol is data-race-free.
func TestSlowRingConcurrent(t *testing.T) {
	var r SlowRing
	const goroutines = 8
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				v := uint64(g*1_000_000 + i)
				var stages [NumTraceStages]uint64
				for s := range stages {
					stages[s] = v
				}
				r.Record(SlowOp{Op: "put", UnixNanos: int64(v), TotalNanos: v, Stages: stages})
			}
		}(g)
	}
	deadline := time.After(50 * time.Millisecond)
	for done := false; !done; {
		select {
		case <-deadline:
			done = true
		default:
		}
		for _, rec := range r.Dump() {
			if rec.TotalNanos != uint64(rec.UnixNanos) {
				t.Errorf("torn record: total %d vs unix %d", rec.TotalNanos, rec.UnixNanos)
			}
			for s := range rec.Stages {
				if rec.Stages[s] != rec.TotalNanos {
					t.Errorf("torn record: stage %d = %d, total %d", s, rec.Stages[s], rec.TotalNanos)
				}
			}
		}
		if t.Failed() {
			break
		}
	}
	close(stop)
	wg.Wait()

	dump := r.Dump()
	if len(dump) == 0 || len(dump) > slowRingSize {
		t.Fatalf("dump size = %d, want (0, %d]", len(dump), slowRingSize)
	}
	for i := 1; i < len(dump); i++ {
		if dump[i-1].UnixNanos < dump[i].UnixNanos {
			t.Fatalf("dump not newest-first at %d", i)
		}
	}
}

// TestSlowOpJSON pins the self-describing /slow dump shape.
func TestSlowOpJSON(t *testing.T) {
	op := SlowOp{Op: "put", UnixNanos: 42, TotalNanos: 100, Sampled: true}
	op.Stages[StageApply] = 70
	data, err := json.Marshal(op)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	if m["op"] != "put" || m["apply_nanos"] != float64(70) || m["sampled"] != true {
		t.Fatalf("slow-op JSON = %s", data)
	}
	if _, ok := m["decode_nanos"]; !ok {
		t.Fatalf("missing stage key in %s", data)
	}
}

// TestTraceSnapshotAndNil checks the trace fold and its nil-safety.
func TestTraceSnapshotAndNil(t *testing.T) {
	var nilTr *TraceMetrics
	if nilTr.Snapshot() != nil {
		t.Fatal("nil TraceMetrics must snapshot to nil")
	}
	nilTr.Record(ServerOpPut, 0, nil, 0) // must not panic

	tr := &TraceMetrics{}
	var stages [NumTraceStages]uint64
	stages[StageApply] = 900
	stages[StageRespond] = 100
	tr.Record(ServerOpPut, time.Now().UnixNano(), &stages, 1000)
	tr.Record(ServerOp(-1), 0, &stages, 1) // out of range: dropped
	s := tr.Snapshot()
	if len(s.Ops) != int(NumServerOps) {
		t.Fatalf("ops = %d, want %d", len(s.Ops), NumServerOps)
	}
	put := s.Ops[ServerOpPut]
	if put.Total.Count != 1 || put.Stages[StageApply].Window.Sum != 900 {
		t.Fatalf("trace fold: total count %d, apply sum %d",
			put.Total.Count, put.Stages[StageApply].Window.Sum)
	}
}

// TestTraceRecordDoesNotAllocate guards the instrumented request path's
// zero-allocation contract: window observes, trace records, and slow-ring
// captures must all run without allocating.
func TestTraceRecordDoesNotAllocate(t *testing.T) {
	w := NewWindow(time.Second)
	if n := testing.AllocsPerRun(1000, func() { w.Observe(123) }); n != 0 {
		t.Fatalf("Window.Observe allocates %v/op", n)
	}
	tr := &TraceMetrics{}
	var stages [NumTraceStages]uint64
	now := time.Now().UnixNano()
	if n := testing.AllocsPerRun(1000, func() {
		tr.Record(ServerOpPut, now, &stages, 1000)
	}); n != 0 {
		t.Fatalf("TraceMetrics.Record allocates %v/op", n)
	}
	rec := SlowOp{Op: "put", UnixNanos: now, TotalNanos: 1000}
	if n := testing.AllocsPerRun(1000, func() { tr.Slow.Record(rec) }); n != 0 {
		t.Fatalf("SlowRing.Record allocates %v/op", n)
	}
}

// TestWritePrometheusWindowSummary checks the summary exposition of
// windowed points: quantile series plus windowed _sum/_count.
func TestWritePrometheusWindowSummary(t *testing.T) {
	tr := &TraceMetrics{}
	var stages [NumTraceStages]uint64
	stages[StageApply] = 1000
	tr.Record(ServerOpPut, time.Now().UnixNano(), &stages, 1000)
	var sb strings.Builder
	if err := WritePrometheus(&sb, "pmago", Snapshot{Trace: tr.Snapshot()}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE pmago_trace_request_window_seconds summary",
		`pmago_trace_request_window_seconds{op="put",quantile="0.99"}`,
		`pmago_trace_request_window_seconds_count{op="put"} 1`,
		`pmago_trace_stage_window_seconds{op="put",stage="apply",quantile="0.5"}`,
		"# TYPE pmago_trace_flush_window_seconds summary",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q", want)
		}
	}
	if t.Failed() {
		t.Logf("output:\n%s", out)
	}
}
