package obs

// ClientMetrics instruments pmago/client: the mirror image of the server's
// trace section, measured from the caller's side of the wire. QueueWait is
// the send-side stage (connection checkout + frame write — where pool
// contention and a slow socket show up); RTT is request-written →
// final-response-received per op, so RTT − server total ≈ network + the
// server's inbound read queue. Same cost contract as every other metric
// set: striped counters and window observes, no allocation, nil when
// disabled.
type ClientMetrics struct {
	Requests [NumServerOps]Counter
	Busy     Counter
	Timeouts Counter
	Errors   Counter
	Dials    Counter

	QueueWait Window
	RTT       [NumServerOps]Window
}

// ClientOpSnapshot is one op's section of a client snapshot.
type ClientOpSnapshot struct {
	Op       string         `json:"op"`
	Requests uint64         `json:"requests"`
	RTT      WindowSnapshot `json:"rtt"`
}

// ClientSnapshot is the client-side latency snapshot.
type ClientSnapshot struct {
	Busy      uint64             `json:"busy"`
	Timeouts  uint64             `json:"timeouts"`
	Errors    uint64             `json:"errors"`
	Dials     uint64             `json:"dials"`
	QueueWait WindowSnapshot     `json:"queue_wait"`
	Ops       []ClientOpSnapshot `json:"ops"`
}

// Snapshot copies the live counters (nil-safe: a disabled client reports
// the zero snapshot).
func (m *ClientMetrics) Snapshot() ClientSnapshot {
	if m == nil {
		return ClientSnapshot{}
	}
	s := ClientSnapshot{
		Busy:      m.Busy.Load(),
		Timeouts:  m.Timeouts.Load(),
		Errors:    m.Errors.Load(),
		Dials:     m.Dials.Load(),
		QueueWait: m.QueueWait.Snapshot(),
		Ops:       make([]ClientOpSnapshot, NumServerOps),
	}
	for i := range s.Ops {
		s.Ops[i] = ClientOpSnapshot{
			Op:       ServerOpNames[i],
			Requests: m.Requests[i].Load(),
			RTT:      m.RTT[i].Snapshot(),
		}
	}
	return s
}
