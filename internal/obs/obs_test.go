package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestCounterConcurrent hammers one Counter from many goroutines while a
// reader keeps summing it, then checks the quiesced total. Run under -race
// this also proves the striped update path is data-race-free.
func TestCounterConcurrent(t *testing.T) {
	var c Counter
	const (
		goroutines = 8
		perG       = 100000
	)
	stop := make(chan struct{})
	var readerWG sync.WaitGroup
	readerWG.Add(1)
	go func() { // concurrent racy reader: sums may lag but never overshoot
		defer readerWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if v := c.Load(); v > goroutines*perG {
				t.Errorf("Load()=%d exceeds true total %d", v, goroutines*perG)
				return
			}
		}
	}()
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				if i%10 == 0 {
					c.Add(1)
				} else {
					c.Inc()
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	readerWG.Wait()
	if got := c.Load(); got != goroutines*perG {
		t.Fatalf("quiesced Load()=%d, want %d", got, goroutines*perG)
	}
}

// TestHistogramBuckets checks the log2 bucket boundaries exactly.
func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	// One observation per bucket-edge value.
	vals := []uint64{0, 1, 2, 3, 4, 7, 8, 1023, 1024, math.MaxUint64}
	for _, v := range vals {
		h.Observe(v)
	}
	d := h.Snapshot()
	if d.Count != uint64(len(vals)) {
		t.Fatalf("Count=%d want %d", d.Count, len(vals))
	}
	wantSum := uint64(0)
	for _, v := range vals {
		wantSum += v // wraps; Sum wraps identically
	}
	if d.Sum != wantSum {
		t.Fatalf("Sum=%d want %d", d.Sum, wantSum)
	}
	if d.Max != math.MaxUint64 {
		t.Fatalf("Max=%d want MaxUint64", d.Max)
	}
	// Bucket bounds: 0→le 0; 1→le 1; 2,3→le 3; 4,7→le 7; 8→le 15;
	// 1023→le 1023; 1024→le 2047; MaxUint64→le MaxUint64.
	want := map[uint64]uint64{
		0: 1, 1: 1, 3: 2, 7: 2, 15: 1, 1023: 1, 2047: 1, math.MaxUint64: 1,
	}
	if len(d.Buckets) != len(want) {
		t.Fatalf("got %d buckets, want %d: %+v", len(d.Buckets), len(want), d.Buckets)
	}
	var prev uint64
	for i, b := range d.Buckets {
		if n, ok := want[b.Le]; !ok || n != b.N {
			t.Errorf("bucket le=%d n=%d, want n=%d", b.Le, b.N, want[b.Le])
		}
		if i > 0 && b.Le <= prev {
			t.Errorf("buckets not ascending at %d: %d after %d", i, b.Le, prev)
		}
		prev = b.Le
	}
}

// TestHistogramConcurrent observes from many goroutines under -race while
// snapshotting, then validates the quiesced totals.
func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	const (
		goroutines = 8
		perG       = 50000
	)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	var snapWG sync.WaitGroup
	snapWG.Add(1)
	go func() {
		defer snapWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
				d := h.Snapshot()
				var n uint64
				for _, b := range d.Buckets {
					n += b.N
				}
				// Racy snapshot: bucket totals may lag count or vice versa,
				// but nothing can exceed the true final total.
				if n > goroutines*perG {
					t.Errorf("bucket total %d exceeds true total", n)
					return
				}
			}
		}
	}()
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				h.Observe(uint64(g*perG + i))
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	snapWG.Wait()
	d := h.Snapshot()
	if d.Count != goroutines*perG {
		t.Fatalf("Count=%d want %d", d.Count, goroutines*perG)
	}
	var n uint64
	for _, b := range d.Buckets {
		n += b.N
	}
	if n != d.Count {
		t.Fatalf("bucket total %d != Count %d", n, d.Count)
	}
	if d.Max != goroutines*perG-1 {
		t.Fatalf("Max=%d want %d", d.Max, goroutines*perG-1)
	}
}

func TestHistogramNilAndDuration(t *testing.T) {
	var h *Histogram
	if d := h.Snapshot(); d.Count != 0 || d.Buckets != nil {
		t.Fatalf("nil Snapshot not zero: %+v", d)
	}
	var hh Histogram
	hh.ObserveDuration(-time.Second) // clamps to 0
	hh.ObserveDuration(3 * time.Millisecond)
	d := hh.Snapshot()
	if d.Count != 2 || d.Max != uint64(3*time.Millisecond) {
		t.Fatalf("duration snapshot wrong: %+v", d)
	}
	if d.Mean() != float64(3*time.Millisecond)/2 {
		t.Fatalf("Mean=%v", d.Mean())
	}
	if (Distribution{}).Mean() != 0 {
		t.Fatal("empty Mean != 0")
	}
}

func TestDistributionMerge(t *testing.T) {
	var a, b Histogram
	for _, v := range []uint64{1, 5, 100} {
		a.Observe(v)
	}
	for _, v := range []uint64{5, 7, 4000} {
		b.Observe(v)
	}
	m := a.Snapshot().merge(b.Snapshot())
	if m.Count != 6 || m.Sum != 1+5+100+5+7+4000 || m.Max != 4000 {
		t.Fatalf("merge totals wrong: %+v", m)
	}
	var n uint64
	var prev uint64
	for i, bk := range m.Buckets {
		n += bk.N
		if i > 0 && bk.Le <= prev {
			t.Fatalf("merged buckets not ascending: %+v", m.Buckets)
		}
		prev = bk.Le
	}
	if n != m.Count {
		t.Fatalf("merged bucket total %d != Count %d", n, m.Count)
	}
	// le=7 bucket (values 4..7) holds 5,5,7 from both sides.
	for _, bk := range m.Buckets {
		if bk.Le == 7 && bk.N != 3 {
			t.Fatalf("le=7 bucket N=%d want 3", bk.N)
		}
	}
	// Merging into/from empty keeps the other side.
	if got := (Distribution{}).merge(m); got.Count != m.Count {
		t.Fatalf("empty.merge lost data: %+v", got)
	}
	if got := m.merge(Distribution{}); got.Count != m.Count {
		t.Fatalf("merge(empty) lost data: %+v", got)
	}
}

func TestMetricsNilSnapshots(t *testing.T) {
	var cm *CoreMetrics
	var wm *WALMetrics
	var km *CheckpointMetrics
	if s := cm.Snapshot(); s.Reads.GetOptimistic != 0 || s.Updates.DrainSize.Count != 0 || s.Rebalance.Local != 0 {
		t.Fatalf("nil CoreMetrics snapshot not zero: %+v", s)
	}
	if s := wm.Snapshot(); s.Appends != 0 || s.FsyncNanos.Count != 0 {
		t.Fatalf("nil WALMetrics snapshot not zero: %+v", s)
	}
	if s := km.Snapshot(); s.Snapshots != 0 {
		t.Fatalf("nil CheckpointMetrics snapshot not zero: %+v", s)
	}
}

func TestSnapshotMerge(t *testing.T) {
	a := Snapshot{Durable: true}
	a.Reads.GetOptimistic = 10
	a.Rebalance.EpochReclaimed = 2
	a.WAL.Appends = 5
	a.Recovery.Recoveries = 1
	a.Shards = []ShardStats{{Ops: 3}}
	b := Snapshot{}
	b.Reads.GetOptimistic = 7
	b.Shards = []ShardStats{{Ops: 9, BatchKeys: 4}}
	m := a.Merge(b)
	if !m.Durable || m.Reads.GetOptimistic != 17 || m.WAL.Appends != 5 ||
		m.Recovery.Recoveries != 1 || m.Rebalance.EpochReclaimed != 2 {
		t.Fatalf("merge wrong: %+v", m)
	}
	if len(m.Shards) != 2 || m.Shards[1].BatchKeys != 4 {
		t.Fatalf("shards wrong: %+v", m.Shards)
	}
}

func TestWritePrometheus(t *testing.T) {
	var s Snapshot
	s.Durable = true
	s.Reads.GetOptimistic = 42
	var h Histogram
	h.Observe(uint64(2 * time.Millisecond))
	h.Observe(uint64(130 * time.Millisecond))
	s.WAL.FsyncNanos = h.Snapshot()
	s.Shards = []ShardStats{{Ops: 1}, {Ops: 2, BatchKeys: 3}}

	var b strings.Builder
	if err := WritePrometheus(&b, "pmago", s); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE pmago_reads_get_optimistic_total counter\n",
		"pmago_reads_get_optimistic_total 42\n",
		"# TYPE pmago_wal_fsync_duration_seconds histogram\n",
		"pmago_wal_fsync_duration_seconds_bucket{le=\"+Inf\"} 2\n",
		"pmago_wal_fsync_duration_seconds_count 2\n",
		"pmago_shard_ops_total{shard=\"0\"} 1\n",
		"pmago_shard_ops_total{shard=\"1\"} 2\n",
		"pmago_shard_batch_keys_total{shard=\"1\"} 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q\n---\n%s", want, out)
		}
	}
	// One TYPE line per family even with two shard series.
	if n := strings.Count(out, "# TYPE pmago_shard_ops_total"); n != 1 {
		t.Errorf("shard_ops_total TYPE lines = %d, want 1", n)
	}
	// Histogram sum is scaled to seconds (132ms = 0.132s).
	if !strings.Contains(out, "pmago_wal_fsync_duration_seconds_sum 0.132\n") {
		t.Errorf("scaled _sum missing\n---\n%s", out)
	}
	// Cumulative buckets ascend: first bucket (le≈0.002s region) is 1.
	if !strings.Contains(out, "} 1\npmago_wal_fsync_duration_seconds_bucket") {
		t.Errorf("cumulative bucket chain wrong\n---\n%s", out)
	}
}

func TestSlogHookDoesNotPanic(t *testing.T) {
	h := NewSlogHook(nil, 10*time.Millisecond)
	h.OnRebalance(RebalanceEvent{Gates: 4, Duration: time.Millisecond}) // below slow: silent
	h.OnRebalance(RebalanceEvent{Gates: 512, Resize: true, Duration: time.Second})
	h.OnCompaction(CompactionEvent{Auto: true, Pairs: 10, Bytes: 100, Duration: time.Millisecond})
	h.OnRecovery(RecoveryEvent{SnapshotPairs: 5, WALRecords: 2})
	h.OnFsyncStall(FsyncStallEvent{Duration: time.Second, Threshold: 100 * time.Millisecond})
}
