package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Point is one flattened metric from a Snapshot: either a scalar counter
// (Dist nil) or a distribution. The flat form backs both exposition
// surfaces — the Prometheus text writer below and pmabench's -stats JSON
// rows — so the metric catalog lives in exactly one place (Points).
type Point struct {
	Name   string            // metric name without the exporter prefix
	Labels map[string]string // nil for most points; shard index for routing
	Value  uint64            // scalar value (counters/gauges)
	Dist   *Distribution     // non-nil for histogram points (Value unused)
	Win    *WindowSnapshot   // non-nil for sliding-window points (summary exposition)
	Scale  float64           // exposition multiplier: 1e-9 for ns→seconds, else 0 (=1)
	Unit   string            // "ops", "bytes", "seconds", ... (JSON rows only)
	Gauge  bool              // TYPE gauge instead of counter
}

// Points flattens the snapshot into the full metric catalog. Zero-valued
// scalar points are included — a scrape of a fresh store should show the
// whole catalog, not a shape that changes as counters first tick.
func (s Snapshot) Points() []Point {
	c := func(name, unit string, v uint64) Point { return Point{Name: name, Unit: unit, Value: v} }
	d := func(name, unit string, dist Distribution, scale float64) Point {
		dd := dist
		return Point{Name: name, Unit: unit, Dist: &dd, Scale: scale}
	}
	win := func(name, unit string, ws WindowSnapshot, scale float64, labels map[string]string) Point {
		ww := ws
		return Point{Name: name, Unit: unit, Win: &ww, Scale: scale, Labels: labels}
	}
	pts := []Point{
		c("reads_get_optimistic_total", "ops", s.Reads.GetOptimistic),
		c("reads_get_latched_total", "ops", s.Reads.GetLatched),
		c("reads_get_probe_fails_total", "ops", s.Reads.GetProbeFails),
		c("reads_scan_chunks_optimistic_total", "chunks", s.Reads.ScanChunksOptimistic),
		c("reads_scan_chunks_latched_total", "chunks", s.Reads.ScanChunksLatched),
		c("reads_scan_probe_fails_total", "chunks", s.Reads.ScanProbeFails),
		c("updates_combined_ops_total", "ops", s.Updates.CombinedOps),
		c("updates_deferred_batches_total", "batches", s.Updates.DeferredBatches),
		d("updates_drain_size_ops", "ops", s.Updates.DrainSize, 0),
		c("rebalance_local_total", "rebalances", s.Rebalance.Local),
		c("rebalance_global_total", "rebalances", s.Rebalance.Global),
		c("rebalance_resizes_total", "resizes", s.Rebalance.Resizes),
		d("rebalance_window_gates", "gates", s.Rebalance.WindowGates, 0),
		d("rebalance_duration_seconds", "seconds", s.Rebalance.RebalanceNanos, 1e-9),
		d("resize_duration_seconds", "seconds", s.Rebalance.ResizeNanos, 1e-9),
		c("epoch_reclaimed_total", "snapshots", s.Rebalance.EpochReclaimed),
	}
	if s.Compression.Enabled {
		pts = append(pts,
			c("compressed_seg_decodes_total", "decodes", s.Compression.SegDecodes),
			c("compressed_reencode_bytes_total", "bytes", s.Compression.ReencodeBytes),
			Point{Name: "compressed_encoded_bytes", Unit: "bytes", Value: s.Compression.EncodedBytes, Gauge: true},
			Point{Name: "compressed_pairs", Unit: "pairs", Value: s.Compression.Pairs, Gauge: true},
		)
	}
	if s.Durable {
		pts = append(pts,
			c("wal_appends_total", "records", s.WAL.Appends),
			c("wal_append_bytes_total", "bytes", s.WAL.AppendBytes),
			c("wal_rotations_total", "rotations", s.WAL.Rotations),
			c("wal_fsyncs_total", "fsyncs", s.WAL.Fsyncs),
			d("wal_fsync_duration_seconds", "seconds", s.WAL.FsyncNanos, 1e-9),
			d("wal_group_commit_records", "records", s.WAL.GroupCommitRecords, 0),
			win("wal_append_window_seconds", "seconds", s.WAL.AppendWindow, 1e-9, nil),
			win("wal_fsync_window_seconds", "seconds", s.WAL.FsyncWindow, 1e-9, nil),
			c("checkpoint_snapshots_total", "snapshots", s.Checkpoint.Snapshots),
			c("checkpoint_auto_compactions_total", "compactions", s.Checkpoint.AutoCompactions),
			c("checkpoint_pairs_written_total", "pairs", s.Checkpoint.PairsWritten),
			c("checkpoint_bytes_written_total", "bytes", s.Checkpoint.BytesWritten),
			d("checkpoint_duration_seconds", "seconds", s.Checkpoint.SnapshotNanos, 1e-9),
			c("recovery_runs_total", "recoveries", s.Recovery.Recoveries),
			c("recovery_snapshot_pairs_total", "pairs", s.Recovery.SnapshotPairs),
			c("recovery_snapshot_bytes_total", "bytes", s.Recovery.SnapshotBytes),
			Point{Name: "recovery_snapshot_load_seconds", Unit: "seconds", Value: s.Recovery.SnapshotLoadNanos, Scale: 1e-9, Gauge: true},
			c("recovery_wal_records_total", "records", s.Recovery.WALRecords),
			Point{Name: "recovery_wal_replay_seconds", Unit: "seconds", Value: s.Recovery.WALReplayNanos, Scale: 1e-9, Gauge: true},
		)
	}
	for i, sh := range s.Shards {
		lbl := map[string]string{"shard": fmt.Sprint(i)}
		pts = append(pts,
			Point{Name: "shard_ops_total", Unit: "ops", Labels: lbl, Value: sh.Ops},
			Point{Name: "shard_batch_keys_total", Unit: "keys", Labels: lbl, Value: sh.BatchKeys},
		)
	}
	// Health gauge: 1 with the first background durability failure latched,
	// 0 while healthy — the alerting-friendly mirror of the Err string.
	var unhealthy uint64
	if s.Err != "" {
		unhealthy = 1
	}
	pts = append(pts, Point{Name: "unhealthy", Unit: "bool", Value: unhealthy, Gauge: true})
	if sv := s.Server; sv != nil {
		pts = append(pts,
			c("server_conns_opened_total", "conns", sv.ConnsOpened),
			c("server_conns_closed_total", "conns", sv.ConnsClosed),
			c("server_bytes_read_total", "bytes", sv.BytesRead),
			c("server_bytes_written_total", "bytes", sv.BytesWritten),
			c("server_busy_total", "requests", sv.Busy),
			c("server_errors_total", "requests", sv.Errors),
			c("server_scan_chunks_total", "chunks", sv.ScanChunks),
			c("server_scan_cancels_total", "scans", sv.ScanCancels),
			c("server_group_commits_total", "commits", sv.GroupCommits),
			d("server_commit_ops", "ops", sv.CommitOps, 0),
			d("server_commit_keys", "keys", sv.CommitKeys, 0),
		)
		for _, op := range sv.Ops {
			lbl := map[string]string{"op": op.Op}
			dd := op.Nanos
			pts = append(pts,
				Point{Name: "server_requests_total", Unit: "requests", Labels: lbl, Value: op.Requests},
				Point{Name: "server_request_duration_seconds", Unit: "seconds", Labels: lbl, Dist: &dd, Scale: 1e-9},
			)
		}
	}
	if tr := s.Trace; tr != nil {
		for _, op := range tr.Ops {
			pts = append(pts, win("trace_request_window_seconds", "seconds", op.Total, 1e-9,
				map[string]string{"op": op.Op}))
			for _, st := range op.Stages {
				pts = append(pts, win("trace_stage_window_seconds", "seconds", st.Window, 1e-9,
					map[string]string{"op": op.Op, "stage": st.Stage}))
			}
		}
		pts = append(pts, win("trace_flush_window_seconds", "seconds", tr.Flush, 1e-9, nil))
	}
	return pts
}

// WritePrometheus writes the snapshot in Prometheus text exposition format
// (version 0.0.4), hand-rolled to keep the module dependency-free. Scalars
// become counters (or gauges), distributions become native histogram
// series: cumulative `_bucket{le="..."}` plus `_sum` and `_count`, with
// nanosecond distributions scaled to seconds via Point.Scale. Sliding
// windows become summary series — precomputed `{quantile="0.99"}` values
// plus `_sum`/`_count` — with the caveat that, unlike a textbook summary,
// sum and count cover the trailing window, not the process lifetime.
func WritePrometheus(w io.Writer, prefix string, s Snapshot) error {
	if prefix != "" && !strings.HasSuffix(prefix, "_") {
		prefix += "_"
	}
	// The text format requires all series of one metric family to be
	// contiguous; shard points with the same name arrive adjacent already,
	// but emit TYPE headers once per name regardless.
	typed := make(map[string]bool)
	ew := &errWriter{w: w}
	for _, p := range s.Points() {
		name := prefix + p.Name
		kind := "counter"
		if p.Gauge {
			kind = "gauge"
		}
		if p.Dist != nil {
			kind = "histogram"
		}
		if p.Win != nil {
			kind = "summary"
		}
		if !typed[name] {
			typed[name] = true
			fmt.Fprintf(ew, "# TYPE %s %s\n", name, kind)
		}
		scale := p.Scale
		if scale == 0 {
			scale = 1
		}
		switch {
		case p.Win != nil:
			for _, qv := range [...]struct {
				q string
				v float64
			}{{"0.5", p.Win.P50}, {"0.95", p.Win.P95}, {"0.99", p.Win.P99}, {"0.999", p.Win.P999}} {
				fmt.Fprintf(ew, "%s%s %g\n", name, labelString(p.Labels, "quantile", qv.q), qv.v*scale)
			}
			fmt.Fprintf(ew, "%s_sum%s %s\n", name, labelString(p.Labels, "", ""), formatScaled(p.Win.Sum, scale))
			fmt.Fprintf(ew, "%s_count%s %d\n", name, labelString(p.Labels, "", ""), p.Win.Count)
		case p.Dist != nil:
			var cum uint64
			for _, b := range p.Dist.Buckets {
				cum += b.N
				fmt.Fprintf(ew, "%s_bucket%s %d\n", name, labelString(p.Labels, "le", formatScaled(b.Le, scale)), cum)
			}
			fmt.Fprintf(ew, "%s_bucket%s %d\n", name, labelString(p.Labels, "le", "+Inf"), p.Dist.Count)
			fmt.Fprintf(ew, "%s_sum%s %s\n", name, labelString(p.Labels, "", ""), formatScaled(p.Dist.Sum, scale))
			fmt.Fprintf(ew, "%s_count%s %d\n", name, labelString(p.Labels, "", ""), p.Dist.Count)
		default:
			fmt.Fprintf(ew, "%s%s %s\n", name, labelString(p.Labels, "", ""), formatScaled(p.Value, scale))
		}
	}
	return ew.err
}

// labelString renders a label set ({shard="3",le="0.001"} or empty). The
// extra pair — le for histogram buckets, quantile for summaries — is
// appended last when non-empty, per Prometheus convention.
func labelString(labels map[string]string, extraKey, extraVal string) string {
	if len(labels) == 0 && extraVal == "" {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, labels[k])
	}
	if extraVal != "" {
		if len(keys) > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", extraKey, extraVal)
	}
	b.WriteByte('}')
	return b.String()
}

// formatScaled renders v (optionally scaled, e.g. ns→s) without trailing
// float noise for the scale==1 integer case.
func formatScaled(v uint64, scale float64) string {
	if scale == 1 {
		return fmt.Sprintf("%d", v)
	}
	return fmt.Sprintf("%g", float64(v)*scale)
}

// errWriter latches the first write error so the exposition loop doesn't
// need two dozen error checks.
type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) Write(p []byte) (int, error) {
	if e.err != nil {
		return len(p), nil
	}
	n, err := e.w.Write(p)
	e.err = err
	return n, err
}
