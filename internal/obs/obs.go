// Package obs is the observability layer of the store: cache-line-padded
// striped counters, log-bucketed histograms, structural-event hooks and the
// exposition code behind pmago.Stats/pmago.Handler. It has no dependencies
// beyond the standard library and is deliberately a leaf package — core,
// persist and the public pmago layer all report through it.
//
// The design constraints come from where the instruments sit. Counters on
// the Get fast path are incremented by every reader concurrently, so a
// single atomic word would serialise all readers on one cache line; Counter
// stripes its value across padded slots selected per goroutine. Histograms
// record latencies and sizes on service goroutines (rebalancer master, WAL
// group commit), where a plain atomic bucket array is contention-free in
// practice. Everything here is allocation-free on the update path; snapshot
// and exposition allocate, but those run at scrape frequency, not op
// frequency.
//
// All instruments are nil-tolerant at their owner: the store keeps a nil
// metrics pointer when metrics are disabled, so the disabled hot-path cost
// is one pointer nil check and no call.
package obs

import (
	"sync/atomic"
	"unsafe"
)

// numStripes is the fixed stripe count of a Counter. Power of two. 16
// stripes × 64 bytes = 1 KiB per counter — cheap enough to embed freely,
// wide enough that even a machine-saturating reader fleet rarely collides.
const numStripes = 16

// stripe is one padded slot: the value plus padding out to a full cache
// line, so adjacent stripes never share a line (the whole point).
type stripe struct {
	n atomic.Uint64
	_ [56]byte
}

// Counter is a monotonic counter striped across padded cache lines.
// Increments pick a stripe from the caller's stack address, so a goroutine
// keeps hitting the same (likely locally cached) line while different
// goroutines spread across stripes. The zero value is ready to use.
type Counter struct {
	stripes [numStripes]stripe
}

// stripeIndex derives a stable per-goroutine stripe from the address of a
// stack variable. Goroutine stacks are allocated at distinct, well-spread
// addresses (2 KiB minimum spans), so shifting off the in-frame bits leaves
// a value that differs between goroutines but is constant within one
// (until a stack growth moves it, which is rare and harmless). This costs
// two ALU ops — no thread-local lookup, no hashing, no allocation: the
// pointer never escapes because it is consumed as a uintptr immediately.
func stripeIndex() int {
	var marker byte
	return int((uintptr(unsafe.Pointer(&marker)) >> 11) & (numStripes - 1))
}

// Inc adds 1.
func (c *Counter) Inc() { c.stripes[stripeIndex()].n.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.stripes[stripeIndex()].n.Add(n) }

// Load sums the stripes. Concurrent increments may or may not be included;
// the result is exact once writers quiesce.
func (c *Counter) Load() uint64 {
	var t uint64
	for i := range c.stripes {
		t += c.stripes[i].n.Load()
	}
	return t
}
