package obs

import (
	"encoding/json"
	"sort"
	"sync"
	"sync/atomic"
)

// The request-path trace section: per-op, per-stage sliding-window latency
// attribution for the serving pipeline, plus the slow-op flight recorder.
// pmago/server owns one TraceMetrics per Server and stamps each request at
// its stage boundaries; the stages partition the request's total handling
// time, so windowed stage sums ≈ windowed totals and a p99 spike can be
// attributed to the stage that produced it.

// TraceStage indexes the per-stage windows of TraceMetrics. The stages
// partition a request's life from frame decode to response enqueue:
//
//	StageDecode     frame payload → decoded, validated request
//	StageQueue      write dispatched → drained off the commit queue
//	StageCommitWait drained → the group-commit store call begins
//	StageApply      the store call (WAL append + fsync + apply inside)
//	StageRespond    store call returned → response frame enqueued
//
// Reads skip queue and commit-wait (they execute inline, both stages read
// 0). WAL append and fsync time lives inside StageApply; the WAL's own
// AppendWindow/FsyncWindow (WALMetrics) attribute it store-side, which also
// covers embedded users that never cross the serving layer.
type TraceStage int

const (
	StageDecode TraceStage = iota
	StageQueue
	StageCommitWait
	StageApply
	StageRespond
	NumTraceStages
)

// TraceStageNames maps TraceStage to its stable metric label.
var TraceStageNames = [NumTraceStages]string{
	"decode", "queue", "commit_wait", "apply", "respond",
}

// TraceMetrics is the serving layer's trace section: sliding-window
// latency per op (Total), per op and stage (Stages), the outbound writer's
// per-burst flush latency (Flush), and the slow-op flight recorder (Slow).
// Nil when tracing is disabled; every method is nil-safe.
type TraceMetrics struct {
	Stages [NumServerOps][NumTraceStages]Window
	Total  [NumServerOps]Window
	Flush  Window
	Slow   SlowRing
}

// Record attributes one answered request: its stage breakdown and total
// into the op's windows, all at the same clock reading so every window
// agrees on the slot. Allocation-free.
func (m *TraceMetrics) Record(op ServerOp, now int64, stages *[NumTraceStages]uint64, total uint64) {
	if m == nil || op < 0 || op >= NumServerOps {
		return
	}
	for i := range stages {
		m.Stages[op][i].ObserveAt(now, stages[i])
	}
	m.Total[op].ObserveAt(now, total)
}

// TraceStageSnapshot is one stage's window in a trace snapshot.
type TraceStageSnapshot struct {
	Stage  string         `json:"stage"`
	Window WindowSnapshot `json:"window"`
}

// TraceOpSnapshot is one op's section of a trace snapshot.
type TraceOpSnapshot struct {
	Op     string               `json:"op"`
	Total  WindowSnapshot       `json:"total"`
	Stages []TraceStageSnapshot `json:"stages"`
}

// TraceSnapshot is the request-path tracing section of a snapshot, present
// only on snapshots taken through a pmago/server.Server.
type TraceSnapshot struct {
	Ops   []TraceOpSnapshot `json:"ops"`
	Flush WindowSnapshot    `json:"flush"`
}

// Snapshot folds every window (nil-safe: returns nil, omitting the
// section).
func (m *TraceMetrics) Snapshot() *TraceSnapshot {
	if m == nil {
		return nil
	}
	t := &TraceSnapshot{Ops: make([]TraceOpSnapshot, NumServerOps)}
	for op := range t.Ops {
		o := TraceOpSnapshot{
			Op:     ServerOpNames[op],
			Total:  m.Total[op].Snapshot(),
			Stages: make([]TraceStageSnapshot, NumTraceStages),
		}
		for st := range o.Stages {
			o.Stages[st] = TraceStageSnapshot{
				Stage:  TraceStageNames[st],
				Window: m.Stages[op][st].Snapshot(),
			}
		}
		t.Ops[op] = o
	}
	t.Flush = m.Flush.Snapshot()
	return t
}

// SlowOp is one captured request in the slow-op flight recorder: which op,
// when it finished, its total handling time, and the full stage breakdown.
// Sampled marks records captured by the uniform 1-in-N sampler rather than
// the slow threshold.
type SlowOp struct {
	Op         string
	UnixNanos  int64
	TotalNanos uint64
	Stages     [NumTraceStages]uint64
	Sampled    bool
}

// MarshalJSON renders the stage array under its stage names, so the /slow
// dump is self-describing ("decode_nanos": ..., "apply_nanos": ...).
func (o SlowOp) MarshalJSON() ([]byte, error) {
	m := make(map[string]any, NumTraceStages+4)
	m["op"] = o.Op
	m["unix_nanos"] = o.UnixNanos
	m["total_nanos"] = o.TotalNanos
	for i, v := range o.Stages {
		m[TraceStageNames[i]+"_nanos"] = v
	}
	if o.Sampled {
		m["sampled"] = true
	}
	return json.Marshal(m)
}

// slowRingSize bounds the flight recorder: big enough that a burst of slow
// requests keeps minutes of history at realistic slow rates, small enough
// that the ring lives happily inside TraceMetrics.
const slowRingSize = 256

// slowSlot holds one record behind a tiny mutex: writers TryLock and drop
// on contention (the hot path never blocks), the dumper locks each slot for
// one struct copy.
type slowSlot struct {
	mu  sync.Mutex
	set bool
	rec SlowOp
}

// SlowRing is the bounded slow-op flight recorder: a lock-light ring that
// keeps the most recent slowRingSize captures. Record is allocation-free
// and never blocks — a writer racing the dumper (or a lapping writer) on
// the same slot drops its record, which costs one entry of history, not
// latency. The zero value is ready to use.
type SlowRing struct {
	next  atomic.Uint64
	slots [slowRingSize]slowSlot
}

// Record captures one slow (or sampled) op.
func (r *SlowRing) Record(rec SlowOp) {
	if r == nil {
		return
	}
	s := &r.slots[(r.next.Add(1)-1)%slowRingSize]
	if !s.mu.TryLock() {
		return
	}
	s.rec, s.set = rec, true
	s.mu.Unlock()
}

// Dump copies the captured records out, newest first. Nil-safe.
func (r *SlowRing) Dump() []SlowOp {
	if r == nil {
		return nil
	}
	out := make([]SlowOp, 0, slowRingSize)
	for i := range r.slots {
		s := &r.slots[i]
		s.mu.Lock()
		if s.set {
			out = append(out, s.rec)
		}
		s.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].UnixNanos > out[j].UnixNanos })
	return out
}
