package obs

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// DefaultWindowInterval is the trailing interval a zero-value Window covers.
const DefaultWindowInterval = 10 * time.Second

// winSlots is the sub-window count of a Window: the trailing interval is
// split into winSlots equal slots, and a snapshot folds the slots whose
// absolute slot number still falls inside the interval. More slots smooth
// the roll-off (old observations leave one slot at a time); eight keeps the
// footprint small while the newest ~7/8 of the interval is always covered.
const winSlots = 8

// winSlot is one sub-window: a bucketed histogram plus the absolute slot
// number it currently holds. id publishes slot+1 (0 = never used); claim is
// the rotation latch — a writer that finds the slot stale CASes claim to
// the slot it wants, clears the counters, then publishes id.
type winSlot struct {
	id      atomic.Int64
	claim   atomic.Int64
	count   atomic.Uint64
	sum     atomic.Uint64
	max     atomic.Uint64
	buckets [histBuckets]atomic.Uint64
}

// Window is a concurrent sliding-window histogram: a ring of winSlots
// log2-bucketed sub-windows rotated on a coarse clock, answering "what was
// the distribution over the trailing interval" where a Histogram can only
// answer "since the process started". Observe is allocation-free — plain
// atomics, like Counter and Histogram — and the zero value is ready to use
// with DefaultWindowInterval; NewWindow picks another interval.
//
// Consistency: each sub-window is monotonic under concurrent observes but a
// snapshot is not a consistent cut, and rotation at a slot boundary can
// lose or misattribute the few observations racing the reset — bounded slop
// that metrics tolerate by design (the same contract as the striped
// counters). Quantiles interpolate within log2 buckets, so they carry the
// buckets' relative error (below ~41% of the value, typically far less).
type Window struct {
	// interval is immutable after construction (zero = default); clock is
	// the test seam — nil means the wall clock.
	interval time.Duration
	clock    func() int64
	slots    [winSlots]winSlot
}

// NewWindow returns a Window covering the trailing interval (0 or negative
// selects DefaultWindowInterval).
func NewWindow(interval time.Duration) *Window {
	if interval <= 0 {
		interval = DefaultWindowInterval
	}
	return &Window{interval: interval}
}

func (w *Window) slotNanos() int64 {
	iv := w.interval
	if iv <= 0 {
		iv = DefaultWindowInterval
	}
	return int64(iv) / winSlots
}

func (w *Window) now() int64 {
	if w.clock != nil {
		return w.clock()
	}
	return time.Now().UnixNano()
}

// Observe records one value at the current time.
func (w *Window) Observe(v uint64) {
	if w == nil {
		return
	}
	w.ObserveAt(w.now(), v)
}

// ObserveDuration records a duration in nanoseconds (negative clamps to 0).
func (w *Window) ObserveDuration(d time.Duration) {
	if d < 0 {
		d = 0
	}
	w.Observe(uint64(d))
}

// ObserveAt records one value at an explicit clock reading, letting owners
// that already hold a timestamp avoid a second clock read.
func (w *Window) ObserveAt(now int64, v uint64) {
	if w == nil {
		return
	}
	if now < 0 {
		now = 0
	}
	slot := now / w.slotNanos()
	s := &w.slots[uint64(slot)%winSlots]
	w.rotate(s, slot+1)
	s.count.Add(1)
	s.sum.Add(v)
	for {
		cur := s.max.Load()
		if cur >= v || s.max.CompareAndSwap(cur, v) {
			break
		}
	}
	s.buckets[bits.Len64(v)].Add(1)
}

// rotate makes s hold absolute slot id `want` (1-based), clearing it if it
// still holds an older lap. Exactly one racer wins the claim CAS and
// resets; the losers spin briefly for the publish so their counts land in
// the cleared slot — the wait is bounded (the clear is ~70 atomic stores),
// and a racer that exhausts it records anyway, accepting the slop the type
// documents.
func (w *Window) rotate(s *winSlot, want int64) {
	if s.id.Load() >= want {
		return
	}
	for {
		c := s.claim.Load()
		if c >= want {
			for i := 0; i < 1<<14 && s.id.Load() < c; i++ {
			}
			return
		}
		if s.claim.CompareAndSwap(c, want) {
			s.count.Store(0)
			s.sum.Store(0)
			s.max.Store(0)
			for i := range s.buckets {
				s.buckets[i].Store(0)
			}
			s.id.Store(want)
			return
		}
	}
}

// Snapshot folds the slots still inside the trailing interval into a
// WindowSnapshot with precomputed quantiles. Nil-safe.
func (w *Window) Snapshot() WindowSnapshot {
	if w == nil {
		return WindowSnapshot{}
	}
	return w.SnapshotAt(w.now())
}

// SnapshotAt is Snapshot at an explicit clock reading.
func (w *Window) SnapshotAt(now int64) WindowSnapshot {
	var ws WindowSnapshot
	if w == nil {
		return ws
	}
	if now < 0 {
		now = 0
	}
	cur := now / w.slotNanos()
	oldest := cur - winSlots + 1
	var d Distribution
	var totals [histBuckets]uint64
	for i := range w.slots {
		s := &w.slots[i]
		id := s.id.Load() - 1
		if s.id.Load() == 0 || id < oldest || id > cur {
			continue
		}
		d.Count += s.count.Load()
		d.Sum += s.sum.Load()
		if m := s.max.Load(); m > d.Max {
			d.Max = m
		}
		for b := range s.buckets {
			totals[b] += s.buckets[b].Load()
		}
	}
	for i, n := range totals {
		if n > 0 {
			d.Buckets = append(d.Buckets, HistBucket{Le: bucketBound(i), N: n})
		}
	}
	d.clampMax()
	iv := w.interval
	if iv <= 0 {
		iv = DefaultWindowInterval
	}
	ws.Distribution = d
	ws.IntervalNanos = uint64(iv)
	ws.fillQuantiles()
	return ws
}

// WindowSnapshot is the immutable snapshot of a Window: the trailing
// interval's Distribution plus interpolated percentiles.
type WindowSnapshot struct {
	Distribution
	IntervalNanos uint64  `json:"interval_nanos"`
	P50           float64 `json:"p50"`
	P95           float64 `json:"p95"`
	P99           float64 `json:"p99"`
	P999          float64 `json:"p999"`
}

func (s *WindowSnapshot) fillQuantiles() {
	s.P50 = s.Quantile(0.50)
	s.P95 = s.Quantile(0.95)
	s.P99 = s.Quantile(0.99)
	s.P999 = s.Quantile(0.999)
}

// merge folds o into s (sharded stores sum their shards' windows) and
// recomputes the percentiles from the merged buckets — quantiles cannot be
// averaged, but bucket counts merge exactly.
func (s WindowSnapshot) merge(o WindowSnapshot) WindowSnapshot {
	s.Distribution = s.Distribution.merge(o.Distribution)
	if o.IntervalNanos > s.IntervalNanos {
		s.IntervalNanos = o.IntervalNanos
	}
	s.fillQuantiles()
	return s
}
