package obs

import (
	"context"
	"log/slog"
	"time"
)

// EventHook receives structural events from the store: the rare, expensive
// operations (rebalances, checkpoints, recovery, slow fsyncs) whose
// occurrence an operator wants traced individually, not just counted.
//
// Hooks are called synchronously from store goroutines — the rebalancer
// master, the checkpoint goroutine, and (for OnFsyncStall) whichever
// committer ran the fsync, which may hold WAL internals locked. An
// implementation must be fast and must not call back into the store.
// A nil hook field everywhere means no calls and no cost.
type EventHook interface {
	OnRebalance(RebalanceEvent)
	OnCompaction(CompactionEvent)
	OnRecovery(RecoveryEvent)
	OnFsyncStall(FsyncStallEvent)
}

// RebalanceEvent describes one completed global rebalance or resize.
type RebalanceEvent struct {
	Gates    int           // window width in gates (whole table for a resize)
	Resize   bool          // true when the table was grown/shrunk instead
	Duration time.Duration // exclusive-hold + redistribution time
}

// CompactionEvent describes one completed checkpoint.
type CompactionEvent struct {
	Auto     bool  // triggered by the WAL-growth heuristic, not Snapshot()
	Pairs    int64 // live pairs written
	Bytes    int64 // snapshot file size
	Duration time.Duration
}

// RecoveryEvent describes one completed Open() restore.
type RecoveryEvent struct {
	SnapshotPairs int64 // pairs bulk-loaded from the snapshot
	SnapshotBytes int64
	SnapshotLoad  time.Duration // snapshot read + bulk load
	WALRecords    int64         // records replayed from the log tail
	WALReplay     time.Duration // replay + index flush
}

// FsyncStallEvent reports a File.Sync that exceeded the configured stall
// threshold — the classic sign of a saturated or misbehaving device.
type FsyncStallEvent struct {
	Duration  time.Duration
	Threshold time.Duration
}

// SlogHook adapts an EventHook onto a *slog.Logger. Routine events log at
// Info; events slower than Slow (and every fsync stall) log at Warn.
// Rebalances are the one high-frequency event class, so they are logged
// only when slow — counting them is the histograms' job.
type SlogHook struct {
	Logger *slog.Logger
	Slow   time.Duration
}

// NewSlogHook returns a hook logging to logger (slog.Default() when nil),
// escalating events slower than slow to Warn.
func NewSlogHook(logger *slog.Logger, slow time.Duration) *SlogHook {
	if logger == nil {
		logger = slog.Default()
	}
	return &SlogHook{Logger: logger, Slow: slow}
}

func (h *SlogHook) slowLevel(d time.Duration) slog.Level {
	if h.Slow > 0 && d >= h.Slow {
		return slog.LevelWarn
	}
	return slog.LevelInfo
}

// OnRebalance logs only rebalances at or above Slow (at Warn).
func (h *SlogHook) OnRebalance(e RebalanceEvent) {
	if h.Slow <= 0 || e.Duration < h.Slow {
		return
	}
	h.Logger.LogAttrs(context.Background(), slog.LevelWarn, "pmago: slow rebalance",
		slog.Int("gates", e.Gates),
		slog.Bool("resize", e.Resize),
		slog.Duration("duration", e.Duration))
}

func (h *SlogHook) OnCompaction(e CompactionEvent) {
	h.Logger.LogAttrs(context.Background(), h.slowLevel(e.Duration), "pmago: compaction",
		slog.Bool("auto", e.Auto),
		slog.Int64("pairs", e.Pairs),
		slog.Int64("bytes", e.Bytes),
		slog.Duration("duration", e.Duration))
}

func (h *SlogHook) OnRecovery(e RecoveryEvent) {
	h.Logger.LogAttrs(context.Background(), h.slowLevel(e.SnapshotLoad+e.WALReplay), "pmago: recovery",
		slog.Int64("snapshot_pairs", e.SnapshotPairs),
		slog.Int64("snapshot_bytes", e.SnapshotBytes),
		slog.Duration("snapshot_load", e.SnapshotLoad),
		slog.Int64("wal_records", e.WALRecords),
		slog.Duration("wal_replay", e.WALReplay))
}

func (h *SlogHook) OnFsyncStall(e FsyncStallEvent) {
	h.Logger.LogAttrs(context.Background(), slog.LevelWarn, "pmago: fsync stall",
		slog.Duration("duration", e.Duration),
		slog.Duration("threshold", e.Threshold))
}
