module pmago

go 1.22
