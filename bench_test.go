// Benchmarks mirroring the paper's evaluation, one per figure/plot (scaled;
// cmd/pmabench runs the full sweeps). Each benchmark iteration executes a
// fixed-size workload and reports throughput metrics:
//
//	upd/s      update operations per second
//	scanelts/s elements visited by concurrent scan threads per second
//
// Run with: go test -bench=. -benchmem
//
// This file is an external test package (pmago_test): internal/bench now
// imports pmago for the durability drivers, so an in-package test here
// would be an import cycle.
package pmago_test

import (
	"testing"
	"time"

	"pmago/internal/bench"
	"pmago/internal/core"
	"pmago/internal/graph"
	"pmago/internal/workload"
)

const benchOps = 200_000

func reportRun(b *testing.B, f bench.Factory, w bench.Workload) {
	b.Helper()
	var upd, scans float64
	for i := 0; i < b.N; i++ {
		w.Seed = int64(i + 1)
		res := bench.Run(f, w)
		upd += res.UpdatesPerSec
		scans += res.ScansPerSec
	}
	b.ReportMetric(upd/float64(b.N), "upd/s")
	if w.ScanThreads > 0 {
		b.ReportMetric(scans/float64(b.N), "scanelts/s")
	}
}

// BenchmarkFigure3a: insert-only, all threads updating.
func BenchmarkFigure3a(b *testing.B) {
	for _, d := range workload.PaperDistributions() {
		for _, f := range bench.PaperFactories() {
			b.Run(d.String()+"/"+f.Name, func(b *testing.B) {
				reportRun(b, f, bench.Workload{
					Dist: d, Ops: benchOps, UpdateThreads: 4,
				})
			})
		}
	}
}

// BenchmarkFigure3c: insert + scan, half the threads each.
func BenchmarkFigure3c(b *testing.B) {
	for _, d := range workload.PaperDistributions() {
		for _, f := range bench.PaperFactories() {
			b.Run(d.String()+"/"+f.Name, func(b *testing.B) {
				reportRun(b, f, bench.Workload{
					Dist: d, Ops: benchOps, UpdateThreads: 2, ScanThreads: 2,
				})
			})
		}
	}
}

// BenchmarkFigure3f: mixed insert+delete rounds over a preloaded base, with
// concurrent scans.
func BenchmarkFigure3f(b *testing.B) {
	for _, d := range workload.PaperDistributions() {
		for _, f := range bench.PaperFactories() {
			b.Run(d.String()+"/"+f.Name, func(b *testing.B) {
				reportRun(b, f, bench.Workload{
					Dist: d, LoadN: benchOps, Ops: benchOps / 2, Mixed: true,
					UpdateThreads: 2, ScanThreads: 2,
				})
			})
		}
	}
}

// BenchmarkFigure4 compares the asynchronous update schemes under skew (the
// speedup experiment, here as absolute throughput per variant).
func BenchmarkFigure4(b *testing.B) {
	for _, v := range bench.Figure4Variants() {
		for _, d := range []workload.Distribution{workload.Uniform(), workload.Zipf(2)} {
			b.Run(v.Name+"/"+d.String(), func(b *testing.B) {
				reportRun(b, bench.PMAFactory("PMA-"+v.Name, v.Cfg), bench.Workload{
					Dist: d, Ops: benchOps, UpdateThreads: 4,
				})
			})
		}
	}
}

// BenchmarkAblationSegment: the Section 4.1 segment-size trade-off.
func BenchmarkAblationSegment(b *testing.B) {
	for _, segCap := range []int{128, 256} {
		cfg := bench.PaperPMAConfig()
		cfg.SegmentCapacity = segCap
		name := map[int]string{128: "B128", 256: "B256"}[segCap]
		b.Run(name, func(b *testing.B) {
			reportRun(b, bench.PMAFactory("PMA-"+name, cfg), bench.Workload{
				Dist: workload.Uniform(), Ops: benchOps, UpdateThreads: 2, ScanThreads: 2,
			})
		})
	}
}

// BenchmarkAblationLeaf: the Section 4.1 ART/B+-tree leaf-size trade-off.
func BenchmarkAblationLeaf(b *testing.B) {
	for _, leaf := range []int{256, 512} {
		name := map[int]string{256: "4KiB", 512: "8KiB"}[leaf]
		b.Run(name, func(b *testing.B) {
			reportRun(b, bench.ABTreeFactory("ART-"+name, leaf), bench.Workload{
				Dist: workload.Uniform(), Ops: benchOps, UpdateThreads: 2, ScanThreads: 2,
			})
		})
	}
}

// BenchmarkScanOnly isolates the read side: full ordered scans of a loaded
// store — the panel where the PMA dominates in every Figure 3 plot.
func BenchmarkScanOnly(b *testing.B) {
	for _, f := range bench.PaperFactories() {
		b.Run(f.Name, func(b *testing.B) {
			s := f.New()
			defer func() {
				if c, ok := s.(bench.Closer); ok {
					c.Close()
				}
			}()
			gen := workload.NewGenerator(workload.Uniform(), workload.DefaultDomain, 1)
			for i := 0; i < benchOps; i++ {
				k := gen.Next()
				s.Put(k, k)
			}
			if fl, ok := s.(bench.Flusher); ok {
				fl.Flush()
			}
			b.ResetTimer()
			total := 0
			for i := 0; i < b.N; i++ {
				s.ScanAll(func(_, _ int64) bool { total++; return true })
			}
			b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "scanelts/s")
		})
	}
}

// BenchmarkGraphEdgeStream: Section 6 — edge insertions into the CRS-on-PMA
// representation with a concurrent neighbourhood-scanning analytics thread.
func BenchmarkGraphEdgeStream(b *testing.B) {
	cfg := core.DefaultConfig()
	g, err := graph.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	defer g.Close()
	stop := make(chan struct{})
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
			}
			g.Neighbors(1, func(uint32, int64) bool { return true })
		}
	}()
	gen := workload.NewGenerator(workload.Zipf(1), 1<<20, 1)
	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		src := uint32(gen.Next())
		dst := uint32(gen.Next())
		g.AddEdge(src, dst, 1)
	}
	g.Flush()
	b.ReportMetric(float64(b.N)/time.Since(start).Seconds(), "edges/s")
	close(stop)
}
