package pmago

import (
	"container/heap"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"

	"pmago/internal/obs"
	"pmago/internal/persist"
	"pmago/internal/placement"
)

// Sharded is a horizontally sharded store: one key space routed across N
// independent PMA shards, each with its own gates, rebalancer and (when
// opened with OpenSharded) its own write-ahead log and snapshots. Sharding
// multiplies the structures that serialize writers — combining queues,
// rebalancer masters, WAL group commits — so write throughput scales with
// shard count on multi-core machines, at the cost of a merge step on scans.
//
// Keys are placed by one of two schemes, fixed at creation time and recorded
// in the store's manifest:
//
//   - Weighted (straw2, the default): each key draws a weighted pseudo-random
//     straw per shard and lands on the argmax. Placement is uniform (in
//     proportion to the weights), depends only on (key, shard count, weights),
//     and is stable in the CRUSH sense — growing the cluster moves keys only
//     onto the new shard, never between old ones.
//   - Range (WithRangeSplits): shard i holds the keys between split points
//     i-1 and i. Shard order equals key order, so scans need no merge; the
//     caller owns balance.
//
// All methods are safe for concurrent use. The semantics of each operation
// match PMA/DB on the shard that holds the key; what sharding changes is
// atomicity ACROSS shards: a PutBatch/DeleteBatch spanning shards is applied
// as one batch per shard concurrently, so a concurrent scan can observe one
// shard's portion applied and another's not, and a crash can persist the
// portions independently (each shard recovers its own acknowledged-durable
// prefix). Scan merges the per-shard streams into one globally ascending
// stream; each chunk within a shard is still observed atomically.
type Sharded struct {
	place  placement.Placement
	stores []Store
	mems   []*PMA // non-nil entries when in-memory
	dbs    []*DB  // non-nil entries when durable
	// ordered means shard order == key order (range placement): scans walk
	// the shards sequentially instead of k-way merging.
	ordered bool
	dir     string
	unlock  func()
	closed  atomic.Bool

	// routedOps/routedBatch count the point ops and batch keys routed to
	// each shard — the observed placement balance in request (rather than
	// resident-key) terms, reported as Stats().Shards. Nil with
	// WithoutMetrics.
	routedOps   []obs.Counter
	routedBatch []obs.Counter
}

// initRouting allocates the per-shard routing counters unless metrics are
// disabled. Called by every constructor after the placement is resolved.
func (s *Sharded) initRouting(cfg config) {
	if cfg.core.DisableMetrics {
		return
	}
	s.routedOps = make([]obs.Counter, s.place.Shards())
	s.routedBatch = make([]obs.Counter, s.place.Shards())
}

// DefaultShards is the shard count used when none of the sharding options is
// given.
const DefaultShards = 4

// shardConfig carries the sharding options until a constructor resolves them
// into a placement.
type shardConfig struct {
	n       int
	weights []float64
	splits  []int64
}

// specified reports whether the caller expressed any topology at all —
// OpenSharded adopts the on-disk manifest when it did not.
func (sc shardConfig) specified() bool {
	return sc.n != 0 || sc.weights != nil || sc.splits != nil
}

// WithShards shards the store across n equally weighted shards (straw2
// placement). Only the Sharded constructors accept this option.
func WithShards(n int) Option {
	return func(c *config) { c.shardOpt("WithShards"); c.shard.n = n }
}

// WithShardWeights shards the store across len(weights) shards, shard i
// receiving keys in proportion to weights[i] (straw2 placement). All weights
// must be positive and finite.
func WithShardWeights(weights []float64) Option {
	return func(c *config) {
		c.shardOpt("WithShardWeights")
		c.shard.weights = append([]float64(nil), weights...)
	}
}

// WithRangeSplits shards the store by key range: len(splits)+1 shards, shard
// i holding keys k with splits[i-1] <= k < splits[i]. Splits must be strictly
// increasing. Range placement keeps shard order equal to key order, so Scan
// walks shards sequentially with no merge.
func WithRangeSplits(splits []int64) Option {
	return func(c *config) {
		c.shardOpt("WithRangeSplits")
		c.shard.splits = append([]int64(nil), splits...)
	}
}

// resolve turns the options into a placement and the manifest describing it.
func (sc shardConfig) resolve() (placement.Placement, persist.ShardManifest, error) {
	var none persist.ShardManifest
	if sc.weights != nil && sc.splits != nil {
		return nil, none, errors.New("pmago: WithShardWeights and WithRangeSplits are mutually exclusive")
	}
	if sc.n < 0 {
		return nil, none, fmt.Errorf("pmago: shard count %d", sc.n)
	}
	switch {
	case sc.splits != nil:
		if sc.n != 0 && sc.n != len(sc.splits)+1 {
			return nil, none, fmt.Errorf("pmago: WithShards(%d) conflicts with %d range splits (%d shards)",
				sc.n, len(sc.splits), len(sc.splits)+1)
		}
		p, err := placement.NewRange(sc.splits)
		if err != nil {
			return nil, none, err
		}
		return p, persist.ShardManifest{
			Version:   1,
			Shards:    p.Shards(),
			Placement: persist.PlacementRange,
			Splits:    append([]int64(nil), sc.splits...),
		}, nil
	default:
		weights := sc.weights
		if weights == nil {
			n := sc.n
			if n == 0 {
				n = DefaultShards
			}
			weights = make([]float64, n)
			for i := range weights {
				weights[i] = 1
			}
		} else if sc.n != 0 && sc.n != len(weights) {
			return nil, none, fmt.Errorf("pmago: WithShards(%d) conflicts with %d shard weights", sc.n, len(weights))
		}
		p, err := placement.NewStraw2(weights)
		if err != nil {
			return nil, none, err
		}
		return p, persist.ShardManifest{
			Version:   1,
			Shards:    p.Shards(),
			Placement: persist.PlacementStraw2,
			Weights:   append([]float64(nil), weights...),
		}, nil
	}
}

// placementFromManifest rebuilds the placement a manifest records.
func placementFromManifest(m persist.ShardManifest) (placement.Placement, error) {
	switch m.Placement {
	case persist.PlacementRange:
		return placement.NewRange(m.Splits)
	default:
		return placement.NewStraw2(m.Weights)
	}
}

// NewSharded creates an empty in-memory sharded store. The sharding options
// (WithShards, WithShardWeights, WithRangeSplits) pick the topology —
// DefaultShards equal-weight shards when none is given; every other
// in-memory option applies to each shard as it does in New. Durability
// options are rejected with an error (use OpenSharded).
func NewSharded(opts ...Option) (*Sharded, error) {
	cfg, err := resolveOptions("NewSharded", opts, false, true)
	if err != nil {
		return nil, err
	}
	place, _, err := cfg.shard.resolve()
	if err != nil {
		return nil, err
	}
	s := &Sharded{place: place, ordered: place.Ordered()}
	s.initRouting(cfg)
	for i := 0; i < place.Shards(); i++ {
		p, err := newPMA(cfg)
		if err != nil {
			s.closeAll()
			return nil, err
		}
		s.mems = append(s.mems, p)
		s.stores = append(s.stores, p)
	}
	return s, nil
}

// BulkLoadSharded creates an in-memory sharded store already containing the
// given pairs: the input is partitioned by placement and each shard is
// bulk-loaded concurrently, with BulkLoad's semantics per shard (unsorted
// input is sorted, duplicate keys collapse to their last occurrence).
func BulkLoadSharded(keys, vals []int64, opts ...Option) (*Sharded, error) {
	if len(keys) != len(vals) {
		return nil, fmt.Errorf("pmago: BulkLoadSharded: %d keys but %d vals", len(keys), len(vals))
	}
	cfg, err := resolveOptions("BulkLoadSharded", opts, false, true)
	if err != nil {
		return nil, err
	}
	place, _, err := cfg.shard.resolve()
	if err != nil {
		return nil, err
	}
	partK, partV := partition(place, keys, vals)
	s := &Sharded{place: place, ordered: place.Ordered()}
	s.initRouting(cfg)
	s.mems = make([]*PMA, place.Shards())
	s.stores = make([]Store, place.Shards())
	errs := make([]error, place.Shards())
	var wg sync.WaitGroup
	for i := range s.stores {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p, err := bulkLoadPMA(cfg, partK[i], partV[i])
			if err != nil {
				errs[i] = err
				return
			}
			s.mems[i] = p
			s.stores[i] = p
		}(i)
	}
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		s.closeAll()
		return nil, err
	}
	return s, nil
}

// shardDirName is the per-shard subdirectory inside a sharded store's parent
// directory.
func shardDirName(i int) string { return fmt.Sprintf("shard-%03d", i) }

// OpenSharded opens (creating it if necessary) a durable sharded store
// rooted at dir: shard i lives in dir/shard-00i with its own WAL and
// snapshots, and the parent directory holds a manifest recording the
// topology plus an advisory flock so a directory is owned by at most one
// open store.
//
// On a fresh directory the sharding options pick the topology and the
// manifest is written before any shard. On an existing store the manifest is
// authoritative: with no sharding options given the recorded topology is
// adopted; options that contradict the manifest are an error, because
// routing keys with a different placement than the writer used would make
// existing data unreachable. A manifest whose shard directories are missing,
// or shard directories with no manifest, also refuse to open.
//
// Per-shard recovery (snapshot load + WAL replay, including torn-tail
// truncation) runs in parallel across shards; any shard's failure fails the
// open with every shard error aggregated.
func OpenSharded(dir string, opts ...Option) (*Sharded, error) {
	cfg, err := resolveOptions("OpenSharded", opts, true, true)
	if err != nil {
		return nil, err
	}
	var desired persist.ShardManifest
	place, desired, err := cfg.shard.resolve()
	if err != nil {
		return nil, err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	unlock, err := persist.LockDir(dir)
	if err != nil {
		return nil, err
	}
	manifest, ok, err := persist.LoadManifest(dir)
	switch {
	case err != nil:
		unlock()
		return nil, err
	case ok:
		if cfg.shard.specified() && !manifest.Equal(desired) {
			unlock()
			return nil, fmt.Errorf("pmago: shard topology mismatch in %s: store has %s, options request %s",
				dir, manifest, desired)
		}
		if place, err = placementFromManifest(manifest); err != nil {
			unlock()
			return nil, err
		}
		// The manifest promises these shards exist. A missing directory
		// means someone deleted shard data; reopening it as empty would
		// silently lose every key placed there.
		for i := 0; i < manifest.Shards; i++ {
			if _, statErr := os.Stat(filepath.Join(dir, shardDirName(i))); statErr != nil {
				unlock()
				return nil, fmt.Errorf("pmago: %s: manifest records %s but shard directory %s is missing",
					dir, manifest, shardDirName(i))
			}
		}
	default:
		// No manifest. Shard directories without one mean the manifest was
		// lost — the topology that placed their keys is unknown, so refuse
		// rather than guess.
		ents, err := os.ReadDir(dir)
		if err != nil {
			unlock()
			return nil, err
		}
		for _, e := range ents {
			if strings.HasPrefix(e.Name(), "shard-") {
				unlock()
				return nil, fmt.Errorf("pmago: %s holds shard directories but no manifest; cannot infer placement", dir)
			}
		}
		if err := persist.SaveManifest(dir, desired); err != nil {
			unlock()
			return nil, err
		}
	}

	s := &Sharded{place: place, ordered: place.Ordered(), dir: dir, unlock: unlock}
	s.initRouting(cfg)
	s.dbs = make([]*DB, place.Shards())
	s.stores = make([]Store, place.Shards())
	errs := make([]error, place.Shards())
	var wg sync.WaitGroup
	for i := range s.stores {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			db, err := openDB(filepath.Join(dir, shardDirName(i)), cfg)
			if err != nil {
				errs[i] = fmt.Errorf("%s: %w", shardDirName(i), err)
				return
			}
			s.dbs[i] = db
			s.stores[i] = db
		}(i)
	}
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		s.closeAll()
		unlock()
		return nil, err
	}
	return s, nil
}

// closeAll closes whatever shards a failed constructor managed to open.
func (s *Sharded) closeAll() {
	for _, p := range s.mems {
		if p != nil {
			p.Close()
		}
	}
	for _, db := range s.dbs {
		if db != nil {
			db.Close()
		}
	}
}

// partition splits keys (and vals, when non-nil) into per-shard slices,
// preserving the caller's order within each shard so last-wins duplicate
// semantics survive the split.
func partition(place placement.Placement, keys, vals []int64) (partK, partV [][]int64) {
	partK = make([][]int64, place.Shards())
	if vals != nil {
		partV = make([][]int64, place.Shards())
	}
	for i, k := range keys {
		sh := place.Shard(k)
		partK[sh] = append(partK[sh], k)
		if vals != nil {
			partV[sh] = append(partV[sh], vals[i])
		}
	}
	return partK, partV
}

func (s *Sharded) checkOpen() {
	if s.closed.Load() {
		panic("pmago: use after Close")
	}
}

// Put inserts k/v, replacing the value if k is present (PMA.Put on the
// owning shard; durable per DB's contract when opened with OpenSharded).
func (s *Sharded) Put(k, v int64) {
	s.checkOpen()
	i := s.place.Shard(k)
	if s.routedOps != nil {
		s.routedOps[i].Inc()
	}
	s.stores[i].Put(k, v)
}

// Get returns the value stored under k.
func (s *Sharded) Get(k int64) (int64, bool) {
	s.checkOpen()
	i := s.place.Shard(k)
	if s.routedOps != nil {
		s.routedOps[i].Inc()
	}
	return s.stores[i].Get(k)
}

// Delete removes k, reporting whether an element was removed.
func (s *Sharded) Delete(k int64) bool {
	s.checkOpen()
	i := s.place.Shard(k)
	if s.routedOps != nil {
		s.routedOps[i].Inc()
	}
	return s.stores[i].Delete(k)
}

// PutBatch upserts all pairs: the batch is partitioned by placement and each
// shard applies (and, when durable, logs) its portion as one batch, portions
// running concurrently. Within a shard the batch keeps PutBatch's semantics;
// across shards it is not atomic — see the type comment. Duplicate keys
// still collapse to their last occurrence, since duplicates share a shard
// and the split preserves order.
func (s *Sharded) PutBatch(keys, vals []int64) {
	s.checkOpen()
	if len(keys) != len(vals) {
		panic(fmt.Sprintf("pmago: PutBatch: %d keys but %d vals", len(keys), len(vals)))
	}
	partK, partV := partition(s.place, keys, vals)
	s.eachNonEmpty(partK, func(i int) {
		if s.routedBatch != nil {
			s.routedBatch[i].Add(uint64(len(partK[i])))
		}
		s.stores[i].PutBatch(partK[i], partV[i])
	})
}

// DeleteBatch removes all given keys, partitioned and applied per shard like
// PutBatch, and returns the exact total number of elements removed (shards
// hold disjoint key sets, so per-shard exact counts sum exactly).
func (s *Sharded) DeleteBatch(keys []int64) int {
	s.checkOpen()
	partK, _ := partition(s.place, keys, nil)
	var total atomic.Int64
	s.eachNonEmpty(partK, func(i int) {
		if s.routedBatch != nil {
			s.routedBatch[i].Add(uint64(len(partK[i])))
		}
		total.Add(int64(s.stores[i].DeleteBatch(partK[i])))
	})
	return int(total.Load())
}

// eachNonEmpty runs fn(i) for every shard whose partition is non-empty,
// concurrently when more than one shard is involved.
func (s *Sharded) eachNonEmpty(parts [][]int64, fn func(i int)) {
	nonEmpty := 0
	last := -1
	for i, p := range parts {
		if len(p) > 0 {
			nonEmpty++
			last = i
		}
	}
	switch nonEmpty {
	case 0:
	case 1:
		fn(last)
	default:
		var wg sync.WaitGroup
		for i, p := range parts {
			if len(p) == 0 {
				continue
			}
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				fn(i)
			}(i)
		}
		wg.Wait()
	}
}

// Flush applies every pending combined update and deferred batch on every
// shard.
func (s *Sharded) Flush() {
	s.checkOpen()
	s.parallel(func(st Store) { st.Flush() })
}

// parallel runs fn over all shards concurrently and waits.
func (s *Sharded) parallel(fn func(Store)) {
	var wg sync.WaitGroup
	for _, st := range s.stores {
		wg.Add(1)
		go func(st Store) {
			defer wg.Done()
			fn(st)
		}(st)
	}
	wg.Wait()
}

// Len returns the total number of stored elements across shards (excluding
// not-yet-applied combined updates; Flush first for an exact count).
func (s *Sharded) Len() int {
	s.checkOpen()
	n := 0
	for _, st := range s.stores {
		n += st.Len()
	}
	return n
}

// Capacity returns the total slot count across shards.
func (s *Sharded) Capacity() int {
	s.checkOpen()
	n := 0
	for _, st := range s.stores {
		n += st.Capacity()
	}
	return n
}

// NumShards returns the shard count.
func (s *Sharded) NumShards() int { return len(s.stores) }

// ShardLens returns the element count per shard — the observed placement
// balance.
func (s *Sharded) ShardLens() []int {
	s.checkOpen()
	lens := make([]int, len(s.stores))
	for i, st := range s.stores {
		lens[i] = st.Len()
	}
	return lens
}

// Stats returns the metrics snapshot merged across shards — counters summed,
// latency and size distributions merged bucket-wise — plus one Shards entry
// per shard with the ops and batch keys routed to it (the placement balance
// in request terms). On a durable sharded store Recovery.Recoveries counts
// the shards recovered by OpenSharded.
func (s *Sharded) Stats() Stats {
	s.checkOpen()
	var t Stats
	for _, st := range s.stores {
		t = t.Merge(st.Stats())
	}
	if s.routedOps != nil {
		t.Shards = make([]obs.ShardStats, len(s.stores))
		for i := range t.Shards {
			t.Shards[i] = obs.ShardStats{
				Ops:       s.routedOps[i].Load(),
				BatchKeys: s.routedBatch[i].Load(),
			}
		}
	}
	return t
}

// Validate checks every shard's structural invariants and that every stored
// key resides on the shard the placement routes it to. Like PMA.Validate it
// must run without concurrent updates.
func (s *Sharded) Validate() error {
	s.checkOpen()
	errs := make([]error, len(s.stores))
	var wg sync.WaitGroup
	for i, st := range s.stores {
		wg.Add(1)
		go func(i int, st Store) {
			defer wg.Done()
			if err := st.Validate(); err != nil {
				errs[i] = fmt.Errorf("shard %d: %w", i, err)
				return
			}
			st.Scan(KeyMin+1, KeyMax-1, func(k, _ int64) bool {
				if home := s.place.Shard(k); home != i {
					errs[i] = fmt.Errorf("shard %d holds key %d, which places on shard %d", i, k, home)
					return false
				}
				return true
			})
		}(i, st)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// Sync forces every acknowledged write on every shard to stable storage (a
// durability barrier; see DB.Sync). Errors on an in-memory store.
func (s *Sharded) Sync() error {
	s.checkOpen()
	if s.dbs == nil {
		return errors.New("pmago: Sync on a non-durable sharded store")
	}
	errs := make([]error, len(s.dbs))
	var wg sync.WaitGroup
	for i, db := range s.dbs {
		wg.Add(1)
		go func(i int, db *DB) {
			defer wg.Done()
			errs[i] = db.Sync()
		}(i, db)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// Snapshot checkpoints every shard (see DB.Snapshot), shards in parallel.
// Shard snapshots are independent checkpoints — a crash between them leaves
// some shards compacted and others not, which recovery handles per shard.
// Errors on an in-memory store.
func (s *Sharded) Snapshot() error {
	s.checkOpen()
	if s.dbs == nil {
		return errors.New("pmago: Snapshot on a non-durable sharded store")
	}
	errs := make([]error, len(s.dbs))
	var wg sync.WaitGroup
	for i, db := range s.dbs {
		wg.Add(1)
		go func(i int, db *DB) {
			defer wg.Done()
			errs[i] = db.Snapshot()
		}(i, db)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// WALBytes reports the total live write-ahead-log size across shards (zero
// for an in-memory store).
func (s *Sharded) WALBytes() int64 {
	s.checkOpen()
	var n int64
	for _, db := range s.dbs {
		if db != nil {
			n += db.WALBytes()
		}
	}
	return n
}

// Dir returns the parent directory of a durable sharded store ("" when
// in-memory).
func (s *Sharded) Dir() string { return s.dir }

// Close closes every shard (in parallel) and releases the parent directory
// lock. Close is idempotent; any other use of a closed Sharded panics with
// "pmago: use after Close". As with PMA.Close, concurrent operations must
// have completed.
func (s *Sharded) Close() error {
	if s.closed.Swap(true) {
		return nil
	}
	errs := make([]error, len(s.stores))
	var wg sync.WaitGroup
	for i := range s.stores {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if s.dbs != nil {
				errs[i] = s.dbs[i].Close()
			} else {
				s.mems[i].Close()
			}
		}(i)
	}
	wg.Wait()
	if s.unlock != nil {
		s.unlock()
	}
	return errors.Join(errs...)
}

// Scan visits all pairs with lo <= key <= hi across every shard in globally
// ascending key order until fn returns false. Under range placement the
// shards are walked sequentially (shard order is key order); under straw2
// the per-shard streams — each individually ascending — are merged with a
// k-way heap. Either way fn inherits PMA.Scan's callback freedom: it runs on
// copied-out chunks with no latch held and may call update operations of the
// same store. Chunk atomicity is per shard; there is no cross-shard snapshot
// (a concurrent cross-shard batch may be visible on one shard and not yet on
// another).
func (s *Sharded) Scan(lo, hi int64, fn func(k, v int64) bool) {
	s.checkOpen()
	if len(s.stores) == 1 {
		s.stores[0].Scan(lo, hi, fn)
		return
	}
	if s.ordered {
		stopped := false
		for _, st := range s.stores {
			st.Scan(lo, hi, func(k, v int64) bool {
				if !fn(k, v) {
					stopped = true
					return false
				}
				return true
			})
			if stopped {
				return
			}
		}
		return
	}
	s.mergeScan(lo, hi, fn)
}

// ScanAll visits every pair across shards in globally ascending key order.
func (s *Sharded) ScanAll(fn func(k, v int64) bool) {
	s.Scan(KeyMin+1, KeyMax-1, fn)
}

// scanBatchSize is how many pairs a shard's scan goroutine hands to the
// merge at a time. Batching amortizes channel synchronization to ~1/256 per
// pair; the price is up to scanBatchSize-1 pairs of extra lookahead into
// each shard beyond what fn has consumed.
const scanBatchSize = 256

type scanBatch struct{ keys, vals []int64 }

// shardCursor is one shard's position in the merge: the batch being drained
// and the channel the next batches arrive on.
type shardCursor struct {
	ch  chan scanBatch
	cur scanBatch
	pos int
}

func (c *shardCursor) key() int64 { return c.cur.keys[c.pos] }

// advance steps to the next pair, fetching the next batch when the current
// one is drained. Reports false when the shard's stream is exhausted.
func (c *shardCursor) advance() bool {
	c.pos++
	if c.pos < len(c.cur.keys) {
		return true
	}
	b, ok := <-c.ch
	if !ok {
		return false
	}
	c.cur, c.pos = b, 0
	return true
}

// cursorHeap is a min-heap of shard cursors by current key (keys are unique
// across shards, so no tie-break is needed).
type cursorHeap []*shardCursor

func (h cursorHeap) Len() int           { return len(h) }
func (h cursorHeap) Less(i, j int) bool { return h[i].key() < h[j].key() }
func (h cursorHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *cursorHeap) Push(x any)        { *h = append(*h, x.(*shardCursor)) }
func (h *cursorHeap) Pop() any          { old := *h; n := len(old); c := old[n-1]; *h = old[:n-1]; return c }

// mergeScan merges the per-shard scan streams. One goroutine per shard runs
// the shard's Scan, batching pairs into a channel; the caller's goroutine
// heap-merges the streams and runs fn. Producers select against done on
// every send, so an early stop (fn returning false) unblocks and terminates
// them before mergeScan returns — no goroutine outlives the call.
func (s *Sharded) mergeScan(lo, hi int64, fn func(k, v int64) bool) {
	done := make(chan struct{})
	var wg sync.WaitGroup
	defer func() {
		close(done)
		wg.Wait()
	}()

	cursors := make([]*shardCursor, len(s.stores))
	for i, st := range s.stores {
		c := &shardCursor{ch: make(chan scanBatch, 1)}
		cursors[i] = c
		wg.Add(1)
		go func(st Store, ch chan scanBatch) {
			defer wg.Done()
			defer close(ch)
			b := scanBatch{
				keys: make([]int64, 0, scanBatchSize),
				vals: make([]int64, 0, scanBatchSize),
			}
			send := func() bool {
				select {
				case ch <- b:
					// The merge owns the sent buffers now.
					b = scanBatch{
						keys: make([]int64, 0, scanBatchSize),
						vals: make([]int64, 0, scanBatchSize),
					}
					return true
				case <-done:
					return false
				}
			}
			aborted := false
			st.Scan(lo, hi, func(k, v int64) bool {
				b.keys = append(b.keys, k)
				b.vals = append(b.vals, v)
				if len(b.keys) == scanBatchSize {
					if !send() {
						aborted = true
						return false
					}
				}
				return true
			})
			if !aborted && len(b.keys) > 0 {
				send()
			}
		}(st, c.ch)
	}

	h := make(cursorHeap, 0, len(cursors))
	for _, c := range cursors {
		if b, ok := <-c.ch; ok {
			c.cur = b
			h = append(h, c)
		}
	}
	heap.Init(&h)
	for len(h) > 0 {
		c := h[0]
		if !fn(c.key(), c.cur.vals[c.pos]) {
			return
		}
		if c.advance() {
			heap.Fix(&h, 0)
		} else {
			heap.Pop(&h)
		}
	}
}
