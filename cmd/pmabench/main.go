// Command pmabench regenerates the paper's evaluation (Section 4).
//
// Every figure has a driver:
//
//	pmabench -experiment figure3 -plot a     # Figure 3a-f
//	pmabench -experiment figure4 -plot b     # Figure 4a-c
//	pmabench -experiment ablation-segment    # Section 4.1 text: B=128 vs 256
//	pmabench -experiment ablation-leaf       # Section 4.1 text: 4KiB vs 8KiB leaves
//	pmabench -experiment reads               # optimistic (seqlock) vs latched reads
//	pmabench -experiment batch               # batch subsystem: PutBatch/BulkLoad vs point loops
//	pmabench -experiment memory              # compressed chunks: heap and bytes/pair vs uncompressed
//	pmabench -experiment durability          # WAL fsync policies + recovery time
//	pmabench -experiment shards              # sharded store: shard count scaling
//	pmabench -experiment wire                # TCP front end: cross-client group commit
//	pmabench -experiment all                 # everything, in order
//
// -experiment also accepts a comma-separated list (e.g. "reads,batch").
//
// -stats additionally reports each store's metrics snapshot (the pmago.Stats
// counters: seqlock read outcomes, combining, rebalances, per-shard routing)
// and records it as stats_* rows in the -json report; -pprof ADDR serves
// net/http/pprof for profiling a run.
//
// The defaults are laptop-scale; -inserts/-load/-ops/-threads restore any
// scale (the paper used 1G elements and 16 hardware threads). With -json
// FILE every experiment in the run additionally records its measurements
// into one machine-readable report (see internal/bench/json.go): CI uploads
// a tiny-scale report as an artifact on each run, and full-scale local
// reports are committed as BENCH_<pr>.json to track the perf trajectory.
package main

import (
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"runtime"
	"slices"
	"strings"
	"time"

	"pmago/internal/bench"
	"pmago/internal/obs"
)

func main() {
	var (
		experiment = flag.String("experiment", "all", "figure3 | figure4 | ablation-segment | ablation-leaf | reads | batch | memory | durability | graph | shards | wire | all, or a comma-separated list")
		plot       = flag.String("plot", "", "figure3: a-f (empty = all); figure4: a-c (empty = all)")
		inserts    = flag.Int("inserts", bench.DefaultScale().InsertN, "elements inserted in insert-only experiments")
		loadN      = flag.Int("load", bench.DefaultScale().LoadN, "preloaded base size for the mixed experiments")
		mixedN     = flag.Int("ops", bench.DefaultScale().MixedN, "timed update ops in the mixed experiments")
		threads    = flag.Int("threads", bench.DefaultScale().Threads, "total worker threads (goroutines), as in the paper's 16")
		seed       = flag.Int64("seed", 1, "base RNG seed")
		jsonPath   = flag.String("json", "", "also write all measurements to this file as a JSON report")
		readSecs   = flag.Float64("read-seconds", 1.0, "measured seconds per cell of the reads experiment")
		maxShards  = flag.Int("shards", 8, "largest shard count in the shards experiment (runs powers of two up to it)")
		maxClients = flag.Int("wire-clients", 16, "largest client count in the wire experiment (runs powers of two up to it)")
		stats      = flag.Bool("stats", false, "print the stores' metrics snapshots and record stats_* rows in the JSON report")
		pprofAddr  = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060) for profiling a run")
	)
	flag.Parse()

	if *pprofAddr != "" {
		go func() {
			// DefaultServeMux: the blank pprof import registered /debug/pprof.
			fmt.Fprintf(os.Stderr, "pprof server: %v\n", http.ListenAndServe(*pprofAddr, nil))
		}()
		fmt.Printf("pprof endpoint: http://%s/debug/pprof/\n\n", *pprofAddr)
	}

	sc := bench.Scale{InsertN: *inserts, LoadN: *loadN, MixedN: *mixedN, Threads: *threads, Seed: *seed}
	fmt.Printf("pmabench: scale inserts=%d load=%d mixed-ops=%d threads=%d (GOMAXPROCS=%d)\n\n",
		sc.InsertN, sc.LoadN, sc.MixedN, sc.Threads, runtime.GOMAXPROCS(0))

	var report *bench.Report
	if *jsonPath != "" {
		report = bench.NewReport(sc)
	}
	readDur := time.Duration(*readSecs * float64(time.Second))

	// "all" expands to every experiment name, so each experiment has
	// exactly one handler (no drift between the single and the all run).
	known := []string{
		"figure3", "figure4", "ablation-segment", "ablation-leaf",
		"reads", "batch", "memory", "durability", "graph", "shards", "wire",
	}
	var experiments []string
	for _, exp := range strings.Split(*experiment, ",") {
		if exp = strings.TrimSpace(exp); exp == "all" {
			experiments = append(experiments, known...)
		} else {
			// Reject unknown names before any experiment runs: a typo at
			// the end of a list must not waste the whole run.
			if !slices.Contains(known, exp) {
				fmt.Fprintf(os.Stderr, "unknown experiment %q\n", exp)
				os.Exit(2)
			}
			experiments = append(experiments, exp)
		}
	}
	// Dedupe (e.g. "all,batch"): rerunning an experiment doubles runtime
	// and emits duplicate metric rows trend tooling would trip over.
	seen := map[string]bool{}
	experiments = slices.DeleteFunc(experiments, func(e string) bool {
		if seen[e] {
			return true
		}
		seen[e] = true
		return false
	})
	for _, exp := range experiments {
		switch exp {
		case "figure3":
			runFigure3(sc, *plot, report)
		case "figure4":
			runFigure4(sc, *plot, report)
		case "ablation-segment":
			rs := bench.RunSegmentAblation(sc)
			bench.PrintResults(os.Stdout, "Section 4.1 ablation: PMA segment size 128 vs 256 (8 upd + 8 scan threads)", rs, true)
			report.AddResults("ablation-segment", rs, true)
		case "ablation-leaf":
			rs := bench.RunLeafAblation(sc)
			bench.PrintResults(os.Stdout, "Section 4.1 ablation: ART/B+-tree leaf 4KiB vs 8KiB (8 upd + 8 scan threads)", rs, true)
			report.AddResults("ablation-leaf", rs, true)
		case "reads":
			printReads(sc, readDur, report, *stats)
		case "batch":
			printBatch(sc, report)
		case "memory":
			printMemory(sc, report)
		case "durability":
			printDurability(sc, report)
		case "graph":
			printGraph(sc, report)
		case "shards":
			printShards(sc, *maxShards, report, *stats)
		case "wire":
			printWire(sc, *maxClients, report, *stats)
		}
	}

	if report != nil {
		if err := report.WriteFile(*jsonPath); err != nil {
			fmt.Fprintf(os.Stderr, "writing %s: %v\n", *jsonPath, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %d metrics to %s\n", len(report.Metrics), *jsonPath)
	}
}

func printReads(sc bench.Scale, perCell time.Duration, report *bench.Report, stats bool) {
	fmt.Println("== Read path: optimistic (seqlock) Get vs shared-latch baseline ==")
	rs := bench.RunReads(sc, perCell)
	// Cells come in (latched, optimistic, nometrics) triples per mix; index
	// them for the speedup and overhead columns.
	byKey := map[string]bench.ReadsResult{}
	for _, r := range rs {
		byKey[fmt.Sprintf("%s/%d", r.Variant, r.WriterPct)] = r
	}
	for _, pct := range bench.ReadsWriterMixes {
		opt := byKey[fmt.Sprintf("optimistic/%d", pct)]
		lat := byKey[fmt.Sprintf("latched/%d", pct)]
		nom := byKey[fmt.Sprintf("nometrics/%d", pct)]
		cmp := byKey[fmt.Sprintf("compressed/%d", pct)]
		speedup := 0.0
		if lat.GetsPerSec > 0 {
			speedup = opt.GetsPerSec / lat.GetsPerSec
		}
		fmt.Printf("%2d%% writers (%2dr/%2dw): latched %7.2f M gets/s, optimistic %7.2f M gets/s, speedup %5.2fx",
			pct, opt.Readers, opt.Writers, lat.GetsPerSec/1e6, opt.GetsPerSec/1e6, speedup)
		if nom.GetsPerSec > 0 {
			// The observability overhead guard: optimistic runs with metrics
			// on, nometrics is the same path with them disabled.
			fmt.Printf(", metrics overhead %+5.1f%%", (nom.GetsPerSec-opt.GetsPerSec)/nom.GetsPerSec*100)
		}
		if cmp.GetsPerSec > 0 && opt.GetsPerSec > 0 {
			// The decode cost of compressed chunks, relative to the same
			// optimistic path over the uncompressed layout.
			fmt.Printf(", compressed %6.2f M gets/s (%.2fx)", cmp.GetsPerSec/1e6, cmp.GetsPerSec/opt.GetsPerSec)
		}
		if opt.Writers > 0 {
			fmt.Printf("  (puts: latched %5.2f M/s, optimistic %5.2f M/s)", lat.PutsPerSec/1e6, opt.PutsPerSec/1e6)
		}
		fmt.Println()
	}
	if stats {
		for _, pct := range bench.ReadsWriterMixes {
			st := byKey[fmt.Sprintf("optimistic/%d", pct)].Stats
			fmt.Printf("   stats %2d%% writers: %d optimistic gets, %d latched fallbacks, %d probe retries, %d combined ops\n",
				pct, st.Reads.GetOptimistic, st.Reads.GetLatched, st.Reads.GetProbeFails, st.Updates.CombinedOps)
		}
	}
	fmt.Println()
	report.AddReads(rs)
	if stats {
		for _, r := range rs {
			report.AddStats("reads",
				map[string]string{"variant": r.Variant, "writer_pct": fmt.Sprintf("%d", r.WriterPct)},
				obs.Snapshot{CoreSnapshot: r.Stats})
		}
	}
}

func printBatch(sc bench.Scale, report *bench.Report) {
	fmt.Println("== Batch subsystem: PutBatch / BulkLoad vs point-update loops ==")
	n := sc.InsertN / 2
	for _, cl := range []int{0, 32, 128} {
		shape := "scattered"
		if cl > 0 {
			shape = fmt.Sprintf("clusters of %d", cl)
		}
		r := bench.RunBatchComparison(sc.LoadN, n, 10_000, cl, sc.Seed)
		overhead := 0.0
		if r.NoMetricsPerSec > 0 {
			overhead = (r.NoMetricsPerSec - r.BatchPerSec) / r.NoMetricsPerSec * 100
		}
		fmt.Printf("PutBatch 10k (%-15s): point %6.2f M/s, batch %6.2f M/s, speedup %5.1fx, metrics overhead %+5.1f%%, compressed %6.2f M/s\n",
			shape, r.PointPerSec/1e6, r.BatchPerSec/1e6, r.Speedup, overhead, r.CompressedPerSec/1e6)
		labels := map[string]string{"shape": shape}
		report.Add("batch", "point_put", labels, "ops/s", r.PointPerSec)
		report.Add("batch", "put_batch", labels, "ops/s", r.BatchPerSec)
		report.Add("batch", "put_batch_nometrics", labels, "ops/s", r.NoMetricsPerSec)
		report.Add("batch", "put_batch_compressed", labels, "ops/s", r.CompressedPerSec)
	}
	b := bench.RunBulkComparison(sc.InsertN, sc.Seed)
	fmt.Printf("BulkLoad %d keys: point %v, bulk %v (compressed %v), speedup %.1fx\n\n",
		b.N, b.PointWall.Round(time.Millisecond), b.BulkWall.Round(time.Millisecond),
		b.BulkCompressedWall.Round(time.Millisecond), b.Speedup)
	report.Add("batch", "bulk_load", map[string]string{"n": fmt.Sprintf("%d", b.N)}, "seconds", b.BulkWall.Seconds())
	report.Add("batch", "point_load", map[string]string{"n": fmt.Sprintf("%d", b.N)}, "seconds", b.PointWall.Seconds())
	report.Add("batch", "bulk_load_compressed", map[string]string{"n": fmt.Sprintf("%d", b.N)}, "seconds", b.BulkCompressedWall.Seconds())
}

func printMemory(sc bench.Scale, report *bench.Report) {
	fmt.Println("== Memory: compressed chunks (delta-encoded segments) vs uncompressed ==")
	rs := bench.RunMemory(sc)
	var base bench.MemoryResult
	for _, r := range rs {
		fmt.Printf("%-12s %9d pairs: heap %9s (%5.2f B/pair", r.Variant, r.N, byteSize(int64(r.HeapBytes)), r.HeapBytesPerPair)
		if r.EncodedBytesPerPair > 0 {
			fmt.Printf(", payload %.2f B/pair", r.EncodedBytesPerPair)
		}
		fmt.Printf("), bulk load %v, scan %6.1f M pairs/s",
			r.BulkLoadWall.Round(time.Millisecond), r.ScanPairsPerSec/1e6)
		if r.Variant == "uncompressed" {
			base = r
		} else if base.HeapBytes > 0 && r.HeapBytes > 0 {
			fmt.Printf("  (%.2fx less heap)", float64(base.HeapBytes)/float64(r.HeapBytes))
		}
		fmt.Println()
		labels := map[string]string{"variant": r.Variant}
		report.Add("memory", "heap_bytes_per_pair", labels, "bytes", r.HeapBytesPerPair)
		if r.EncodedBytesPerPair > 0 {
			report.Add("memory", "encoded_bytes_per_pair", labels, "bytes", r.EncodedBytesPerPair)
		}
		report.Add("memory", "bulk_load", labels, "seconds", r.BulkLoadWall.Seconds())
		report.Add("memory", "scan", labels, "pairs/s", r.ScanPairsPerSec)
	}
	fmt.Println()
}

func printDurability(sc bench.Scale, report *bench.Report) {
	fmt.Println("== Durability: WAL fsync policies and crash recovery ==")
	n := sc.MixedN
	for _, r := range bench.RunDurableWrites(n, sc.Threads, sc.Seed) {
		fmt.Printf("durable Put %8d ops, %2d threads, fsync=%-8s: %7.2f M/s\n",
			r.N, r.Threads, r.Policy, r.PerSec/1e6)
		report.Add("durability", "durable_put",
			map[string]string{"fsync": fmt.Sprintf("%v", r.Policy), "threads": fmt.Sprintf("%d", r.Threads)},
			"ops/s", r.PerSec)
	}
	sizes := []int{sc.InsertN / 8, sc.InsertN}
	if sizes[0] < 1 {
		sizes = sizes[1:]
	}
	for _, r := range bench.RunRecovery(sizes, sc.Seed) {
		fmt.Printf("recovery %9d pairs (snapshot %s + WAL tail %d): Open in %v\n",
			r.N, byteSize(r.SnapshotBytes), r.TailN, r.OpenTime.Round(time.Millisecond))
		report.Add("durability", "recovery",
			map[string]string{"pairs": fmt.Sprintf("%d", r.N)}, "seconds", r.OpenTime.Seconds())
	}
	fmt.Println()
}

func printShards(sc bench.Scale, maxShards int, report *bench.Report, stats bool) {
	fmt.Println("== Sharding: multi-PMA store, write scaling by shard count ==")
	var counts []int
	for c := 1; c <= maxShards; c *= 2 {
		counts = append(counts, c)
	}
	rs := bench.RunShards(sc.MixedN, sc.Threads, counts, sc.Seed)
	base := rs[0]
	for _, r := range rs {
		fmt.Printf("shards %2d, %2d threads: put %6.2f M/s (%.2fx), batch %6.2f M/s, merged scan %7.2f M pairs/s\n",
			r.Shards, r.Threads, r.PutsPerSec/1e6, r.PutsPerSec/base.PutsPerSec,
			r.BatchPerSec/1e6, r.ScanPerSec/1e6)
		labels := map[string]string{
			"shards":  fmt.Sprintf("%d", r.Shards),
			"threads": fmt.Sprintf("%d", r.Threads),
		}
		report.Add("shards", "put", labels, "ops/s", r.PutsPerSec)
		report.Add("shards", "put_batch", labels, "ops/s", r.BatchPerSec)
		report.Add("shards", "scan_merge", labels, "pairs/s", r.ScanPerSec)
		if stats {
			fmt.Print("   routed ops per shard:")
			for _, sh := range r.Stats.Shards {
				fmt.Printf(" %d", sh.Ops)
			}
			fmt.Println()
			report.AddStats("shards", labels, r.Stats)
		}
	}
	fmt.Println()
}

func printWire(sc bench.Scale, maxClients int, report *bench.Report, stats bool) {
	fmt.Println("== Wire: framed TCP front end, durable FsyncAlways backend, cross-client group commit ==")
	rs := bench.RunWire(sc, maxClients)
	base := rs[0]
	for _, r := range rs {
		fmt.Printf("clients %2d: put %8.0f /s (%5.2fx), p50 %8s  p95 %8s  p99 %8s, commit batch avg %5.1f max %d\n",
			r.Clients, r.PerSec, r.PerSec/base.PerSec, r.P50, r.P95, r.P99, r.BatchAvg, r.BatchMax)
		labels := map[string]string{"clients": fmt.Sprintf("%d", r.Clients)}
		report.Add("wire", "put", labels, "ops/s", r.PerSec)
		report.Add("wire", "latency_p50", labels, "s", r.P50.Seconds())
		report.Add("wire", "latency_p95", labels, "s", r.P95.Seconds())
		report.Add("wire", "latency_p99", labels, "s", r.P99.Seconds())
		report.Add("wire", "commit_batch_avg", labels, "ops", r.BatchAvg)
		report.Add("wire", "commit_batch_max", labels, "ops", float64(r.BatchMax))
		if r.Trace != nil {
			// Server-side windowed percentiles at cell end: unlike the
			// client-measured rows above these exclude the network and
			// decompose into stages in the stats rows.
			for _, op := range r.Trace.Ops {
				if op.Total.Count == 0 {
					continue
				}
				wl := map[string]string{"clients": labels["clients"], "op": op.Op}
				report.Add("wire", "window_p50", wl, "s", op.Total.P50*1e-9)
				report.Add("wire", "window_p95", wl, "s", op.Total.P95*1e-9)
				report.Add("wire", "window_p99", wl, "s", op.Total.P99*1e-9)
				if op.Op == "put" {
					fmt.Printf("   windowed put: p50 %8s  p95 %8s  p99 %8s  p999 %8s (server-side, trailing window)\n",
						time.Duration(op.Total.P50), time.Duration(op.Total.P95),
						time.Duration(op.Total.P99), time.Duration(op.Total.P999))
				}
			}
		}
	}
	if stats {
		// Cumulative serving-layer snapshot after the whole sweep, fetched
		// through the protocol's own stats op; Trace carries the final
		// cell's windowed per-stage tails into stats_trace_* rows.
		final := rs[len(rs)-1]
		last := final.ServerStat
		fmt.Printf("   server totals: %d conns, %s in / %s out, %d group commits, %d busy\n",
			last.ConnsOpened, byteSize(int64(last.BytesRead)), byteSize(int64(last.BytesWritten)),
			last.GroupCommits, last.Busy)
		report.AddStats("wire", nil, obs.Snapshot{Server: last, Trace: final.Trace})
	}
	fmt.Println()
}

func byteSize(n int64) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.1f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1f KiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%d B", n)
	}
}

func printGraph(sc bench.Scale, report *bench.Report) {
	res := bench.RunGraph(sc.InsertN, 1<<20, sc.Threads/2, sc.Seed)
	fmt.Println("== Section 6: dynamic CRS graph on the concurrent PMA ==")
	fmt.Printf("edge updates:        %.3f M/s\n", res.EdgesPerSec/1e6)
	fmt.Printf("neighbour expansion: %.2f M edges/s concurrent with updates\n", res.NeighborsPerSec/1e6)
	fmt.Printf("PageRank (3 iters):  %v over %d edges\n\n", res.PageRankTime.Round(time.Millisecond), res.FinalEdges)
	report.Add("graph", "edge_updates", nil, "ops/s", res.EdgesPerSec)
	report.Add("graph", "neighbour_expansion", nil, "edges/s", res.NeighborsPerSec)
	report.Add("graph", "pagerank_3iters", nil, "seconds", res.PageRankTime.Seconds())
}

func runFigure3(sc bench.Scale, plot string, report *bench.Report) {
	for _, p := range bench.Figure3Plots(sc.Threads) {
		if plot != "" && p.ID != plot {
			continue
		}
		rs := bench.RunFigure3(p, bench.PaperFactories(), sc)
		bench.PrintResults(os.Stdout, fmt.Sprintf("Figure 3%s) %s", p.ID, p.Caption), rs, p.ScanThreads > 0)
		report.AddResults("figure3"+p.ID, rs, p.ScanThreads > 0)
	}
}

func runFigure4(sc bench.Scale, plot string, report *bench.Report) {
	type sub struct {
		id      string
		updThr  int
		caption string
	}
	subs := []sub{
		{"a", sc.Threads, fmt.Sprintf("Figure 4a) %d threads", sc.Threads)},
		{"b", sc.Threads * 3 / 4, fmt.Sprintf("Figure 4b) %d threads", sc.Threads*3/4)},
		{"c", sc.Threads / 2, fmt.Sprintf("Figure 4c) %d threads", sc.Threads/2)},
	}
	for _, s := range subs {
		if plot != "" && s.id != plot {
			continue
		}
		variants, rows := bench.RunFigure4(s.updThr, sc)
		bench.PrintSpeedups(os.Stdout, s.caption, variants, rows)
		for _, row := range rows {
			labels := map[string]string{"distribution": row.Dist.String(), "variant": "Baseline"}
			report.Add("figure4"+s.id, "updates", labels, "ops/s", row.Baseline)
			for i, v := range variants[1:] {
				labels := map[string]string{"distribution": row.Dist.String(), "variant": v.Name}
				report.Add("figure4"+s.id, "updates", labels, "ops/s", row.Baseline*row.Speedup[i+1])
			}
		}
	}
}
