// Command pmabench regenerates the paper's evaluation (Section 4).
//
// Every figure has a driver:
//
//	pmabench -experiment figure3 -plot a     # Figure 3a-f
//	pmabench -experiment figure4 -plot b     # Figure 4a-c
//	pmabench -experiment ablation-segment    # Section 4.1 text: B=128 vs 256
//	pmabench -experiment ablation-leaf       # Section 4.1 text: 4KiB vs 8KiB leaves
//	pmabench -experiment batch               # batch subsystem: PutBatch/BulkLoad vs point loops
//	pmabench -experiment durability          # WAL fsync policies + recovery time
//	pmabench -experiment all                 # everything, in order
//
// The defaults are laptop-scale; -inserts/-load/-ops/-threads restore any
// scale (the paper used 1G elements and 16 hardware threads).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"pmago/internal/bench"
)

func main() {
	var (
		experiment = flag.String("experiment", "all", "figure3 | figure4 | ablation-segment | ablation-leaf | batch | durability | graph | all")
		plot       = flag.String("plot", "", "figure3: a-f (empty = all); figure4: a-c (empty = all)")
		inserts    = flag.Int("inserts", bench.DefaultScale().InsertN, "elements inserted in insert-only experiments")
		loadN      = flag.Int("load", bench.DefaultScale().LoadN, "preloaded base size for the mixed experiments")
		mixedN     = flag.Int("ops", bench.DefaultScale().MixedN, "timed update ops in the mixed experiments")
		threads    = flag.Int("threads", bench.DefaultScale().Threads, "total worker threads (goroutines), as in the paper's 16")
		seed       = flag.Int64("seed", 1, "base RNG seed")
	)
	flag.Parse()

	sc := bench.Scale{InsertN: *inserts, LoadN: *loadN, MixedN: *mixedN, Threads: *threads, Seed: *seed}
	fmt.Printf("pmabench: scale inserts=%d load=%d mixed-ops=%d threads=%d (GOMAXPROCS=%d)\n\n",
		sc.InsertN, sc.LoadN, sc.MixedN, sc.Threads, runtime.GOMAXPROCS(0))

	switch *experiment {
	case "figure3":
		runFigure3(sc, *plot)
	case "figure4":
		runFigure4(sc, *plot)
	case "ablation-segment":
		bench.PrintResults(os.Stdout, "Section 4.1 ablation: PMA segment size 128 vs 256 (8 upd + 8 scan threads)",
			bench.RunSegmentAblation(sc), true)
	case "ablation-leaf":
		bench.PrintResults(os.Stdout, "Section 4.1 ablation: ART/B+-tree leaf 4KiB vs 8KiB (8 upd + 8 scan threads)",
			bench.RunLeafAblation(sc), true)
	case "batch":
		printBatch(sc)
	case "durability":
		printDurability(sc)
	case "graph":
		printGraph(sc)
	case "all":
		runFigure3(sc, "")
		runFigure4(sc, "")
		bench.PrintResults(os.Stdout, "Section 4.1 ablation: PMA segment size 128 vs 256",
			bench.RunSegmentAblation(sc), true)
		bench.PrintResults(os.Stdout, "Section 4.1 ablation: ART/B+-tree leaf 4KiB vs 8KiB",
			bench.RunLeafAblation(sc), true)
		printBatch(sc)
		printDurability(sc)
		printGraph(sc)
	default:
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *experiment)
		os.Exit(2)
	}
}

func printBatch(sc bench.Scale) {
	fmt.Println("== Batch subsystem: PutBatch / BulkLoad vs point-update loops ==")
	n := sc.InsertN / 2
	for _, cl := range []int{0, 32, 128} {
		shape := "scattered"
		if cl > 0 {
			shape = fmt.Sprintf("clusters of %d", cl)
		}
		r := bench.RunBatchComparison(sc.LoadN, n, 10_000, cl, sc.Seed)
		fmt.Printf("PutBatch 10k (%-15s): point %6.2f M/s, batch %6.2f M/s, speedup %5.1fx\n",
			shape, r.PointPerSec/1e6, r.BatchPerSec/1e6, r.Speedup)
	}
	b := bench.RunBulkComparison(sc.InsertN, sc.Seed)
	fmt.Printf("BulkLoad %d keys: point %v, bulk %v, speedup %.1fx\n\n",
		b.N, b.PointWall.Round(time.Millisecond), b.BulkWall.Round(time.Millisecond), b.Speedup)
}

func printDurability(sc bench.Scale) {
	fmt.Println("== Durability: WAL fsync policies and crash recovery ==")
	n := sc.MixedN
	for _, r := range bench.RunDurableWrites(n, sc.Threads, sc.Seed) {
		fmt.Printf("durable Put %8d ops, %2d threads, fsync=%-8s: %7.2f M/s\n",
			r.N, r.Threads, r.Policy, r.PerSec/1e6)
	}
	sizes := []int{sc.InsertN / 8, sc.InsertN}
	if sizes[0] < 1 {
		sizes = sizes[1:]
	}
	for _, r := range bench.RunRecovery(sizes, sc.Seed) {
		fmt.Printf("recovery %9d pairs (snapshot %s + WAL tail %d): Open in %v\n",
			r.N, byteSize(r.SnapshotBytes), r.TailN, r.OpenTime.Round(time.Millisecond))
	}
	fmt.Println()
}

func byteSize(n int64) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.1f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1f KiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%d B", n)
	}
}

func printGraph(sc bench.Scale) {
	res := bench.RunGraph(sc.InsertN, 1<<20, sc.Threads/2, sc.Seed)
	fmt.Println("== Section 6: dynamic CRS graph on the concurrent PMA ==")
	fmt.Printf("edge updates:        %.3f M/s\n", res.EdgesPerSec/1e6)
	fmt.Printf("neighbour expansion: %.2f M edges/s concurrent with updates\n", res.NeighborsPerSec/1e6)
	fmt.Printf("PageRank (3 iters):  %v over %d edges\n\n", res.PageRankTime.Round(time.Millisecond), res.FinalEdges)
}

func runFigure3(sc bench.Scale, plot string) {
	for _, p := range bench.Figure3Plots(sc.Threads) {
		if plot != "" && p.ID != plot {
			continue
		}
		rs := bench.RunFigure3(p, bench.PaperFactories(), sc)
		bench.PrintResults(os.Stdout, fmt.Sprintf("Figure 3%s) %s", p.ID, p.Caption), rs, p.ScanThreads > 0)
	}
}

func runFigure4(sc bench.Scale, plot string) {
	type sub struct {
		id      string
		updThr  int
		caption string
	}
	subs := []sub{
		{"a", sc.Threads, fmt.Sprintf("Figure 4a) %d threads", sc.Threads)},
		{"b", sc.Threads * 3 / 4, fmt.Sprintf("Figure 4b) %d threads", sc.Threads*3/4)},
		{"c", sc.Threads / 2, fmt.Sprintf("Figure 4c) %d threads", sc.Threads/2)},
	}
	for _, s := range subs {
		if plot != "" && s.id != plot {
			continue
		}
		variants, rows := bench.RunFigure4(s.updThr, sc)
		bench.PrintSpeedups(os.Stdout, s.caption, variants, rows)
	}
}
