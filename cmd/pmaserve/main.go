// Command pmaserve fronts any pmago store variant with the framed TCP
// protocol: an in-memory PMA, a durable DB, or a horizontally sharded
// store, selected by flags — the serving layer consumes the pmago.Store
// interface, so one binary covers all three. A side HTTP port exposes the
// live metrics (JSON and Prometheus text) via pmago.Handler, including the
// serving-layer section (request latencies, windowed per-stage tail
// percentiles, group-commit batch sizes), plus net/http/pprof profiling
// under /debug/pprof/.
//
// -slow sets the slow-op flight recorder's capture threshold: any request
// whose total handling time reaches it is recorded with its full stage
// breakdown (decode, queue, commit wait, apply, respond), readable as JSON
// at /debug/pmago/slow on the -http port; a 1-in-4096 uniform sample rides
// along for baseline comparison, and a periodic summary line (ops/s and
// windowed p99 per op) is logged. -slow 0 keeps the default 20ms
// threshold; a negative value disables threshold capture.
//
// Examples:
//
//	pmaserve -addr :7070 -http :7071                       # in-memory
//	pmaserve -addr :7070 -dir /var/lib/pmago               # durable, fsync always
//	pmaserve -addr :7070 -dir /var/lib/pmago -shards 4     # sharded durable
//	pmaserve -addr :7070 -dir /var/lib/pmago -fsync none   # fast, no power-loss guarantee
//	pmaserve -addr :7070 -http :7071 -slow 5ms             # record requests over 5ms
//
// SIGINT/SIGTERM trigger a graceful shutdown: in-flight requests complete
// and flush (bounded by -drain), then the store closes cleanly.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"pmago"
	"pmago/server"
)

func main() {
	var (
		addr     = flag.String("addr", ":7070", "TCP listen address for the KV protocol")
		httpAddr = flag.String("http", "", "side HTTP listen address for /debug/pmago metrics (off when empty)")
		dir      = flag.String("dir", "", "store directory; empty serves a non-durable in-memory store")
		fsync    = flag.String("fsync", "always", "WAL fsync policy for durable stores: always|interval|none")
		shards   = flag.Int("shards", 0, "shard count; 0 serves an unsharded store")
		drain    = flag.Duration("drain", 10*time.Second, "graceful-shutdown drain budget")
		slow     = flag.Duration("slow", 0, "slow-op flight-recorder threshold (0 = default 20ms, negative disables)")
	)
	flag.Parse()
	log := slog.New(slog.NewTextHandler(os.Stderr, nil))

	store, closeStore, err := openStore(*dir, *fsync, *shards)
	if err != nil {
		log.Error("open store", "err", err)
		os.Exit(1)
	}

	srv := server.New(store, server.Options{
		Logger:          log,
		SlowOpThreshold: *slow,
		SummaryEvery:    10 * time.Second,
	})
	if *httpAddr != "" {
		mux := http.NewServeMux()
		mux.Handle("/debug/pmago/", pmago.Handler(srv))
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		hs := &http.Server{Addr: *httpAddr, Handler: mux}
		go func() {
			if err := hs.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				log.Error("http endpoint", "err", err)
			}
		}()
		defer hs.Close()
		log.Info("metrics endpoint", "addr", *httpAddr, "path", "/debug/pmago/")
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, syscall.SIGINT, syscall.SIGTERM)
	done := make(chan error, 1)
	go func() { done <- srv.ListenAndServe(*addr) }()
	log.Info("serving", "addr", *addr, "dir", *dir, "fsync", *fsync, "shards", *shards)

	select {
	case sig := <-stop:
		log.Info("shutting down", "signal", sig.String())
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		err := srv.Shutdown(ctx)
		cancel()
		if err != nil {
			log.Warn("drain incomplete", "err", err)
		}
		<-done
	case err := <-done:
		if err != nil {
			log.Error("serve", "err", err)
		}
	}
	if err := closeStore(); err != nil {
		log.Error("close store", "err", err)
		os.Exit(1)
	}
}

// openStore builds the backend the flags describe, returning it behind the
// Store interface plus its close function.
func openStore(dir, fsync string, shards int) (pmago.Store, func() error, error) {
	var policy pmago.FsyncPolicy
	switch fsync {
	case "always":
		policy = pmago.FsyncAlways
	case "interval":
		policy = pmago.FsyncInterval
	case "none":
		policy = pmago.FsyncNone
	default:
		return nil, nil, fmt.Errorf("unknown -fsync policy %q", fsync)
	}
	switch {
	case dir == "" && shards <= 0:
		p, err := pmago.New()
		if err != nil {
			return nil, nil, err
		}
		return p, func() error { p.Close(); return nil }, nil
	case dir == "":
		s, err := pmago.NewSharded(pmago.WithShards(shards))
		if err != nil {
			return nil, nil, err
		}
		return s, s.Close, nil
	case shards <= 0:
		db, err := pmago.Open(dir, pmago.WithFsync(policy))
		if err != nil {
			return nil, nil, err
		}
		return db, db.Close, nil
	default:
		s, err := pmago.OpenSharded(dir, pmago.WithShards(shards), pmago.WithFsync(policy))
		if err != nil {
			return nil, nil, err
		}
		return s, s.Close, nil
	}
}
