package pmago

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// stressOpts is the seqlock stress configuration (tiny segments and chunks,
// no batch delay) from the core stress suite, as public options: rebalances,
// gate hand-offs and resizes fire constantly even in small tests.
func stressOpts(mode Mode) []Option {
	return []Option{
		WithMode(mode),
		WithSegmentCapacity(8),
		WithSegmentsPerGate(2),
		WithTDelay(0),
		WithWorkers(2),
	}
}

// topologies every cross-shard test should pass on: multi-shard straw2
// (scans must k-way merge), skewed weights, range splits (scans walk shards
// in key order), and the single-shard degenerate case.
func testTopologies() map[string]Option {
	return map[string]Option{
		"straw2-3":  WithShards(3),
		"weighted":  WithShardWeights([]float64{1, 4}),
		"range":     WithRangeSplits([]int64{-50, 700}),
		"one-shard": WithShards(1),
	}
}

// TestShardedModelEquivalence drives a sharded store and a flat sorted-map
// model through the same random interleaving of Put, Delete, PutBatch,
// DeleteBatch and Scan, for every topology and update mode, checking full
// contents, global scan order, sub-range scans and exact cross-shard
// DeleteBatch counts at every sync point. Under -race the same test doubles
// as the latched-path checker (the optimistic read path is compiled out).
func TestShardedModelEquivalence(t *testing.T) {
	for topoName, topo := range testTopologies() {
		for _, mode := range []Mode{ModeSync, ModeOneByOne, ModeBatch} {
			t.Run(fmt.Sprintf("%s/%v", topoName, mode), func(t *testing.T) {
				testShardedModel(t, append(stressOpts(mode), topo))
			})
		}
	}
}

func testShardedModel(t *testing.T, opts []Option) {
	s, err := NewSharded(opts...)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	const domain = 1 << 12
	rng := rand.New(rand.NewSource(11))
	model := map[int64]int64{}
	steps := 3000
	if testing.Short() {
		steps = 800
	}
	for i := 0; i < steps; i++ {
		switch rng.Intn(10) {
		case 0, 1, 2, 3:
			k, v := rng.Int63n(domain), rng.Int63()
			s.Put(k, v)
			model[k] = v
		case 4:
			k := rng.Int63n(domain)
			s.Delete(k)
			delete(model, k)
		case 5, 6:
			n := 1 + rng.Intn(64)
			keys := make([]int64, n)
			vals := make([]int64, n)
			for j := range keys {
				keys[j] = rng.Int63n(domain) // duplicates happen; last wins
				vals[j] = rng.Int63()
			}
			s.PutBatch(keys, vals)
			for j := range keys {
				model[keys[j]] = vals[j]
			}
		case 7:
			// Exact-count check needs no pending deferred updates.
			s.Flush()
			n := 1 + rng.Intn(64)
			keys := make([]int64, n)
			for j := range keys {
				keys[j] = rng.Int63n(domain)
			}
			want := 0
			seen := map[int64]bool{}
			for _, k := range keys {
				if _, ok := model[k]; ok && !seen[k] {
					want++
				}
				seen[k] = true
				delete(model, k)
			}
			if got := s.DeleteBatch(keys); got != want {
				t.Fatalf("step %d: DeleteBatch removed %d, model says %d", i, got, want)
			}
		default:
			lo := rng.Int63n(domain)
			hi := lo + rng.Int63n(domain/4)
			prev := int64(-1)
			s.Scan(lo, hi, func(k, v int64) bool {
				if k < lo || k > hi {
					t.Fatalf("step %d: Scan[%d,%d] visited %d", i, lo, hi, k)
				}
				if k <= prev {
					t.Fatalf("step %d: Scan[%d,%d] not ascending: %d after %d", i, lo, hi, k, prev)
				}
				prev = k
				return true
			})
		}
		if i%500 == 499 || i == steps-1 {
			s.Flush()
			compareShardedToModel(t, s, model)
		}
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

// compareShardedToModel checks ScanAll (contents, global order) and Len
// against the model, plus point Gets for a sample of present and absent keys.
func compareShardedToModel(t *testing.T, s *Sharded, model map[int64]int64) {
	t.Helper()
	got := map[int64]int64{}
	prev := int64(0)
	first := true
	s.ScanAll(func(k, v int64) bool {
		if !first && k <= prev {
			t.Fatalf("ScanAll not globally ascending: %d after %d", k, prev)
		}
		first = false
		prev = k
		got[k] = v
		return true
	})
	if !reflect.DeepEqual(got, model) {
		t.Fatalf("contents diverged: store has %d keys, model %d", len(got), len(model))
	}
	if s.Len() != len(model) {
		t.Fatalf("Len() = %d, model has %d", s.Len(), len(model))
	}
	n := 0
	for k, v := range model {
		if gv, ok := s.Get(k); !ok || gv != v {
			t.Fatalf("Get(%d) = %d,%v, want %d", k, gv, ok, v)
		}
		if n++; n > 32 {
			break
		}
	}
}

// TestShardedScanWindows cross-checks merged sub-range scans (including the
// lo == hi and empty cases) against a model on a store with a known layout.
func TestShardedScanWindows(t *testing.T) {
	for topoName, topo := range testTopologies() {
		t.Run(topoName, func(t *testing.T) {
			var keys, vals []int64
			for k := int64(0); k < 5000; k += 3 {
				keys = append(keys, k)
				vals = append(vals, k*2)
			}
			s, err := BulkLoadSharded(keys, vals, topo)
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			rng := rand.New(rand.NewSource(5))
			for trial := 0; trial < 50; trial++ {
				lo := rng.Int63n(5200) - 100
				hi := lo + rng.Int63n(600)
				var want []int64
				for _, k := range keys {
					if k >= lo && k <= hi {
						want = append(want, k)
					}
				}
				var got []int64
				s.Scan(lo, hi, func(k, v int64) bool {
					if v != k*2 {
						t.Fatalf("Scan[%d,%d]: value %d under key %d", lo, hi, v, k)
					}
					got = append(got, k)
					return true
				})
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("Scan[%d,%d] visited %d keys, want %d", lo, hi, len(got), len(want))
				}
			}
			// Early termination stops the merge exactly at the request.
			var got []int64
			s.Scan(0, 5000, func(k, v int64) bool {
				got = append(got, k)
				return len(got) < 10
			})
			if len(got) != 10 || !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
				t.Fatalf("early-stopped scan visited %v", got)
			}
		})
	}
}

// TestShardedScanCallbackMayUpdate pins the PR 3 callback contract across
// the merge: the scan callback runs latch-free and may call update
// operations of the same sharded store — including ones that land on the
// shards currently being scanned — without deadlocking.
func TestShardedScanCallbackMayUpdate(t *testing.T) {
	s, err := NewSharded(WithShards(3))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for k := int64(0); k < 2000; k++ {
		s.Put(k, k)
	}
	s.Flush()
	visited := 0
	s.Scan(0, 1999, func(k, v int64) bool {
		s.Put(k+10_000, v) // different shard, same store, mid-scan
		s.Delete(k + 20_000)
		visited++
		return true
	})
	if visited != 2000 {
		t.Fatalf("visited %d keys, want 2000", visited)
	}
	s.Flush()
	if n := s.Len(); n != 4000 {
		t.Fatalf("Len() = %d after callback Puts, want 4000", n)
	}
}

// TestShardedStress is the cross-shard version of the core seqlock stress
// detector: point writers, a batch writer and Get readers hammer all shards
// while a scanner continuously runs merged range scans, checking every
// result against the stressVal model — globally ascending keys, in-range,
// model-consistent values. Torn optimistic reads, merge-order bugs and
// cross-shard routing races all surface as model violations.
func TestShardedStress(t *testing.T) {
	for _, topo := range []struct {
		name string
		opt  Option
	}{
		{"straw2", WithShards(4)},
		{"range", WithRangeSplits([]int64{1 << 12, 2 << 12, 3 << 12})},
	} {
		t.Run(topo.name, func(t *testing.T) {
			stressSharded(t, append(stressOpts(ModeBatch), topo.opt))
		})
	}
}

func stressVal(k int64) int64 { return k*31 + 7 }

func stressSharded(t *testing.T, opts []Option) {
	s, err := NewSharded(opts...)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	const domain = 1 << 14
	var keys, vals []int64
	for k := int64(0); k < domain; k += 2 {
		keys = append(keys, k)
		vals = append(vals, stressVal(k))
	}
	s.PutBatch(keys, vals)
	s.Flush()

	dur := 500 * time.Millisecond
	if testing.Short() {
		dur = 150 * time.Millisecond
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var reads, scans atomic.Int64
	fail := make(chan string, 8)
	report := func(format string, args ...any) {
		select {
		case fail <- fmt.Sprintf(format, args...):
		default:
		}
	}

	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := seed
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				rng = rng*6364136223846793005 + 1442695040888963407
				k := (rng >> 16) & (domain - 1)
				if i%3 == 0 {
					s.Delete(k)
				} else {
					s.Put(k, stressVal(k))
				}
			}
		}(int64(w + 1))
	}

	// Batch writer: cross-shard batches big enough to hit every shard.
	wg.Add(1)
	go func() {
		defer wg.Done()
		const block = 4096
		bk := make([]int64, block)
		bv := make([]int64, block)
		for round := int64(0); ; round++ {
			select {
			case <-stop:
				return
			default:
			}
			base := (round * 7919) % domain
			for i := range bk {
				bk[i] = (base + int64(i)*3) % domain
				bv[i] = stressVal(bk[i])
			}
			if round%2 == 0 {
				s.PutBatch(bk, bv)
			} else {
				s.DeleteBatch(bk[: block/2 : block/2])
			}
		}
	}()

	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := seed
			for {
				select {
				case <-stop:
					return
				default:
				}
				rng = rng*6364136223846793005 + 1442695040888963407
				k := (rng >> 16) & (domain - 1)
				if v, ok := s.Get(k); ok && v != stressVal(k) {
					report("Get(%d) = %d, want %d (torn read)", k, v, stressVal(k))
					return
				}
				reads.Add(1)
			}
		}(int64(100 + r))
	}

	// Merged scanner: the cross-shard stream must be strictly ascending,
	// in range, and model-consistent in the face of concurrent updates on
	// every shard.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := int64(42)
		for {
			select {
			case <-stop:
				return
			default:
			}
			rng = rng*6364136223846793005 + 1442695040888963407
			lo := (rng >> 16) & (domain - 1)
			hi := lo + 2048
			prev := int64(-1)
			ok := true
			s.Scan(lo, hi, func(k, v int64) bool {
				switch {
				case k < lo || k > hi:
					report("Scan[%d,%d] visited out-of-range key %d", lo, hi, k)
				case k <= prev:
					report("Scan[%d,%d] keys not globally ascending: %d after %d", lo, hi, k, prev)
				case v != stressVal(k):
					report("Scan[%d,%d] value %d for key %d, want %d (torn read)", lo, hi, v, k, stressVal(k))
				default:
					prev = k
					return true
				}
				ok = false
				return false
			})
			if !ok {
				return
			}
			scans.Add(1)
		}
	}()

	time.Sleep(dur)
	close(stop)
	wg.Wait()
	select {
	case msg := <-fail:
		t.Fatal(msg)
	default:
	}
	s.Flush()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if reads.Load() == 0 || scans.Load() == 0 {
		t.Fatalf("readers made no progress (reads=%d scans=%d)", reads.Load(), scans.Load())
	}
	t.Logf("%d gets, %d merged scans, shard lens %v", reads.Load(), scans.Load(), s.ShardLens())
}

// TestBulkLoadSharded checks the partition-and-load path: unsorted input
// with duplicates must come back sorted, deduplicated last-wins, correctly
// routed (Validate checks residency) — for every topology.
func TestBulkLoadSharded(t *testing.T) {
	for topoName, topo := range testTopologies() {
		t.Run(topoName, func(t *testing.T) {
			rng := rand.New(rand.NewSource(3))
			n := 20_000
			keys := make([]int64, n)
			vals := make([]int64, n)
			model := map[int64]int64{}
			for i := range keys {
				keys[i] = rng.Int63n(8192) - 4096 // negatives and duplicates
				vals[i] = rng.Int63()
				model[keys[i]] = vals[i]
			}
			s, err := BulkLoadSharded(keys, vals, topo)
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			compareShardedToModel(t, s, model)
			if err := s.Validate(); err != nil {
				t.Fatal(err)
			}
		})
	}
	if _, err := BulkLoadSharded([]int64{1}, nil); err == nil {
		t.Fatal("BulkLoadSharded accepted mismatched slice lengths")
	}
}

// TestShardedPlacementBalance sanity-checks that weighted placement shows up
// in the shard fill: with weights 1:3 the heavy shard holds about 3x the
// keys.
func TestShardedPlacementBalance(t *testing.T) {
	var keys, vals []int64
	for k := int64(0); k < 40_000; k++ {
		keys = append(keys, k)
		vals = append(vals, k)
	}
	s, err := BulkLoadSharded(keys, vals, WithShardWeights([]float64{1, 3}))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	lens := s.ShardLens()
	ratio := float64(lens[1]) / float64(lens[0])
	if ratio < 2.5 || ratio > 3.5 {
		t.Fatalf("weight-3 shard holds %dx the keys of weight-1 shard (lens %v), want ~3x", int(ratio), lens)
	}
}

// TestShardedOptionErrors covers topology option validation.
func TestShardedOptionErrors(t *testing.T) {
	cases := []struct {
		name string
		opts []Option
	}{
		{"weights-and-splits", []Option{WithShardWeights([]float64{1, 1}), WithRangeSplits([]int64{0})}},
		{"negative-count", []Option{WithShards(-2)}},
		{"count-vs-weights", []Option{WithShards(3), WithShardWeights([]float64{1, 1})}},
		{"count-vs-splits", []Option{WithShards(5), WithRangeSplits([]int64{0})}},
		{"bad-weight", []Option{WithShardWeights([]float64{1, -1})}},
		{"bad-splits", []Option{WithRangeSplits([]int64{5, 5})}},
	}
	for _, tc := range cases {
		if _, err := NewSharded(tc.opts...); err == nil {
			t.Errorf("%s: NewSharded accepted invalid topology", tc.name)
		}
	}
	// Consistent count + weights/splits is fine.
	s, err := NewSharded(WithShards(2), WithShardWeights([]float64{1, 2}))
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	if s, err = NewSharded(WithShards(2), WithRangeSplits([]int64{0})); err != nil {
		t.Fatal(err)
	}
	s.Close()
}

// TestShardedDurableReopen exercises the manifest lifecycle: create with an
// explicit topology, reopen bare (adopts the manifest), reopen with the
// matching topology (accepted), reopen with a different one (refused), and
// a concurrent second open (flock refused).
func TestShardedDurableReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenSharded(dir, WithShards(3))
	if err != nil {
		t.Fatal(err)
	}
	model := map[int64]int64{}
	for k := int64(0); k < 3000; k++ {
		s.Put(k, k*7)
		model[k] = k * 7
	}
	var bk, bv []int64
	for k := int64(5000); k < 6000; k++ {
		bk = append(bk, k)
		bv = append(bv, -k)
		model[k] = -k
	}
	s.PutBatch(bk, bv)
	if n := s.DeleteBatch([]int64{0, 1, 2, 99999}); n != 3 {
		t.Fatalf("DeleteBatch removed %d, want 3", n)
	}
	delete(model, 0)
	delete(model, 1)
	delete(model, 2)

	if _, err := OpenSharded(dir); err == nil {
		t.Fatal("second OpenSharded of a live store succeeded")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Bare reopen adopts the manifest.
	re, err := OpenSharded(dir)
	if err != nil {
		t.Fatal(err)
	}
	if re.NumShards() != 3 {
		t.Fatalf("adopted %d shards, want 3", re.NumShards())
	}
	if got := scanToMap(t, re); !reflect.DeepEqual(got, model) {
		t.Fatalf("recovered %d keys, want %d", len(got), len(model))
	}
	if err := re.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := re.Close(); err != nil {
		t.Fatal(err)
	}

	// Matching explicit topology is accepted; conflicting ones are refused.
	if re, err = OpenSharded(dir, WithShards(3)); err != nil {
		t.Fatalf("matching topology refused: %v", err)
	}
	re.Close()
	for name, opt := range map[string]Option{
		"count":  WithShards(5),
		"kind":   WithRangeSplits([]int64{100}),
		"weight": WithShardWeights([]float64{1, 1, 2}),
	} {
		if _, err := OpenSharded(dir, opt); err == nil {
			t.Fatalf("reopen with mismatched %s topology succeeded", name)
		} else if !strings.Contains(err.Error(), "topology mismatch") {
			t.Fatalf("mismatched %s: error %v does not name the topology mismatch", name, err)
		}
	}
}

// TestShardedManifestSafety: a store whose manifest or shard directories
// went missing must refuse to open rather than guess a placement or resurrect
// a shard as empty.
func TestShardedManifestSafety(t *testing.T) {
	newStore := func(t *testing.T) string {
		dir := t.TempDir()
		s, err := OpenSharded(dir, WithShards(2))
		if err != nil {
			t.Fatal(err)
		}
		for k := int64(0); k < 100; k++ {
			s.Put(k, k)
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		return dir
	}

	t.Run("missing-shard-dir", func(t *testing.T) {
		dir := newStore(t)
		if err := os.RemoveAll(filepath.Join(dir, shardDirName(1))); err != nil {
			t.Fatal(err)
		}
		if _, err := OpenSharded(dir); err == nil {
			t.Fatal("open succeeded with a shard directory missing")
		}
	})
	t.Run("missing-manifest", func(t *testing.T) {
		dir := newStore(t)
		if err := os.Remove(filepath.Join(dir, "MANIFEST.json")); err != nil {
			t.Fatal(err)
		}
		if _, err := OpenSharded(dir); err == nil {
			t.Fatal("open succeeded with shard data but no manifest")
		}
	})
	t.Run("corrupt-manifest", func(t *testing.T) {
		dir := newStore(t)
		if err := os.WriteFile(filepath.Join(dir, "MANIFEST.json"), []byte("{"), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := OpenSharded(dir); err == nil {
			t.Fatal("open succeeded with a corrupt manifest")
		}
	})
}

// TestShardedSnapshotCompacts: Snapshot checkpoints every shard, truncating
// their WALs, and the store recovers from snapshots + empty tails.
func TestShardedSnapshotCompacts(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenSharded(dir, WithShards(2))
	if err != nil {
		t.Fatal(err)
	}
	model := map[int64]int64{}
	for k := int64(0); k < 5000; k++ {
		s.Put(k, k*3)
		model[k] = k * 3
	}
	before := s.WALBytes()
	if err := s.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if after := s.WALBytes(); after >= before {
		t.Fatalf("WAL grew across Snapshot: %d -> %d bytes", before, after)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := OpenSharded(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if got := scanToMap(t, re); !reflect.DeepEqual(got, model) {
		t.Fatalf("recovered %d keys from snapshots, want %d", len(got), len(model))
	}
}

// TestShardedInMemoryDurableOps: the durability surface errors (not panics)
// on an in-memory sharded store.
func TestShardedInMemoryDurableOps(t *testing.T) {
	s, err := NewSharded(WithShards(2))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Sync(); err == nil {
		t.Fatal("Sync on in-memory sharded store succeeded")
	}
	if err := s.Snapshot(); err == nil {
		t.Fatal("Snapshot on in-memory sharded store succeeded")
	}
	if s.WALBytes() != 0 || s.Dir() != "" {
		t.Fatal("in-memory store reports WAL bytes or a directory")
	}
}

// TestShardedUseAfterClose: Close is idempotent and everything else panics
// afterwards, like PMA and DB.
func TestShardedUseAfterClose(t *testing.T) {
	s, err := NewSharded(WithShards(2))
	if err != nil {
		t.Fatal(err)
	}
	s.Put(1, 2)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal("second Close errored")
	}
	mustPanic(t, "pmago: use after Close", func() { s.Put(3, 4) })
	mustPanic(t, "pmago: use after Close", func() { s.ScanAll(func(k, v int64) bool { return true }) })
	mustPanic(t, "pmago: use after Close", func() { s.Len() })
}
