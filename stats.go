package pmago

import (
	"encoding/json"
	"log/slog"
	"net/http"
	"strings"
	"time"

	"pmago/internal/obs"
)

// Stats is the typed metrics snapshot every store variant returns from
// Stats(): the core section (read path, combining queues, rebalancer) is
// always populated; Durable, WAL, Checkpoint and Recovery are filled by
// durable stores (Open); Shards is filled by sharded stores with one
// routing entry per shard. See the README's metric catalog and the field
// docs in internal/obs for exact tick semantics.
type Stats = obs.Snapshot

// EventHook receives structural events — global rebalances and resizes,
// checkpoints, recovery, fsync stalls — synchronously from store service
// goroutines. Implementations must be fast and must not call back into the
// store; see obs.EventHook. Install with WithEventHook.
type EventHook = obs.EventHook

// The event payloads EventHook receives; see the field docs in internal/obs.
type (
	RebalanceEvent  = obs.RebalanceEvent
	CompactionEvent = obs.CompactionEvent
	RecoveryEvent   = obs.RecoveryEvent
	FsyncStallEvent = obs.FsyncStallEvent
)

// NewSlogHook returns an EventHook that logs events through logger
// (slog.Default when nil): compactions and recoveries at Info, anything
// slower than slow — and every fsync stall — at Warn. Rebalances are logged
// only when slower than slow (they are frequent; the histograms count
// them).
func NewSlogHook(logger *slog.Logger, slow time.Duration) EventHook {
	return obs.NewSlogHook(logger, slow)
}

// WithoutMetrics disables the metrics layer for this store: Stats reports
// zeros (except the epoch-reclamation count) and every instrumentation
// site reduces to a nil check. Metrics are on by default — their hot-path
// cost is a striped, allocation-free counter increment.
func WithoutMetrics() Option { return func(c *config) { c.core.DisableMetrics = true } }

// WithEventHook installs h as the store's structural-event hook, covering
// both the in-memory layer (OnRebalance) and, for durable stores, the WAL
// and checkpoint layers (OnFsyncStall, OnCompaction, OnRecovery).
func WithEventHook(h EventHook) Option {
	return func(c *config) {
		c.core.Events = h
		c.dur.Events = h
	}
}

// StatsSource is anything whose metrics Handler can serve: *PMA, *DB,
// *Sharded, *Graph all implement it.
type StatsSource interface {
	Stats() Stats
}

// SlowOp is one captured slow-op flight-recorder record: a request that
// crossed the server's slow threshold (or was uniformly sampled), with its
// total handling time and full per-stage breakdown in nanoseconds.
type SlowOp = obs.SlowOp

// SlowOpSource is optionally implemented by a StatsSource (the network
// server implements it); Handler then serves the slow-op flight recorder
// at paths ending in "/slow".
type SlowOpSource interface {
	SlowOps() []SlowOp
}

// Handler returns an http.Handler exposing src's live metrics. A request
// path ending in "/metrics" gets Prometheus text exposition (hand-rolled,
// format version 0.0.4, metric prefix "pmago_"); a path ending in "/slow"
// gets the slow-op flight recorder's captured requests as a JSON array,
// newest first (empty unless src implements SlowOpSource — the network
// server does); any other path gets the Stats snapshot as indented JSON,
// expvar-style. Mount it wherever the operations endpoint lives:
//
//	mux.Handle("/debug/pmago/", pmago.Handler(db))
//
// Each request takes one Stats() snapshot — cheap (microseconds), safe
// under full load, and allocation only at scrape frequency.
func Handler(src StatsSource) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasSuffix(r.URL.Path, "/slow") {
			ops := []SlowOp{}
			if sp, ok := src.(SlowOpSource); ok {
				if got := sp.SlowOps(); got != nil {
					ops = got
				}
			}
			w.Header().Set("Content-Type", "application/json; charset=utf-8")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			_ = enc.Encode(ops)
			return
		}
		st := src.Stats()
		if strings.HasSuffix(r.URL.Path, "/metrics") {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			_ = obs.WritePrometheus(w, "pmago", st)
			return
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(st)
	})
}
