// Package client is the pipelining client for pmago/server's framed binary
// protocol. One Client multiplexes any number of goroutines over a small
// connection pool: each request gets a fresh id, is written framed to a
// pooled connection, and its caller parks until the per-connection reader
// routes the matching response back by id — so many requests ride the same
// connection concurrently (pipelining), and under a durable backend their
// writes coalesce into the server's cross-client group commit.
//
// Errors: ErrBusy reports the server's explicit backpressure response (the
// request was not executed; retry). ErrTimeout reports a response that did
// not arrive within Options.Timeout — for a write this is ambiguous (the op
// may still apply). Connection failures poison every request in flight on
// that connection; the next request redials.
package client

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"pmago"
	"pmago/internal/obs"
	"pmago/internal/wire"
)

// ErrBusy is returned when the server sheds the request under load: it was
// not executed and can be retried.
var ErrBusy = errors.New("client: server busy")

// ErrTimeout is returned when no response arrived within Options.Timeout.
// The request may or may not have been executed.
var ErrTimeout = errors.New("client: request timed out")

// ErrClosed is returned by operations on a closed client.
var ErrClosed = errors.New("client: closed")

// Options tunes a Client. The zero value selects the defaults.
type Options struct {
	// Conns is the connection-pool size (default 1). Requests round-robin
	// over the pool; pipelining usually saturates a connection long before
	// more are needed.
	Conns int
	// Timeout bounds each request's wait for a response (default 10s).
	// Streaming scans reset it per chunk.
	Timeout time.Duration
	// MaxBatch chunks PutBatch/DeleteBatch calls into requests of at most
	// this many pairs (default 65536), keeping frames under the protocol's
	// payload bound.
	MaxBatch int
	// DisableMetrics turns off the client-side latency recording readable
	// via LocalStats (queue wait, per-op RTT windows, outcome counters).
	DisableMetrics bool
}

func (o Options) withDefaults() Options {
	if o.Conns <= 0 {
		o.Conns = 1
	}
	if o.Timeout <= 0 {
		o.Timeout = 10 * time.Second
	}
	if o.MaxBatch <= 0 {
		o.MaxBatch = 65536
	}
	return o
}

// Client is a pipelining connection pool to one server. All methods are
// safe for concurrent use.
type Client struct {
	addr   string
	opts   Options
	m      *obs.ClientMetrics // nil when DisableMetrics
	nextID atomic.Uint64
	next   atomic.Uint64 // round-robin cursor

	mu     sync.Mutex
	conns  []*poolConn // lazily (re)dialed slots
	closed bool
}

// Dial connects to a pmago server. The first pool connection is dialed
// eagerly so configuration errors surface here; the rest dial on demand.
func Dial(addr string, opts Options) (*Client, error) {
	c := &Client{addr: addr, opts: opts.withDefaults()}
	if !c.opts.DisableMetrics {
		c.m = &obs.ClientMetrics{}
	}
	c.conns = make([]*poolConn, c.opts.Conns)
	pc, err := c.dialSlot(0)
	if err != nil {
		return nil, err
	}
	c.conns[0] = pc
	return c, nil
}

// Close closes every pooled connection. In-flight requests fail.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil
	}
	c.closed = true
	for _, pc := range c.conns {
		if pc != nil {
			pc.fail(ErrClosed)
		}
	}
	return nil
}

// Put durably stores k/v (to whatever durability the server's backend
// acknowledges — see the pmago fsync policies).
func (c *Client) Put(k, v int64) error {
	resp, err := c.roundTrip(&wire.Request{Op: wire.OpPut, Key: k, Val: v})
	if err != nil {
		return err
	}
	return respErr(resp)
}

// Get fetches k.
func (c *Client) Get(k int64) (int64, bool, error) {
	resp, err := c.roundTrip(&wire.Request{Op: wire.OpGet, Key: k})
	if err != nil {
		return 0, false, err
	}
	if err := respErr(resp); err != nil {
		return 0, false, err
	}
	return resp.Val, resp.Found, nil
}

// Delete removes k, reporting whether an element was removed.
func (c *Client) Delete(k int64) (bool, error) {
	resp, err := c.roundTrip(&wire.Request{Op: wire.OpDelete, Key: k})
	if err != nil {
		return false, err
	}
	if err := respErr(resp); err != nil {
		return false, err
	}
	return resp.Found, nil
}

// PutBatch upserts all pairs, splitting into MaxBatch-sized requests. Each
// request is acknowledged as one unit; the call as a whole is not atomic
// (exactly like the embedded PutBatch).
func (c *Client) PutBatch(keys, vals []int64) error {
	if len(keys) != len(vals) {
		return fmt.Errorf("client: PutBatch: %d keys but %d vals", len(keys), len(vals))
	}
	for off := 0; off < len(keys); off += c.opts.MaxBatch {
		end := min(off+c.opts.MaxBatch, len(keys))
		resp, err := c.roundTrip(&wire.Request{Op: wire.OpPutBatch, Keys: keys[off:end], Vals: vals[off:end]})
		if err != nil {
			return err
		}
		if err := respErr(resp); err != nil {
			return err
		}
	}
	return nil
}

// DeleteBatch removes the keys, returning the total number of elements
// removed across its chunked requests.
func (c *Client) DeleteBatch(keys []int64) (int, error) {
	total := 0
	for off := 0; off < len(keys); off += c.opts.MaxBatch {
		end := min(off+c.opts.MaxBatch, len(keys))
		resp, err := c.roundTrip(&wire.Request{Op: wire.OpDeleteBatch, Keys: keys[off:end]})
		if err != nil {
			return total, err
		}
		if err := respErr(resp); err != nil {
			return total, err
		}
		total += int(resp.Val)
	}
	return total, nil
}

// Scan streams all pairs with lo <= key <= hi in ascending order until fn
// returns false. Chunks arrive as the server produces them; returning
// false sends a cancel and drains the remaining stream.
func (c *Client) Scan(lo, hi int64, fn func(k, v int64) bool) error {
	var t0 time.Time
	if c.m != nil {
		t0 = time.Now()
	}
	pc, err := c.conn()
	if err != nil {
		if c.m != nil {
			c.m.Errors.Inc()
		}
		return err
	}
	cl := newCall(16)
	defer close(cl.done)
	id := c.nextID.Add(1)
	if err := pc.issue(id, cl, &wire.Request{Op: wire.OpScan, ID: id, Key: lo, Val: hi}); err != nil {
		if c.m != nil {
			c.m.Errors.Inc()
		}
		return err
	}
	var tw time.Time
	if c.m != nil {
		tw = time.Now()
		c.m.QueueWait.ObserveDuration(tw.Sub(t0))
		c.m.Requests[obs.ServerOpScan].Inc()
	}
	defer pc.forget(id)
	timer := time.NewTimer(c.opts.Timeout)
	defer timer.Stop()
	cancelled := false
	for {
		select {
		case resp := <-cl.ch:
			switch resp.Status {
			case wire.StatusScanChunk:
				if !cancelled {
					for i := range resp.Keys {
						if !fn(resp.Keys[i], resp.Vals[i]) {
							// Stop the server-side stream; keep draining
							// chunks already in flight until the final
							// frame arrives.
							cancelled = true
							_ = pc.write(&wire.Request{Op: wire.OpCancel, ID: id})
							break
						}
					}
				}
				if !timer.Stop() {
					<-timer.C
				}
				timer.Reset(c.opts.Timeout)
			case wire.StatusOK:
				if c.m != nil {
					// RTT of the whole stream: issue to final frame.
					c.m.RTT[obs.ServerOpScan].ObserveDuration(time.Since(tw))
				}
				return nil
			case wire.StatusBusy:
				if c.m != nil {
					c.m.Busy.Inc()
				}
				return ErrBusy
			case wire.StatusErr:
				if c.m != nil {
					c.m.Errors.Inc()
				}
				return fmt.Errorf("client: server error: %s", resp.Err)
			}
		case <-pc.broken:
			if c.m != nil {
				c.m.Errors.Inc()
			}
			return pc.err()
		case <-timer.C:
			if c.m != nil {
				c.m.Timeouts.Inc()
			}
			return ErrTimeout
		}
	}
}

// ClientStats is the client-side latency snapshot returned by LocalStats.
type ClientStats = obs.ClientSnapshot

// LocalStats snapshots this client's own latency recording: queue wait
// (connection checkout + frame write), per-op RTT windows over the trailing
// interval, and outcome counters. RTT minus the server's windowed request
// total approximates network plus the server's inbound read queue — the two
// sides together attribute a slow round trip. Zero when DisableMetrics.
func (c *Client) LocalStats() ClientStats {
	return c.m.Snapshot()
}

// Stats fetches the server's full metrics snapshot — the backing store's
// sections plus the serving layer's.
func (c *Client) Stats() (pmago.Stats, error) {
	var st pmago.Stats
	resp, err := c.roundTrip(&wire.Request{Op: wire.OpStats})
	if err != nil {
		return st, err
	}
	if err := respErr(resp); err != nil {
		return st, err
	}
	if err := json.Unmarshal(resp.Blob, &st); err != nil {
		return st, fmt.Errorf("client: stats decode: %w", err)
	}
	return st, nil
}

func respErr(resp *wire.Response) error {
	switch resp.Status {
	case wire.StatusBusy:
		return ErrBusy
	case wire.StatusErr:
		return fmt.Errorf("client: server error: %s", resp.Err)
	}
	return nil
}

// roundTrip issues one single-response request and waits for its response
// or the timeout.
func (c *Client) roundTrip(req *wire.Request) (*wire.Response, error) {
	var t0 time.Time
	if c.m != nil {
		t0 = time.Now()
	}
	pc, err := c.conn()
	if err != nil {
		if c.m != nil {
			c.m.Errors.Inc()
		}
		return nil, err
	}
	cl := newCall(1)
	defer close(cl.done)
	req.ID = c.nextID.Add(1)
	if err := pc.issue(req.ID, cl, req); err != nil {
		if c.m != nil {
			c.m.Errors.Inc()
		}
		return nil, err
	}
	var tw time.Time
	op := obs.ServerOp(req.Op - wire.OpPut)
	if c.m != nil {
		tw = time.Now()
		c.m.QueueWait.ObserveDuration(tw.Sub(t0))
		c.m.Requests[op].Inc()
	}
	timer := time.NewTimer(c.opts.Timeout)
	defer timer.Stop()
	select {
	case resp := <-cl.ch:
		if c.m != nil {
			c.m.RTT[op].ObserveDuration(time.Since(tw))
			switch resp.Status {
			case wire.StatusBusy:
				c.m.Busy.Inc()
			case wire.StatusErr:
				c.m.Errors.Inc()
			}
		}
		return &resp, nil
	case <-pc.broken:
		if c.m != nil {
			c.m.Errors.Inc()
		}
		return nil, pc.err()
	case <-timer.C:
		pc.forget(req.ID)
		if c.m != nil {
			c.m.Timeouts.Inc()
		}
		return nil, ErrTimeout
	}
}

// conn picks the next pool slot, redialing it if it is missing or dead.
func (c *Client) conn() (*poolConn, error) {
	slot := int(c.next.Add(1)) % c.opts.Conns
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClosed
	}
	pc := c.conns[slot]
	if pc != nil && !pc.dead() {
		c.mu.Unlock()
		return pc, nil
	}
	c.mu.Unlock()
	// Dial outside the lock; a concurrent winner for the same slot is kept.
	fresh, err := c.dialSlot(slot)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		fresh.fail(ErrClosed)
		return nil, ErrClosed
	}
	if cur := c.conns[slot]; cur != nil && !cur.dead() {
		fresh.fail(ErrClosed)
		return cur, nil
	}
	c.conns[slot] = fresh
	return fresh, nil
}

func (c *Client) dialSlot(slot int) (*poolConn, error) {
	nc, err := net.Dial("tcp", c.addr)
	if err != nil {
		return nil, err
	}
	if c.m != nil {
		c.m.Dials.Inc()
	}
	pc := &poolConn{nc: nc, broken: make(chan struct{}),
		bw: bufio.NewWriterSize(nc, 64<<10), pending: make(map[uint64]*call)}
	go pc.reader()
	return pc, nil
}

// call parks one request's caller. Scans receive many responses on ch;
// everything else exactly one. The caller closes done when it stops
// listening (timeout, scan exit), releasing a reader blocked on delivery;
// a dying connection wakes callers through poolConn.broken instead.
type call struct {
	ch   chan wire.Response
	done chan struct{}
}

func newCall(buffered int) *call {
	return &call{ch: make(chan wire.Response, buffered), done: make(chan struct{})}
}

// poolConn is one pooled connection: a writer mutex serializing request
// frames, and a reader goroutine routing responses back by id.
type poolConn struct {
	nc     net.Conn
	broken chan struct{} // closed by fail: wakes every parked caller

	wmu  sync.Mutex
	bw   *bufio.Writer
	wbuf []byte

	pmu     sync.Mutex
	pending map[uint64]*call
	failed  error
}

// issue registers the call and writes the request; on write failure the
// call is unregistered and the connection poisoned.
func (pc *poolConn) issue(id uint64, cl *call, req *wire.Request) error {
	pc.pmu.Lock()
	if pc.failed != nil {
		pc.pmu.Unlock()
		return pc.failed
	}
	pc.pending[id] = cl
	pc.pmu.Unlock()
	if err := pc.write(req); err != nil {
		pc.forget(id)
		pc.fail(err)
		return err
	}
	return nil
}

// write frames and sends one request (also used for cancels).
func (pc *poolConn) write(req *wire.Request) error {
	pc.wmu.Lock()
	defer pc.wmu.Unlock()
	pc.wbuf = wire.AppendRequest(pc.wbuf[:0], req)
	if _, err := pc.bw.Write(pc.wbuf); err != nil {
		return err
	}
	return pc.bw.Flush()
}

// forget drops a call (timeout, scan done); a response arriving later for
// its id is discarded by the reader.
func (pc *poolConn) forget(id uint64) {
	pc.pmu.Lock()
	delete(pc.pending, id)
	pc.pmu.Unlock()
}

func (pc *poolConn) dead() bool {
	pc.pmu.Lock()
	defer pc.pmu.Unlock()
	return pc.failed != nil
}

func (pc *poolConn) err() error {
	pc.pmu.Lock()
	defer pc.pmu.Unlock()
	if pc.failed == nil {
		return errors.New("client: connection closed")
	}
	return pc.failed
}

// fail poisons the connection: broken wakes every parked caller, and the
// pool redials on next use.
func (pc *poolConn) fail(err error) {
	pc.pmu.Lock()
	if pc.failed == nil {
		pc.failed = err
		clear(pc.pending)
		close(pc.broken)
	}
	pc.pmu.Unlock()
	_ = pc.nc.Close()
}

// reader routes response frames to their parked callers by id. The
// response's slices are copied out: the decode buffer is reused for the
// next frame, but the caller consumes the response asynchronously.
func (pc *poolConn) reader() {
	br := bufio.NewReaderSize(pc.nc, 64<<10)
	var buf []byte
	var resp wire.Response
	for {
		payload, err := wire.ReadFrame(br, buf)
		if err != nil {
			pc.fail(fmt.Errorf("client: connection lost: %w", err))
			return
		}
		buf = payload
		if err := wire.DecodeResponse(payload, &resp); err != nil {
			pc.fail(err)
			return
		}
		pc.pmu.Lock()
		cl := pc.pending[resp.ID]
		if cl != nil && (resp.Status != wire.StatusScanChunk) {
			// Final response for this id; scans keep the entry until their
			// StatusOK/StatusErr frame.
			delete(pc.pending, resp.ID)
		}
		pc.pmu.Unlock()
		if cl == nil {
			continue // timed-out or cancelled caller; drop
		}
		out := wire.Response{Status: resp.Status, Op: resp.Op, ID: resp.ID,
			Found: resp.Found, Val: resp.Val, Err: resp.Err}
		if len(resp.Keys) > 0 {
			out.Keys = append([]int64(nil), resp.Keys...)
			out.Vals = append([]int64(nil), resp.Vals...)
		}
		if len(resp.Blob) > 0 {
			out.Blob = append([]byte(nil), resp.Blob...)
		}
		// Blocking send preserves chunk order and applies backpressure to
		// the socket when a scan consumer is slow; cl.done releases the
		// reader if the caller stopped listening.
		select {
		case cl.ch <- out:
		case <-cl.done:
		}
	}
}
