package server_test

import (
	"context"
	"errors"
	"math/rand"
	"net"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"testing"
	"time"

	"pmago"
	"pmago/client"
	"pmago/server"
)

// startServer serves store on a loopback listener and returns the server
// plus its address. Cleanup closes the server (not the store).
func startServer(t *testing.T, store pmago.Store, opts server.Options) (*server.Server, string) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(store, opts)
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })
	return srv, ln.Addr().String()
}

// TestWireRoundTripProperty runs a random op sequence through the wire and
// mirrors every op on a model map: the served store and the model must
// agree at each step — the protocol adds no semantics to the store's own.
func TestWireRoundTripProperty(t *testing.T) {
	p, err := pmago.New()
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	_, addr := startServer(t, p, server.Options{})
	cl, err := client.Dial(addr, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	rng := rand.New(rand.NewSource(42))
	model := map[int64]int64{}
	key := func() int64 { return int64(rng.Intn(500)) } // small space: plenty of hits
	for i := 0; i < 3000; i++ {
		switch rng.Intn(10) {
		case 0, 1, 2: // put
			k, v := key(), rng.Int63()
			if err := cl.Put(k, v); err != nil {
				t.Fatalf("op %d: Put: %v", i, err)
			}
			model[k] = v
		case 3: // delete
			k := key()
			removed, err := cl.Delete(k)
			if err != nil {
				t.Fatalf("op %d: Delete: %v", i, err)
			}
			_, want := model[k]
			if removed != want {
				t.Fatalf("op %d: Delete(%d) removed=%v want %v", i, k, removed, want)
			}
			delete(model, k)
		case 4: // put batch
			n := rng.Intn(40) + 1
			keys := make([]int64, n)
			vals := make([]int64, n)
			for j := range keys {
				keys[j], vals[j] = key(), rng.Int63()
			}
			if err := cl.PutBatch(keys, vals); err != nil {
				t.Fatalf("op %d: PutBatch: %v", i, err)
			}
			for j := range keys {
				model[keys[j]] = vals[j]
			}
		case 5: // delete batch
			n := rng.Intn(20) + 1
			keys := make([]int64, n)
			for j := range keys {
				keys[j] = key()
			}
			got, err := cl.DeleteBatch(keys)
			if err != nil {
				t.Fatalf("op %d: DeleteBatch: %v", i, err)
			}
			want := 0
			seen := map[int64]bool{}
			for _, k := range keys {
				if _, ok := model[k]; ok && !seen[k] {
					want++
				}
				seen[k] = true
				delete(model, k)
			}
			if got != want {
				t.Fatalf("op %d: DeleteBatch removed %d want %d", i, got, want)
			}
		case 6, 7: // get
			k := key()
			v, found, err := cl.Get(k)
			if err != nil {
				t.Fatalf("op %d: Get: %v", i, err)
			}
			wantV, wantFound := model[k]
			if found != wantFound || (found && v != wantV) {
				t.Fatalf("op %d: Get(%d) = %d,%v want %d,%v", i, k, v, found, wantV, wantFound)
			}
		case 8: // range scan
			lo := int64(rng.Intn(500))
			hi := lo + int64(rng.Intn(100))
			var gotK, gotV []int64
			if err := cl.Scan(lo, hi, func(k, v int64) bool {
				gotK = append(gotK, k)
				gotV = append(gotV, v)
				return true
			}); err != nil {
				t.Fatalf("op %d: Scan: %v", i, err)
			}
			var wantK []int64
			for k := range model {
				if k >= lo && k <= hi {
					wantK = append(wantK, k)
				}
			}
			sort.Slice(wantK, func(a, b int) bool { return wantK[a] < wantK[b] })
			if len(gotK) != len(wantK) {
				t.Fatalf("op %d: Scan[%d,%d] %d pairs want %d", i, lo, hi, len(gotK), len(wantK))
			}
			for j := range gotK {
				if gotK[j] != wantK[j] || gotV[j] != model[wantK[j]] {
					t.Fatalf("op %d: Scan pair %d: %d/%d want %d/%d",
						i, j, gotK[j], gotV[j], wantK[j], model[wantK[j]])
				}
			}
		case 9: // scan with early stop (exercises OpCancel + drain)
			stopped := 0
			if err := cl.Scan(0, 499, func(k, v int64) bool {
				stopped++
				return stopped < 3
			}); err != nil {
				t.Fatalf("op %d: early-stop Scan: %v", i, err)
			}
		}
	}
}

// TestPipelinedGroupCommit hammers a durable FsyncAlways store from many
// pipelining goroutines and checks (a) every acknowledged write is
// readable, (b) the committer actually coalesced: more ops than group
// commits (batch size > 1 somewhere).
func TestPipelinedGroupCommit(t *testing.T) {
	dir := t.TempDir()
	db, err := pmago.Open(dir, pmago.WithFsync(pmago.FsyncAlways))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	srv, addr := startServer(t, db, server.Options{})
	cl, err := client.Dial(addr, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	const writers, perWriter = 8, 100
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				k := int64(w*perWriter + i)
				for {
					err := cl.Put(k, k*2)
					if err == nil {
						break
					}
					if errors.Is(err, client.ErrBusy) {
						continue
					}
					t.Errorf("Put(%d): %v", k, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	for k := int64(0); k < writers*perWriter; k++ {
		v, found, err := cl.Get(k)
		if err != nil || !found || v != k*2 {
			t.Fatalf("Get(%d) = %d,%v,%v", k, v, found, err)
		}
	}
	st := srv.Stats()
	if st.Server == nil {
		t.Fatal("no server stats section")
	}
	co := st.Server.CommitOps
	if co.Count == 0 {
		t.Fatal("no group commits recorded")
	}
	if co.Sum <= co.Count {
		t.Errorf("no coalescing: %d ops over %d commits", co.Sum, co.Count)
	}
	t.Logf("group commit: %d ops over %d commits (avg %.1f)",
		co.Sum, co.Count, float64(co.Sum)/float64(co.Count))
}

// slowStore delays every group-commit apply so in-flight requests pile up
// deterministically.
type slowStore struct {
	pmago.Store
	delay time.Duration
}

func (s slowStore) PutBatch(keys, vals []int64) {
	time.Sleep(s.delay)
	s.Store.PutBatch(keys, vals)
}

// TestBusyBackpressure drives more pipelined writes than the in-flight
// bounds allow against a slow store: the overflow must be answered with
// explicit busy responses, not buffered.
func TestBusyBackpressure(t *testing.T) {
	p, err := pmago.New()
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	srv, addr := startServer(t, slowStore{p, 30 * time.Millisecond},
		server.Options{MaxConnInflight: 2, CommitQueue: 2})
	cl, err := client.Dial(addr, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	const n = 20
	var wg sync.WaitGroup
	var busy, ok32 int32
	var mu sync.Mutex
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			err := cl.Put(int64(i), int64(i))
			mu.Lock()
			defer mu.Unlock()
			switch {
			case err == nil:
				ok32++
			case errors.Is(err, client.ErrBusy):
				busy++
			default:
				t.Errorf("Put(%d): %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	if busy == 0 {
		t.Fatalf("expected busy responses (ok=%d busy=%d)", ok32, busy)
	}
	if ok32 == 0 {
		t.Fatal("every request rejected")
	}
	if st := srv.Stats(); st.Server == nil || st.Server.Busy == 0 {
		t.Fatal("busy metric not recorded")
	}
}

// TestGracefulShutdown issues a write that the store applies slowly, then
// shuts the server down mid-flight: the dispatched write must still be
// acknowledged (and flushed) before the connection closes.
func TestGracefulShutdown(t *testing.T) {
	p, err := pmago.New()
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	srv, addr := startServer(t, slowStore{p, 100 * time.Millisecond}, server.Options{})
	cl, err := client.Dial(addr, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	putDone := make(chan error, 1)
	go func() { putDone <- cl.Put(1, 2) }()
	time.Sleep(20 * time.Millisecond) // let the put reach the committer
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if err := <-putDone; err != nil {
		t.Fatalf("in-flight put lost by graceful shutdown: %v", err)
	}
	if v, ok := p.Get(1); !ok || v != 2 {
		t.Fatalf("acknowledged put missing after shutdown: %d,%v", v, ok)
	}
	if err := cl.Put(3, 4); err == nil {
		t.Fatal("put succeeded after shutdown")
	}
}

// TestScanCancellation checks both early-stop (OpCancel) and client
// disconnect stop a streaming scan server-side. The store is large enough
// (~20MB on the wire) that the stream cannot fit in socket buffers — the
// server is necessarily mid-scan when the cancel/disconnect lands.
func TestScanCancellation(t *testing.T) {
	keys := make([]int64, 2_000_000)
	vals := make([]int64, len(keys))
	for i := range keys {
		keys[i], vals[i] = int64(i), int64(i)
	}
	p, err := pmago.BulkLoad(keys, vals)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	srv, addr := startServer(t, p, server.Options{})

	// Early stop: fn returns false after the first chunk.
	cl, err := client.Dial(addr, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	if err := cl.Scan(0, int64(len(keys)), func(k, v int64) bool {
		n++
		return false
	}); err != nil {
		t.Fatalf("early-stop scan: %v", err)
	}
	if n != 1 {
		t.Fatalf("fn called %d times after returning false", n)
	}
	cl.Close()
	waitCancels(t, srv, 1)

	// Disconnect: close the client mid-stream.
	cl2, err := client.Dial(addr, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	scanDone := make(chan error, 1)
	go func() {
		scanDone <- cl2.Scan(0, int64(len(keys)), func(k, v int64) bool {
			if k == 1000 {
				cl2.Close()
			}
			return true
		})
	}()
	<-scanDone // error or nil both fine; the server side must notice
	waitCancels(t, srv, 2)
}

// waitCancels polls until the server has recorded at least n scan
// cancellations.
func waitCancels(t *testing.T, srv *server.Server, n uint64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if st := srv.Stats(); st.Server != nil && st.Server.ScanCancels >= n {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("server never recorded scan cancellation #%d", n)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestKillServerMidBatch proves the durability contract over the wire:
// while pipelined clients hammer a FsyncAlways store through the server,
// the store directory is copied live (a crash image — the moral equivalent
// of kill -9 at an arbitrary instant). Every write acknowledged before the
// copy began must be present when the image is recovered.
func TestKillServerMidBatch(t *testing.T) {
	dir := t.TempDir()
	db, err := pmago.Open(dir, pmago.WithFsync(pmago.FsyncAlways), pmago.WithCompactRatio(0))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	_, addr := startServer(t, db, server.Options{})
	cl, err := client.Dial(addr, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	var mu sync.Mutex
	acked := map[int64]int64{}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				k := int64(w*1_000_000 + i)
				if err := cl.Put(k, k+1); err != nil {
					if errors.Is(err, client.ErrBusy) {
						continue
					}
					t.Errorf("Put: %v", err)
					return
				}
				mu.Lock()
				acked[k] = k + 1
				mu.Unlock()
			}
		}(w)
	}

	time.Sleep(150 * time.Millisecond) // let writes accumulate
	// Snapshot the acked set STRICTLY BEFORE the copy starts: everything in
	// it was fsynced before any file read below.
	mu.Lock()
	ackedBefore := make(map[int64]int64, len(acked))
	for k, v := range acked {
		ackedBefore[k] = v
	}
	mu.Unlock()
	image := t.TempDir()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if e.IsDir() {
			continue
		}
		b, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(image, e.Name()), b, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	if t.Failed() {
		return
	}
	if len(ackedBefore) == 0 {
		t.Fatal("no writes acknowledged before the crash image")
	}

	re, err := pmago.Open(image)
	if err != nil {
		t.Fatalf("recovering crash image: %v", err)
	}
	defer re.Close()
	missing := 0
	for k, v := range ackedBefore {
		got, ok := re.Get(k)
		if !ok || got != v {
			missing++
		}
	}
	if missing > 0 {
		t.Fatalf("%d of %d acknowledged writes missing after crash recovery", missing, len(ackedBefore))
	}
	t.Logf("crash image preserved all %d acknowledged writes", len(ackedBefore))
}

// TestStatsOverWire fetches the metrics snapshot through OpStats and
// checks the serving-layer section is attached and counting.
func TestStatsOverWire(t *testing.T) {
	p, err := pmago.New()
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	_, addr := startServer(t, p, server.Options{})
	cl, err := client.Dial(addr, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.Put(1, 2); err != nil {
		t.Fatal(err)
	}
	st, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Server == nil {
		t.Fatal("stats over wire missing server section")
	}
	var putReqs uint64
	for _, op := range st.Server.Ops {
		if op.Op == "put" {
			putReqs = op.Requests
		}
	}
	if putReqs == 0 {
		t.Fatalf("put requests not counted: %+v", st.Server.Ops)
	}
}

// TestSentinelKeyRejected checks reserved keys come back as protocol
// errors, not store panics.
func TestSentinelKeyRejected(t *testing.T) {
	p, err := pmago.New()
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	_, addr := startServer(t, p, server.Options{})
	cl, err := client.Dial(addr, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.Put(pmago.KeyMin, 1); err == nil {
		t.Fatal("Put(KeyMin) accepted")
	}
	if err := cl.Put(pmago.KeyMax, 1); err == nil {
		t.Fatal("Put(KeyMax) accepted")
	}
	// The connection and store survive the rejection.
	if err := cl.Put(1, 2); err != nil {
		t.Fatalf("put after rejected sentinel: %v", err)
	}
}
