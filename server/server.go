// Package server exposes any pmago.Store over a framed binary TCP protocol
// (pmago/internal/wire): Put, Get, Delete, PutBatch, DeleteBatch, streaming
// Scan and Stats, with per-connection pipelining — many in-flight requests
// per connection, responses matched by request id and free to complete out
// of order.
//
// # Cross-client group commit
//
// Write requests from every connection funnel into one committer goroutine,
// which drains its queue and applies each drain as a single consolidated
// PutBatch (deletes run alongside as individual calls so their removed
// results stay exact). All ops in one drain are mutually concurrent — none
// was acknowledged before any other arrived — so any serialization is
// legal, and the consolidated batch preserves queue order for last-wins
// semantics. Against a durable store under FsyncAlways this turns N
// clients' puts into one WAL record and one shared fsync: the server-level
// mirror of the WAL's own group commit, amortizing the fsync-bound policy
// across clients. An acknowledgment (the response frame) is queued only
// after the store call returns, so whatever durability the backend promises
// per call holds per acknowledged request.
//
// # Backpressure and shutdown
//
// In-flight work is bounded twice: per connection (MaxConnInflight) and
// globally (the committer queue). A request over either bound is answered
// with an explicit busy response — never buffered without bound — and the
// client retries. Shutdown stops reads, lets every dispatched request
// complete and flush, then closes; Close tears down immediately. Streaming
// scans are cancelled by OpCancel or by the client disconnecting.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"pmago"
	"pmago/internal/obs"
	"pmago/internal/wire"
)

// Options tunes a Server. The zero value selects the defaults.
type Options struct {
	// MaxConnInflight bounds dispatched-but-unanswered requests per
	// connection (default 256). The per-connection pipelining window.
	MaxConnInflight int
	// MaxScansPerConn bounds concurrently streaming scans per connection
	// (default 4); further scans get busy responses.
	MaxScansPerConn int
	// CommitQueue bounds write requests queued for the committer across all
	// connections (default 4096) — the global in-flight bound.
	CommitQueue int
	// MaxCommitOps caps how many queued write requests one committer drain
	// coalesces (default 1024).
	MaxCommitOps int
	// ScanChunkPairs is the pair count per streamed scan chunk frame
	// (default 1024).
	ScanChunkPairs int
	// DisableMetrics turns the serving-layer metric set off, including the
	// request-path trace section and the slow-op flight recorder.
	DisableMetrics bool
	// SlowOpThreshold is the slow-op flight recorder's capture threshold: a
	// request whose total handling time reaches it is recorded with its
	// full stage breakdown, readable via SlowOps and the Handler's /slow
	// endpoint (default 20ms; negative disables threshold capture).
	SlowOpThreshold time.Duration
	// SlowOpSampleEvery additionally captures every Nth request regardless
	// of latency, so the recorder always holds a baseline to compare slow
	// captures against (default 4096; negative disables sampling).
	SlowOpSampleEvery int
	// SummaryEvery enables a periodic slog summary line — ops/s plus the
	// windowed p99 of every active op — at the given period (0 disables).
	SummaryEvery time.Duration
	// Logger receives connection-level protocol errors (nil: slog.Default).
	Logger *slog.Logger
}

func (o Options) withDefaults() Options {
	if o.MaxConnInflight <= 0 {
		o.MaxConnInflight = 256
	}
	if o.MaxScansPerConn <= 0 {
		o.MaxScansPerConn = 4
	}
	if o.CommitQueue <= 0 {
		o.CommitQueue = 4096
	}
	if o.MaxCommitOps <= 0 {
		o.MaxCommitOps = 1024
	}
	if o.ScanChunkPairs <= 0 {
		o.ScanChunkPairs = 1024
	}
	switch {
	case o.SlowOpThreshold == 0:
		o.SlowOpThreshold = 20 * time.Millisecond
	case o.SlowOpThreshold < 0:
		o.SlowOpThreshold = 0 // disabled
	}
	switch {
	case o.SlowOpSampleEvery == 0:
		o.SlowOpSampleEvery = 4096
	case o.SlowOpSampleEvery < 0:
		o.SlowOpSampleEvery = 0 // disabled
	}
	if o.Logger == nil {
		o.Logger = slog.Default()
	}
	return o
}

// Server serves one pmago.Store over TCP. Create with New, start with
// Serve or ListenAndServe, stop with Shutdown (graceful) or Close.
type Server struct {
	store pmago.Store
	opts  Options
	m     *obs.ServerMetrics // nil when disabled
	tr    *obs.TraceMetrics  // request-path trace section; nil when disabled

	sampleTick atomic.Uint64 // uniform 1-in-N flight-recorder sampling

	commitCh chan commitReq

	mu       sync.Mutex
	ln       net.Listener
	conns    map[*conn]struct{}
	draining bool
	closed   bool

	connWg   sync.WaitGroup // live connections
	commitWg sync.WaitGroup // the committer goroutine
	stopOnce sync.Once      // closes commitCh exactly once

	sumStop chan struct{} // summary logger, nil unless SummaryEvery > 0
	sumOnce sync.Once
	sumWg   sync.WaitGroup
}

// New wraps store in an unstarted server. The store is not closed by the
// server — its lifetime stays with the caller.
func New(store pmago.Store, opts Options) *Server {
	s := &Server{
		store: store,
		opts:  opts.withDefaults(),
		conns: make(map[*conn]struct{}),
	}
	if !s.opts.DisableMetrics {
		s.m = &obs.ServerMetrics{}
		s.tr = &obs.TraceMetrics{}
		if s.opts.SummaryEvery > 0 {
			s.sumStop = make(chan struct{})
			s.sumWg.Add(1)
			go s.summaryLoop()
		}
	}
	s.commitCh = make(chan commitReq, s.opts.CommitQueue)
	s.commitWg.Add(1)
	go s.committer()
	return s
}

// ListenAndServe listens on addr and serves until Shutdown or Close.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Serve accepts connections on ln until Shutdown/Close (which close ln).
// It returns nil after a clean shutdown, the accept error otherwise.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed || s.draining {
		s.mu.Unlock()
		ln.Close()
		return errors.New("server: already shut down")
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		nc, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			stopped := s.draining || s.closed
			s.mu.Unlock()
			if stopped {
				return nil
			}
			return err
		}
		c := newConn(s, nc)
		s.mu.Lock()
		if s.draining || s.closed {
			s.mu.Unlock()
			nc.Close()
			continue
		}
		s.conns[c] = struct{}{}
		s.connWg.Add(1)
		s.mu.Unlock()
		if s.m != nil {
			s.m.ConnsOpened.Inc()
		}
		go c.serve()
	}
}

// Addr returns the listener address ("" before Serve).
func (s *Server) Addr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Stats snapshots the backing store's metrics with the serving-layer
// section attached; Server satisfies pmago.StatsSource, so pmago.Handler
// can expose a served store on a side HTTP port.
func (s *Server) Stats() pmago.Stats {
	st := s.store.Stats()
	st.Server = s.m.Snapshot()
	st.Trace = s.tr.Snapshot()
	return st
}

// SlowOps returns the slow-op flight recorder's captured requests, newest
// first: every request whose total handling time reached SlowOpThreshold,
// plus the 1-in-SlowOpSampleEvery uniform sample. Empty with metrics
// disabled. pmago.Handler serves the same dump as JSON on paths ending in
// "/slow".
func (s *Server) SlowOps() []obs.SlowOp {
	if s.tr == nil {
		return nil
	}
	return s.tr.Slow.Dump()
}

// Shutdown stops accepting, stops reading new requests, waits for every
// dispatched request to be answered and flushed, then closes all
// connections. If ctx expires first the remaining connections are torn
// down immediately and ctx.Err is returned.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.draining = true
	ln := s.ln
	conns := make([]*conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	for _, c := range conns {
		c.beginDrain()
	}
	done := make(chan struct{})
	go func() {
		s.connWg.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
		for _, c := range conns {
			c.teardown()
		}
		<-done
	}
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.stopOnce.Do(func() { close(s.commitCh) })
	s.commitWg.Wait()
	s.stopSummary()
	return err
}

// Close tears the server down immediately: in-flight requests are
// abandoned (their connections close without final responses).
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.draining = true
	s.closed = true
	ln := s.ln
	conns := make([]*conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	for _, c := range conns {
		c.teardown()
	}
	s.connWg.Wait()
	s.stopOnce.Do(func() { close(s.commitCh) })
	s.commitWg.Wait()
	s.stopSummary()
	return nil
}

func (s *Server) stopSummary() {
	if s.sumStop == nil {
		return
	}
	s.sumOnce.Do(func() { close(s.sumStop) })
	s.sumWg.Wait()
}

// summaryLoop is the periodic operational one-liner: overall request rate
// since the last line plus each active op's windowed p99 — the glanceable
// version of the trace section for log-only environments.
func (s *Server) summaryLoop() {
	defer s.sumWg.Done()
	t := time.NewTicker(s.opts.SummaryEvery)
	defer t.Stop()
	last := time.Now()
	var lastReqs uint64
	for {
		select {
		case <-s.sumStop:
			return
		case now := <-t.C:
			var reqs uint64
			for i := range s.m.Requests {
				reqs += s.m.Requests[i].Load()
			}
			attrs := []any{"ops_per_sec", float64(reqs-lastReqs) / now.Sub(last).Seconds()}
			for op := obs.ServerOp(0); op < obs.NumServerOps; op++ {
				w := s.tr.Total[op].Snapshot()
				if w.Count == 0 {
					continue
				}
				attrs = append(attrs, "p99_"+obs.ServerOpNames[op], time.Duration(w.P99))
			}
			s.opts.Logger.Info("pmago server: summary", attrs...)
			last, lastReqs = now, reqs
		}
	}
}

func (s *Server) removeConn(c *conn) {
	s.mu.Lock()
	_, live := s.conns[c]
	delete(s.conns, c)
	s.mu.Unlock()
	if live {
		if s.m != nil {
			s.m.ConnsClosed.Inc()
		}
		s.connWg.Done()
	}
}

// reqTimes carries one request's pipeline timestamps from frame decode to
// response enqueue — the per-request trace context. A zero time marks a
// stage the request never entered (reads skip picked; error responses skip
// the apply pair). All stamps are taken only when metrics are enabled.
type reqTimes struct {
	start      time.Time // frame payload in hand, decode begins
	decoded    time.Time // request decoded and validated
	picked     time.Time // writes: drained off the commit queue
	applyStart time.Time // store call began
	applyEnd   time.Time // store call returned
}

// commitReq is one write request queued for the committer. Keys/Vals are
// owned by the request (copied out of the connection's decode buffer).
type commitReq struct {
	c        *conn
	op       byte
	id       uint64
	key, val int64
	keys     []int64
	vals     []int64
	rt       reqTimes
}

// committer is the single goroutine all write requests funnel through: it
// blocks for the first queued request, drains whatever else arrived (up to
// MaxCommitOps), and applies the drain as one group commit — see the
// package doc. It never blocks sending responses (connection queues are
// bounded by the in-flight tokens their entries hold), so one slow client
// cannot stall another's acknowledgments.
func (s *Server) committer() {
	defer s.commitWg.Done()
	batch := make([]commitReq, 0, s.opts.MaxCommitOps)
	for first := range s.commitCh {
		if s.tr != nil {
			first.rt.picked = time.Now()
		}
		batch = append(batch[:0], first)
		// Collect window: the channel send that delivered `first` made this
		// goroutine runnable immediately, often before the other connections'
		// readers — which already have frames buffered — got any CPU. Yield a
		// couple of times so every ready reader can enqueue its request, then
		// drain. The yields cost microseconds; the fsync this coalescing
		// shares costs hundreds.
		for spin := 0; ; spin++ {
			// One queue-exit stamp per drain round, shared by the round's
			// requests: per-request precision isn't worth a clock read per op.
			var now time.Time
			if s.tr != nil {
				now = time.Now()
			}
		drain:
			for len(batch) < s.opts.MaxCommitOps {
				select {
				case r, ok := <-s.commitCh:
					if !ok {
						break drain
					}
					r.rt.picked = now
					batch = append(batch, r)
				default:
					break drain
				}
			}
			if spin >= 2 || len(batch) >= s.opts.MaxCommitOps {
				break
			}
			runtime.Gosched()
		}
		s.applyBatch(batch)
	}
}

// applyBatch applies one committer drain. Puts consolidate into a single
// PutBatch in queue order (all ops in a drain are mutually concurrent, so
// this serialization is legal, and order preservation keeps last-wins
// dedup faithful); deletes run as individual concurrent store calls so
// each op's removed result is exact — their WAL appends still share fsyncs
// through the log's own group commit. Store panics (a sick WAL, rejected
// input that slipped past validation) become error responses rather than
// killing the server.
func (s *Server) applyBatch(batch []commitReq) {
	var putKeys, putVals []int64
	nPuts := 0
	for i := range batch {
		switch batch[i].op {
		case wire.OpPut:
			putKeys = append(putKeys, batch[i].key)
			putVals = append(putVals, batch[i].val)
			nPuts++
		case wire.OpPutBatch:
			putKeys = append(putKeys, batch[i].keys...)
			putVals = append(putVals, batch[i].vals...)
			nPuts++
		}
	}
	var tApply time.Time
	if s.tr != nil {
		tApply = time.Now()
	}
	var putErr error
	var wg sync.WaitGroup
	if len(putKeys) > 0 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			putErr = s.apply(func() { s.store.PutBatch(putKeys, putVals) })
		}()
	}
	type delResult struct {
		removed int64
		err     error
	}
	results := make([]delResult, len(batch))
	for i := range batch {
		r := &batch[i]
		switch r.op {
		case wire.OpDelete:
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				var removed bool
				results[i].err = s.apply(func() { removed = s.store.Delete(batch[i].key) })
				if removed {
					results[i].removed = 1
				}
			}(i)
		case wire.OpDeleteBatch:
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				var n int
				results[i].err = s.apply(func() { n = s.store.DeleteBatch(batch[i].keys) })
				results[i].removed = int64(n)
			}(i)
		}
	}
	wg.Wait()
	if s.tr != nil {
		// The shared store call is every batched request's apply stage: the
		// group commit is one WAL record and one fsync, so its cost is the
		// cost each rider experienced.
		tApplied := time.Now()
		for i := range batch {
			batch[i].rt.applyStart = tApply
			batch[i].rt.applyEnd = tApplied
		}
	}
	if s.m != nil {
		s.m.GroupCommits.Inc()
		s.m.CommitOps.Observe(uint64(len(batch)))
		s.m.CommitKeys.Observe(uint64(len(putKeys)))
	}
	for i := range batch {
		r := &batch[i]
		resp := wire.Response{Status: wire.StatusOK, Op: r.op, ID: r.id}
		var err error
		switch r.op {
		case wire.OpPut, wire.OpPutBatch:
			err = putErr
		case wire.OpDelete:
			err = results[i].err
			resp.Found = results[i].removed == 1
		case wire.OpDeleteBatch:
			err = results[i].err
			resp.Val = results[i].removed
		}
		if err != nil {
			resp = wire.Response{Status: wire.StatusErr, Op: r.op, ID: r.id, Err: err.Error()}
			if s.m != nil {
				s.m.Errors.Inc()
			}
		}
		r.c.respond(&resp, obs.ServerOp(r.op-wire.OpPut), r.rt)
	}
}

// nanosBetween is b-a in nanoseconds, 0 when either stamp is missing (a
// stage the request never entered) or the difference is negative.
func nanosBetween(a, b time.Time) uint64 {
	if a.IsZero() || b.IsZero() {
		return 0
	}
	d := b.Sub(a)
	if d < 0 {
		return 0
	}
	return uint64(d)
}

// recordTrace attributes one answered request to the trace section and,
// when slow or sampled, captures its breakdown in the flight recorder. The
// stages partition [rt.start, end] exactly for writes (decode → queue →
// commit-wait → apply → respond); reads leave queue and commit-wait at 0.
// Allocation-free: window observes and a struct copy into the slow ring.
func (s *Server) recordTrace(op obs.ServerOp, rt reqTimes, end time.Time) {
	tr := s.tr
	if tr == nil || rt.start.IsZero() {
		return
	}
	var stages [obs.NumTraceStages]uint64
	stages[obs.StageDecode] = nanosBetween(rt.start, rt.decoded)
	stages[obs.StageQueue] = nanosBetween(rt.decoded, rt.picked)
	stages[obs.StageCommitWait] = nanosBetween(rt.picked, rt.applyStart)
	stages[obs.StageApply] = nanosBetween(rt.applyStart, rt.applyEnd)
	respondFrom := rt.applyEnd
	if respondFrom.IsZero() {
		respondFrom = rt.decoded
	}
	stages[obs.StageRespond] = nanosBetween(respondFrom, end)
	total := nanosBetween(rt.start, end)
	now := end.UnixNano()
	tr.Record(op, now, &stages, total)
	sampled := false
	if n := uint64(s.opts.SlowOpSampleEvery); n > 0 {
		sampled = s.sampleTick.Add(1)%n == 0
	}
	slow := s.opts.SlowOpThreshold > 0 && total >= uint64(s.opts.SlowOpThreshold)
	if slow || sampled {
		tr.Slow.Record(obs.SlowOp{
			Op:         obs.ServerOpNames[op],
			UnixNanos:  now,
			TotalNanos: total,
			Stages:     stages,
			Sampled:    !slow,
		})
	}
}

// apply runs one store call, converting a panic into an error. The store
// records WAL failures before panicking, so a sick backend also stays
// visible through Stats().Err.
func (s *Server) apply(fn func()) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("server: store: %v", r)
		}
	}()
	fn()
	return nil
}

// statsJSON renders the full snapshot for OpStats responses.
func (s *Server) statsJSON() []byte {
	b, err := json.Marshal(s.Stats())
	if err != nil {
		b, _ = json.Marshal(map[string]string{"err": err.Error()})
	}
	return b
}
