package server_test

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"pmago"
	"pmago/client"
	"pmago/server"
)

// TestTraceStageSumsApproxTotal pushes a pipelined durable write workload
// through the wire and checks the tentpole invariant: the per-stage windows
// partition each write's total handling time, so the windowed stage sums
// must add up to the windowed totals (small tolerance for rotation slop).
func TestTraceStageSumsApproxTotal(t *testing.T) {
	dir := t.TempDir()
	db, err := pmago.Open(dir, pmago.WithFsync(pmago.FsyncAlways))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	srv, addr := startServer(t, db, server.Options{})

	const clients, perClient = 4, 200
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cl, err := client.Dial(addr, client.Options{})
			if err != nil {
				t.Error(err)
				return
			}
			defer cl.Close()
			for i := 0; i < perClient; i++ {
				if err := cl.Put(int64(c*perClient+i), int64(i)); err != nil {
					t.Errorf("put: %v", err)
					return
				}
			}
		}(c)
	}
	wg.Wait()

	tr := srv.Stats().Trace
	if tr == nil {
		t.Fatal("no trace section on server stats")
	}
	for _, op := range tr.Ops {
		if op.Op != "put" {
			continue
		}
		if op.Total.Count != clients*perClient {
			t.Fatalf("windowed put count = %d, want %d", op.Total.Count, clients*perClient)
		}
		var stageSum uint64
		for _, st := range op.Stages {
			if st.Window.Count != op.Total.Count {
				t.Fatalf("stage %s count = %d, total count = %d",
					st.Stage, st.Window.Count, op.Total.Count)
			}
			stageSum += st.Window.Sum
		}
		total := op.Total.Sum
		diff := int64(stageSum) - int64(total)
		if diff < 0 {
			diff = -diff
		}
		if total == 0 || float64(diff)/float64(total) > 0.02 {
			t.Fatalf("stage sums %d vs total %d: off by %.2f%%",
				stageSum, total, 100*float64(diff)/float64(total))
		}
		return
	}
	t.Fatal("no put section in trace snapshot")
}

// TestSlowOpsEndpoint sets a floor threshold so every request is captured,
// then reads the flight recorder both through the API and through the
// Handler's /slow endpoint.
func TestSlowOpsEndpoint(t *testing.T) {
	p, err := pmago.New()
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	srv, addr := startServer(t, p, server.Options{SlowOpThreshold: time.Nanosecond})
	cl, err := client.Dial(addr, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	for i := 0; i < 50; i++ {
		if err := cl.Put(int64(i), int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := cl.Get(1); err != nil {
		t.Fatal(err)
	}

	ops := srv.SlowOps()
	if len(ops) == 0 {
		t.Fatal("no slow ops captured at 1ns threshold")
	}
	for _, op := range ops {
		if op.Sampled {
			t.Fatalf("threshold capture marked sampled: %+v", op)
		}
		if op.TotalNanos == 0 || op.UnixNanos == 0 {
			t.Fatalf("empty capture: %+v", op)
		}
	}
	for i := 1; i < len(ops); i++ {
		if ops[i-1].UnixNanos < ops[i].UnixNanos {
			t.Fatalf("slow ops not newest-first at %d", i)
		}
	}

	rec := httptest.NewRecorder()
	pmago.Handler(srv).ServeHTTP(rec, httptest.NewRequest("GET", "/debug/pmago/slow", nil))
	if rec.Code != 200 {
		t.Fatalf("GET /slow: %d", rec.Code)
	}
	var dump []map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &dump); err != nil {
		t.Fatalf("decode /slow: %v\n%s", err, rec.Body.String())
	}
	if len(dump) == 0 {
		t.Fatal("/slow returned empty array under load")
	}
	first := dump[0]
	for _, key := range []string{"op", "total_nanos", "apply_nanos", "respond_nanos"} {
		if _, ok := first[key]; !ok {
			t.Fatalf("/slow record missing %q: %v", key, first)
		}
	}
}

// TestSlowOpSampling disables threshold capture and samples every request:
// the recorder must fill with Sampled records.
func TestSlowOpSampling(t *testing.T) {
	p, err := pmago.New()
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	srv, addr := startServer(t, p, server.Options{
		SlowOpThreshold:   -1, // disable threshold capture
		SlowOpSampleEvery: 1,  // sample everything
	})
	cl, err := client.Dial(addr, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	for i := 0; i < 20; i++ {
		if err := cl.Put(int64(i), int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	ops := srv.SlowOps()
	if len(ops) == 0 {
		t.Fatal("no sampled ops captured at sample-every-1")
	}
	for _, op := range ops {
		if !op.Sampled {
			t.Fatalf("sampler capture not marked sampled: %+v", op)
		}
	}
}

// syncBuffer is a goroutine-safe bytes.Buffer for capturing slog output.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestSummaryLogger checks the periodic summary line: ops/s plus windowed
// p99 per active op, emitted on the configured cadence.
func TestSummaryLogger(t *testing.T) {
	p, err := pmago.New()
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	var buf syncBuffer
	log := slog.New(slog.NewTextHandler(&buf, nil))
	srv, addr := startServer(t, p, server.Options{Logger: log, SummaryEvery: 10 * time.Millisecond})
	cl, err := client.Dial(addr, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	for i := 0; i < 50; i++ {
		if err := cl.Put(int64(i), int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		out := buf.String()
		if strings.Contains(out, "summary") && strings.Contains(out, "ops_per_sec") {
			if !strings.Contains(out, "p99_put") {
				t.Fatalf("summary line missing windowed p99: %s", out)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no summary line within deadline; log: %s", out)
		}
		time.Sleep(5 * time.Millisecond)
	}
	srv.Close()
}

// TestClientLocalStats checks the client-side mirror: per-op RTT windows
// and queue-wait recording, plus the DisableMetrics zero path.
func TestClientLocalStats(t *testing.T) {
	p, err := pmago.New()
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	_, addr := startServer(t, p, server.Options{})
	cl, err := client.Dial(addr, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	for i := 0; i < 30; i++ {
		if err := cl.Put(int64(i), int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := cl.Get(1); err != nil {
		t.Fatal(err)
	}
	st := cl.LocalStats()
	if st.Dials == 0 {
		t.Fatal("no dials recorded")
	}
	if st.QueueWait.Count == 0 {
		t.Fatal("no queue-wait observations")
	}
	foundPut := false
	for _, op := range st.Ops {
		if op.Op == "put" {
			foundPut = true
			if op.Requests != 30 || op.RTT.Count != 30 {
				t.Fatalf("put: requests=%d rtt count=%d, want 30/30", op.Requests, op.RTT.Count)
			}
			if op.RTT.P99 <= 0 {
				t.Fatal("put RTT p99 not populated")
			}
		}
	}
	if !foundPut {
		t.Fatal("no put section in client stats")
	}

	off, err := client.Dial(addr, client.Options{DisableMetrics: true})
	if err != nil {
		t.Fatal(err)
	}
	defer off.Close()
	if err := off.Put(1, 2); err != nil {
		t.Fatal(err)
	}
	if st := off.LocalStats(); st.QueueWait.Count != 0 || st.Dials != 0 {
		t.Fatalf("disabled client recorded metrics: %+v", st)
	}
}
