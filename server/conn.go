package server

import (
	"bufio"
	"errors"
	"io"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"pmago"
	"pmago/internal/obs"
	"pmago/internal/wire"
)

// scanHighWater bounds a scan's un-written chunk frames in the outbound
// queue: past it the scan goroutine waits for the writer to catch up, so a
// slow-reading client throttles its own scans without growing the queue.
// Request/response frames are exempt — their count is already bounded by
// the in-flight tokens they hold — which is what lets the committer enqueue
// acknowledgments without ever blocking on a slow connection.
const scanHighWater = 32

// conn is one client connection: a reader goroutine (frame decode +
// dispatch), a writer goroutine (serialize + flush the outbound queue), and
// up to MaxScansPerConn streaming scan goroutines.
type conn struct {
	srv *Server
	nc  net.Conn

	qmu  sync.Mutex
	qcnd *sync.Cond
	q    [][]byte // encoded frames awaiting the writer
	idle bool     // writer flushed everything and is waiting (under qmu)
	dead bool     // no further sends (under qmu)

	done     chan struct{} // closed by teardown: cancels scans, wakes waiters
	tearOnce sync.Once

	pending  sync.WaitGroup // dispatched, not yet answered
	inflight atomic.Int64

	scanSem chan struct{}
	scanMu  sync.Mutex
	scans   map[uint64]chan struct{}

	draining atomic.Bool
}

func newConn(s *Server, nc net.Conn) *conn {
	c := &conn{
		srv:     s,
		nc:      nc,
		done:    make(chan struct{}),
		scanSem: make(chan struct{}, s.opts.MaxScansPerConn),
		scans:   make(map[uint64]chan struct{}),
	}
	c.qcnd = sync.NewCond(&c.qmu)
	return c
}

// serve is the reader loop: decode a request frame, dispatch, repeat until
// the client disconnects, a frame fails to decode (the stream cannot be
// resynchronized — the connection dies), or shutdown interrupts the read.
func (c *conn) serve() {
	defer c.srv.removeConn(c)
	defer c.teardown()
	go c.writer()
	br := bufio.NewReaderSize(c.nc, 64<<10)
	var buf []byte
	var req wire.Request
	for {
		payload, err := wire.ReadFrame(br, buf)
		if err != nil {
			if c.draining.Load() && errors.Is(err, os.ErrDeadlineExceeded) {
				// Graceful shutdown: answer everything dispatched, flush
				// it onto the wire, then close.
				c.pending.Wait()
				c.waitFlushed()
			} else if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				c.srv.opts.Logger.Warn("pmago server: connection error",
					"remote", c.nc.RemoteAddr(), "err", err)
			}
			return
		}
		buf = payload
		var rt reqTimes
		if m := c.srv.m; m != nil {
			rt.start = time.Now()
			m.BytesRead.Add(uint64(len(payload)) + 8)
		}
		if err := wire.DecodeRequest(payload, &req); err != nil {
			c.srv.opts.Logger.Warn("pmago server: bad request frame",
				"remote", c.nc.RemoteAddr(), "err", err)
			return
		}
		c.dispatch(&req, rt)
	}
}

// dispatch routes one decoded request: reads and stats execute inline
// (they are fast and never block on the store for long), scans stream from
// their own bounded goroutines, writes queue for the committer. Every
// accepted request holds one per-connection in-flight token until its
// (final) response is enqueued; over the token budget — or over the global
// committer queue, or the per-connection scan budget — the request is
// answered with an explicit busy response instead of being buffered.
func (c *conn) dispatch(req *wire.Request, rt reqTimes) {
	s := c.srv
	op := obs.ServerOp(req.Op - wire.OpPut)
	if req.Op != wire.OpCancel && s.m != nil {
		s.m.Requests[op].Inc()
	}
	if req.Op == wire.OpCancel {
		// Cancels an in-flight scan by its request id; no response, no
		// token — the scan terminates through its usual final frame.
		c.scanMu.Lock()
		if cancel, ok := c.scans[req.ID]; ok {
			delete(c.scans, req.ID)
			close(cancel)
		}
		c.scanMu.Unlock()
		return
	}
	errStr := validate(req)
	if s.tr != nil {
		rt.decoded = time.Now()
	}
	if errStr != "" {
		c.pending.Add(1)
		c.inflight.Add(1)
		if s.m != nil {
			s.m.Errors.Inc()
		}
		c.respond(&wire.Response{Status: wire.StatusErr, Op: req.Op, ID: req.ID, Err: errStr}, op, rt)
		return
	}
	if c.inflight.Add(1) > int64(s.opts.MaxConnInflight) {
		c.inflight.Add(-1)
		c.busy(req)
		return
	}
	c.pending.Add(1)
	switch req.Op {
	case wire.OpGet:
		resp := wire.Response{Status: wire.StatusOK, Op: wire.OpGet, ID: req.ID}
		if s.tr != nil {
			rt.applyStart = time.Now()
		}
		err := s.apply(func() { resp.Val, resp.Found = s.store.Get(req.Key) })
		if s.tr != nil {
			rt.applyEnd = time.Now()
		}
		if err != nil {
			resp = wire.Response{Status: wire.StatusErr, Op: wire.OpGet, ID: req.ID, Err: err.Error()}
		}
		c.respond(&resp, op, rt)
	case wire.OpStats:
		if s.tr != nil {
			rt.applyStart = time.Now()
		}
		blob := s.statsJSON()
		if s.tr != nil {
			rt.applyEnd = time.Now()
		}
		c.respond(&wire.Response{Status: wire.StatusOK, Op: wire.OpStats, ID: req.ID, Blob: blob}, op, rt)
	case wire.OpScan:
		select {
		case c.scanSem <- struct{}{}:
		default:
			c.inflight.Add(-1)
			c.pending.Done()
			c.busy(req)
			return
		}
		cancel := make(chan struct{})
		c.scanMu.Lock()
		c.scans[req.ID] = cancel
		c.scanMu.Unlock()
		go c.runScan(req.ID, req.Key, req.Val, cancel, rt)
	default: // writes: queue for the cross-client group commit
		cr := commitReq{c: c, op: req.Op, id: req.ID, key: req.Key, val: req.Val, rt: rt}
		if len(req.Keys) > 0 {
			// The decode buffer is reused for the next frame; the committer
			// needs its own copy.
			cr.keys = append([]int64(nil), req.Keys...)
			if req.Op == wire.OpPutBatch {
				cr.vals = append([]int64(nil), req.Vals...)
			}
		}
		select {
		case s.commitCh <- cr:
		default:
			c.inflight.Add(-1)
			c.pending.Done()
			c.busy(req)
		}
	}
}

// validate rejects requests the store would panic on: the reserved
// sentinel keys (KeyMin/KeyMax fence the array internally) and mismatched
// batch slices (impossible to encode, checked anyway).
func validate(req *wire.Request) string {
	sentinel := func(k int64) bool { return k == pmago.KeyMin || k == pmago.KeyMax }
	switch req.Op {
	case wire.OpPut, wire.OpDelete:
		if sentinel(req.Key) {
			return "reserved sentinel key"
		}
	case wire.OpPutBatch, wire.OpDeleteBatch:
		for _, k := range req.Keys {
			if sentinel(k) {
				return "reserved sentinel key"
			}
		}
	}
	return ""
}

// busy sends the explicit backpressure response.
func (c *conn) busy(req *wire.Request) {
	if m := c.srv.m; m != nil {
		m.Busy.Inc()
	}
	c.send(wire.AppendResponse(nil, &wire.Response{Status: wire.StatusBusy, Op: req.Op, ID: req.ID}))
}

// respond enqueues a request's final response, attributes its latency to
// the per-op histograms and the trace section, and releases its token.
func (c *conn) respond(resp *wire.Response, op obs.ServerOp, rt reqTimes) {
	c.send(wire.AppendResponse(nil, resp))
	if m := c.srv.m; m != nil && op >= 0 && op < obs.NumServerOps {
		end := time.Now()
		m.OpNanos[op].ObserveDuration(end.Sub(rt.start))
		c.srv.recordTrace(op, rt, end)
	}
	c.inflight.Add(-1)
	c.pending.Done()
}

// send appends one encoded frame to the outbound queue (dropped when the
// connection is dead) and kicks the writer. It never blocks: queue growth
// is bounded by the in-flight tokens and the scan high-water throttle.
func (c *conn) send(frame []byte) bool {
	c.qmu.Lock()
	if c.dead {
		c.qmu.Unlock()
		return false
	}
	c.q = append(c.q, frame)
	wake := c.idle
	c.qmu.Unlock()
	if wake {
		c.qcnd.Broadcast()
	}
	return true
}

// sendScanChunk is send with the high-water throttle: a scan waits for the
// writer (i.e. for the client to read) instead of growing the queue.
func (c *conn) sendScanChunk(frame []byte) bool {
	c.qmu.Lock()
	for !c.dead && len(c.q) > scanHighWater {
		c.qcnd.Wait()
	}
	if c.dead {
		c.qmu.Unlock()
		return false
	}
	c.q = append(c.q, frame)
	wake := c.idle
	c.qmu.Unlock()
	if wake {
		c.qcnd.Broadcast()
	}
	return true
}

// writer serializes the outbound queue onto the socket, flushing whenever
// it catches up — one syscall per burst under pipelining, per response
// when idle.
func (c *conn) writer() {
	bw := bufio.NewWriterSize(c.nc, 64<<10)
	for {
		c.qmu.Lock()
		for len(c.q) == 0 && !c.dead {
			c.idle = true
			c.qcnd.Broadcast() // waitFlushed watchers
			c.qcnd.Wait()
		}
		if len(c.q) == 0 { // dead and drained
			c.qmu.Unlock()
			return
		}
		frames := c.q
		c.q = nil
		c.idle = false
		c.qmu.Unlock()
		var tw time.Time
		if c.srv.tr != nil {
			tw = time.Now()
		}
		var n int
		var err error
		for _, f := range frames {
			if _, err = bw.Write(f); err != nil {
				break
			}
			n += len(f)
		}
		if err == nil {
			err = bw.Flush()
		}
		if m := c.srv.m; m != nil {
			m.BytesWritten.Add(uint64(n))
			if err == nil {
				// One burst = one syscall; its duration is the outbound
				// half of tail latency the per-stage timers can't see.
				c.srv.tr.Flush.ObserveDuration(time.Since(tw))
			}
		}
		if err != nil {
			c.teardown()
			return
		}
		c.qmu.Lock()
		c.qcnd.Broadcast() // scan throttle waiters: space freed
		c.qmu.Unlock()
	}
}

// waitFlushed blocks until the writer has written and flushed every queued
// frame (or the connection died).
func (c *conn) waitFlushed() {
	c.qmu.Lock()
	for !c.dead && (len(c.q) > 0 || !c.idle) {
		c.qcnd.Wait()
	}
	c.qmu.Unlock()
}

// runScan streams one scan as chunked frames, ending with a StatusOK frame
// for the same id. It stops early on OpCancel, client disconnect, or
// shutdown teardown; the final frame is still attempted so a cancelling
// client sees the stream terminate.
func (c *conn) runScan(id uint64, lo, hi int64, cancel chan struct{}, rt reqTimes) {
	s := c.srv
	defer func() {
		<-c.scanSem
		c.scanMu.Lock()
		delete(c.scans, id)
		c.scanMu.Unlock()
	}()
	pairs := s.opts.ScanChunkPairs
	keys := make([]int64, 0, pairs)
	vals := make([]int64, 0, pairs)
	stopped := false
	flush := func() bool {
		frame := wire.AppendResponse(nil, &wire.Response{
			Status: wire.StatusScanChunk, Op: wire.OpScan, ID: id, Keys: keys, Vals: vals,
		})
		keys, vals = keys[:0], vals[:0]
		if !c.sendScanChunk(frame) {
			return false
		}
		if s.m != nil {
			s.m.ScanChunks.Inc()
		}
		return true
	}
	if s.tr != nil {
		rt.applyStart = time.Now()
	}
	err := s.apply(func() {
		s.store.Scan(lo, hi, func(k, v int64) bool {
			select {
			case <-cancel:
				stopped = true
				return false
			case <-c.done:
				stopped = true
				return false
			default:
			}
			keys = append(keys, k)
			vals = append(vals, v)
			if len(keys) == pairs {
				if !flush() {
					stopped = true
					return false
				}
			}
			return true
		})
	})
	if s.tr != nil {
		rt.applyEnd = time.Now()
	}
	if stopped && s.m != nil {
		s.m.ScanCancels.Inc()
	}
	if !stopped && err == nil && len(keys) > 0 && !flush() {
		stopped = true
	}
	resp := wire.Response{Status: wire.StatusOK, Op: wire.OpScan, ID: id}
	if err != nil {
		resp = wire.Response{Status: wire.StatusErr, Op: wire.OpScan, ID: id, Err: err.Error()}
		if s.m != nil {
			s.m.Errors.Inc()
		}
	}
	c.respond(&resp, obs.ServerOpScan, rt)
}

// beginDrain (graceful shutdown) stops the reader by expiring its blocked
// read; dispatched requests keep completing.
func (c *conn) beginDrain() {
	c.draining.Store(true)
	_ = c.nc.SetReadDeadline(time.Now())
}

// teardown kills the connection now: marks it dead (senders drop), cancels
// scans and throttled sends via done, and closes the socket.
func (c *conn) teardown() {
	c.tearOnce.Do(func() {
		c.qmu.Lock()
		c.dead = true
		c.qmu.Unlock()
		close(c.done)
		c.qcnd.Broadcast()
		_ = c.nc.Close()
	})
}
