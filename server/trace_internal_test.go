package server

import (
	"testing"
	"time"

	"pmago"
	"pmago/internal/obs"
)

// TestServeRecordingDoesNotAllocate guards the instrumented request path:
// recordTrace — the per-request trace attribution including a slow-ring
// capture — must not allocate, keeping the server's hot path at the same
// zero-allocation contract the rest of the metric set holds.
func TestServeRecordingDoesNotAllocate(t *testing.T) {
	p, err := pmago.New()
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	s := New(p, Options{
		SlowOpThreshold:   time.Nanosecond, // force the slow-ring capture path
		SlowOpSampleEvery: 1,
	})
	defer s.Close()

	start := time.Now()
	rt := reqTimes{
		start:      start,
		decoded:    start.Add(1 * time.Microsecond),
		picked:     start.Add(2 * time.Microsecond),
		applyStart: start.Add(3 * time.Microsecond),
		applyEnd:   start.Add(9 * time.Microsecond),
	}
	end := start.Add(10 * time.Microsecond)
	if n := testing.AllocsPerRun(1000, func() {
		s.recordTrace(obs.ServerOpPut, rt, end)
	}); n != 0 {
		t.Fatalf("recordTrace allocates %v/op", n)
	}
}

// TestNanosBetween pins the stamp arithmetic's zero-handling.
func TestNanosBetween(t *testing.T) {
	var zero time.Time
	now := time.Now()
	if got := nanosBetween(zero, now); got != 0 {
		t.Fatalf("zero a: %d", got)
	}
	if got := nanosBetween(now, zero); got != 0 {
		t.Fatalf("zero b: %d", got)
	}
	if got := nanosBetween(now.Add(time.Second), now); got != 0 {
		t.Fatalf("negative: %d", got)
	}
	if got := nanosBetween(now, now.Add(time.Millisecond)); got != uint64(time.Millisecond) {
		t.Fatalf("positive: %d", got)
	}
}
