// Graph analytics on a constantly changing graph — the paper's motivating
// scenario (Section 1: "analytics on a constantly changing graph"). A
// power-law random graph streams edge insertions and deletions from several
// goroutines while PageRank and BFS run concurrently over the live edge
// array, each analytics pass being one sequential scan of the PMA.
package main

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"pmago"
)

const (
	vertices = 20_000
	writers  = 4
	updates  = 100_000
)

// powerLawVertex picks vertices with a heavy-tailed preference, so the
// graph develops hubs like real social networks.
func powerLawVertex(rng *rand.Rand) uint32 {
	u := rng.Float64()
	v := int(float64(vertices) * u * u * u)
	if v >= vertices {
		v = vertices - 1
	}
	return uint32(v)
}

func main() {
	g, err := pmago.NewGraph()
	if err != nil {
		panic(err)
	}
	defer g.Close()

	// Seed a connected backbone.
	for v := uint32(0); v < vertices; v++ {
		g.AddEdge(v, (v+1)%vertices, 1)
	}
	g.Flush()
	fmt.Printf("backbone: %d vertices, %d edges\n", g.VertexCount(), g.EdgeCount())

	// Stream updates while analytics run.
	var stop atomic.Bool
	var analyticsRuns atomic.Int64
	var analyticsWG sync.WaitGroup
	analyticsWG.Add(1)
	go func() {
		defer analyticsWG.Done()
		for !stop.Load() {
			pr := g.PageRank(3, 0.85)
			dist := g.BFS(0)
			analyticsRuns.Add(1)
			_ = pr
			_ = dist
		}
	}()

	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < updates/writers; i++ {
				src := powerLawVertex(rng)
				dst := powerLawVertex(rng)
				if rng.Intn(5) == 0 {
					g.DeleteEdge(src, dst)
				} else {
					g.AddEdge(src, dst, int64(rng.Intn(100)))
				}
			}
		}(int64(w))
	}
	wg.Wait()
	g.Flush()
	elapsed := time.Since(start)
	stop.Store(true)
	analyticsWG.Wait()

	fmt.Printf("streamed %d updates in %v (%.0f updates/sec) with %d full-graph analytics passes concurrent\n",
		updates, elapsed.Round(time.Millisecond), float64(updates)/elapsed.Seconds(), analyticsRuns.Load())
	fmt.Printf("final graph: %d edges\n", g.EdgeCount())

	// Final PageRank: the hubs created by the power-law stream dominate.
	pr := g.PageRank(10, 0.85)
	type vr struct {
		v uint32
		r float64
	}
	top := make([]vr, 0, len(pr))
	for v, r := range pr {
		top = append(top, vr{v, r})
	}
	sort.Slice(top, func(i, j int) bool { return top[i].r > top[j].r })
	fmt.Println("top-5 PageRank vertices:")
	for _, e := range top[:5] {
		fmt.Printf("  vertex %5d  rank %.5f  out-degree %d\n", e.v, e.r, g.OutDegree(e.v))
	}
}
