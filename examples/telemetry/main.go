// Network status monitoring — another Section 1 motif ("network status
// monitoring ... require immediate and concurrent updates"). Device events
// arrive timestamp-ordered from many collectors (an append-heavy, skewed
// insert pattern: always at the right end of the array — historically the
// PMA's worst case, handled by the asynchronous batch mode). A dashboard
// goroutine continuously computes sliding-window aggregates with range
// scans, and old events are evicted concurrently.
//
// Part two makes the retained window durable: the events are ingested into
// a pmago.Open store, checkpointed with Snapshot, written to past the
// checkpoint (a WAL tail), and the process "restart" is simulated by
// closing and reopening the store — everything must survive. The durable
// store carries a slog event hook, so checkpoints, recoveries and slow
// structural events land in the process log like any other operational
// event.
//
// Part three is the ops view: pmago.Handler mounted on a loopback HTTP
// server, scraped once in each exposition format — JSON for humans with
// curl, Prometheus text for the metrics agent.
package main

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"net"
	"net/http"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"pmago"
)

const (
	collectors = 4
	events     = 200_000
	windowSize = 10_000 // events per dashboard window
)

// key packs a logical timestamp with a collector id so keys stay unique.
func key(ts int64, collector int) int64 { return ts<<3 | int64(collector) }

func main() {
	p, err := pmago.New(pmago.WithMode(pmago.ModeBatch), pmago.WithTDelay(20*time.Millisecond))
	if err != nil {
		panic(err)
	}
	defer p.Close()

	var clock atomic.Int64 // logical time source
	var stop atomic.Bool

	// Dashboard: sliding-window aggregation via range scans.
	var dash sync.WaitGroup
	var windows atomic.Int64
	dash.Add(1)
	go func() {
		defer dash.Done()
		for !stop.Load() {
			now := clock.Load()
			lo, hi := key(now-windowSize, 0), key(now, 7)
			var count int64
			var errSum int64
			p.Scan(lo, hi, func(_, severity int64) bool {
				count++
				if severity >= 8 {
					errSum++
				}
				return true
			})
			windows.Add(1)
			_ = errSum
		}
	}()

	// Evictor: drop events older than 5 windows (concurrent deletes at
	// the array's left edge while inserts hammer the right edge).
	var evict sync.WaitGroup
	evict.Add(1)
	go func() {
		defer evict.Done()
		horizon := int64(0)
		for !stop.Load() {
			cutoff := clock.Load() - 5*windowSize
			for ; horizon < cutoff; horizon++ {
				for c := 0; c < collectors*2; c++ {
					p.Delete(key(horizon, c))
				}
			}
			time.Sleep(time.Millisecond)
		}
	}()

	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < collectors; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(c)))
			for i := 0; i < events/collectors; i++ {
				ts := clock.Add(1)
				p.Put(key(ts, c), int64(rng.Intn(10))) // value = severity
			}
		}(c)
	}
	wg.Wait()
	p.Flush()
	elapsed := time.Since(start)
	stop.Store(true)
	dash.Wait()
	evict.Wait()
	p.Flush()

	st := p.Stats()
	fmt.Printf("ingested %d events in %v (%.0f events/sec)\n",
		events, elapsed.Round(time.Millisecond), float64(events)/elapsed.Seconds())
	fmt.Printf("dashboard computed %d sliding windows concurrently\n", windows.Load())
	fmt.Printf("retained events after eviction: %d\n", p.Len())
	fmt.Printf("PMA handled the append skew with %d combined updates and %d deferred batches\n",
		st.Updates.CombinedOps, st.Updates.DeferredBatches)
	fmt.Printf("read path: %d chunks scanned optimistically, %d under the shared latch\n",
		st.Reads.ScanChunksOptimistic, st.Reads.ScanChunksLatched)
	if err := p.Validate(); err != nil {
		panic(err)
	}
	fmt.Println("structure validated")

	serveMetrics(p)
	durable(p)
}

// serveMetrics mounts pmago.Handler on a loopback HTTP server and scrapes
// both exposition formats once, the way a production deployment's metrics
// agent (or a human with curl) would.
func serveMetrics(src pmago.StatsSource) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		panic(err)
	}
	mux := http.NewServeMux()
	mux.Handle("/debug/pmago/", pmago.Handler(src))
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln)
	defer srv.Close()

	get := func(path string) []byte {
		resp, err := http.Get("http://" + ln.Addr().String() + "/debug/pmago/" + path)
		if err != nil {
			panic(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			panic(err)
		}
		return body
	}

	jsonBody := get("")
	samples, families := 0, 0
	sc := bufio.NewScanner(bytes.NewReader(get("metrics")))
	for sc.Scan() {
		switch {
		case strings.HasPrefix(sc.Text(), "# TYPE"):
			families++
		case !strings.HasPrefix(sc.Text(), "#"):
			samples++
		}
	}
	fmt.Printf("HTTP stats endpoint: %d bytes of JSON, %d Prometheus samples in %d families\n",
		len(jsonBody), samples, families)
}

// durable persists the retained window into a pmago.Open store and proves
// it survives a restart: batch ingest, checkpoint, WAL-tail writes, close,
// reopen, verify. It reads through the Store interface, so the window could
// equally come from a DB or a Sharded store.
func durable(p pmago.Store) {
	dir, err := os.MkdirTemp("", "pmago-telemetry-*")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)

	// The event hook routes structural events into the process log:
	// checkpoints and recoveries at Info, anything slower than 2ms — and
	// every fsync stall — at Warn. The snapshot below is big enough to
	// cross the threshold, so a "slow compaction" warning is expected.
	hook := pmago.NewSlogHook(
		slog.New(slog.NewTextHandler(os.Stdout, &slog.HandlerOptions{Level: slog.LevelInfo})),
		2*time.Millisecond)
	db, err := pmago.Open(dir, pmago.WithFsync(pmago.FsyncInterval), pmago.WithEventHook(hook))
	if err != nil {
		panic(err)
	}
	// Drain the in-memory window into the durable store in sorted batches
	// (each PutBatch is one WAL record + one batched merge).
	const chunk = 10_000
	keys := make([]int64, 0, chunk)
	vals := make([]int64, 0, chunk)
	flush := func() {
		if len(keys) > 0 {
			db.PutBatch(keys, vals)
			keys, vals = keys[:0], vals[:0]
		}
	}
	p.ScanAll(func(k, v int64) bool {
		keys = append(keys, k)
		vals = append(vals, v)
		if len(keys) == chunk {
			flush()
		}
		return true
	})
	flush()
	ingested := db.Len()

	// Checkpoint, then keep writing: the tail lives only in the WAL.
	if err := db.Snapshot(); err != nil {
		panic(err)
	}
	for c := 0; c < collectors; c++ {
		db.Put(key(int64(events+c+1), c), int64(c))
	}
	if err := db.Close(); err != nil {
		panic(err)
	}

	// "Restart": recover from snapshot + WAL tail. The same hook reports
	// the recovery split (snapshot load vs WAL replay).
	re, err := pmago.Open(dir, pmago.WithEventHook(hook))
	if err != nil {
		panic(err)
	}
	defer re.Close()
	if got, want := re.Len(), ingested+collectors; got != want {
		panic(fmt.Sprintf("restart lost events: %d, want %d", got, want))
	}
	// Spot-check: the first retained event must carry the same severity.
	var firstK, firstV int64
	p.ScanAll(func(k, v int64) bool { firstK, firstV = k, v; return false })
	if v, ok := re.Get(firstK); !ok || v != firstV {
		panic("restart corrupted an event")
	}
	if err := re.Validate(); err != nil {
		panic(err)
	}
	rst := re.Stats()
	fmt.Printf("durable store: %d events survived snapshot + WAL-tail restart\n", re.Len())
	fmt.Printf("recovery split: %d pairs from the snapshot, %d WAL records replayed\n",
		rst.Recovery.SnapshotPairs, rst.Recovery.WALRecords)
}
