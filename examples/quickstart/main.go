// Quickstart: the basic pmago API — create a concurrent PMA, write from
// several goroutines, read while writing, scan in order, inspect stats.
package main

import (
	"fmt"
	"sync"

	"pmago"
)

func main() {
	p, err := pmago.New() // the paper's defaults: B=128, 8 segs/gate, batch mode
	if err != nil {
		panic(err)
	}
	defer p.Close()

	// Concurrent writers: sorted key/value pairs, upsert semantics.
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := int64(0); i < 50_000; i++ {
				k := i*4 + int64(w)
				p.Put(k, k*10)
			}
		}(w)
	}

	// A reader can scan while the writers run: each gate is observed
	// atomically and keys always come back in ascending order.
	midScan := 0
	p.Scan(0, 1_000, func(k, v int64) bool { midScan++; return true })
	fmt.Printf("mid-write scan saw %d elements in [0,1000]\n", midScan)

	wg.Wait()
	p.Flush() // make all combined updates visible

	fmt.Printf("stored %d elements in %d slots (density %.2f)\n",
		p.Len(), p.Capacity(), float64(p.Len())/float64(p.Capacity()))

	if v, ok := p.Get(42); ok {
		fmt.Printf("Get(42) = %d\n", v)
	}
	p.Delete(42)
	p.Flush()
	if _, ok := p.Get(42); !ok {
		fmt.Println("Delete(42) ok")
	}

	// Range scan: sequential array traversal, the PMA's strength.
	sum := int64(0)
	count := 0
	p.Scan(100_000, 100_999, func(k, v int64) bool {
		sum += v
		count++
		return true
	})
	fmt.Printf("scanned %d elements in [100000,100999], value sum %d\n", count, sum)

	st := p.Stats()
	fmt.Printf("structural events: %d local rebalances, %d global rebalances, %d resizes, %d combined updates\n",
		st.Rebalance.Local, st.Rebalance.Global, st.Rebalance.Resizes, st.Updates.CombinedOps)
}
