// Ride sharing — the paper's first motivating application (Section 1), also
// exercising the space-filling-curve ordering the introduction recommends
// for spatial locality. Driver positions are keyed by their Hilbert-curve
// distance, so geographically close drivers are close in the sorted array
// and a pickup search is a handful of short range scans; position updates
// (delete old cell, insert new cell) stream in concurrently.
package main

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"pmago"
	"pmago/internal/spacefill"
)

const (
	order    = 12 // 4096 x 4096 grid
	grid     = 1 << order
	drivers  = 20_000
	moves    = 200_000
	searches = 2_000
)

// cellKey packs a Hilbert distance with a driver id (several drivers can
// share a cell).
func cellKey(d uint64, driver uint32) int64 {
	return int64(d<<20) | int64(driver&0xFFFFF)
}

func main() {
	p, err := pmago.New()
	if err != nil {
		panic(err)
	}
	defer p.Close()

	// Place the fleet.
	rng := rand.New(rand.NewSource(1))
	posX := make([]uint32, drivers)
	posY := make([]uint32, drivers)
	var mu sync.Mutex // guards posX/posY bookkeeping only
	for i := range posX {
		posX[i], posY[i] = rng.Uint32()%grid, rng.Uint32()%grid
		d := spacefill.HilbertEncode(order, posX[i], posY[i])
		p.Put(cellKey(d, uint32(i)), int64(i))
	}
	p.Flush()
	fmt.Printf("placed %d drivers on a %dx%d grid (%d elements)\n", drivers, grid, grid, p.Len())

	// Dispatcher: find candidate drivers near random riders while the
	// fleet moves. Nearby in Hilbert order ~ nearby in space, so a
	// window scan around the rider's cell finds candidates cheaply.
	var found atomic.Int64
	var dispatchWG sync.WaitGroup
	stop := make(chan struct{})
	dispatchWG.Add(1)
	go func() {
		defer dispatchWG.Done()
		rng := rand.New(rand.NewSource(7))
		for s := 0; s < searches; s++ {
			select {
			case <-stop:
				return
			default:
			}
			rx, ry := rng.Uint32()%grid, rng.Uint32()%grid
			d := spacefill.HilbertEncode(order, rx, ry)
			const window = 1 << 14 // Hilbert-distance radius
			lo, hi := uint64(0), d+window
			if d > window {
				lo = d - window
			}
			n := int64(0)
			p.Scan(cellKey(lo, 0), cellKey(hi, 0xFFFFF), func(_, _ int64) bool {
				n++
				return n < 16 // first 16 candidates suffice
			})
			found.Add(n)
		}
	}()

	// The fleet moves: each move is a delete at the old cell plus an
	// insert at the new one.
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < moves/4; i++ {
				id := uint32(rng.Intn(drivers))
				mu.Lock()
				ox, oy := posX[id], posY[id]
				nx := (ox + uint32(rng.Intn(17))) % grid
				ny := (oy + uint32(rng.Intn(17))) % grid
				posX[id], posY[id] = nx, ny
				mu.Unlock()
				p.Delete(cellKey(spacefill.HilbertEncode(order, ox, oy), id))
				p.Put(cellKey(spacefill.HilbertEncode(order, nx, ny), id), int64(id))
			}
		}(int64(w))
	}
	wg.Wait()
	p.Flush()
	close(stop)
	dispatchWG.Wait()
	elapsed := time.Since(start)

	fmt.Printf("processed %d position updates in %v (%.0f moves/sec)\n",
		moves, elapsed.Round(time.Millisecond), float64(moves)/elapsed.Seconds())
	fmt.Printf("dispatcher examined %d candidate drivers across %d searches\n", found.Load(), searches)
	fmt.Printf("fleet index holds %d entries (expected ~%d; transient duplicates possible mid-move)\n",
		p.Len(), drivers)
	if err := p.Validate(); err != nil {
		panic(err)
	}
	fmt.Println("structure validated")
}
