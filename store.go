package pmago

// Store is the operation surface shared by every store variant: the
// in-memory PMA (New/BulkLoad), the durable DB (Open) and the horizontally
// sharded Sharded (NewSharded/OpenSharded) all satisfy it, so servers,
// benchmarks and examples can be written once and front any backend. All
// methods carry the semantics documented on PMA; DB and Sharded narrow or
// extend them exactly as their own method docs state (durability per fsync
// policy, cross-shard atomicity).
//
// Close is deliberately absent: PMA.Close returns nothing while DB.Close
// and Sharded.Close return an error, so lifetime management stays with the
// concrete type (or with DurableStore, whose Close is uniform).
type Store interface {
	Put(k, v int64)
	Get(k int64) (int64, bool)
	Delete(k int64) bool
	PutBatch(keys, vals []int64)
	DeleteBatch(keys []int64) int
	Scan(lo, hi int64, fn func(k, v int64) bool)
	ScanAll(fn func(k, v int64) bool)
	Len() int
	Capacity() int
	Flush()
	Stats() Stats
	Validate() error
}

// DurableStore is a Store with a durability surface: DB and Sharded satisfy
// it. On a Sharded created in memory (NewSharded/BulkLoadSharded) the
// interface is still satisfied, but Sync and Snapshot return an error and
// WALBytes/Dir report zero values — durability is a property of how the
// store was opened, not of its type.
type DurableStore interface {
	Store
	// Sync forces every acknowledged write to stable storage (a durability
	// barrier for the interval/none fsync policies).
	Sync() error
	// Snapshot checkpoints the store, bounding recovery to the snapshot
	// plus the live WAL tail.
	Snapshot() error
	// WALBytes reports the live write-ahead-log size — the replay cost a
	// crash would incur right now.
	WALBytes() int64
	// Dir returns the store's directory ("" when in-memory).
	Dir() string
	// Close flushes pending work, forces the log to stable storage and
	// releases all resources.
	Close() error
}

// Every store variant satisfies Store; the durable ones satisfy
// DurableStore. Kept as compile-time assertions so an accidental signature
// drift fails the build, not a caller.
var (
	_ Store        = (*PMA)(nil)
	_ Store        = (*DB)(nil)
	_ Store        = (*Sharded)(nil)
	_ DurableStore = (*DB)(nil)
	_ DurableStore = (*Sharded)(nil)
)
