package pmago

import (
	"errors"
	"strings"
	"testing"
)

// TestMisappliedOptionsRejected checks every constructor rejects the option
// groups it cannot honor, naming the offending option — instead of the old
// behavior of silently dropping it.
func TestMisappliedOptionsRejected(t *testing.T) {
	dir := t.TempDir()
	cases := []struct {
		name    string
		build   func() error
		wantOpt string
	}{
		{"New+WithFsync", func() error {
			_, err := New(WithFsync(FsyncAlways))
			return err
		}, "WithFsync"},
		{"New+WithShards", func() error {
			_, err := New(WithShards(4))
			return err
		}, "WithShards"},
		{"New+WithCompactRatio", func() error {
			_, err := New(WithCompactRatio(2))
			return err
		}, "WithCompactRatio"},
		{"BulkLoad+WithWALSegmentBytes", func() error {
			_, err := BulkLoad([]int64{1}, []int64{2}, WithWALSegmentBytes(1<<20))
			return err
		}, "WithWALSegmentBytes"},
		{"BulkLoad+WithRangeSplits", func() error {
			_, err := BulkLoad([]int64{1}, []int64{2}, WithRangeSplits([]int64{0}))
			return err
		}, "WithRangeSplits"},
		{"NewSharded+WithFsyncInterval", func() error {
			_, err := NewSharded(WithShards(2), WithFsyncInterval(1))
			return err
		}, "WithFsyncInterval"},
		{"BulkLoadSharded+WithCompactMinBytes", func() error {
			_, err := BulkLoadSharded([]int64{1}, []int64{2}, WithShards(2), WithCompactMinBytes(1))
			return err
		}, "WithCompactMinBytes"},
		{"Open+WithShards", func() error {
			_, err := Open(dir, WithShards(2))
			return err
		}, "WithShards"},
		{"Open+WithShardWeights", func() error {
			_, err := Open(dir, WithShardWeights([]float64{1, 2}))
			return err
		}, "WithShardWeights"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.build()
			if err == nil {
				t.Fatal("misapplied option accepted")
			}
			if !strings.Contains(err.Error(), tc.wantOpt) {
				t.Fatalf("error %q does not name option %s", err, tc.wantOpt)
			}
		})
	}
}

// TestValidOptionCombinationsAccepted pins the constructors that SHOULD
// accept each group: durability on Open*, topology on *Sharded, both on
// OpenSharded.
func TestValidOptionCombinationsAccepted(t *testing.T) {
	db, err := Open(t.TempDir(), WithFsync(FsyncNone), WithCompactRatio(8))
	if err != nil {
		t.Fatalf("Open with durability options: %v", err)
	}
	db.Close()
	s, err := NewSharded(WithShards(2), WithWorkers(1))
	if err != nil {
		t.Fatalf("NewSharded with topology+core options: %v", err)
	}
	s.Close()
	s2, err := OpenSharded(t.TempDir(), WithShards(2), WithFsync(FsyncNone))
	if err != nil {
		t.Fatalf("OpenSharded with topology+durability options: %v", err)
	}
	s2.Close()
}

// TestWALErrorSurfaces injects a background-append failure the way logErr
// records one and checks it surfaces everywhere the API promises: Err,
// Sync, Stats, and Close.
func TestWALErrorSurfaces(t *testing.T) {
	db, err := Open(t.TempDir(), WithFsync(FsyncNone))
	if err != nil {
		t.Fatal(err)
	}
	db.Put(1, 2)

	boom := errors.New("disk on fire")
	db.recordErr(boom)
	db.recordErr(errors.New("later error")) // first error is sticky

	if got := db.Err(); !errors.Is(got, boom) {
		t.Fatalf("Err() = %v, want %v", got, boom)
	}
	if err := db.Sync(); !errors.Is(err, boom) {
		t.Fatalf("Sync() = %v, want wrapped %v", err, boom)
	}
	if st := db.Stats(); !strings.Contains(st.Err, "disk on fire") {
		t.Fatalf("Stats().Err = %q, want the recorded error", st.Err)
	}
	if err := db.Close(); !errors.Is(err, boom) {
		t.Fatalf("Close() = %v, want wrapped %v", err, boom)
	}
}

// TestHealthyStatsNoErr pins the zero value: a healthy store reports no
// error through Stats.
func TestHealthyStatsNoErr(t *testing.T) {
	db, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	db.Put(1, 2)
	if err := db.Sync(); err != nil {
		t.Fatal(err)
	}
	if st := db.Stats(); st.Err != "" {
		t.Fatalf("healthy store Stats().Err = %q", st.Err)
	}
}
