package pmago

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// shardedCrashOp is one acknowledged update plus, per shard, the durable WAL
// size right after it returned. Shards log independently, so the crash
// property is per shard: cutting shard j's WAL at endOff[j] of op i must
// recover exactly ops 0..i restricted to shard j's keys.
type shardedCrashOp struct {
	apply  func(m map[int64]int64)
	endOff []int64
}

// TestShardedCrashRecoveryProperty extends the PR 2 crash property test
// across shards: a workload of acknowledged FsyncAlways updates (point ops
// and cross-shard batches) is recorded with each op's per-shard WAL end
// offsets; then, per trial, the WAL tail of a RANDOM SUBSET of shard
// directories is truncated at a random byte offset — a crash that hit the
// shards mid group-commit at different points — some additionally smeared
// with garbage (a torn final append). The reopened store must equal the
// union of each shard's acknowledged-durable prefix: shard j's keys reflect
// exactly the ops whose shard-j records fit under shard j's cut, and the
// untouched shards lose nothing.
func TestShardedCrashRecoveryProperty(t *testing.T) {
	t.Run("uncompressed", func(t *testing.T) { shardedCrashProperty(t) })
	t.Run("compressed", func(t *testing.T) { shardedCrashProperty(t, WithCompressedChunks()) })
}

func shardedCrashProperty(t *testing.T, extra ...Option) {
	const shards = 3
	dir := t.TempDir()
	opts := append([]Option{WithShards(shards), WithFsync(FsyncAlways), WithCompactRatio(0)}, extra...)
	s, err := OpenSharded(dir, opts...)
	if err != nil {
		t.Fatal(err)
	}

	walOffsets := func() []int64 {
		offs := make([]int64, shards)
		for j, db := range s.dbs {
			offs[j] = db.WALBytes()
		}
		return offs
	}

	rng := rand.New(rand.NewSource(7))
	var ops []shardedCrashOp
	nops := 300
	if testing.Short() {
		nops = 120
	}
	for i := 0; i < nops; i++ {
		var apply func(m map[int64]int64)
		switch rng.Intn(4) {
		case 0:
			k, v := rng.Int63n(400), rng.Int63()
			s.Put(k, v)
			apply = func(m map[int64]int64) { m[k] = v }
		case 1:
			k := rng.Int63n(400)
			s.Delete(k)
			apply = func(m map[int64]int64) { delete(m, k) }
		case 2:
			n := 1 + rng.Intn(16) // big enough to span shards
			keys := make([]int64, n)
			vals := make([]int64, n)
			for j := range keys {
				keys[j] = rng.Int63n(400)
				vals[j] = rng.Int63()
			}
			s.PutBatch(keys, vals)
			apply = func(m map[int64]int64) {
				for j := range keys {
					m[keys[j]] = vals[j]
				}
			}
		default:
			n := 1 + rng.Intn(16)
			keys := make([]int64, n)
			for j := range keys {
				keys[j] = rng.Int63n(400)
			}
			s.DeleteBatch(keys)
			apply = func(m map[int64]int64) {
				for _, k := range keys {
					delete(m, k)
				}
			}
		}
		ops = append(ops, shardedCrashOp{apply: apply, endOff: walOffsets()})
	}
	// The placement that routed the workload, for projecting the model onto
	// shards below.
	place := s.place
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Capture the on-disk store once; every trial reconstructs it with some
	// shard WALs cut.
	walName := fmt.Sprintf("wal-%020d.log", 1)
	manifest, err := os.ReadFile(filepath.Join(dir, "MANIFEST.json"))
	if err != nil {
		t.Fatal(err)
	}
	wals := make([][]byte, shards)
	for j := range wals {
		if wals[j], err = os.ReadFile(filepath.Join(dir, shardDirName(j), walName)); err != nil {
			t.Fatal(err)
		}
		if int64(len(wals[j])) != ops[len(ops)-1].endOff[j] {
			t.Fatalf("shard %d wal is %d bytes, last op ended at %d", j, len(wals[j]), ops[len(ops)-1].endOff[j])
		}
	}

	trials := 30
	if testing.Short() {
		trials = 10
	}
	for trial := 0; trial < trials; trial++ {
		// Random subset of shards crashes mid-append; the rest keep their
		// full logs. Cut 0 (everything lost) and full length (nothing lost)
		// arise naturally from the random offsets.
		cuts := make([]int64, shards)
		torn := make([]bool, shards)
		for j := range cuts {
			cuts[j] = int64(len(wals[j]))
			if rng.Intn(2) == 0 {
				cuts[j] = rng.Int63n(int64(len(wals[j])) + 1)
				torn[j] = rng.Intn(2) == 0
			}
		}

		// The expected store: per shard, the model of exactly the ops whose
		// shard-local records fit under that shard's cut, projected onto the
		// keys the placement routes there. A record straddling the cut is
		// torn, taking that shard's suffix with it.
		want := map[int64]int64{}
		for j := 0; j < shards; j++ {
			m := map[int64]int64{}
			for _, op := range ops {
				if op.endOff[j] > cuts[j] {
					break
				}
				op.apply(m)
			}
			for k, v := range m {
				if place.Shard(k) == j {
					want[k] = v
				}
			}
		}

		trialDir := t.TempDir()
		if err := os.WriteFile(filepath.Join(trialDir, "MANIFEST.json"), manifest, 0o644); err != nil {
			t.Fatal(err)
		}
		for j := 0; j < shards; j++ {
			sd := filepath.Join(trialDir, shardDirName(j))
			if err := os.MkdirAll(sd, 0o755); err != nil {
				t.Fatal(err)
			}
			wal := wals[j][:cuts[j]]
			if torn[j] {
				// A torn final append: the header of a record whose payload
				// never made it, plus garbage. Recovery must truncate it.
				garbage := make([]byte, 32+rng.Intn(200))
				rng.Read(garbage)
				wal = append(append([]byte{}, wal...), garbage...)
			}
			if err := os.WriteFile(filepath.Join(sd, walName), wal, 0o644); err != nil {
				t.Fatal(err)
			}
		}

		// Reopen with the same representation options: WAL replay itself is
		// representation-independent, but the recovered store must rebuild
		// and validate under the configuration that wrote the log.
		re, err := OpenSharded(trialDir, extra...)
		if err != nil {
			t.Fatalf("trial %d (cuts %v torn %v): reopen: %v", trial, cuts, torn, err)
		}
		re.Flush()
		got := scanToMap(t, re)
		if verr := re.Validate(); verr != nil {
			t.Fatalf("trial %d (cuts %v): %v", trial, cuts, verr)
		}
		if err := re.Close(); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d (cuts %v torn %v): recovered %d keys, want %d",
				trial, cuts, torn, len(got), len(want))
		}
	}
}

// TestShardedCrashManifestMismatch: after a crash (simulated by not closing
// cleanly — the flock dies with the process), reopening with a topology that
// contradicts the manifest must still be refused; crash recovery never
// rewrites the topology.
func TestShardedCrashManifestMismatch(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenSharded(dir, WithShards(2), WithFsync(FsyncAlways))
	if err != nil {
		t.Fatal(err)
	}
	for k := int64(0); k < 50; k++ {
		s.Put(k, k)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate the crash aftermath: truncate one shard's WAL tail.
	walName := fmt.Sprintf("wal-%020d.log", 1)
	path := filepath.Join(dir, shardDirName(0), walName)
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, fi.Size()/2); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenSharded(dir, WithShards(4)); err == nil {
		t.Fatal("crash-recovery reopen accepted a conflicting topology")
	}
	re, err := OpenSharded(dir) // adopting the manifest still works
	if err != nil {
		t.Fatal(err)
	}
	re.Close()
}
