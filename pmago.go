package pmago

import (
	"fmt"
	"time"

	"pmago/internal/core"
	"pmago/internal/persist"
	"pmago/internal/rma"
)

// Reserved sentinel keys: the store holds any int64 key except these two,
// which serve as the -inf/+inf fence keys internally.
const (
	KeyMin = rma.KeyMin
	KeyMax = rma.KeyMax
)

// Mode selects how concurrent updates are processed (Section 3.5 of the
// paper).
type Mode = core.Mode

const (
	// ModeSync applies every update synchronously under its gate latch.
	ModeSync = core.ModeSync
	// ModeOneByOne combines contended updates and drains them in order,
	// retaining adaptive rebalancing.
	ModeOneByOne = core.ModeOneByOne
	// ModeBatch combines contended updates and applies them in batches
	// (deletes first, inserts merged into one rebalance), deferring
	// global rebalances by the configured TDelay.
	ModeBatch = core.ModeBatch
)

// FsyncPolicy selects when WAL appends of a durable store (Open) reach
// stable storage; see the constants for the crash guarantee each buys.
type FsyncPolicy = persist.FsyncPolicy

const (
	// FsyncAlways makes every acknowledged write durable before the call
	// returns (concurrent writers share fsyncs via group commit).
	FsyncAlways = persist.FsyncAlways
	// FsyncInterval fsyncs on a timer: a power loss costs at most the
	// last interval; a mere process crash costs nothing.
	FsyncInterval = persist.FsyncInterval
	// FsyncNone leaves write-back to the OS: fastest, survives process
	// crashes, no power-loss guarantee.
	FsyncNone = persist.FsyncNone
)

// config bundles the in-memory PMA configuration with the durability
// options consumed only by the durable constructors (Open, OpenSharded) and
// the sharding options consumed only by the Sharded constructors. durOpts
// and shardOpts record the names of the group-specific options a caller
// applied, so a constructor the option does not apply to can reject it by
// name instead of silently dropping it.
type config struct {
	core      core.Config
	dur       persist.Options
	shard     shardConfig
	durOpts   []string
	shardOpts []string
}

func defaultConfig() config {
	return config{core: core.DefaultConfig(), dur: persist.DefaultOptions()}
}

// resolve applies the options to a default config and rejects the groups the
// calling constructor does not consume: misapplied options are an error, not
// a silent no-op (a WithFsync quietly dropped by New would read as a
// durability guarantee the store never had).
func resolveOptions(constructor string, opts []Option, allowDur, allowShard bool) (config, error) {
	cfg := defaultConfig()
	for _, o := range opts {
		o(&cfg)
	}
	if !allowDur && len(cfg.durOpts) > 0 {
		return cfg, fmt.Errorf("pmago: %s: option %s applies only to durable stores (Open/OpenSharded)",
			constructor, cfg.durOpts[0])
	}
	if !allowShard && len(cfg.shardOpts) > 0 {
		return cfg, fmt.Errorf("pmago: %s: option %s applies only to sharded stores (NewSharded/BulkLoadSharded/OpenSharded)",
			constructor, cfg.shardOpts[0])
	}
	return cfg, nil
}

// Option customises a PMA.
type Option func(*config)

// WithMode selects the update-processing scheme.
func WithMode(m Mode) Option { return func(c *config) { c.core.Mode = m } }

// WithSegmentCapacity sets the slots per segment (power of two, >= 4; the
// paper uses 128 and evaluates 256 as an ablation).
func WithSegmentCapacity(b int) Option { return func(c *config) { c.core.SegmentCapacity = b } }

// WithSegmentsPerGate sets the chunk granularity (power of two; paper: 8).
func WithSegmentsPerGate(n int) Option { return func(c *config) { c.core.SegmentsPerGate = n } }

// WithTDelay sets the minimum delay between global rebalances of one gate
// in ModeBatch (paper: 100 ms, evaluated 0-800 ms).
func WithTDelay(d time.Duration) Option { return func(c *config) { c.core.TDelay = d } }

// WithWorkers sets the rebalancer worker-pool size (paper: 8).
func WithWorkers(n int) Option { return func(c *config) { c.core.Workers = n } }

// WithAdaptive forces adaptive rebalancing for local rebalances (implied by
// ModeOneByOne).
func WithAdaptive() Option { return func(c *config) { c.core.Adaptive = true } }

// WithCompressedChunks stores each segment as a delta-encoded block instead
// of fixed 16-byte slots: several times less memory for dense key runs, at
// the cost of a bounded per-segment decode on reads and a re-encode on
// writes. Semantics are identical; snapshots written by compressed and
// uncompressed stores are interchangeable. Applies to every constructor
// (per shard under WithShards).
func WithCompressedChunks() Option { return func(c *config) { c.core.CompressedChunks = true } }

// durOpt marks c as carrying the named durability-only option; the
// in-memory constructors reject such configs instead of dropping the option.
func (c *config) durOpt(name string) { c.durOpts = append(c.durOpts, name) }

// shardOpt marks c as carrying the named topology option; the unsharded
// constructors reject such configs instead of dropping the option.
func (c *config) shardOpt(name string) { c.shardOpts = append(c.shardOpts, name) }

// WithFsync selects the WAL fsync policy of a durable store (default
// FsyncAlways). Only the durable constructors accept it.
func WithFsync(p FsyncPolicy) Option {
	return func(c *config) { c.durOpt("WithFsync"); c.dur.Fsync = p }
}

// WithFsyncInterval sets the FsyncInterval period (default 50 ms).
func WithFsyncInterval(d time.Duration) Option {
	return func(c *config) { c.durOpt("WithFsyncInterval"); c.dur.FsyncEvery = d }
}

// WithWALSegmentBytes sets the WAL segment rotation size (default 64 MiB).
func WithWALSegmentBytes(n int64) Option {
	return func(c *config) { c.durOpt("WithWALSegmentBytes"); c.dur.SegmentBytes = n }
}

// WithCompactRatio makes a durable store snapshot itself automatically when
// the live WAL exceeds ratio × the last snapshot's size (default 4; zero or
// negative disables auto-compaction — Snapshot can still be called).
func WithCompactRatio(r float64) Option {
	return func(c *config) { c.durOpt("WithCompactRatio"); c.dur.CompactRatio = r }
}

// WithCompactMinBytes sets the WAL size below which auto-compaction never
// fires, and the trigger while no snapshot exists yet (default 8 MiB).
func WithCompactMinBytes(n int64) Option {
	return func(c *config) { c.durOpt("WithCompactMinBytes"); c.dur.CompactMinBytes = n }
}

// PMA is a concurrent packed memory array mapping int64 keys to int64
// values in sorted key order. All methods are safe for concurrent use by any
// number of goroutines. A PMA owns service goroutines; Close releases them.
type PMA struct {
	c *core.PMA
}

// New creates an empty PMA with the paper's default configuration modified
// by the given options. Durability options (WithFsync, ...) and topology
// options (WithShards, ...) are rejected with an error — they would
// otherwise be silently dropped; use Open or the Sharded constructors.
func New(opts ...Option) (*PMA, error) {
	cfg, err := resolveOptions("New", opts, false, false)
	if err != nil {
		return nil, err
	}
	return newPMA(cfg)
}

// newPMA builds a PMA from a resolved config — the shared back end of New
// and the per-shard loop of NewSharded (which consumes the topology options
// itself and must not re-trigger their rejection).
func newPMA(cfg config) (*PMA, error) {
	c, err := core.New(cfg.core)
	if err != nil {
		return nil, err
	}
	return &PMA{c: c}, nil
}

// BulkLoad creates a PMA already containing the given pairs, laying the
// sorted data out directly at the array's target density in a single pass
// instead of len(keys) point inserts — the fast path for loading a graph,
// restoring a snapshot, or backfilling telemetry. Unsorted input is sorted
// first; duplicate keys collapse to their last occurrence, matching the
// effect of sequential Puts. The returned PMA must be Closed like any other.
func BulkLoad(keys, vals []int64, opts ...Option) (*PMA, error) {
	cfg, err := resolveOptions("BulkLoad", opts, false, false)
	if err != nil {
		return nil, err
	}
	return bulkLoadPMA(cfg, keys, vals)
}

// bulkLoadPMA is BulkLoad from a resolved config (see newPMA).
func bulkLoadPMA(cfg config, keys, vals []int64) (*PMA, error) {
	c, err := core.BulkLoad(cfg.core, keys, vals)
	if err != nil {
		return nil, err
	}
	return &PMA{c: c}, nil
}

// Close stops the rebalancer and garbage-collector goroutines, applying any
// still-pending combined updates first. Close is idempotent; any other use
// of a closed PMA panics with "pmago: use after Close".
func (p *PMA) Close() { p.c.Close() }

// Put inserts k/v, replacing the value if k is present. In the asynchronous
// modes the update may be deferred under contention: it is applied before
// Flush returns, but an immediately following Get may not observe it yet.
func (p *PMA) Put(k, v int64) { p.c.Put(k, v) }

// Get returns the value stored under k.
func (p *PMA) Get(k int64) (int64, bool) { return p.c.Get(k) }

// Delete removes k, reporting whether an element was removed (deferred
// deletes report true optimistically; see Put).
func (p *PMA) Delete(k int64) bool { return p.c.Delete(k) }

// PutBatch upserts all keys[i]/vals[i] pairs as one sorted batch: the batch
// is partitioned along the gate fence keys and each affected gate is latched
// and merged exactly once, which is substantially cheaper than the
// equivalent point-Put loop. Duplicate keys collapse to their last
// occurrence. The whole batch is applied when PutBatch returns, but it is
// not atomic: a concurrent scan may observe some gates with their run
// applied and others without, and concurrent updates to the same key
// through other calls are unordered with respect to the batch (as with
// combined updates; see Put). Panics on sentinel keys or mismatched slice
// lengths.
func (p *PMA) PutBatch(keys, vals []int64) { p.c.PutBatch(keys, vals) }

// DeleteBatch removes all given keys as one sorted batch, returning the
// exact number of elements removed. Duplicates and sentinel keys are
// ignored.
func (p *PMA) DeleteBatch(keys []int64) int { return p.c.DeleteBatch(keys) }

// Scan visits all pairs with lo <= key <= hi in ascending key order until
// fn returns false. Each chunk is copied out under validation (optimistic
// version check, or the shared latch under sustained writer pressure) and fn
// runs on the copy with no latch held, so fn may call update operations of
// the same PMA — Put, Delete, the batch calls, Flush — and may be
// arbitrarily slow without blocking writers. The scan observes each chunk
// atomically and the chunks in ascending fence order; updates applied to a
// chunk after it was copied are not reflected in that chunk's callbacks.
func (p *PMA) Scan(lo, hi int64, fn func(k, v int64) bool) { p.c.Scan(lo, hi, fn) }

// ScanAll visits every pair in ascending key order.
func (p *PMA) ScanAll(fn func(k, v int64) bool) { p.c.ScanAll(fn) }

// Len returns the number of stored elements (excluding not-yet-applied
// combined updates; Flush first for an exact count).
func (p *PMA) Len() int { return p.c.Len() }

// Capacity returns the current number of slots; Len()/Capacity() is the
// array's fill factor, kept within the calibrator-tree thresholds.
func (p *PMA) Capacity() int { return p.c.Capacity() }

// Flush applies every pending combined update and deferred batch. After a
// quiescent Flush, reads observe all previously accepted updates.
func (p *PMA) Flush() { p.c.Flush() }

// Stats returns the metrics snapshot: seqlock read-path counters, combining
// and rebalancer activity, and epoch reclamation. The durable sections stay
// zero for an in-memory store.
func (p *PMA) Stats() Stats { return Stats{CoreSnapshot: p.c.Stats()} }

// Validate checks every structural invariant; it is meant for tests and
// debugging and must run without concurrent updates.
func (p *PMA) Validate() error { return p.c.Validate() }
